#include "safety/trace.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "graph/algorithms.hpp"

namespace cybok::safety {

ConsequenceAnalyzer::ConsequenceAnalyzer(const model::SystemModel& m, const HazardModel& hazards)
    : model_(m), hazards_(hazards), cs_(extract_control_structure(m)),
      graph_(model::to_graph(m)) {}

std::vector<ConsequenceTrace> ConsequenceAnalyzer::trace(
    const search::AssociationMap& associations) const {
    std::vector<ConsequenceTrace> out;

    for (const search::ComponentAssociation& ca : associations.components) {
        const std::size_t vectors = ca.total();
        if (vectors == 0) continue;
        auto start = graph_.find_node(ca.component);
        if (!start.has_value()) continue;

        // Representative vector ids: prefer weaknesses (class findings),
        // then patterns, then vulnerabilities.
        std::vector<std::string> examples;
        auto collect = [&](search::VectorClass cls) {
            for (const search::AttributeAssociation& aa : ca.attributes)
                for (const search::Match& m : aa.matches)
                    if (m.cls == cls && examples.size() < 3) examples.push_back(m.id);
        };
        collect(search::VectorClass::Weakness);
        collect(search::VectorClass::AttackPattern);
        collect(search::VectorClass::Vulnerability);

        for (const UnsafeControlAction& uca : hazards_.ucas()) {
            auto target = graph_.find_node(uca.controller);
            if (!target.has_value()) continue;
            std::vector<graph::NodeId> path =
                graph::shortest_path(graph_, *start, *target, graph::Direction::Forward);
            if (path.empty()) continue;

            ConsequenceTrace t;
            t.component = ca.component;
            t.vector_count = vectors;
            t.example_vectors = examples;
            for (graph::NodeId n : path) t.pivot_path.push_back(graph_.node(n).label);
            t.uca_id = uca.id;
            t.uca_type = uca.type;
            t.uca_action = uca.action;
            t.hazard_ids = uca.hazards;
            std::set<std::string> losses;
            for (const std::string& hid : uca.hazards)
                if (const Hazard* h = hazards_.find_hazard(hid))
                    losses.insert(h->losses.begin(), h->losses.end());
            t.loss_ids.assign(losses.begin(), losses.end());
            out.push_back(std::move(t));
        }
    }

    std::sort(out.begin(), out.end(), [](const ConsequenceTrace& a, const ConsequenceTrace& b) {
        if (a.pivot_hops() != b.pivot_hops()) return a.pivot_hops() < b.pivot_hops();
        if (a.component != b.component) return a.component < b.component;
        return a.uca_id < b.uca_id;
    });
    return out;
}

std::vector<ConsequenceTrace> ConsequenceAnalyzer::externally_reachable(
    const search::AssociationMap& associations) const {
    std::set<std::string> external;
    for (const model::Component& c : model_.components())
        if (c.id.valid() && c.external_facing) external.insert(c.name);

    std::vector<ConsequenceTrace> all = trace(associations);
    std::vector<ConsequenceTrace> out;
    for (ConsequenceTrace& t : all)
        if (external.contains(t.component)) out.push_back(std::move(t));
    return out;
}

std::string to_string(const ConsequenceTrace& t) {
    std::ostringstream out;
    out << t.component << " carries " << t.vector_count << " attack vector(s)";
    if (!t.example_vectors.empty()) {
        out << " (e.g. ";
        for (std::size_t i = 0; i < t.example_vectors.size(); ++i) {
            if (i > 0) out << ", ";
            out << t.example_vectors[i];
        }
        out << ")";
    }
    if (t.pivot_hops() > 0) {
        out << "; pivot path ";
        for (std::size_t i = 0; i < t.pivot_path.size(); ++i) {
            if (i > 0) out << " -> ";
            out << t.pivot_path[i];
        }
    }
    out << "; enables " << t.uca_id << " [" << uca_type_name(t.uca_type) << "] \""
        << t.uca_action << "\"; hazards:";
    for (const std::string& h : t.hazard_ids) out << ' ' << h;
    out << "; losses:";
    for (const std::string& l : t.loss_ids) out << ' ' << l;
    return out.str();
}

} // namespace cybok::safety
