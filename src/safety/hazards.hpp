// Losses, hazards, and unsafe control actions — the physical-consequence
// vocabulary (STPA-style) that the paper identifies as missing from
// IT-centric threat modeling: "undesired physical consequences are the
// primary loss we mitigate against regardless of the nature of its origin
// (intrinsic safety fault or attack)".

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace cybok::safety {

/// A system-level loss stakeholders are unwilling to accept.
struct Loss {
    std::string id;   ///< "L-1"
    std::string text; ///< "Loss of product batch"
};

/// A system state that, combined with worst-case environment conditions,
/// leads to one or more losses.
struct Hazard {
    std::string id;   ///< "H-1"
    std::string text; ///< "Centrifuge solution exceeds safe temperature"
    std::vector<std::string> losses; ///< loss ids this hazard can cause
};

/// The four STPA ways a control action can be unsafe.
enum class UcaType : std::uint8_t {
    NotProviding,      ///< required action not provided
    Providing,         ///< unsafe action provided
    WrongTiming,       ///< provided too early / too late / wrong order
    WrongDuration,     ///< stopped too soon / applied too long
};
[[nodiscard]] std::string_view uca_type_name(UcaType t) noexcept;

/// An unsafe control action: a control action, in a context, that leads to
/// a hazard.
struct UnsafeControlAction {
    std::string id;           ///< "UCA-1"
    std::string controller;   ///< component name issuing the action
    std::string action;       ///< "set rotor speed"
    UcaType type = UcaType::Providing;
    std::string context;      ///< "while solution temperature is high"
    std::vector<std::string> hazards; ///< hazard ids
};

/// The hazard model for one system: losses, hazards, UCAs, and the
/// mapping from security-relevant conditions to UCAs (which weakness
/// classes on which components can cause which unsafe actions).
class HazardModel {
public:
    void add(Loss loss);
    void add(Hazard hazard);
    void add(UnsafeControlAction uca);

    [[nodiscard]] const std::vector<Loss>& losses() const noexcept { return losses_; }
    [[nodiscard]] const std::vector<Hazard>& hazards() const noexcept { return hazards_; }
    [[nodiscard]] const std::vector<UnsafeControlAction>& ucas() const noexcept { return ucas_; }

    [[nodiscard]] const Loss* find_loss(std::string_view id) const noexcept;
    [[nodiscard]] const Hazard* find_hazard(std::string_view id) const noexcept;
    [[nodiscard]] const UnsafeControlAction* find_uca(std::string_view id) const noexcept;

    /// UCAs attributable to a given controller component.
    [[nodiscard]] std::vector<const UnsafeControlAction*>
    ucas_for_controller(std::string_view component) const;

    /// Referential integrity: every UCA's hazards exist, every hazard's
    /// losses exist, ids unique. Returns problems (empty = valid).
    [[nodiscard]] std::vector<std::string> validate() const;

private:
    std::vector<Loss> losses_;
    std::vector<Hazard> hazards_;
    std::vector<UnsafeControlAction> ucas_;
};

} // namespace cybok::safety
