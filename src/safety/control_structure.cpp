#include "safety/control_structure.hpp"

#include <algorithm>
#include <set>

namespace cybok::safety {

bool ControlStructure::is_controller(std::string_view name) const noexcept {
    return std::find(controllers.begin(), controllers.end(), name) != controllers.end();
}

std::vector<FeedbackPath> ControlStructure::feedback_into(std::string_view controller) const {
    std::vector<FeedbackPath> out;
    for (const FeedbackPath& f : feedback)
        if (f.controller == controller) out.push_back(f);
    return out;
}

ControlStructure extract_control_structure(const model::SystemModel& m) {
    using model::ComponentType;
    ControlStructure cs;

    auto type_of = [&](model::ComponentId id) { return m.component(id).type; };
    auto name_of = [&](model::ComponentId id) { return m.component(id).name; };

    std::set<std::string> controllers;
    std::set<std::string> processes;

    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        if (c.type == ComponentType::Controller) controllers.insert(c.name);
        if (c.type == ComponentType::Actuator || c.type == ComponentType::PhysicalProcess)
            processes.insert(c.name);
    }
    // Compute/Software components commanding an actuator or process act as
    // controllers too (a workstation that can command the drive directly).
    for (const model::Connector& k : m.connectors()) {
        if (!m.contains(k.from) || !m.contains(k.to)) continue;
        ComponentType ft = type_of(k.from);
        ComponentType tt = type_of(k.to);
        bool to_process = tt == ComponentType::Actuator || tt == ComponentType::PhysicalProcess;
        if (to_process &&
            (ft == ComponentType::Compute || ft == ComponentType::Software ||
             ft == ComponentType::Controller))
            controllers.insert(name_of(k.from));
    }

    cs.controllers.assign(controllers.begin(), controllers.end());
    cs.controlled_processes.assign(processes.begin(), processes.end());

    for (const model::Connector& k : m.connectors()) {
        if (!m.contains(k.from) || !m.contains(k.to)) continue;
        const std::string from = name_of(k.from);
        const std::string to = name_of(k.to);
        ComponentType ft = type_of(k.from);
        ComponentType tt = type_of(k.to);

        const bool from_is_ctrl = controllers.contains(from);
        const bool to_is_process =
            tt == ComponentType::Actuator || tt == ComponentType::PhysicalProcess;
        if (from_is_ctrl && (to_is_process || controllers.contains(to)))
            cs.actions.push_back(ControlAction{from, to, k.name});
        // Bidirectional command links also act downstream->upstream only
        // for feedback, handled below.

        if (ft == ComponentType::Sensor && controllers.contains(to))
            cs.feedback.push_back(FeedbackPath{from, to, k.name});
        if (k.bidirectional && tt == ComponentType::Sensor && controllers.contains(from))
            cs.feedback.push_back(FeedbackPath{to, from, k.name});
    }
    return cs;
}

} // namespace cybok::safety
