#include "safety/hazards.hpp"

#include <set>

namespace cybok::safety {

std::string_view uca_type_name(UcaType t) noexcept {
    switch (t) {
        case UcaType::NotProviding: return "not-providing";
        case UcaType::Providing: return "providing-causes-hazard";
        case UcaType::WrongTiming: return "wrong-timing";
        case UcaType::WrongDuration: return "wrong-duration";
    }
    return "?";
}

void HazardModel::add(Loss loss) { losses_.push_back(std::move(loss)); }
void HazardModel::add(Hazard hazard) { hazards_.push_back(std::move(hazard)); }
void HazardModel::add(UnsafeControlAction uca) { ucas_.push_back(std::move(uca)); }

const Loss* HazardModel::find_loss(std::string_view id) const noexcept {
    for (const Loss& l : losses_)
        if (l.id == id) return &l;
    return nullptr;
}

const Hazard* HazardModel::find_hazard(std::string_view id) const noexcept {
    for (const Hazard& h : hazards_)
        if (h.id == id) return &h;
    return nullptr;
}

const UnsafeControlAction* HazardModel::find_uca(std::string_view id) const noexcept {
    for (const UnsafeControlAction& u : ucas_)
        if (u.id == id) return &u;
    return nullptr;
}

std::vector<const UnsafeControlAction*>
HazardModel::ucas_for_controller(std::string_view component) const {
    std::vector<const UnsafeControlAction*> out;
    for (const UnsafeControlAction& u : ucas_)
        if (u.controller == component) out.push_back(&u);
    return out;
}

std::vector<std::string> HazardModel::validate() const {
    std::vector<std::string> issues;
    std::set<std::string> ids;
    for (const Loss& l : losses_)
        if (!ids.insert(l.id).second) issues.push_back("duplicate id: " + l.id);
    for (const Hazard& h : hazards_) {
        if (!ids.insert(h.id).second) issues.push_back("duplicate id: " + h.id);
        for (const std::string& lid : h.losses)
            if (find_loss(lid) == nullptr)
                issues.push_back("hazard " + h.id + " references unknown loss " + lid);
        if (h.losses.empty())
            issues.push_back("hazard " + h.id + " is linked to no losses");
    }
    for (const UnsafeControlAction& u : ucas_) {
        if (!ids.insert(u.id).second) issues.push_back("duplicate id: " + u.id);
        for (const std::string& hid : u.hazards)
            if (find_hazard(hid) == nullptr)
                issues.push_back("UCA " + u.id + " references unknown hazard " + hid);
        if (u.hazards.empty())
            issues.push_back("UCA " + u.id + " is linked to no hazards");
    }
    return issues;
}

} // namespace cybok::safety
