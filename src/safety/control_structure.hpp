// Control-structure extraction: derive the STPA control structure
// (controllers, controlled processes, control actions, feedback paths)
// from the architectural model, so consequence tracing can reason about
// *which* compromised component can issue *which* control action.

#pragma once

#include <string>
#include <vector>

#include "model/system_model.hpp"

namespace cybok::safety {

/// One control action: a directed influence from a controlling component
/// onto a controlled one (actuator or physical process).
struct ControlAction {
    std::string controller;
    std::string controlled;
    std::string via; ///< connector name ("MODBUS/TCP", "drive command")
};

/// One feedback path: measurement flowing from a sensed component to a
/// controller.
struct FeedbackPath {
    std::string source;
    std::string controller;
    std::string via;
};

/// The extracted control structure.
struct ControlStructure {
    std::vector<std::string> controllers;
    std::vector<std::string> controlled_processes;
    std::vector<ControlAction> actions;
    std::vector<FeedbackPath> feedback;

    [[nodiscard]] bool is_controller(std::string_view name) const noexcept;

    /// Feedback paths reaching a controller. An attack on any component on
    /// such a path can corrupt the controller's process view — the
    /// sensor-spoofing consequence class.
    [[nodiscard]] std::vector<FeedbackPath> feedback_into(std::string_view controller) const;
};

/// Derive the control structure: controllers are Controller-typed
/// components (plus Compute/Software components that command an actuator
/// or physical process); controlled processes are Actuator/PhysicalProcess
/// components; control actions are connectors from (transitive)
/// controllers toward controlled processes; feedback are connectors from
/// Sensor components toward controllers.
[[nodiscard]] ControlStructure extract_control_structure(const model::SystemModel& m);

} // namespace cybok::safety
