// Consequence tracing: connect associated attack vectors to physical
// consequences — the paper's central gap ("no science of security exists
// yet to map attack vectors to physical consequences"). A trace says: this
// component carries these attack vectors; from it an attacker can reach
// this controller; that controller can issue this unsafe control action;
// which leads to these hazards and losses. The Triton-style BPCS/SIS
// CWE-78 scenario in the paper is exactly one such trace.

#pragma once

#include <string>
#include <vector>

#include "model/export.hpp"
#include "safety/control_structure.hpp"
#include "safety/hazards.hpp"
#include "search/association.hpp"

namespace cybok::safety {

/// One attack-vector-to-loss trace.
struct ConsequenceTrace {
    std::string component;               ///< where the vectors are associated
    std::size_t vector_count = 0;        ///< how many matches back the trace
    std::vector<std::string> example_vectors; ///< up to 3 representative ids
    /// Component path from the carrying component to the UCA's controller
    /// (inclusive both ends; length 1 when the component is the controller).
    std::vector<std::string> pivot_path;
    std::string uca_id;
    UcaType uca_type = UcaType::Providing;
    std::string uca_action;
    std::vector<std::string> hazard_ids;
    std::vector<std::string> loss_ids;

    /// Pivot hops from the compromised component to the controller (0 =
    /// direct). The qualitative ranking key: fewer hops = more direct
    /// threat (the paper insists on qualitative, comparative metrics).
    [[nodiscard]] std::size_t pivot_hops() const noexcept {
        return pivot_path.empty() ? 0 : pivot_path.size() - 1;
    }
};

/// Computes traces for an association map against one model + hazard model.
class ConsequenceAnalyzer {
public:
    ConsequenceAnalyzer(const model::SystemModel& m, const HazardModel& hazards);

    /// All traces, ordered by (pivot hops, component, uca). Components with
    /// zero associated vectors produce no traces.
    [[nodiscard]] std::vector<ConsequenceTrace> trace(
        const search::AssociationMap& associations) const;

    /// Traces whose pivot path starts at an external-facing component —
    /// the subset an outside attacker can initiate.
    [[nodiscard]] std::vector<ConsequenceTrace> externally_reachable(
        const search::AssociationMap& associations) const;

    [[nodiscard]] const ControlStructure& control_structure() const noexcept { return cs_; }

private:
    const model::SystemModel& model_;
    const HazardModel& hazards_;
    ControlStructure cs_;
    graph::PropertyGraph graph_;
};

/// Render a trace as a one-paragraph analyst finding.
[[nodiscard]] std::string to_string(const ConsequenceTrace& t);

} // namespace cybok::safety
