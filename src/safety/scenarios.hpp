// STPA-style causal scenarios with a security flavor: *how* could an
// attacker make an unsafe control action happen? Each scenario combines a
// causal class (corrupted feedback, forged command, suppressed actuation,
// compromised controller logic) with the concrete model elements and the
// weakness classes that enable it — closing the paper's loop from attack
// vector to "unsafe control actions in CPS".

#pragma once

#include <string>
#include <vector>

#include "safety/control_structure.hpp"
#include "safety/hazards.hpp"
#include "search/association.hpp"

namespace cybok::safety {

/// The causal class of a security-induced control-loop failure.
enum class CausalClass : std::uint8_t {
    CorruptedFeedback,    ///< sensor/measurement path manipulated
    ForgedControlAction,  ///< command injected on a control channel
    SuppressedAction,     ///< command/trip blocked or delayed
    CompromisedController,///< controller logic itself altered
};
[[nodiscard]] std::string_view causal_class_name(CausalClass c) noexcept;

/// One generated causal scenario for one UCA.
struct CausalScenario {
    std::string id;          ///< "CS-<uca>-<n>"
    std::string uca_id;
    CausalClass cls = CausalClass::CompromisedController;
    /// Model elements involved (attack foothold, channel, controller...).
    std::vector<std::string> elements;
    /// Weakness classes (CWE ids) associated to the foothold element that
    /// make the scenario credible; empty = structurally possible but no
    /// supporting vector found at current fidelity.
    std::vector<std::string> enabling_weaknesses;
    std::string narrative;   ///< one-paragraph analyst text

    /// A scenario is *supported* when at least one associated attack
    /// vector backs it.
    [[nodiscard]] bool supported() const noexcept { return !enabling_weaknesses.empty(); }
};

/// Generate causal scenarios for every UCA in the hazard model:
///  * CompromisedController — always generated for the UCA's controller;
///  * CorruptedFeedback — one per feedback path into the controller;
///  * ForgedControlAction / SuppressedAction — one per control action the
///    controller issues (forged for Providing/WrongTiming UCAs,
///    suppressed for NotProviding/WrongDuration ones).
/// Scenarios are marked supported using the association map (weakness
/// matches on the foothold component).
[[nodiscard]] std::vector<CausalScenario> generate_scenarios(
    const model::SystemModel& m, const HazardModel& hazards,
    const search::AssociationMap& associations);

/// Render one scenario as analyst text.
[[nodiscard]] std::string to_string(const CausalScenario& s);

} // namespace cybok::safety
