#include "safety/scenarios.hpp"

#include <algorithm>
#include <sstream>

namespace cybok::safety {

std::string_view causal_class_name(CausalClass c) noexcept {
    switch (c) {
        case CausalClass::CorruptedFeedback: return "corrupted-feedback";
        case CausalClass::ForgedControlAction: return "forged-control-action";
        case CausalClass::SuppressedAction: return "suppressed-action";
        case CausalClass::CompromisedController: return "compromised-controller";
    }
    return "?";
}

namespace {

/// CWE ids of weakness matches on one component.
std::vector<std::string> weaknesses_on(const search::AssociationMap& assoc,
                                       const std::string& component) {
    std::vector<std::string> out;
    const search::ComponentAssociation* ca = assoc.find(component);
    if (ca == nullptr) return out;
    for (const search::AttributeAssociation& aa : ca->attributes)
        for (const search::Match& m : aa.matches)
            if (m.cls == search::VectorClass::Weakness) out.push_back(m.id);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    if (out.size() > 5) out.resize(5); // keep narratives readable
    return out;
}

std::string make_narrative(const CausalScenario& s, const UnsafeControlAction& uca) {
    std::ostringstream out;
    switch (s.cls) {
        case CausalClass::CorruptedFeedback:
            out << "Measurements from " << s.elements.front()
                << " are manipulated or replayed, so " << uca.controller
                << " acts on a false process view";
            break;
        case CausalClass::ForgedControlAction:
            out << "An attacker on the \"" << s.elements.front() << "\" channel forges \""
                << uca.action << "\" toward " << s.elements.back();
            break;
        case CausalClass::SuppressedAction:
            out << "An attacker on the \"" << s.elements.front() << "\" channel blocks or "
                << "delays \"" << uca.action << "\"";
            break;
        case CausalClass::CompromisedController:
            out << "The controller " << uca.controller
                << " itself executes attacker-supplied logic and issues \"" << uca.action
                << "\" unsafely";
            break;
    }
    out << "; this realizes " << uca.id << " (" << uca_type_name(uca.type) << ") in context: "
        << uca.context << ".";
    if (s.supported()) {
        out << " Supported by associated weakness classes:";
        for (const std::string& w : s.enabling_weaknesses) out << ' ' << w;
        out << '.';
    } else {
        out << " No supporting attack vector at current model fidelity.";
    }
    return out.str();
}

} // namespace

std::vector<CausalScenario> generate_scenarios(const model::SystemModel& m,
                                               const HazardModel& hazards,
                                               const search::AssociationMap& associations) {
    ControlStructure cs = extract_control_structure(m);
    std::vector<CausalScenario> out;

    for (const UnsafeControlAction& uca : hazards.ucas()) {
        int counter = 1;
        auto add = [&](CausalClass cls, std::vector<std::string> elements,
                       const std::string& foothold) {
            CausalScenario s;
            s.id = "CS-" + uca.id + "-" + std::to_string(counter++);
            s.uca_id = uca.id;
            s.cls = cls;
            s.elements = std::move(elements);
            s.enabling_weaknesses = weaknesses_on(associations, foothold);
            s.narrative = make_narrative(s, uca);
            out.push_back(std::move(s));
        };

        // Compromised controller: foothold is the controller itself.
        add(CausalClass::CompromisedController, {uca.controller}, uca.controller);

        // Corrupted feedback: one scenario per feedback path into the
        // controller; foothold is the sensing component.
        for (const FeedbackPath& f : cs.feedback_into(uca.controller))
            add(CausalClass::CorruptedFeedback, {f.source, f.via, f.controller}, f.source);

        // Channel scenarios: per control action the controller issues.
        const bool suppression = uca.type == UcaType::NotProviding ||
                                 uca.type == UcaType::WrongDuration;
        for (const ControlAction& a : cs.actions) {
            if (a.controller != uca.controller) continue;
            add(suppression ? CausalClass::SuppressedAction
                            : CausalClass::ForgedControlAction,
                {a.via, a.controller, a.controlled},
                // Foothold for a channel attack: the upstream component.
                a.controller);
        }
    }
    return out;
}

std::string to_string(const CausalScenario& s) {
    return s.id + " [" + std::string(causal_class_name(s.cls)) + "] " + s.narrative;
}

} // namespace cybok::safety
