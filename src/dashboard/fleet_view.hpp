// Comparative fleet ranking rendered as the dashboard's table shape — the
// "architecture A vs architecture B" judgment the paper says is the only
// defensible unit of security measurement, one row per analyzed system.

#pragma once

#include <string>

#include "analysis/fleet.hpp"

namespace cybok::dashboard {

/// One row per ranked system: rank, name, domain, size, vector mass,
/// tainted reach, chokepoints, top path exposure, risk. Failed systems
/// render their error in place of metrics.
[[nodiscard]] std::string render_fleet_table(const analysis::FleetResult& fleet,
                                             bool markdown = false);

} // namespace cybok::dashboard
