// The analyst report — the library-form of the paper's "security analyst
// dashboard": it merges the system model with its associated attack
// vectors, the qualitative posture, and the physical-consequence traces,
// in one artifact an analyst (or a test) can read.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/hardening.hpp"
#include "analysis/posture.hpp"
#include "dashboard/table.hpp"
#include "flow/flow.hpp"
#include "lint/lint.hpp"
#include "safety/scenarios.hpp"
#include "safety/trace.hpp"
#include "search/association.hpp"

namespace cybok::dashboard {

/// One report section: a heading, prose lines, and optionally a table.
struct Section {
    std::string heading;
    std::vector<std::string> lines;
    std::optional<TextTable> table;
};

/// A complete report document.
struct Report {
    std::string title;
    std::vector<Section> sections;

    [[nodiscard]] const Section* find_section(std::string_view heading) const noexcept;
};

struct ReportOptions {
    /// Max individual matches listed per attribute (0 = counts only).
    std::size_t max_matches_per_attribute = 3;
    bool include_posture = true;
    bool include_traces = true;
    bool include_attribute_table = true;
    /// Only supported scenarios are listed unless this is set.
    bool include_unsupported_scenarios = false;
};

/// Optional extra analysis artifacts a report can carry.
struct ReportExtras {
    std::vector<safety::CausalScenario> scenarios;
    std::vector<analysis::HardeningCandidate> hardening;
    /// Association-engine counters (queries run, cache hit rate, stage
    /// timings) — rendered as an "Association engine" section when set.
    std::optional<search::AssocMetrics> assoc_metrics;
    /// Static-analysis findings over the model/KB — rendered as a
    /// "Diagnostics" section in the report preamble (right after the
    /// overview) when set, so defects that skew every later number are
    /// the first thing an analyst reads.
    std::optional<lint::LintResult> lint;
    /// Dataflow fixpoint results (exposure taint, hazard slices,
    /// chokepoints) — rendered as a "Flow analysis" section when set.
    std::optional<flow::FlowResult> flow;
};

/// Assemble a report from the analysis artifacts. `traces` may be empty
/// when no hazard model is available.
[[nodiscard]] Report build_report(const model::SystemModel& m,
                                  const search::AssociationMap& associations,
                                  const analysis::SecurityPosture& posture,
                                  const std::vector<safety::ConsequenceTrace>& traces,
                                  const ReportOptions& options = {},
                                  const ReportExtras* extras = nullptr);

/// Render a report as plain text.
[[nodiscard]] std::string render_text(const Report& report);

/// Render a report as a standalone HTML page.
[[nodiscard]] std::string render_html(const Report& report);

/// Build the paper's Table 1 from an association map: one row per
/// distinct attribute value of PlatformRef attributes, with counts per
/// vector class (duplicate attribute values across components are
/// aggregated by max — both controllers report the same OS row once).
[[nodiscard]] TextTable attribute_summary_table(const search::AssociationMap& associations);

} // namespace cybok::dashboard
