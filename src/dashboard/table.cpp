#include "dashboard/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace cybok::dashboard {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), right_(headers_.size(), false) {
    if (headers_.empty()) throw ValidationError("table needs at least one column");
}

TextTable& TextTable::align_right(std::size_t column) {
    if (column >= headers_.size()) throw ValidationError("align_right: no such column");
    right_[column] = true;
    return *this;
}

void TextTable::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size())
        throw ValidationError("row has " + std::to_string(cells.size()) + " cells, expected " +
                              std::to_string(headers_.size()));
    rows_.push_back(std::move(cells));
}

namespace {
std::string pad(const std::string& s, std::size_t width, bool right) {
    if (s.size() >= width) return s;
    std::string spaces(width - s.size(), ' ');
    return right ? spaces + s : s + spaces;
}
} // namespace

std::string TextTable::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_)
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    std::ostringstream out;
    auto rule = [&] {
        out << '+';
        for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
        out << '\n';
    };
    auto line = [&](const std::vector<std::string>& cells) {
        out << '|';
        for (std::size_t i = 0; i < cells.size(); ++i)
            out << ' ' << pad(cells[i], widths[i], right_[i]) << " |";
        out << '\n';
    };
    rule();
    line(headers_);
    rule();
    for (const auto& row : rows_) line(row);
    rule();
    return out.str();
}

std::string TextTable::render_markdown() const {
    std::ostringstream out;
    out << '|';
    for (const std::string& h : headers_) out << ' ' << h << " |";
    out << "\n|";
    for (std::size_t i = 0; i < headers_.size(); ++i)
        out << (right_[i] ? " ---: |" : " --- |");
    out << '\n';
    for (const auto& row : rows_) {
        out << '|';
        for (const std::string& c : row) out << ' ' << c << " |";
        out << '\n';
    }
    return out.str();
}

} // namespace cybok::dashboard
