#include "dashboard/vector_graph.hpp"

#include <map>
#include <set>

#include "model/export.hpp"

namespace cybok::dashboard {

graph::PropertyGraph build_vector_graph(const model::SystemModel& m,
                                        const search::AssociationMap& assoc,
                                        const kb::Corpus& corpus,
                                        const VectorGraphOptions& options) {
    graph::PropertyGraph g;

    // Component nodes (and architecture edges when requested).
    std::map<std::string, graph::NodeId> component_nodes;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        graph::NodeId n = g.add_node(c.name);
        g.set_property(n, "kind", std::string(kKindComponent));
        g.set_property(n, "type", std::string(model::component_type_name(c.type)));
        g.set_property(n, "external", c.external_facing);
        component_nodes.emplace(c.name, n);
    }
    if (options.include_architecture) {
        for (const model::Connector& k : m.connectors()) {
            if (!m.contains(k.from) || !m.contains(k.to)) continue;
            graph::EdgeId e = g.add_edge(component_nodes.at(m.component(k.from).name),
                                         component_nodes.at(m.component(k.to).name), k.name);
            g.set_property(e, "kind", std::string("connector"));
        }
    }

    // Pass 1: collect vector keys and the components touching each so the
    // min_component_degree filter can be applied before creating nodes.
    struct VectorInfo {
        std::string_view kind;
        std::string label;
        std::set<std::string> components;
        double best_score = 0.0;
        double max_severity = -1.0;
        std::size_t instance_count = 0; // CVEs behind a group node
        std::optional<kb::WeaknessId> weakness; // for cross-ref edges
        std::optional<kb::AttackPatternId> pattern;
    };
    std::map<std::string, VectorInfo> vectors; // key -> info

    for (const search::ComponentAssociation& ca : assoc.components) {
        for (const search::AttributeAssociation& aa : ca.attributes) {
            for (const search::Match& match : aa.matches) {
                std::string key;
                VectorInfo info;
                switch (match.cls) {
                    case search::VectorClass::AttackPattern:
                        key = match.id;
                        info.kind = kKindPattern;
                        info.label = match.id + " " + match.title;
                        info.pattern = corpus.patterns()[match.corpus_index].id;
                        break;
                    case search::VectorClass::Weakness:
                        key = match.id;
                        info.kind = kKindWeakness;
                        info.label = match.id + " " + match.title;
                        info.weakness = corpus.weaknesses()[match.corpus_index].id;
                        break;
                    case search::VectorClass::Vulnerability: {
                        if (options.group_vulnerabilities) {
                            const kb::Vulnerability& v =
                                corpus.vulnerabilities()[match.corpus_index];
                            if (!v.weaknesses.empty()) {
                                info.weakness = v.weaknesses.front();
                                key = "vulns:" + v.weaknesses.front().to_string();
                                info.label =
                                    "CVEs under " + v.weaknesses.front().to_string();
                            } else {
                                key = "vulns:unclassified";
                                info.label = "unclassified CVEs";
                            }
                            info.kind = kKindVulnGroup;
                        } else {
                            key = match.id;
                            info.kind = kKindVulnGroup;
                            info.label = match.id;
                        }
                        break;
                    }
                }
                VectorInfo& slot = vectors.try_emplace(key, std::move(info)).first->second;
                slot.components.insert(ca.component);
                slot.best_score = std::max(slot.best_score, match.score);
                slot.max_severity = std::max(slot.max_severity, match.severity);
                if (slot.kind == kKindVulnGroup) ++slot.instance_count;
            }
        }
    }

    // Pass 2: create surviving vector nodes and association edges.
    std::map<std::string, graph::NodeId> vector_nodes;
    for (const auto& [key, info] : vectors) {
        if (info.components.size() < options.min_component_degree) continue;
        graph::NodeId n = g.add_node(info.label);
        g.set_property(n, "kind", std::string(info.kind));
        g.set_property(n, "fanout", static_cast<std::int64_t>(info.components.size()));
        if (info.max_severity >= 0.0) g.set_property(n, "max_severity", info.max_severity);
        if (info.instance_count > 0)
            g.set_property(n, "instances", static_cast<std::int64_t>(info.instance_count));
        vector_nodes.emplace(key, n);
        for (const std::string& component : info.components) {
            graph::EdgeId e = g.add_edge(component_nodes.at(component), n, "associates");
            g.set_property(e, "kind", std::string("association"));
            g.set_property(e, "score", info.best_score);
        }
    }

    // Pass 3: cross-reference edges among surviving vector nodes.
    if (options.include_cross_references) {
        // Weakness id -> node for weakness nodes in the graph.
        std::map<std::uint32_t, graph::NodeId> weakness_nodes;
        for (const auto& [key, info] : vectors) {
            auto it = vector_nodes.find(key);
            if (it == vector_nodes.end()) continue;
            if (info.kind == kKindWeakness && info.weakness.has_value())
                weakness_nodes.emplace(info.weakness->value, it->second);
        }
        for (const auto& [key, info] : vectors) {
            auto it = vector_nodes.find(key);
            if (it == vector_nodes.end()) continue;
            if (info.kind == kKindPattern && info.pattern.has_value()) {
                const kb::AttackPattern* p = corpus.find(*info.pattern);
                if (p == nullptr) continue;
                for (kb::WeaknessId wid : p->related_weaknesses) {
                    auto wn = weakness_nodes.find(wid.value);
                    if (wn == weakness_nodes.end()) continue;
                    graph::EdgeId e = g.add_edge(it->second, wn->second, "exploits");
                    g.set_property(e, "kind", std::string("cross-reference"));
                }
            } else if (info.kind == kKindVulnGroup && info.weakness.has_value()) {
                auto wn = weakness_nodes.find(info.weakness->value);
                if (wn == weakness_nodes.end()) continue;
                graph::EdgeId e = g.add_edge(it->second, wn->second, "instance-of");
                g.set_property(e, "kind", std::string("cross-reference"));
            }
        }
    }
    return g;
}

VectorGraphStats vector_graph_stats(const graph::PropertyGraph& g) {
    VectorGraphStats stats;
    for (graph::NodeId n : g.nodes()) {
        const graph::Property* kind = g.get_property(n, "kind");
        if (kind == nullptr) continue;
        const std::string k = graph::property_to_string(*kind);
        if (k == kKindComponent) ++stats.components;
        else if (k == kKindPattern) ++stats.patterns;
        else if (k == kKindWeakness) ++stats.weaknesses;
        else if (k == kKindVulnGroup) ++stats.vulnerability_groups;
        if (k != kKindComponent) {
            if (const graph::Property* fanout = g.get_property(n, "fanout")) {
                if (std::get<std::int64_t>(*fanout) >= 2) ++stats.shared_vectors;
            }
        }
    }
    for (graph::EdgeId e : g.edges()) {
        const graph::Property* kind = g.get_property(e, "kind");
        if (kind == nullptr) continue;
        const std::string k = graph::property_to_string(*kind);
        if (k == "association") ++stats.association_edges;
        else if (k == "cross-reference") ++stats.cross_reference_edges;
    }
    return stats;
}

} // namespace cybok::dashboard
