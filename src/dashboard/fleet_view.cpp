#include "dashboard/fleet_view.hpp"

#include <cstdio>

#include "dashboard/table.hpp"

namespace cybok::dashboard {

namespace {

std::string fixed(double v, int decimals) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

} // namespace

std::string render_fleet_table(const analysis::FleetResult& fleet, bool markdown) {
    TextTable table({"rank", "system", "domain", "comps", "vectors", "tainted", "hazards hit",
                     "chokepts", "exposure", "risk"});
    for (std::size_t c = 0; c < 10; ++c)
        if (c != 1 && c != 2) table.align_right(c);
    for (const analysis::FleetSystemReport& r : fleet.ranking) {
        if (r.failed) {
            table.add_row({std::to_string(r.rank), r.name, r.domain,
                           std::to_string(r.components), "failed: " + r.error, "-", "-", "-",
                           "-", "-"});
            continue;
        }
        table.add_row({std::to_string(r.rank), r.name, r.domain, std::to_string(r.components),
                       std::to_string(r.total_vectors()),
                       std::to_string(r.tainted) + "/" + std::to_string(r.components),
                       std::to_string(r.tainted_hazards) + "/" + std::to_string(r.hazards_total),
                       std::to_string(r.chokepoints), fixed(r.top_exposure, 3),
                       fixed(r.risk, 1)});
    }
    std::string out = markdown ? table.render_markdown() : table.render();
    out += "\n";
    out += fleet.summary();
    out += "\n";
    return out;
}

} // namespace cybok::dashboard
