#include "dashboard/export_bundle.hpp"

#include <fstream>

#include "graph/dot.hpp"
#include "graph/graphml.hpp"
#include "model/export.hpp"

namespace cybok::dashboard {

json::Value associations_to_json(const search::AssociationMap& associations) {
    json::Array components;
    for (const search::ComponentAssociation& ca : associations.components) {
        json::Object comp;
        comp["component"] = json::Value(ca.component);
        json::Array attrs;
        for (const search::AttributeAssociation& aa : ca.attributes) {
            json::Object attr;
            attr["name"] = json::Value(aa.attribute_name);
            attr["value"] = json::Value(aa.attribute_value);
            json::Array matches;
            for (const search::Match& m : aa.matches) {
                json::Object match;
                match["class"] = json::Value(std::string(vector_class_name(m.cls)));
                match["index"] = json::Value(static_cast<std::int64_t>(m.corpus_index));
                match["id"] = json::Value(m.id);
                match["title"] = json::Value(m.title);
                match["score"] = json::Value(m.score);
                match["via"] = json::Value(std::string(match_via_name(m.via)));
                json::Array evidence;
                for (const std::string& e : m.evidence) evidence.emplace_back(e);
                match["evidence"] = json::Value(std::move(evidence));
                if (m.severity >= 0.0) match["severity"] = json::Value(m.severity);
                matches.emplace_back(std::move(match));
            }
            attr["matches"] = json::Value(std::move(matches));
            attrs.emplace_back(std::move(attr));
        }
        comp["attributes"] = json::Value(std::move(attrs));
        components.emplace_back(std::move(comp));
    }
    json::Object root;
    root["format"] = json::Value("cybok-associations-v1");
    root["components"] = json::Value(std::move(components));
    return json::Value(std::move(root));
}

namespace {

search::VectorClass class_from_name(std::string_view s) {
    using search::VectorClass;
    for (VectorClass c : {VectorClass::AttackPattern, VectorClass::Weakness,
                          VectorClass::Vulnerability})
        if (vector_class_name(c) == s) return c;
    throw ValidationError("unknown vector class: " + std::string(s));
}

search::MatchVia via_from_name(std::string_view s) {
    using search::MatchVia;
    for (MatchVia v : {MatchVia::Lexical, MatchVia::PlatformBinding, MatchVia::CrossReference})
        if (match_via_name(v) == s) return v;
    throw ValidationError("unknown match mechanism: " + std::string(s));
}

} // namespace

search::AssociationMap associations_from_json(const json::Value& doc) {
    if (doc.get_string("format") != "cybok-associations-v1")
        throw ValidationError("unknown associations format");
    search::AssociationMap map;
    for (const json::Value& comp : doc.at("components").as_array()) {
        search::ComponentAssociation ca;
        ca.component = comp.get_string("component");
        for (const json::Value& attr : comp.at("attributes").as_array()) {
            search::AttributeAssociation aa;
            aa.attribute_name = attr.get_string("name");
            aa.attribute_value = attr.get_string("value");
            for (const json::Value& match : attr.at("matches").as_array()) {
                search::Match m;
                m.cls = class_from_name(match.get_string("class"));
                m.corpus_index = static_cast<std::size_t>(match.get_int("index"));
                m.id = match.get_string("id");
                m.title = match.get_string("title");
                m.score = match.get_number("score");
                m.via = via_from_name(match.get_string("via"));
                for (const json::Value& e : match.at("evidence").as_array())
                    m.evidence.push_back(e.as_string());
                m.severity = match.get_number("severity", -1.0);
                aa.matches.push_back(std::move(m));
            }
            ca.attributes.push_back(std::move(aa));
        }
        map.components.push_back(std::move(ca));
    }
    return map;
}

std::vector<std::string> write_bundle(const std::string& directory,
                                      const model::SystemModel& m,
                                      const search::AssociationMap& associations,
                                      const Report& report) {
    std::vector<std::string> written;
    graph::PropertyGraph g = model::to_graph(m);

    auto write_text = [&](const std::string& name, const std::string& content) {
        const std::string path = directory + "/" + name;
        std::ofstream out(path, std::ios::binary);
        if (!out) throw IoError("cannot open for writing: " + path);
        out << content;
        if (!out) throw IoError("write failed: " + path);
        written.push_back(path);
    };

    write_text("model.graphml", graph::to_graphml(g, m.name()));
    graph::DotOptions dot_opts;
    dot_opts.graph_name = m.name();
    dot_opts.rankdir_lr = true;
    write_text("model.dot", graph::to_dot(g, dot_opts));
    write_text("associations.json", json::dump(associations_to_json(associations), 2) + "\n");
    write_text("report.html", render_html(report));
    write_text("report.txt", render_text(report));
    return written;
}

} // namespace cybok::dashboard
