// The attack-vector graph: the "security analyst dashboard" view that
// merges the system topology with the attack-vector space ("Defenders
// think in lists. Attackers think in graphs." — the paper's epigraph for
// moving security modeling to graphs).
//
// Nodes: system components, matched attack patterns, matched weaknesses,
// and (grouped) matched vulnerabilities. Edges: component -> vector
// (association, weighted by score), pattern -> weakness (exploits),
// vulnerability-group -> weakness (instance-of), plus the architectural
// connectors between components. The result serializes to GraphML/DOT for
// external viewers.

#pragma once

#include "graph/property_graph.hpp"
#include "kb/corpus.hpp"
#include "model/system_model.hpp"
#include "search/association.hpp"

namespace cybok::dashboard {

struct VectorGraphOptions {
    /// Group vulnerability matches by their weakness class instead of one
    /// node per CVE (a 10k-CVE attribute would otherwise dwarf the graph).
    bool group_vulnerabilities = true;
    /// Include pattern->weakness cross-reference edges from the corpus.
    bool include_cross_references = true;
    /// Include the architectural connectors between components.
    bool include_architecture = true;
    /// Drop vectors matched by fewer than this many components (1 = keep
    /// all). Raising it surfaces the *shared* weaknesses — the BPCS/SIS
    /// CWE-78 finding is exactly a shared node.
    std::size_t min_component_degree = 1;
};

/// Node-kind property values used in the generated graph ("kind" key).
inline constexpr std::string_view kKindComponent = "component";
inline constexpr std::string_view kKindPattern = "attack-pattern";
inline constexpr std::string_view kKindWeakness = "weakness";
inline constexpr std::string_view kKindVulnGroup = "vulnerability-group";

/// Build the merged component/attack-vector graph.
[[nodiscard]] graph::PropertyGraph build_vector_graph(const model::SystemModel& m,
                                                      const search::AssociationMap& assoc,
                                                      const kb::Corpus& corpus,
                                                      const VectorGraphOptions& options = {});

/// Summary statistics of a vector graph (used by reports and tests).
struct VectorGraphStats {
    std::size_t components = 0;
    std::size_t patterns = 0;
    std::size_t weaknesses = 0;
    std::size_t vulnerability_groups = 0;
    std::size_t association_edges = 0;
    std::size_t cross_reference_edges = 0;
    /// Vector nodes associated with >= 2 components — the shared exposure
    /// an analyst looks at first.
    std::size_t shared_vectors = 0;
};
[[nodiscard]] VectorGraphStats vector_graph_stats(const graph::PropertyGraph& g);

} // namespace cybok::dashboard
