// Severity distribution views: analysts triage the (large) vulnerability
// result space by CVSS band before reading anything else, and the paper's
// severity filter needs a picture of what it will cut. Plain-text
// bar-chart rendering, no GUI dependency.

#pragma once

#include <array>
#include <string>
#include <vector>

#include "cvss/cvss.hpp"
#include "search/association.hpp"

namespace cybok::dashboard {

/// Counts per CVSS severity band, plus unscored.
struct SeverityHistogram {
    /// Indexed by cvss::Severity (None..Critical).
    std::array<std::size_t, 5> bands{};
    std::size_t unscored = 0;

    [[nodiscard]] std::size_t total() const noexcept;
    [[nodiscard]] std::size_t& band(cvss::Severity s) noexcept {
        return bands[static_cast<std::size_t>(s)];
    }
    [[nodiscard]] std::size_t band(cvss::Severity s) const noexcept {
        return bands[static_cast<std::size_t>(s)];
    }
};

/// Histogram over every vulnerability match in an association map.
[[nodiscard]] SeverityHistogram severity_histogram(const search::AssociationMap& associations);

/// Histogram over raw matches.
[[nodiscard]] SeverityHistogram severity_histogram(const std::vector<search::Match>& matches);

/// Render as an ASCII bar chart, widest bar = `width` characters:
///   Critical |#####            653
///   High     |############## 2,880
[[nodiscard]] std::string render(const SeverityHistogram& h, std::size_t width = 40);

} // namespace cybok::dashboard
