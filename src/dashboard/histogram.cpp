#include "dashboard/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace cybok::dashboard {

std::size_t SeverityHistogram::total() const noexcept {
    std::size_t n = unscored;
    for (std::size_t b : bands) n += b;
    return n;
}

namespace {
void account(SeverityHistogram& h, const search::Match& m) {
    if (m.cls != search::VectorClass::Vulnerability) return;
    if (m.severity < 0.0) {
        ++h.unscored;
        return;
    }
    ++h.band(cvss::severity_band(m.severity));
}
} // namespace

SeverityHistogram severity_histogram(const search::AssociationMap& associations) {
    SeverityHistogram h;
    for (const search::ComponentAssociation& ca : associations.components)
        for (const search::AttributeAssociation& aa : ca.attributes)
            for (const search::Match& m : aa.matches) account(h, m);
    return h;
}

SeverityHistogram severity_histogram(const std::vector<search::Match>& matches) {
    SeverityHistogram h;
    for (const search::Match& m : matches) account(h, m);
    return h;
}

std::string render(const SeverityHistogram& h, std::size_t width) {
    std::size_t max_count = h.unscored;
    for (std::size_t b : h.bands) max_count = std::max(max_count, b);
    if (max_count == 0) max_count = 1;

    std::ostringstream out;
    auto line = [&](std::string_view label, std::size_t count) {
        std::size_t bar = count * width / max_count;
        if (count > 0 && bar == 0) bar = 1;
        out << "  " << label;
        for (std::size_t i = label.size(); i < 9; ++i) out << ' ';
        out << '|' << std::string(bar, '#') << ' ' << strings::with_commas(count) << '\n';
    };
    // Highest severity first — that is reading order for an analyst.
    line("Critical", h.band(cvss::Severity::Critical));
    line("High", h.band(cvss::Severity::High));
    line("Medium", h.band(cvss::Severity::Medium));
    line("Low", h.band(cvss::Severity::Low));
    line("None", h.band(cvss::Severity::None));
    line("unscored", h.unscored);
    return out.str();
}

} // namespace cybok::dashboard
