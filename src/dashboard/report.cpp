#include "dashboard/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "dashboard/histogram.hpp"
#include "util/strings.hpp"

namespace cybok::dashboard {

const Section* Report::find_section(std::string_view heading) const noexcept {
    for (const Section& s : sections)
        if (s.heading == heading) return &s;
    return nullptr;
}

TextTable attribute_summary_table(const search::AssociationMap& associations) {
    TextTable table({"Attribute", "Attack Patterns", "Weaknesses", "Vulnerabilities"});
    table.align_right(1).align_right(2).align_right(3);

    struct Counts {
        std::size_t ap = 0, w = 0, v = 0;
    };
    std::vector<std::pair<std::string, Counts>> rows; // insertion-ordered
    auto row_for = [&rows](const std::string& key) -> Counts& {
        for (auto& [k, c] : rows)
            if (k == key) return c;
        rows.emplace_back(key, Counts{});
        return rows.back().second;
    };
    for (const search::ComponentAssociation& ca : associations.components) {
        for (const search::AttributeAssociation& aa : ca.attributes) {
            Counts counts;
            counts.ap = aa.count(search::VectorClass::AttackPattern);
            counts.w = aa.count(search::VectorClass::Weakness);
            counts.v = aa.count(search::VectorClass::Vulnerability);
            if (counts.ap + counts.w + counts.v == 0) continue;
            Counts& agg = row_for(aa.attribute_value);
            // Same attribute on several components yields identical result
            // sets; aggregate by max rather than double-counting.
            agg.ap = std::max(agg.ap, counts.ap);
            agg.w = std::max(agg.w, counts.w);
            agg.v = std::max(agg.v, counts.v);
        }
    }
    for (const auto& [attr, c] : rows)
        table.add_row({attr, std::to_string(c.ap), std::to_string(c.w),
                       strings::with_commas(c.v)});
    return table;
}

Report build_report(const model::SystemModel& m, const search::AssociationMap& associations,
                    const analysis::SecurityPosture& posture,
                    const std::vector<safety::ConsequenceTrace>& traces,
                    const ReportOptions& options, const ReportExtras* extras) {
    Report report;
    report.title = "Security analysis: " + m.name();

    {
        Section overview;
        overview.heading = "Overview";
        overview.lines.push_back(m.description());
        overview.lines.push_back(
            std::to_string(m.component_count()) + " components, " +
            std::to_string(m.connectors().size()) + " connectors, model fidelity: " +
            std::string(model::fidelity_name(m.max_fidelity())));
        overview.lines.push_back(
            "Associated attack vectors: " +
            strings::with_commas(associations.total(search::VectorClass::AttackPattern)) +
            " attack patterns, " +
            strings::with_commas(associations.total(search::VectorClass::Weakness)) +
            " weaknesses, " +
            strings::with_commas(associations.total(search::VectorClass::Vulnerability)) +
            " vulnerabilities.");
        report.sections.push_back(std::move(overview));
    }

    // Preamble: lint findings first — a dangling edge or malformed record
    // skews every number below, so the reader sees the caveats up front.
    if (extras != nullptr && extras->lint.has_value()) {
        Section diags;
        diags.heading = "Diagnostics";
        diags.lines.push_back(extras->lint->summary());
        for (const lint::Diagnostic& d : extras->lint->diagnostics)
            diags.lines.push_back(lint::to_string(d));
        if (extras->lint->diagnostics.empty())
            diags.lines.push_back("No findings: model and knowledge base lint clean.");
        // Degradation events next: every absorbed failure (snapshot
        // fallback, cache recovery, recompute retry) is a caveat on the
        // numbers below even though the results themselves are identical
        // to a fault-free run.
        if (extras->assoc_metrics.has_value()) {
            const search::DegradeCounts& deg = extras->assoc_metrics->degrade;
            if (extras->assoc_metrics->build.parallel_fallback)
                diags.lines.push_back(
                    "Degradation: parallel index build failed; engine rebuilt sequentially.");
            if (deg.snapshot_fallbacks > 0)
                diags.lines.push_back(
                    "Degradation: engine snapshot unusable (" +
                    std::to_string(deg.snapshot_fallbacks) + "x); rebuilt from corpus.");
            if (deg.snapshot_save_failures > 0)
                diags.lines.push_back("Degradation: engine snapshot write failed (" +
                                      std::to_string(deg.snapshot_save_failures) +
                                      "x); next start will be a cold build.");
            if (deg.cache_recoveries > 0)
                diags.lines.push_back("Degradation: query cache failed " +
                                      std::to_string(deg.cache_recoveries) +
                                      "x; results recomputed or served uncached.");
            if (deg.recompute_retries > 0)
                diags.lines.push_back("Degradation: " + std::to_string(deg.recompute_retries) +
                                      " attribute queries retried after transient failures.");
            if (deg.records_skipped > 0)
                diags.lines.push_back("Degradation: " + std::to_string(deg.records_skipped) +
                                      " corpus records skipped by lenient decode.");
            if (deg.any() && !deg.last_reason.empty())
                diags.lines.push_back("Last degradation reason: " + deg.last_reason);
        }
        report.sections.push_back(std::move(diags));
    }

    if (options.include_attribute_table) {
        Section table_section;
        table_section.heading = "Attack vectors per attribute";
        table_section.table = attribute_summary_table(associations);
        report.sections.push_back(std::move(table_section));

        SeverityHistogram histogram = severity_histogram(associations);
        if (histogram.total() > 0) {
            Section sev;
            sev.heading = "Vulnerability severity distribution";
            std::istringstream lines(render(histogram));
            std::string line;
            while (std::getline(lines, line)) sev.lines.push_back(line);
            report.sections.push_back(std::move(sev));
        }
    }

    // Per-component drill-down.
    for (const search::ComponentAssociation& ca : associations.components) {
        Section section;
        section.heading = "Component: " + ca.component;
        if (ca.total() == 0) {
            section.lines.push_back("No associated attack vectors at current fidelity.");
            report.sections.push_back(std::move(section));
            continue;
        }
        for (const search::AttributeAssociation& aa : ca.attributes) {
            if (aa.matches.empty()) continue;
            section.lines.push_back(
                aa.attribute_name + " = \"" + aa.attribute_value + "\": " +
                std::to_string(aa.count(search::VectorClass::AttackPattern)) + " patterns, " +
                std::to_string(aa.count(search::VectorClass::Weakness)) + " weaknesses, " +
                strings::with_commas(aa.count(search::VectorClass::Vulnerability)) +
                " vulnerabilities");
            std::size_t listed = 0;
            for (const search::Match& match : aa.matches) {
                if (listed >= options.max_matches_per_attribute) break;
                // Prefer listing class-level findings over raw CVE noise.
                if (match.cls == search::VectorClass::Vulnerability &&
                    match.via == search::MatchVia::PlatformBinding)
                    continue;
                std::string evidence = match.evidence.empty()
                                           ? std::string()
                                           : " [" + strings::join(match.evidence, ", ") + "]";
                section.lines.push_back("  - " + match.id + " " + match.title + evidence);
                ++listed;
            }
        }
        report.sections.push_back(std::move(section));
    }

    if (options.include_posture) {
        Section section;
        section.heading = "Posture";
        TextTable table({"Component", "Vectors", "Max CVSS", "Exposure (hops)", "Centrality"});
        table.align_right(1).align_right(2).align_right(3).align_right(4);
        for (const analysis::ComponentPosture& cp : posture.components) {
            std::ostringstream sev;
            if (cp.max_severity >= 0.0) sev.precision(2), sev << cp.max_severity;
            else sev << "-";
            std::ostringstream cent;
            cent.precision(3);
            cent << cp.centrality;
            table.add_row({cp.component, strings::with_commas(cp.total_vectors()), sev.str(),
                           cp.exposure_hops == UINT32_MAX ? "unreachable"
                                                          : std::to_string(cp.exposure_hops),
                           cent.str()});
        }
        section.table = std::move(table);
        report.sections.push_back(std::move(section));
    }

    if (options.include_traces && !traces.empty()) {
        Section section;
        section.heading = "Physical consequences";
        section.lines.push_back(
            "Attack-vector-to-loss traces (most direct first; qualitative):");
        for (const safety::ConsequenceTrace& t : traces)
            section.lines.push_back("  * " + safety::to_string(t));
        report.sections.push_back(std::move(section));
    }

    if (extras != nullptr && !extras->scenarios.empty()) {
        Section section;
        section.heading = "Causal scenarios";
        for (const safety::CausalScenario& s : extras->scenarios) {
            if (!s.supported() && !options.include_unsupported_scenarios) continue;
            section.lines.push_back("  * " + safety::to_string(s));
        }
        if (!section.lines.empty()) report.sections.push_back(std::move(section));
    }

    if (extras != nullptr && extras->flow.has_value()) {
        const flow::FlowResult& fr = *extras->flow;
        Section section;
        section.heading = "Flow analysis";
        section.lines.push_back(fr.summary());
        // The most exposed hazard-linked components first — the report's
        // "where can the outside world actually hurt the process" answer.
        std::vector<const flow::ComponentFlow*> hot;
        for (const flow::ComponentFlow& cf : fr.components)
            if (cf.taint > 0.0 && cf.hazard_linked) hot.push_back(&cf);
        std::sort(hot.begin(), hot.end(),
                  [](const flow::ComponentFlow* a, const flow::ComponentFlow* b) {
                      if (a->taint != b->taint) return a->taint > b->taint;
                      return a->component < b->component;
                  });
        for (const flow::ComponentFlow* cf : hot) {
            std::ostringstream line;
            line.precision(2);
            line << std::fixed << "  * " << cf->component << ": taint " << cf->taint
                 << " at depth " << cf->depth << " (controller of";
            for (const std::string& h : cf->influences) line << ' ' << h;
            line << ')';
            section.lines.push_back(line.str());
        }
        for (const flow::Chokepoint& c : fr.chokepoints) {
            section.lines.push_back("  * chokepoint " + c.component + ": severs " +
                                    std::to_string(c.severed) + " of " +
                                    std::to_string(fr.flows_total) + " entry->hazard flows" +
                                    (c.in_min_cut ? " [min-cut]" : "") +
                                    (c.articulation ? " [articulation]" : ""));
        }
        report.sections.push_back(std::move(section));
    }

    if (extras != nullptr && extras->assoc_metrics.has_value()) {
        const search::AssocMetrics& am = *extras->assoc_metrics;
        Section section;
        section.heading = "Association engine";
        section.lines.push_back(
            std::to_string(am.queries_run) + " attribute queries executed across " +
            std::to_string(am.threads) + " thread(s); " +
            std::to_string(am.reused_components) + " component association(s) reused.");
        if (am.cache_hits + am.cache_misses > 0) {
            std::ostringstream rate;
            rate.precision(1);
            rate << std::fixed << 100.0 * am.cache_hit_rate();
            section.lines.push_back("Query cache: " + strings::with_commas(am.cache_hits) +
                                    " hits / " + strings::with_commas(am.cache_misses) +
                                    " misses (" + rate.str() + "% hit rate), " +
                                    std::to_string(am.cache_invalidations) +
                                    " entries invalidated by refinements.");
        }
        section.lines.push_back(
            "Candidates: " + strings::with_commas(am.pattern_candidates) +
            " attack patterns, " + strings::with_commas(am.weakness_candidates) +
            " weaknesses, " + strings::with_commas(am.vulnerability_candidates) +
            " vulnerabilities.");
        auto fmt_ms = [](std::uint64_t ns) {
            std::ostringstream out;
            out.precision(2);
            out << std::fixed << static_cast<double>(ns) / 1e6 << " ms";
            return out.str();
        };
        section.lines.push_back("Stage timings: analyze " + fmt_ms(am.timings.analyze_ns) +
                                ", lexical " + fmt_ms(am.timings.lexical_ns) + ", binding " +
                                fmt_ms(am.timings.binding_ns) + ", filter " +
                                fmt_ms(am.timings.filter_ns) + ", wall " +
                                fmt_ms(am.timings.wall_ns) + ".");
        report.sections.push_back(std::move(section));
    }

    if (extras != nullptr && !extras->hardening.empty()) {
        Section section;
        section.heading = "Hardening priorities";
        TextTable table({"Component", "Traces blocked", "Paths cut", "Vectors removed",
                         "Choke point"});
        table.align_right(1).align_right(2).align_right(3);
        for (const analysis::HardeningCandidate& c : extras->hardening) {
            table.add_row({c.component, std::to_string(c.traces_blocked),
                           std::to_string(c.paths_cut),
                           strings::with_commas(c.vectors_removed),
                           c.articulation_point ? "yes" : "no"});
        }
        section.table = std::move(table);
        report.sections.push_back(std::move(section));
    }
    return report;
}

std::string render_text(const Report& report) {
    std::ostringstream out;
    out << report.title << '\n' << std::string(report.title.size(), '=') << "\n\n";
    for (const Section& s : report.sections) {
        out << s.heading << '\n' << std::string(s.heading.size(), '-') << '\n';
        for (const std::string& line : s.lines) out << line << '\n';
        if (s.table.has_value()) out << s.table->render();
        out << '\n';
    }
    return out.str();
}

namespace {
std::string html_escape(std::string_view s) {
    std::string out;
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out.push_back(c);
        }
    }
    return out;
}
} // namespace

std::string render_html(const Report& report) {
    std::ostringstream out;
    out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
        << html_escape(report.title) << "</title>\n<style>\n"
        << "body{font-family:sans-serif;max-width:60em;margin:2em auto;padding:0 1em;}\n"
        << "table{border-collapse:collapse;margin:1em 0;}\n"
        << "td,th{border:1px solid #999;padding:0.3em 0.6em;text-align:left;}\n"
        << "th{background:#eee;}\nh2{border-bottom:2px solid #444;}\n"
        << "</style></head><body>\n<h1>" << html_escape(report.title) << "</h1>\n";
    for (const Section& s : report.sections) {
        out << "<h2>" << html_escape(s.heading) << "</h2>\n";
        for (const std::string& line : s.lines)
            out << "<p>" << html_escape(line) << "</p>\n";
        if (s.table.has_value()) {
            // Reuse the markdown rendering to recover cell structure.
            std::istringstream md(s.table->render_markdown());
            std::string line;
            bool header = true;
            out << "<table>\n";
            while (std::getline(md, line)) {
                if (line.find("---") != std::string::npos) continue;
                out << "<tr>";
                std::string_view rest(line);
                if (!rest.empty() && rest.front() == '|') rest.remove_prefix(1);
                if (!rest.empty() && rest.back() == '|') rest.remove_suffix(1);
                for (std::string_view cell : strings::split(rest, '|')) {
                    out << (header ? "<th>" : "<td>")
                        << html_escape(strings::trim(cell))
                        << (header ? "</th>" : "</td>");
                }
                out << "</tr>\n";
                header = false;
            }
            out << "</table>\n";
        }
    }
    out << "</body></html>\n";
    return out.str();
}

} // namespace cybok::dashboard
