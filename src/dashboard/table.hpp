// Plain-text table rendering for reports and benchmark output — including
// the exact shape of the paper's Table 1.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cybok::dashboard {

/// A simple column-aligned text table.
class TextTable {
public:
    /// Column headers define the column count; subsequent rows must match.
    explicit TextTable(std::vector<std::string> headers);

    /// Right-align a column (numbers read better right-aligned).
    TextTable& align_right(std::size_t column);

    void add_row(std::vector<std::string> cells);

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Render with +---+ borders.
    [[nodiscard]] std::string render() const;

    /// Render as GitHub-flavored markdown.
    [[nodiscard]] std::string render_markdown() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<bool> right_;
};

} // namespace cybok::dashboard
