// Export bundle: everything the (external, GUI) analyst dashboard would
// consume, written as files — the architectural graph (GraphML + DOT), the
// association map (JSON), and the rendered report (HTML + text).

#pragma once

#include <string>

#include "dashboard/report.hpp"
#include "model/system_model.hpp"
#include "search/association.hpp"
#include "util/json.hpp"

namespace cybok::dashboard {

/// JSON form of an association map (stable, diff-friendly).
[[nodiscard]] json::Value associations_to_json(const search::AssociationMap& associations);

/// Inverse of associations_to_json (used to reload saved analyses; the
/// corpus-index fields are restored verbatim and only valid against the
/// same corpus).
[[nodiscard]] search::AssociationMap associations_from_json(const json::Value& doc);

/// Write model.graphml, model.dot, associations.json, report.html, and
/// report.txt into `directory` (which must exist). Returns the list of
/// files written. Throws IoError on failure.
std::vector<std::string> write_bundle(const std::string& directory,
                                      const model::SystemModel& m,
                                      const search::AssociationMap& associations,
                                      const Report& report);

} // namespace cybok::dashboard
