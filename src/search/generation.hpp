// Generational segmented indexing — O(delta) corpus updates with
// query-time merge (the engine half; text/segments.hpp is the kernel
// half, kb/delta.hpp the corpus half).
//
// A SegmentedEngine overlays one immutable base SearchEngine with a chain
// of small *delta segments*, one per applied kb::CorpusDelta. Applying a
// delta costs O(delta): only the added/modified records are tokenized and
// indexed (into a fresh self-contained segment), plus O(total) cheap
// table refreshes (length norms, tombstone masks, bound rescales) that
// touch no record text and do no per-record allocation — document
// frequencies and id placement are kept as *overlays* over the base
// index (only the terms/ids a delta touched are stored), so no apply
// ever walks the base vocabulary or copies the corpus. The base snapshot
// — possibly an mmap'd zero-copy generation — is never rewritten, and
// the merged corpus is only materialized lazily, on the first corpus()
// call (compaction, cross-reference queries, serialization); the lexical
// query path resolves records straight from the base + segment storage.
//
// Ordinals. Every record version is placed in an append-only per-class
// *ordinal* space: base records keep their base position, added records
// take the next free ordinal, a modified record keeps the ordinal of the
// version it replaces, and a withdrawn record's ordinal dies (re-adding
// the same id later takes a fresh ordinal). Corpus mutation
// (kb::apply_corpus_delta: erase shifts down, replace in place, add
// appends) preserves exactly this order, so ascending live ordinals equal
// merged-corpus record order — the order a from-scratch rebuild would
// index — and the engine only needs one table (merged_pos) to translate
// kernel ordinals into merged corpus indexes.
//
// Bit-identity. For every query, results (scores, order, evidence,
// explain statistics) are bitwise identical to a from-scratch SearchEngine
// over the merged corpus; tests/test_delta.cpp holds a differential
// oracle over base + N deltas, pre- and post-compaction, across the soak
// seed matrix. Compaction *is* the from-scratch rebuild (core::compact),
// which makes its correctness argument trivial.
//
// Ranker: BM25 only. The TF-IDF ablation scorer has no merged-statistics
// decomposition (its cosine norm couples every term weight to global df),
// so applying a delta under EngineOptions::Ranker::Tfidf throws
// ValidationError — callers fall back to a full rebuild.

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "kb/delta.hpp"
#include "search/engine.hpp"
#include "text/segments.hpp"

namespace cybok::search {

/// One class's slice of one applied delta: a self-contained finalized
/// index over the records the delta added/modified, plus the scorer
/// holding its local-statistics bound tables and the local-doc -> ordinal
/// map. Immutable once built; shared by every later engine in the chain.
struct ClassDeltaSegment {
    text::InvertedIndex index;
    std::optional<text::Bm25Scorer> scorer; ///< set iff index has documents
    std::vector<std::uint32_t> ordinals;    ///< local doc -> ordinal, strictly ascending
};

/// One applied delta across the three record classes, plus the record
/// versions it carries (aligned with each class segment's local document
/// order) — the query path serves Match identity and df bookkeeping from
/// these instead of a materialized merged corpus.
struct DeltaSegment {
    std::array<ClassDeltaSegment, 3> cls; ///< indexed by VectorClass
    std::vector<kb::AttackPattern> patterns;
    std::vector<kb::Weakness> weaknesses;
    std::vector<kb::Vulnerability> vulnerabilities;
};

/// What one apply did and cost (the serve layer reports this per
/// delta.apply request; bench_delta charts it against rebuild cost).
struct DeltaApplyMetrics {
    kb::DeltaApplyReport report;  ///< added/modified/withdrawn per class
    std::uint64_t apply_ns = 0;   ///< end-to-end apply wall clock
    std::size_t segment_docs = 0; ///< documents indexed into the new segment
    std::size_t segments = 0;     ///< delta segments in the resulting engine
};

/// An immutable engine generation: base SearchEngine + delta segments.
///
/// Ownership: the engine borrows the base SearchEngine (which must
/// outlive it — core::SharedEngine chains a keepalive) and shares earlier
/// delta segments with the engine it was applied on; it owns the
/// per-apply derived tables and, once someone asks for it, a lazily
/// materialized merged corpus. Applying is a *constructor*:
/// the previous engine is left untouched and keeps serving (that is the
/// serve layer's drain-gated generation flip), and a failed apply — bad
/// delta, injected "search.delta.segment" fault — throws before anything
/// is published.
class SegmentedEngine final : public QueryEngine {
public:
    /// First delta over a plain base engine.
    SegmentedEngine(const SearchEngine& base, const kb::CorpusDelta& delta)
        : SegmentedEngine(base, nullptr, delta) {}
    /// Stack a further delta on an existing segmented engine.
    SegmentedEngine(const SegmentedEngine& prev, const kb::CorpusDelta& delta)
        : SegmentedEngine(*prev.base_, &prev, delta) {}

    /// The merged corpus, materialized lazily on first call (records in
    /// merged order + a reindex — O(corpus)). The apply path and the
    /// lexical query path never touch it; compaction, cross-reference
    /// queries (platform binding, weakness expansion), and serialization
    /// do. Thread-safe (call_once).
    [[nodiscard]] const kb::Corpus& corpus() const override;
    [[nodiscard]] const EngineOptions& options() const noexcept override { return options_; }
    [[nodiscard]] const BuildMetrics& build_metrics() const noexcept override {
        return build_metrics_;
    }
    /// Base stats plus every delta segment's (delta postings are owned
    /// in-memory even when the base is mapped).
    [[nodiscard]] text::IndexStats index_stats() const noexcept override;

    [[nodiscard]] const SearchEngine& base() const noexcept { return *base_; }
    [[nodiscard]] std::size_t segment_count() const noexcept { return deltas_.size(); }
    [[nodiscard]] const DeltaApplyMetrics& apply_metrics() const noexcept { return apply_; }
    /// Live documents of one class (== merged corpus size for the class).
    [[nodiscard]] std::size_t live_docs(VectorClass cls) const noexcept {
        return state(cls).live_docs;
    }

protected:
    [[nodiscard]] std::vector<Match> run_lexical(const std::vector<std::string>& tokens,
                                                 VectorClass cls,
                                                 AssocMetrics* metrics) const override;
    [[nodiscard]] std::size_t class_doc_frequency(VectorClass cls,
                                                  std::string_view term) const override;
    [[nodiscard]] std::size_t class_doc_count(VectorClass cls) const noexcept override {
        return state(cls).live_docs;
    }
    // Record access from the base + segment overlay — no merged corpus.
    [[nodiscard]] const kb::AttackPattern& pattern_at(std::size_t index) const override;
    [[nodiscard]] const kb::Weakness& weakness_at(std::size_t index) const override;
    [[nodiscard]] const kb::Vulnerability& vulnerability_at(std::size_t index) const override;

private:
    /// All per-class incremental state. The carried half is copied from
    /// engine to engine (flat arrays: memcpy; overlays: O(touched)) and
    /// updated in O(delta); the derived per-segment tables are rebuilt
    /// per apply in O(total) *arithmetic* — no hashing, no per-record
    /// allocation, no base-vocabulary walk.
    struct ClassState {
        // -- carried incrementally ------------------------------------------
        std::uint32_t next_ordinal = 0; ///< == bound of the ordinal space
        std::size_t live_docs = 0;
        std::vector<std::uint8_t> alive;  ///< ordinal -> currently live?
        std::vector<std::uint32_t> owner; ///< ordinal -> owning segment (0 = base)
        std::vector<std::uint32_t> local; ///< ordinal -> local doc in its owner
        /// df overlay: term -> merged live df, stored only for terms some
        /// delta touched; every other term's merged df equals the base
        /// index's df column. std::map keeps iteration deterministic; the
        /// per-apply touch count is O(delta terms · log).
        std::map<std::string, std::uint32_t, std::less<>> df_diff;
        /// id placement overlay: stringified id -> ordinal, stored only
        /// for ids placed off their base position (added or re-added
        /// records). Base ids sit at ordinal == base corpus position;
        /// liveness comes from `alive`, so withdrawals need no entry.
        std::map<std::string, std::uint32_t> ordinal_diff;

        // -- derived, rebuilt per apply. Segment s: 0 = base, 1.. = deltas_.
        double merged_avg = 0.0; ///< mean weighted doc length over live docs
        std::vector<std::uint32_t> merged_pos;   ///< ordinal -> merged corpus index (dead: ~0u)
        std::vector<std::uint32_t> base_ordinals; ///< identity map for the base segment
        /// merged corpus index -> (owning segment, local doc): the record
        /// accessors (make_match) resolve hits through this.
        std::vector<std::pair<std::uint32_t, std::uint32_t>> rec_of;
        std::vector<std::vector<std::uint8_t>> live; ///< per segment: local doc liveness
        std::vector<std::vector<double>> norms;      ///< per segment: merged-stats norms
        std::vector<std::vector<double>> scales;     ///< per segment: bound rescale factors
    };

    SegmentedEngine(const SearchEngine& base, const SegmentedEngine* prev,
                    const kb::CorpusDelta& delta);

    [[nodiscard]] const ClassState& state(VectorClass cls) const noexcept {
        return state_[static_cast<std::size_t>(cls)];
    }
    [[nodiscard]] ClassState& state(VectorClass cls) noexcept {
        return state_[static_cast<std::size_t>(cls)];
    }
    [[nodiscard]] const ClassDeltaSegment& class_segment(std::size_t seg,
                                                         VectorClass cls) const noexcept {
        return deltas_[seg - 1]->cls[static_cast<std::size_t>(cls)];
    }
    void rebuild_derived_tables(VectorClass cls);
    /// The merged df of `term` in `cls`: overlay entry if touched, else
    /// the base index's df column, else 0.
    [[nodiscard]] std::uint32_t merged_df(VectorClass cls, std::string_view term) const;
    void materialize_corpus() const;

    const SearchEngine* base_;
    std::vector<std::shared_ptr<const DeltaSegment>> deltas_;
    std::array<ClassState, 3> state_;
    EngineOptions options_;
    BuildMetrics build_metrics_;
    DeltaApplyMetrics apply_;

    /// Lazily materialized merged corpus (corpus() — call_once guarded).
    mutable std::once_flag corpus_once_;
    mutable std::unique_ptr<kb::Corpus> merged_corpus_;
};

} // namespace cybok::search
