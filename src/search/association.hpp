// Model-wide association: run the search engine over every attribute of
// every component — "the main output … is this association of attack
// vectors to the system model" — with support for incremental
// re-association after a model edit (the dashboard's on-the-fly loop).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/diff.hpp"
#include "search/engine.hpp"
#include "search/filters.hpp"

namespace cybok::search {

/// Matches for one attribute of one component.
struct AttributeAssociation {
    std::string attribute_name;
    std::string attribute_value;
    std::vector<Match> matches;

    [[nodiscard]] std::size_t count(VectorClass cls) const noexcept;
};

/// All associations for one component.
struct ComponentAssociation {
    std::string component;
    std::vector<AttributeAssociation> attributes;

    [[nodiscard]] std::size_t count(VectorClass cls) const noexcept;
    [[nodiscard]] std::size_t total() const noexcept;
};

/// The association map for a whole model — Table 1 of the paper is a
/// rendering of this structure (one row per attribute, counts per class).
struct AssociationMap {
    std::vector<ComponentAssociation> components;

    [[nodiscard]] const ComponentAssociation* find(std::string_view component) const noexcept;
    [[nodiscard]] std::size_t total() const noexcept;
    [[nodiscard]] std::size_t total(VectorClass cls) const noexcept;

    /// One row per attribute: (attribute value, counts per class) — the
    /// exact shape of the paper's Table 1.
    struct TableRow {
        std::string attribute;
        std::size_t attack_patterns = 0;
        std::size_t weaknesses = 0;
        std::size_t vulnerabilities = 0;
    };
    [[nodiscard]] std::vector<TableRow> attribute_table() const;
};

/// Associate the whole model. If `chain` is non-null, every attribute's
/// matches are passed through the filter chain.
[[nodiscard]] AssociationMap associate(const model::SystemModel& m, const SearchEngine& engine,
                                       const FilterChain* chain = nullptr);

/// Incremental re-association after a model edit: only components named in
/// the diff are re-queried; associations of untouched components are
/// copied from `previous`. Equivalent to associate(after, engine, chain)
/// whenever `diff` is exactly diff(before, after).
[[nodiscard]] AssociationMap reassociate(const AssociationMap& previous,
                                         const model::ModelDiff& diff,
                                         const model::SystemModel& after,
                                         const SearchEngine& engine,
                                         const FilterChain* chain = nullptr);

} // namespace cybok::search
