// Model-wide association: run the search engine over every attribute of
// every component — "the main output … is this association of attack
// vectors to the system model" — with support for incremental
// re-association after a model edit (the dashboard's on-the-fly loop).
//
// Two execution paths exist:
//   * the free functions associate()/reassociate(): sequential, uncached,
//     zero-setup — the reference semantics;
//   * the Associator class: fans attribute queries out across a thread
//     pool, memoizes per-attribute results in a QueryCache, and records
//     AssocMetrics — the interactive-speed path the what-if loop needs.
// Both produce byte-identical AssociationMaps (tests/test_concurrency.cpp
// hammers this equivalence).

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "model/diff.hpp"
#include "search/engine.hpp"
#include "search/filters.hpp"
#include "search/metrics.hpp"
#include "search/query_cache.hpp"
#include "util/thread_pool.hpp"

namespace cybok::search {

/// Matches for one attribute of one component.
struct AttributeAssociation {
    std::string attribute_name;
    std::string attribute_value;
    std::vector<Match> matches;

    [[nodiscard]] std::size_t count(VectorClass cls) const noexcept;
};

/// All associations for one component.
struct ComponentAssociation {
    std::string component;
    std::vector<AttributeAssociation> attributes;

    [[nodiscard]] std::size_t count(VectorClass cls) const noexcept;
    [[nodiscard]] std::size_t total() const noexcept;
};

/// The association map for a whole model — Table 1 of the paper is a
/// rendering of this structure (one row per attribute, counts per class).
struct AssociationMap {
    std::vector<ComponentAssociation> components;

    [[nodiscard]] const ComponentAssociation* find(std::string_view component) const noexcept;
    [[nodiscard]] std::size_t total() const noexcept;
    [[nodiscard]] std::size_t total(VectorClass cls) const noexcept;

    /// One row per attribute: (attribute value, counts per class) — the
    /// exact shape of the paper's Table 1.
    struct TableRow {
        std::string attribute;
        std::size_t attack_patterns = 0;
        std::size_t weaknesses = 0;
        std::size_t vulnerabilities = 0;
    };
    [[nodiscard]] std::vector<TableRow> attribute_table() const;
};

/// Associate the whole model. If `chain` is non-null, every attribute's
/// matches are passed through the filter chain.
[[nodiscard]] AssociationMap associate(const model::SystemModel& m, const QueryEngine& engine,
                                       const FilterChain* chain = nullptr);

/// Incremental re-association after a model edit: only components named in
/// the diff are re-queried; associations of untouched components are
/// copied from `previous`. Equivalent to associate(after, engine, chain)
/// whenever `diff` is exactly diff(before, after).
[[nodiscard]] AssociationMap reassociate(const AssociationMap& previous,
                                         const model::ModelDiff& diff,
                                         const model::SystemModel& after,
                                         const QueryEngine& engine,
                                         const FilterChain* chain = nullptr);

/// Execution knobs for the Associator.
struct AssocOptions {
    /// Lanes to fan attribute queries across (0 = hardware concurrency).
    std::size_t threads = 0;
    /// Memoize attribute query results across attributes and runs.
    bool cache_enabled = true;
    /// Max cached attribute entries before FIFO eviction.
    std::size_t cache_capacity = 1 << 14;
};

/// The parallel, memoizing association engine.
///
/// Owns a util::ThreadPool and a QueryCache over one immutable
/// QueryEngine generation (rebind() moves it to the next one; it must not
/// race with an in-flight run). associate() fans every (component,
/// attribute) pair of a
/// model across the pool; each attribute result is cached under its
/// normalized token sequence + attribute kind + platform + engine-options
/// signature, so a repeated attribute ("Linux OS" on several platforms)
/// or an unchanged attribute across what-if refinements is served without
/// re-scoring. reassociate() additionally drops the cache entries of the
/// refined components (a memory policy — entries are content-addressed
/// and can never be stale; see QueryCache).
///
/// Result ordering is deterministic: each task writes its own pre-sized
/// slot, so output is byte-identical to the sequential free functions
/// regardless of thread count or cache state.
///
/// Thread-safety: a single Associator may be shared by concurrent
/// callers; runs serialize on the pool while cache and metrics updates
/// are internally locked.
class Associator {
public:
    explicit Associator(const QueryEngine& engine, AssocOptions options = {});

    Associator(const Associator&) = delete;
    Associator& operator=(const Associator&) = delete;

    [[nodiscard]] const QueryEngine& engine() const noexcept { return *engine_; }

    /// Point future queries at a new engine generation (e.g. after a
    /// corpus delta was applied). The cache is *not* flushed: cache keys
    /// embed the engine's process-unique generation id, so entries from
    /// the old generation can never satisfy a lookup against the new one
    /// — they simply age out FIFO. The caller must keep `engine` alive
    /// for the associator's lifetime (core::AnalysisSession does).
    void rebind(const QueryEngine& engine);
    [[nodiscard]] const AssocOptions& options() const noexcept { return options_; }
    [[nodiscard]] std::size_t thread_count() const noexcept { return pool_.thread_count(); }

    /// Parallel equivalent of search::associate().
    [[nodiscard]] AssociationMap associate(const model::SystemModel& m,
                                           const FilterChain* chain = nullptr);

    /// Parallel equivalent of search::reassociate(). Cache entries of the
    /// diff's touched and removed components are invalidated before the
    /// touched components are re-queried.
    [[nodiscard]] AssociationMap reassociate(const AssociationMap& previous,
                                             const model::ModelDiff& diff,
                                             const model::SystemModel& after,
                                             const FilterChain* chain = nullptr);

    /// Metrics accumulated since construction / the last reset (snapshot
    /// under lock — safe while runs are in flight).
    [[nodiscard]] AssocMetrics metrics() const;
    void reset_metrics();

    /// The underlying cache (e.g. to clear() between benchmark phases).
    [[nodiscard]] QueryCache& cache() noexcept { return cache_; }

private:
    struct Task; // one (component, attribute) query
    void run_tasks(std::vector<Task>& tasks, const FilterChain* chain);

    const QueryEngine* engine_;
    AssocOptions options_;
    std::string options_signature_; ///< engine-options + generation half of cache keys
    util::ThreadPool pool_;
    QueryCache cache_;
    mutable std::mutex metrics_mutex_;
    AssocMetrics metrics_;
};

} // namespace cybok::search
