// The single definition of how one corpus record becomes index text:
// which fields, in what order, at what weight. The from-scratch engine
// build (engine.cpp, sequential and sharded paths) and the delta-segment
// build (generation.cpp) both traverse records through for_each_field, so
// a record indexed incrementally produces the same token stream — and
// therefore the same per-document postings and weighted length, bit for
// bit — as the same record in a full rebuild. Do not reorder fields here
// without bumping the snapshot version: field order determines float
// accumulation order.

#pragma once

#include <string>

#include "kb/corpus.hpp"
#include "text/index.hpp"
#include "text/tokenize.hpp"

namespace cybok::search::detail {

/// fn(const std::string& text, float weight) per indexed field, in the
/// canonical order. p.domains is categorical metadata ("software",
/// "communications"), not prose; indexing it would make every generic
/// attribute word a high-IDF hit. It stays out of the lexical index by
/// design.
template <typename Fn>
void for_each_field(const kb::AttackPattern& p, float title_weight, Fn&& fn) {
    fn(p.name, title_weight);
    fn(p.summary, 1.0f);
    for (const std::string& pre : p.prerequisites) fn(pre, 1.0f);
}

template <typename Fn>
void for_each_field(const kb::Weakness& w, float title_weight, Fn&& fn) {
    fn(w.name, title_weight);
    fn(w.description, 1.0f);
    for (const std::string& c : w.consequences) fn(c, 1.0f);
    for (const std::string& ap : w.applicable_platforms) fn(ap, 1.0f);
}

template <typename Fn>
void for_each_field(const kb::Vulnerability& v, float /*title_weight*/, Fn&& fn) {
    fn(v.description, 1.0f);
}

/// Append one record as the next document of `index` — the fused
/// tokenize-and-insert step both build paths share.
template <typename Record>
void index_record(text::InvertedIndex& index, const Record& r, float title_weight) {
    index.add_document();
    for_each_field(r, title_weight, [&](const std::string& text, float weight) {
        index.add_terms(text::analyze(text), weight);
    });
}

} // namespace cybok::search::detail
