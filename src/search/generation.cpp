#include "search/generation.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>

#include "search/indexing.hpp"
#include "text/scratch.hpp"
#include "util/fault.hpp"

namespace cybok::search {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count());
}

/// The distinct analyzed terms of one record — exactly the terms whose
/// document frequency the record contributes to in a from-scratch index
/// (df counts documents, so per-record multiplicity collapses).
template <typename Record>
std::unordered_set<std::string> distinct_terms(const Record& r) {
    std::unordered_set<std::string> out;
    detail::for_each_field(r, 1.0f, [&out](const std::string& text, float) {
        for (std::string& tok : text::analyze(text)) out.insert(std::move(tok));
    });
    return out;
}

/// Base df column lookup: merged df of every term no delta ever touched.
std::uint32_t base_df(const text::InvertedIndex& base_index, std::string_view term) {
    const text::TermId t = base_index.vocabulary().lookup(term);
    return t == text::kNoTerm ? 0u
                              : static_cast<std::uint32_t>(base_index.list(t).doc_count);
}

/// Shift a record's distinct terms' merged df by ±1 in the overlay,
/// faulting absent entries in from the base df column.
template <typename State, typename Record>
void bump_df(State& st, const text::InvertedIndex& base_index, const Record& r,
             std::int32_t by) {
    for (const std::string& term : distinct_terms(r)) {
        auto it = st.df_diff.find(term);
        if (it == st.df_diff.end()) it = st.df_diff.emplace(term, base_df(base_index, term)).first;
        it->second = static_cast<std::uint32_t>(static_cast<std::int64_t>(it->second) + by);
    }
}

/// The ordinal of a live id in the pre-delta merged view: overlay
/// placement first (added / re-added ids), else the base corpus position
/// (base ids keep it as their ordinal), masked by the alive table.
template <typename State, typename Record, typename Id>
std::optional<std::uint32_t> live_ordinal(const State& st, const kb::Corpus& base_corpus,
                                          const std::vector<Record>& base_records,
                                          const Id& id) {
    std::uint32_t ordinal;
    const auto it = st.ordinal_diff.find(id.to_string());
    if (it != st.ordinal_diff.end()) {
        ordinal = it->second;
    } else {
        const Record* rec = base_corpus.find(id);
        if (rec == nullptr) return std::nullopt;
        ordinal = static_cast<std::uint32_t>(rec - base_records.data());
    }
    return st.alive[ordinal] != 0 ? std::optional<std::uint32_t>(ordinal) : std::nullopt;
}

/// Pre-apply validation of one family, mirroring kb::apply_corpus_delta's
/// checks (same error texts) against the engine's own live-id view, so a
/// bad delta throws before any state is touched.
template <typename Record, typename Id, typename Lives>
void validate_family(const std::vector<Record>& upserts, const std::vector<Id>& withdrawals,
                     const Lives& lives, const char* family) {
    std::set<Id> seen;
    for (const Record& r : upserts) {
        if (!seen.insert(r.id).second)
            throw ValidationError(std::string("delta: duplicate ") + family + " upsert id " +
                                  r.id.to_string());
    }
    std::set<Id> gone;
    for (Id id : withdrawals) {
        if (!gone.insert(id).second)
            throw ValidationError(std::string("delta: duplicate ") + family + " withdrawal id " +
                                  id.to_string());
        if (!lives(id))
            throw ValidationError(std::string("delta: withdrawal of unknown ") + family + " id " +
                                  id.to_string());
    }
}

/// One class's O(delta) bookkeeping + segment build: adjust the df and id
/// placement overlays, tombstone withdrawn/replaced versions, then index
/// the new record versions in ascending ordinal order so the segment's
/// local document order is ordinal-monotone (the kernel's seek
/// translation relies on this). Old record versions are read back from
/// the base corpus / earlier segments (`old_record`), never from a
/// materialized merged corpus.
///
/// Ordinal parity with kb::apply_corpus_delta: withdrawals erase first,
/// then upserts replace-in-place (keeping the ordinal) or append (taking
/// the next ordinal, in upsert order) — exactly the merged corpus's
/// record-order evolution, so ascending live ordinals stay equal to
/// merged record order.
template <typename State, typename Record, typename Id, typename Lookup, typename OldRecord>
std::size_t apply_class_delta(State& st, ClassDeltaSegment& seg, std::vector<Record>& storage,
                              const std::vector<Record>& upserts,
                              const std::vector<Id>& withdrawals, std::uint32_t segment_id,
                              const text::InvertedIndex& base_index, const Lookup& lookup,
                              const OldRecord& old_record, float title_weight,
                              text::Bm25Scorer::Params params,
                              kb::DeltaApplyReport::Family& report) {
    for (const Id& id : withdrawals) {
        // Validated live above, so the lookup cannot miss.
        const std::uint32_t ordinal = *lookup(id);
        bump_df(st, base_index, old_record(ordinal), -1);
        st.alive[ordinal] = 0;
        --st.live_docs;
        ++report.withdrawn;
    }

    std::vector<std::pair<std::uint32_t, const Record*>> pending;
    pending.reserve(upserts.size());
    for (const Record& r : upserts) {
        std::uint32_t ordinal;
        if (const std::optional<std::uint32_t> existing = lookup(r.id)) {
            // Modified: the replacement keeps the replaced version's
            // ordinal; the old version's postings die by tombstone.
            ordinal = *existing;
            bump_df(st, base_index, old_record(ordinal), -1);
            ++report.modified;
        } else {
            // Added (or withdrawn-then-re-added, even within this delta):
            // a fresh ordinal at the end of the id space.
            ordinal = st.next_ordinal++;
            st.alive.push_back(1);
            st.owner.push_back(segment_id);
            st.local.push_back(0); // placed below, in pending order
            st.ordinal_diff[r.id.to_string()] = ordinal;
            ++st.live_docs;
            ++report.added;
        }
        bump_df(st, base_index, r, +1);
        pending.emplace_back(ordinal, &r);
    }

    std::sort(pending.begin(), pending.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    seg.ordinals.reserve(pending.size());
    storage.reserve(pending.size());
    for (const auto& [ordinal, record] : pending) {
        const auto local_doc = static_cast<std::uint32_t>(seg.ordinals.size());
        detail::index_record(seg.index, *record, title_weight);
        seg.ordinals.push_back(ordinal);
        storage.push_back(*record);
        st.owner[ordinal] = segment_id;
        st.local[ordinal] = local_doc;
    }
    seg.index.finalize();
    if (seg.index.doc_count() > 0) seg.scorer.emplace(seg.index, params);
    return pending.size();
}

} // namespace

SegmentedEngine::SegmentedEngine(const SearchEngine& base, const SegmentedEngine* prev,
                                 const kb::CorpusDelta& delta)
    : base_(&base) {
    const Clock::time_point start = Clock::now();
    options_ = base.options();
    if (options_.ranker != EngineOptions::Ranker::Bm25)
        throw ValidationError(
            "segmented indexing requires the BM25 ranker; the TF-IDF ablation has no "
            "merged-statistics decomposition — rebuild the engine instead");
    // Crash-consistency fault sites: an apply that dies here (or anywhere
    // in this constructor) publishes nothing — the previous generation
    // stays authoritative and keeps serving. kb.delta.apply models a
    // rejected delta (the same site the corpus-level kb::apply_corpus_delta
    // carries); search.delta.segment models a failed segment build.
    CYBOK_FAULT_POINT("kb.delta.apply", ValidationError("injected: delta rejected"));
    CYBOK_FAULT_POINT("search.delta.segment", Error("injected: delta segment build failed"));
    const kb::Corpus& base_corpus = base.corpus();
    if (!base_corpus.indexed())
        throw ValidationError("delta: corpus must be reindexed before apply");

    if (prev != nullptr) {
        deltas_ = prev->deltas_; // shared immutable segments
        state_ = prev->state_;   // overlays carried; derived tables rebuilt below
    } else {
        // Seed the incremental state from the base engine: ordinals are
        // base positions, every overlay empty (merged df == base df, id
        // placement == base position). O(base docs) flat-array writes —
        // no per-record map nodes, no vocabulary walk.
        const std::array<VectorClass, 3> classes = {
            VectorClass::AttackPattern, VectorClass::Weakness, VectorClass::Vulnerability};
        for (VectorClass cls : classes) {
            ClassState& st = state(cls);
            const std::size_t docs = base.class_index(cls).doc_count();
            st.next_ordinal = static_cast<std::uint32_t>(docs);
            st.live_docs = docs;
            st.alive.assign(docs, 1);
            st.owner.assign(docs, 0);
            st.local.resize(docs);
            std::iota(st.local.begin(), st.local.end(), 0u);
        }
    }

    auto lookup_pattern = [&](kb::AttackPatternId id) {
        return live_ordinal(state(VectorClass::AttackPattern), base_corpus,
                            base_corpus.patterns(), id);
    };
    auto lookup_weakness = [&](kb::WeaknessId id) {
        return live_ordinal(state(VectorClass::Weakness), base_corpus,
                            base_corpus.weaknesses(), id);
    };
    auto lookup_vulnerability = [&](kb::VulnerabilityId id) {
        return live_ordinal(state(VectorClass::Vulnerability), base_corpus,
                            base_corpus.vulnerabilities(), id);
    };
    auto old_pattern = [&](std::uint32_t ordinal) -> const kb::AttackPattern& {
        const ClassState& st = state(VectorClass::AttackPattern);
        return st.owner[ordinal] == 0
                   ? base_corpus.patterns()[st.local[ordinal]]
                   : deltas_[st.owner[ordinal] - 1]->patterns[st.local[ordinal]];
    };
    auto old_weakness = [&](std::uint32_t ordinal) -> const kb::Weakness& {
        const ClassState& st = state(VectorClass::Weakness);
        return st.owner[ordinal] == 0
                   ? base_corpus.weaknesses()[st.local[ordinal]]
                   : deltas_[st.owner[ordinal] - 1]->weaknesses[st.local[ordinal]];
    };
    auto old_vulnerability = [&](std::uint32_t ordinal) -> const kb::Vulnerability& {
        const ClassState& st = state(VectorClass::Vulnerability);
        return st.owner[ordinal] == 0
                   ? base_corpus.vulnerabilities()[st.local[ordinal]]
                   : deltas_[st.owner[ordinal] - 1]->vulnerabilities[st.local[ordinal]];
    };

    // Same checks (and error texts) kb::apply_corpus_delta runs, against
    // the engine's own live view — all before any state mutation.
    validate_family(delta.patterns, delta.withdraw_patterns,
                    [&](kb::AttackPatternId id) { return lookup_pattern(id).has_value(); },
                    "attack pattern");
    validate_family(delta.weaknesses, delta.withdraw_weaknesses,
                    [&](kb::WeaknessId id) { return lookup_weakness(id).has_value(); },
                    "weakness");
    validate_family(delta.vulnerabilities, delta.withdraw_vulnerabilities,
                    [&](kb::VulnerabilityId id) { return lookup_vulnerability(id).has_value(); },
                    "vulnerability");

    const text::Bm25Scorer* base_bm25 = base.class_bm25(VectorClass::AttackPattern);
    const text::Bm25Scorer::Params params =
        base_bm25 != nullptr ? base_bm25->params() : text::Bm25Scorer::Params{};

    auto segment = std::make_shared<DeltaSegment>();
    const auto segment_id = static_cast<std::uint32_t>(deltas_.size() + 1);
    const float tw = options_.title_weight;
    apply_.report = {};
    apply_.segment_docs = 0;
    apply_.segment_docs += apply_class_delta(
        state(VectorClass::AttackPattern),
        segment->cls[static_cast<std::size_t>(VectorClass::AttackPattern)], segment->patterns,
        delta.patterns, delta.withdraw_patterns, segment_id,
        base.class_index(VectorClass::AttackPattern), lookup_pattern, old_pattern, tw, params,
        apply_.report.patterns);
    apply_.segment_docs += apply_class_delta(
        state(VectorClass::Weakness),
        segment->cls[static_cast<std::size_t>(VectorClass::Weakness)], segment->weaknesses,
        delta.weaknesses, delta.withdraw_weaknesses, segment_id,
        base.class_index(VectorClass::Weakness), lookup_weakness, old_weakness, tw, params,
        apply_.report.weaknesses);
    apply_.segment_docs += apply_class_delta(
        state(VectorClass::Vulnerability),
        segment->cls[static_cast<std::size_t>(VectorClass::Vulnerability)],
        segment->vulnerabilities, delta.vulnerabilities, delta.withdraw_vulnerabilities,
        segment_id, base.class_index(VectorClass::Vulnerability), lookup_vulnerability,
        old_vulnerability, tw, params, apply_.report.vulnerabilities);
    // A pure-withdrawal delta contributes no postings; the state change
    // (tombstones, df, merged order) lives in this engine, not a segment.
    if (apply_.segment_docs > 0) deltas_.push_back(std::move(segment));

    const std::array<VectorClass, 3> classes = {VectorClass::AttackPattern,
                                                VectorClass::Weakness,
                                                VectorClass::Vulnerability};
    for (VectorClass cls : classes) rebuild_derived_tables(cls);

    apply_.segments = deltas_.size();
    apply_.apply_ns = ns_since(start);
    build_metrics_.docs = state(VectorClass::AttackPattern).live_docs +
                          state(VectorClass::Weakness).live_docs +
                          state(VectorClass::Vulnerability).live_docs;
    build_metrics_.index_ns = apply_.apply_ns;
    build_metrics_.wall_ns = apply_.apply_ns;
    build_metrics_.threads = 1;
}

void SegmentedEngine::rebuild_derived_tables(VectorClass cls) {
    ClassState& st = state(cls);
    const text::InvertedIndex& base_index = base_->class_index(cls);
    const std::size_t base_docs = base_index.doc_count();
    const std::size_t n_segs = deltas_.size() + 1;

    st.base_ordinals.resize(base_docs);
    std::iota(st.base_ordinals.begin(), st.base_ordinals.end(), 0u);

    // Merged positions and the merged mean length, both walked in
    // ascending live-ordinal order == merged record order. The average is
    // summed exactly the way InvertedIndex::finalize sums it on a
    // from-scratch build (per-doc lengths, document order), so merged
    // norms cannot drift by a ULP. The same walk fills the merged-index
    // -> (segment, local) table the record accessors read.
    st.merged_pos.assign(st.next_ordinal, UINT32_MAX);
    st.rec_of.clear();
    st.rec_of.reserve(st.live_docs);
    double total_len = 0.0;
    std::uint32_t pos = 0;
    for (std::uint32_t ordinal = 0; ordinal < st.next_ordinal; ++ordinal) {
        if (st.alive[ordinal] == 0) continue;
        st.merged_pos[ordinal] = pos++;
        const std::uint32_t o = st.owner[ordinal];
        const std::uint32_t l = st.local[ordinal];
        st.rec_of.emplace_back(o, l);
        const text::InvertedIndex& idx = o == 0 ? base_index : class_segment(o, cls).index;
        total_len += idx.doc_length(l);
    }
    if (pos != st.live_docs)
        throw Error("internal: segmented ordinal bookkeeping diverged from the live-doc count");
    st.merged_avg = pos == 0 ? 0.0 : total_len / static_cast<double>(pos);

    st.live.assign(n_segs, {});
    st.live[0].resize(base_docs);
    for (std::uint32_t d = 0; d < base_docs; ++d)
        st.live[0][d] = static_cast<std::uint8_t>(st.alive[d] != 0 && st.owner[d] == 0);
    for (std::size_t s = 1; s < n_segs; ++s) {
        const ClassDeltaSegment& cs = class_segment(s, cls);
        st.live[s].resize(cs.ordinals.size());
        for (std::uint32_t d = 0; d < cs.ordinals.size(); ++d)
            st.live[s][d] = static_cast<std::uint8_t>(st.alive[cs.ordinals[d]] != 0 &&
                                                      st.owner[cs.ordinals[d]] == s);
    }

    const text::Bm25Scorer* base_bm25 = base_->class_bm25(cls);
    const text::Bm25Scorer::Params params =
        base_bm25 != nullptr ? base_bm25->params() : text::Bm25Scorer::Params{};
    const double n_live = static_cast<double>(st.live_docs);
    st.norms.assign(n_segs, {});
    st.scales.assign(n_segs, {});
    for (std::size_t s = 0; s < n_segs; ++s) {
        const text::InvertedIndex& idx = s == 0 ? base_index : class_segment(s, cls).index;
        if (idx.doc_count() == 0) continue;
        st.norms[s] = text::merged_norms(idx, params, st.merged_avg);
        // Merged idf per local term id. The base segment starts from its
        // own df column (flat reads, no hashing) with the O(touched) df
        // overlay patched on top; delta segments have tiny vocabularies
        // and take the per-term overlay lookup.
        std::vector<double> merged_idf(idx.term_count(), 0.0);
        if (s == 0) {
            std::vector<double> df(idx.term_count(), 0.0);
            for (text::TermId t = 0; t < idx.term_count(); ++t)
                df[t] = static_cast<double>(idx.list(t).doc_count);
            for (const auto& [term, merged] : st.df_diff) {
                const text::TermId t = idx.vocabulary().lookup(term);
                if (t != text::kNoTerm) df[t] = static_cast<double>(merged);
            }
            for (text::TermId t = 0; t < idx.term_count(); ++t)
                merged_idf[t] = text::rsj_idf(n_live, df[t]);
        } else {
            for (text::TermId t = 0; t < idx.term_count(); ++t)
                merged_idf[t] = text::rsj_idf(
                    n_live, static_cast<double>(merged_df(cls, idx.vocabulary().term(t))));
        }
        st.scales[s] = text::merged_bound_scales(idx, merged_idf, st.merged_avg);
    }
}

std::uint32_t SegmentedEngine::merged_df(VectorClass cls, std::string_view term) const {
    const ClassState& st = state(cls);
    const auto it = st.df_diff.find(term);
    if (it != st.df_diff.end()) return it->second;
    return base_df(base_->class_index(cls), term);
}

std::size_t SegmentedEngine::class_doc_frequency(VectorClass cls, std::string_view term) const {
    return merged_df(cls, term);
}

const kb::AttackPattern& SegmentedEngine::pattern_at(std::size_t index) const {
    const auto& [o, l] = state(VectorClass::AttackPattern).rec_of[index];
    return o == 0 ? base_->corpus().patterns()[l] : deltas_[o - 1]->patterns[l];
}

const kb::Weakness& SegmentedEngine::weakness_at(std::size_t index) const {
    const auto& [o, l] = state(VectorClass::Weakness).rec_of[index];
    return o == 0 ? base_->corpus().weaknesses()[l] : deltas_[o - 1]->weaknesses[l];
}

const kb::Vulnerability& SegmentedEngine::vulnerability_at(std::size_t index) const {
    const auto& [o, l] = state(VectorClass::Vulnerability).rec_of[index];
    return o == 0 ? base_->corpus().vulnerabilities()[l] : deltas_[o - 1]->vulnerabilities[l];
}

void SegmentedEngine::materialize_corpus() const {
    // Records appended in ascending live-ordinal order == merged record
    // order (exactly the sequence kb::apply_corpus_delta evolves), then
    // one reindex — identical under kb::to_json to the corpus a
    // from-scratch apply chain would produce.
    auto corpus = std::make_unique<kb::Corpus>();
    const kb::Corpus& base_corpus = base_->corpus();
    const auto append_class = [this, &corpus](VectorClass cls, const auto& base_records,
                                              const auto& segment_records) {
        const ClassState& st = state(cls);
        for (std::uint32_t ordinal = 0; ordinal < st.next_ordinal; ++ordinal) {
            if (st.alive[ordinal] == 0) continue;
            const std::uint32_t o = st.owner[ordinal];
            const std::uint32_t l = st.local[ordinal];
            corpus->add(o == 0 ? base_records[l] : segment_records(o)[l]);
        }
    };
    append_class(VectorClass::AttackPattern, base_corpus.patterns(),
                 [this](std::uint32_t o) -> const std::vector<kb::AttackPattern>& {
                     return deltas_[o - 1]->patterns;
                 });
    append_class(VectorClass::Weakness, base_corpus.weaknesses(),
                 [this](std::uint32_t o) -> const std::vector<kb::Weakness>& {
                     return deltas_[o - 1]->weaknesses;
                 });
    append_class(VectorClass::Vulnerability, base_corpus.vulnerabilities(),
                 [this](std::uint32_t o) -> const std::vector<kb::Vulnerability>& {
                     return deltas_[o - 1]->vulnerabilities;
                 });
    corpus->reindex();
    merged_corpus_ = std::move(corpus);
}

const kb::Corpus& SegmentedEngine::corpus() const {
    std::call_once(corpus_once_, [this] { materialize_corpus(); });
    return *merged_corpus_;
}

text::IndexStats SegmentedEngine::index_stats() const noexcept {
    text::IndexStats s = base_->index_stats();
    for (const std::shared_ptr<const DeltaSegment>& seg : deltas_)
        for (const ClassDeltaSegment& cs : seg->cls) s += cs.index.stats();
    return s;
}

std::vector<Match> SegmentedEngine::run_lexical(const std::vector<std::string>& tokens,
                                                VectorClass cls, AssocMetrics* metrics) const {
    const ClassState& st = state(cls);

    // Distinct query terms with live merged df, in ascending term-string
    // order — exactly the term set and order a from-scratch merged index
    // would resolve (vocabulary membership there <=> df >= 1 here).
    std::vector<std::string_view> distinct;
    distinct.reserve(tokens.size());
    for (const std::string& tok : tokens)
        if (merged_df(cls, tok) > 0) distinct.push_back(tok);
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());

    const double n_live = static_cast<double>(st.live_docs);
    std::vector<text::SegmentedTerm> terms;
    terms.reserve(distinct.size());
    for (std::string_view term : distinct) {
        const double df = static_cast<double>(merged_df(cls, term));
        terms.push_back({term, text::rsj_idf(n_live, df)});
    }

    std::vector<text::SegmentView> views;
    views.reserve(deltas_.size() + 1);
    const text::InvertedIndex& base_index = base_->class_index(cls);
    if (base_index.doc_count() > 0)
        views.push_back({&base_index, base_->class_bm25(cls), st.norms[0].data(),
                         st.base_ordinals.data(), st.live[0].data(), st.scales[0].data(),
                         base_index.doc_count()});
    for (std::size_t s = 1; s <= deltas_.size(); ++s) {
        const ClassDeltaSegment& cs = class_segment(s, cls);
        if (cs.index.doc_count() == 0) continue;
        views.push_back({&cs.index, &*cs.scorer, st.norms[s].data(), cs.ordinals.data(),
                         st.live[s].data(), st.scales[s].data(), cs.index.doc_count()});
    }

    text::KernelOptions kopts;
    kopts.top_k = options_.max_lexical_hits;
    kopts.min_evidence_idf = options_.min_evidence_idf;
    text::SegmentedStats sstats;
    const std::vector<text::Hit> hits = text::query_segments(
        views, st.next_ordinal, terms, text::tls_query_scratch(), kopts, &sstats);

    std::vector<Match> out;
    out.reserve(hits.size());
    for (const text::Hit& h : hits) {
        Match m = make_match(cls, st.merged_pos[h.doc]);
        m.score = h.score;
        m.via = MatchVia::Lexical;
        m.evidence.reserve(h.matched_terms.size());
        for (text::TermId idx : h.matched_terms) m.evidence.emplace_back(terms[idx].term);
        out.push_back(std::move(m));
    }
    if (metrics != nullptr) {
        metrics->kernel_postings += sstats.kernel.postings_scanned;
        metrics->kernel_pruned_docs += sstats.kernel.docs_pruned;
        metrics->kernel_gated_hits += sstats.kernel.hits_gated;
        metrics->kernel_fallbacks += sstats.kernel.fallback_queries;
        metrics->kernel_blocks_decoded += sstats.kernel.blocks_decoded;
        metrics->kernel_blocks_skipped += sstats.kernel.blocks_skipped;
        metrics->kernel_segments_visited += sstats.segments_visited;
        metrics->kernel_tombstones_masked += sstats.tombstones_masked;
    }
    return out;
}

} // namespace cybok::search
