#include "search/association.hpp"

#include <algorithm>
#include <chrono>
#include <set>

#include "util/fault.hpp"

namespace cybok::search {

namespace {
using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count());
}
} // namespace

std::size_t AttributeAssociation::count(VectorClass cls) const noexcept {
    return static_cast<std::size_t>(
        std::count_if(matches.begin(), matches.end(),
                      [cls](const Match& m) { return m.cls == cls; }));
}

std::size_t ComponentAssociation::count(VectorClass cls) const noexcept {
    std::size_t n = 0;
    for (const AttributeAssociation& a : attributes) n += a.count(cls);
    return n;
}

std::size_t ComponentAssociation::total() const noexcept {
    std::size_t n = 0;
    for (const AttributeAssociation& a : attributes) n += a.matches.size();
    return n;
}

const ComponentAssociation* AssociationMap::find(std::string_view component) const noexcept {
    for (const ComponentAssociation& c : components)
        if (c.component == component) return &c;
    return nullptr;
}

std::size_t AssociationMap::total() const noexcept {
    std::size_t n = 0;
    for (const ComponentAssociation& c : components) n += c.total();
    return n;
}

std::size_t AssociationMap::total(VectorClass cls) const noexcept {
    std::size_t n = 0;
    for (const ComponentAssociation& c : components) n += c.count(cls);
    return n;
}

std::vector<AssociationMap::TableRow> AssociationMap::attribute_table() const {
    std::vector<TableRow> rows;
    for (const ComponentAssociation& c : components) {
        for (const AttributeAssociation& a : c.attributes) {
            TableRow row;
            row.attribute = a.attribute_value;
            row.attack_patterns = a.count(VectorClass::AttackPattern);
            row.weaknesses = a.count(VectorClass::Weakness);
            row.vulnerabilities = a.count(VectorClass::Vulnerability);
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

namespace {

ComponentAssociation associate_component(const model::Component& c, const QueryEngine& engine,
                                         const FilterChain* chain) {
    ComponentAssociation out;
    out.component = c.name;
    for (const model::Attribute& attr : c.attributes) {
        AttributeAssociation aa;
        aa.attribute_name = attr.name;
        aa.attribute_value = attr.value;
        aa.matches = engine.query_attribute(attr);
        if (chain != nullptr) aa.matches = chain->apply(std::move(aa.matches));
        out.attributes.push_back(std::move(aa));
    }
    return out;
}

} // namespace

AssociationMap associate(const model::SystemModel& m, const QueryEngine& engine,
                         const FilterChain* chain) {
    AssociationMap map;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        map.components.push_back(associate_component(c, engine, chain));
    }
    return map;
}

AssociationMap reassociate(const AssociationMap& previous, const model::ModelDiff& diff,
                           const model::SystemModel& after, const QueryEngine& engine,
                           const FilterChain* chain) {
    std::set<std::string> touched;
    for (const std::string& name : diff.touched_components()) touched.insert(name);
    std::set<std::string> removed(diff.removed_components.begin(),
                                  diff.removed_components.end());

    AssociationMap map;
    for (const model::Component& c : after.components()) {
        if (!c.id.valid()) continue;
        if (!touched.contains(c.name)) {
            if (const ComponentAssociation* prev = previous.find(c.name)) {
                map.components.push_back(*prev);
                continue;
            }
        }
        map.components.push_back(associate_component(c, engine, chain));
    }
    (void)removed; // removed components simply don't appear in `after`
    return map;
}

// ---------------------------------------------------------- Associator

/// One attribute query: where the result goes and what to ask.
struct Associator::Task {
    const model::Attribute* attr = nullptr;
    const std::string* component = nullptr; ///< owning component name
    std::vector<Match>* out = nullptr;      ///< pre-sized destination slot
};

namespace {

/// The per-engine half of every cache key: the options signature plus the
/// engine's process-unique generation id. The generation suffix is what
/// makes stale hits *impossible* across rebind(): two engine instances —
/// even over byte-identical corpora — never share a generation, so a key
/// computed against one can never be produced against the other.
std::string engine_signature(const QueryEngine& engine) {
    return engine.options().signature() + "|gen=" + std::to_string(engine.engine_generation());
}

} // namespace

Associator::Associator(const QueryEngine& engine, AssocOptions options)
    : engine_(&engine), options_(options), options_signature_(engine_signature(engine)),
      pool_(options.threads), cache_(options.cache_capacity) {
    // Surface how the engine behind this associator came to exist (cold
    // build timings or snapshot thaw) in every metrics report.
    metrics_.build = engine.build_metrics();
}

void Associator::rebind(const QueryEngine& engine) {
    engine_ = &engine;
    options_signature_ = engine_signature(engine);
    std::lock_guard<std::mutex> lk(metrics_mutex_);
    metrics_.build = engine.build_metrics();
}

namespace {

/// Content-addressed cache key: engine signature (options + generation) +
/// attribute kind + normalized token sequence + platform URI. Fully
/// determines the query result against an immutable engine generation.
std::string cache_key(const std::string& options_signature, const model::Attribute& attr,
                      const std::vector<std::string>& tokens) {
    std::string key = options_signature;
    key += '\x1f';
    key += static_cast<char>('0' + static_cast<int>(attr.kind));
    for (const std::string& t : tokens) {
        key += '\x1e';
        key += t;
    }
    if (attr.kind == model::AttributeKind::PlatformRef && attr.platform.has_value()) {
        key += '\x1f';
        key += attr.platform->uri();
    }
    return key;
}

} // namespace

void Associator::run_tasks(std::vector<Task>& tasks, const FilterChain* chain) {
    const Clock::time_point wall_start = Clock::now();
    pool_.parallel_for(tasks.size(), [&](std::size_t i) {
        const Task& task = tasks[i];
        AssocMetrics local;
        std::vector<Match> matches;
        if (task.attr->kind == model::AttributeKind::Parameter) {
            // Parameters match nothing by design; skip analyze and cache.
        } else if (!options_.cache_enabled) {
            matches = engine_->query_attribute(*task.attr, &local);
        } else {
            const Clock::time_point analyze_start = Clock::now();
            const std::vector<std::string> tokens = QueryEngine::attribute_tokens(*task.attr);
            local.timings.analyze_ns += ns_since(analyze_start);
            const std::string key = cache_key(options_signature_, *task.attr, tokens);
            // Degradation contract: a failing cache get is a miss, a
            // failing recompute is retried once (then propagates typed),
            // a failing cache put skips caching. Every absorbed failure
            // is counted, so results never silently change shape.
            std::optional<std::vector<Match>> hit;
            try {
                hit = cache_.get(key, *task.component);
            } catch (const Error& e) {
                ++local.degrade.cache_recoveries;
                local.degrade.last_reason = e.what();
            }
            if (hit.has_value()) {
                ++local.cache_hits;
                matches = std::move(*hit);
            } else {
                ++local.cache_misses;
                try {
                    CYBOK_FAULT_POINT("search.assoc.recompute",
                                      Error("injected: attribute recompute failed"));
                    matches = engine_->query_attribute_tokens(*task.attr, tokens, &local);
                } catch (const Error& e) {
                    ++local.degrade.recompute_retries;
                    local.degrade.last_reason = e.what();
                    // The retry passes the same fault site: a persistent
                    // failure (trigger "always") propagates typed out of
                    // associate(); a transient one (nth:K) recovers here.
                    CYBOK_FAULT_POINT("search.assoc.recompute",
                                      Error("injected: attribute recompute failed twice"));
                    matches = engine_->query_attribute_tokens(*task.attr, tokens, &local);
                }
                try {
                    cache_.put(key, matches, *task.component);
                } catch (const Error& e) {
                    ++local.degrade.cache_recoveries;
                    local.degrade.last_reason = e.what();
                }
            }
        }
        if (chain != nullptr) {
            const Clock::time_point filter_start = Clock::now();
            matches = chain->apply(std::move(matches));
            local.timings.filter_ns += ns_since(filter_start);
        }
        *task.out = std::move(matches);
        std::lock_guard<std::mutex> lk(metrics_mutex_);
        metrics_.merge(local);
    });
    std::lock_guard<std::mutex> lk(metrics_mutex_);
    metrics_.attributes += tasks.size();
    metrics_.threads = std::max(metrics_.threads, pool_.thread_count());
    metrics_.timings.wall_ns += ns_since(wall_start);
}

AssociationMap Associator::associate(const model::SystemModel& m, const FilterChain* chain) {
    AssociationMap map;
    std::vector<Task> tasks;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        ComponentAssociation ca;
        ca.component = c.name;
        ca.attributes.resize(c.attributes.size());
        map.components.push_back(std::move(ca));
    }
    // Second pass wires tasks to stable slots (map.components no longer
    // reallocates); attribute metadata is filled here so workers only
    // write the matches vector.
    std::size_t ci = 0;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        ComponentAssociation& ca = map.components[ci++];
        for (std::size_t ai = 0; ai < c.attributes.size(); ++ai) {
            ca.attributes[ai].attribute_name = c.attributes[ai].name;
            ca.attributes[ai].attribute_value = c.attributes[ai].value;
            tasks.push_back(Task{&c.attributes[ai], &ca.component, &ca.attributes[ai].matches});
        }
    }
    {
        std::lock_guard<std::mutex> lk(metrics_mutex_);
        metrics_.components += map.components.size();
    }
    run_tasks(tasks, chain);
    return map;
}

AssociationMap Associator::reassociate(const AssociationMap& previous,
                                       const model::ModelDiff& diff,
                                       const model::SystemModel& after,
                                       const FilterChain* chain) {
    std::set<std::string> touched;
    for (const std::string& name : diff.touched_components()) touched.insert(name);

    // Refined components: their attribute text was superseded, so their
    // cache entries are dead weight — drop them (content-addressing keeps
    // this a memory policy, not a correctness need). Removed components
    // likewise.
    std::size_t invalidated = 0;
    for (const std::string& name : touched) invalidated += cache_.invalidate_component(name);
    for (const std::string& name : diff.removed_components)
        invalidated += cache_.invalidate_component(name);

    AssociationMap map;
    std::vector<std::pair<const model::Component*, std::size_t>> requery; // (component, map idx)
    for (const model::Component& c : after.components()) {
        if (!c.id.valid()) continue;
        if (!touched.contains(c.name)) {
            if (const ComponentAssociation* prev = previous.find(c.name)) {
                map.components.push_back(*prev);
                continue;
            }
        }
        ComponentAssociation ca;
        ca.component = c.name;
        ca.attributes.resize(c.attributes.size());
        requery.emplace_back(&c, map.components.size());
        map.components.push_back(std::move(ca));
    }
    // map.components is fully built (no further reallocation), so slot
    // pointers handed to the pool below stay valid.
    std::vector<Task> tasks;
    for (const auto& [comp, idx] : requery) {
        ComponentAssociation& ca = map.components[idx];
        for (std::size_t ai = 0; ai < comp->attributes.size(); ++ai) {
            ca.attributes[ai].attribute_name = comp->attributes[ai].name;
            ca.attributes[ai].attribute_value = comp->attributes[ai].value;
            tasks.push_back(
                Task{&comp->attributes[ai], &ca.component, &ca.attributes[ai].matches});
        }
    }
    {
        std::lock_guard<std::mutex> lk(metrics_mutex_);
        metrics_.components += requery.size();
        metrics_.reused_components += map.components.size() - requery.size();
        metrics_.cache_invalidations += invalidated;
    }
    run_tasks(tasks, chain);
    return map;
}

AssocMetrics Associator::metrics() const {
    std::lock_guard<std::mutex> lk(metrics_mutex_);
    return metrics_;
}

void Associator::reset_metrics() {
    std::lock_guard<std::mutex> lk(metrics_mutex_);
    metrics_ = AssocMetrics{};
}

} // namespace cybok::search
