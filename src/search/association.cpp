#include "search/association.hpp"

#include <algorithm>
#include <set>

namespace cybok::search {

std::size_t AttributeAssociation::count(VectorClass cls) const noexcept {
    return static_cast<std::size_t>(
        std::count_if(matches.begin(), matches.end(),
                      [cls](const Match& m) { return m.cls == cls; }));
}

std::size_t ComponentAssociation::count(VectorClass cls) const noexcept {
    std::size_t n = 0;
    for (const AttributeAssociation& a : attributes) n += a.count(cls);
    return n;
}

std::size_t ComponentAssociation::total() const noexcept {
    std::size_t n = 0;
    for (const AttributeAssociation& a : attributes) n += a.matches.size();
    return n;
}

const ComponentAssociation* AssociationMap::find(std::string_view component) const noexcept {
    for (const ComponentAssociation& c : components)
        if (c.component == component) return &c;
    return nullptr;
}

std::size_t AssociationMap::total() const noexcept {
    std::size_t n = 0;
    for (const ComponentAssociation& c : components) n += c.total();
    return n;
}

std::size_t AssociationMap::total(VectorClass cls) const noexcept {
    std::size_t n = 0;
    for (const ComponentAssociation& c : components) n += c.count(cls);
    return n;
}

std::vector<AssociationMap::TableRow> AssociationMap::attribute_table() const {
    std::vector<TableRow> rows;
    for (const ComponentAssociation& c : components) {
        for (const AttributeAssociation& a : c.attributes) {
            TableRow row;
            row.attribute = a.attribute_value;
            row.attack_patterns = a.count(VectorClass::AttackPattern);
            row.weaknesses = a.count(VectorClass::Weakness);
            row.vulnerabilities = a.count(VectorClass::Vulnerability);
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

namespace {

ComponentAssociation associate_component(const model::Component& c, const SearchEngine& engine,
                                         const FilterChain* chain) {
    ComponentAssociation out;
    out.component = c.name;
    for (const model::Attribute& attr : c.attributes) {
        AttributeAssociation aa;
        aa.attribute_name = attr.name;
        aa.attribute_value = attr.value;
        aa.matches = engine.query_attribute(attr);
        if (chain != nullptr) aa.matches = chain->apply(std::move(aa.matches));
        out.attributes.push_back(std::move(aa));
    }
    return out;
}

} // namespace

AssociationMap associate(const model::SystemModel& m, const SearchEngine& engine,
                         const FilterChain* chain) {
    AssociationMap map;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        map.components.push_back(associate_component(c, engine, chain));
    }
    return map;
}

AssociationMap reassociate(const AssociationMap& previous, const model::ModelDiff& diff,
                           const model::SystemModel& after, const SearchEngine& engine,
                           const FilterChain* chain) {
    std::set<std::string> touched;
    for (const std::string& name : diff.touched_components()) touched.insert(name);
    std::set<std::string> removed(diff.removed_components.begin(),
                                  diff.removed_components.end());

    AssociationMap map;
    for (const model::Component& c : after.components()) {
        if (!c.id.valid()) continue;
        if (!touched.contains(c.name)) {
            if (const ComponentAssociation* prev = previous.find(c.name)) {
                map.components.push_back(*prev);
                continue;
            }
        }
        map.components.push_back(associate_component(c, engine, chain));
    }
    (void)removed; // removed components simply don't appear in `after`
    return map;
}

} // namespace cybok::search
