#include "search/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace cybok::search {

void StageTimings::merge(const StageTimings& other) noexcept {
    analyze_ns += other.analyze_ns;
    lexical_ns += other.lexical_ns;
    binding_ns += other.binding_ns;
    filter_ns += other.filter_ns;
    wall_ns += other.wall_ns;
}

void LintCounts::merge(const LintCounts& other) noexcept {
    if (other.ran()) *this = other;
}

void DegradeCounts::merge(const DegradeCounts& other) {
    snapshot_fallbacks += other.snapshot_fallbacks;
    snapshot_save_failures += other.snapshot_save_failures;
    cache_recoveries += other.cache_recoveries;
    recompute_retries += other.recompute_retries;
    records_skipped += other.records_skipped;
    mmap_fallbacks += other.mmap_fallbacks;
    compaction_failures += other.compaction_failures;
    if (!other.last_reason.empty()) last_reason = other.last_reason;
}

json::Value DegradeCounts::to_json() const {
    json::Object o;
    o["snapshot_fallbacks"] = static_cast<std::uint64_t>(snapshot_fallbacks);
    o["snapshot_save_failures"] = static_cast<std::uint64_t>(snapshot_save_failures);
    o["cache_recoveries"] = static_cast<std::uint64_t>(cache_recoveries);
    o["recompute_retries"] = static_cast<std::uint64_t>(recompute_retries);
    o["records_skipped"] = static_cast<std::uint64_t>(records_skipped);
    o["mmap_fallbacks"] = static_cast<std::uint64_t>(mmap_fallbacks);
    o["compaction_failures"] = static_cast<std::uint64_t>(compaction_failures);
    if (!last_reason.empty()) o["last_reason"] = json::Value(last_reason);
    return json::Value(std::move(o));
}

json::Value LintCounts::to_json() const {
    json::Object o;
    o["rules_run"] = static_cast<std::uint64_t>(rules_run);
    o["errors"] = static_cast<std::uint64_t>(errors);
    o["warnings"] = static_cast<std::uint64_t>(warnings);
    o["notes"] = static_cast<std::uint64_t>(notes);
    o["wall_ns"] = wall_ns;
    return json::Value(std::move(o));
}

void FlowCounts::merge(const FlowCounts& other) noexcept {
    if (!other.ran()) return;
    const std::size_t full = analyses + other.analyses;
    const std::size_t incr = incremental_analyses + other.incremental_analyses;
    const std::size_t reused = reused_components + other.reused_components;
    *this = other;
    analyses = full;
    incremental_analyses = incr;
    reused_components = reused;
}

json::Value FlowCounts::to_json() const {
    json::Object o;
    o["nodes"] = static_cast<std::uint64_t>(nodes);
    o["edges"] = static_cast<std::uint64_t>(edges);
    o["taint_iterations"] = taint_iterations;
    o["slice_iterations"] = slice_iterations;
    o["edges_traversed"] = edges_traversed;
    o["tainted"] = static_cast<std::uint64_t>(tainted);
    o["chokepoints"] = static_cast<std::uint64_t>(chokepoints);
    o["analyses"] = static_cast<std::uint64_t>(analyses);
    o["incremental_analyses"] = static_cast<std::uint64_t>(incremental_analyses);
    o["reused_components"] = static_cast<std::uint64_t>(reused_components);
    return json::Value(std::move(o));
}

void AssocMetrics::merge(const AssocMetrics& other) {
    components += other.components;
    attributes += other.attributes;
    queries_run += other.queries_run;
    reused_components += other.reused_components;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_invalidations += other.cache_invalidations;
    pattern_candidates += other.pattern_candidates;
    weakness_candidates += other.weakness_candidates;
    vulnerability_candidates += other.vulnerability_candidates;
    kernel_postings += other.kernel_postings;
    kernel_pruned_docs += other.kernel_pruned_docs;
    kernel_gated_hits += other.kernel_gated_hits;
    kernel_fallbacks += other.kernel_fallbacks;
    kernel_blocks_decoded += other.kernel_blocks_decoded;
    kernel_blocks_skipped += other.kernel_blocks_skipped;
    kernel_segments_visited += other.kernel_segments_visited;
    kernel_tombstones_masked += other.kernel_tombstones_masked;
    threads = std::max(threads, other.threads);
    timings.merge(other.timings);
    lint.merge(other.lint);
    flow.merge(other.flow);
    degrade.merge(other.degrade);
    // Build happened once, before any run: adopt whichever side saw it.
    if (build.wall_ns == 0) build = other.build;
}

double AssocMetrics::cache_hit_rate() const noexcept {
    const std::size_t traffic = cache_hits + cache_misses;
    return traffic == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(traffic);
}

namespace {
double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }
} // namespace

json::Value BuildMetrics::to_json() const {
    json::Object o;
    o["tokenize_ns"] = tokenize_ns;
    o["index_ns"] = index_ns;
    o["wall_ns"] = wall_ns;
    o["docs"] = static_cast<std::uint64_t>(docs);
    o["threads"] = static_cast<std::uint64_t>(threads);
    o["from_snapshot"] = json::Value(from_snapshot);
    o["parallel_fallback"] = json::Value(parallel_fallback);
    return json::Value(std::move(o));
}

std::string AssocMetrics::summary() const {
    std::ostringstream out;
    out.precision(3);
    out << components << " components / " << attributes << " attributes, " << queries_run
        << " queries run";
    if (cache_hits + cache_misses > 0)
        out << ", cache " << cache_hits << " hits / " << cache_misses << " misses ("
            << std::fixed << 100.0 * cache_hit_rate() << std::defaultfloat << "% hit rate)";
    out << "; candidates " << pattern_candidates << " AP / " << weakness_candidates << " W / "
        << vulnerability_candidates << " V; kernel " << kernel_postings << " postings / "
        << kernel_blocks_decoded << " blocks decoded / " << kernel_blocks_skipped
        << " blocks skipped / " << kernel_pruned_docs << " pruned / " << kernel_gated_hits
        << " gated";
    if (kernel_fallbacks > 0) out << " / " << kernel_fallbacks << " fallbacks";
    if (kernel_segments_visited > 0)
        out << " / " << kernel_segments_visited << " segments / " << kernel_tombstones_masked
            << " tombstoned";
    out << "; " << threads << " thread(s); stage ms: analyze "
        << ms(timings.analyze_ns) << ", lexical " << ms(timings.lexical_ns) << ", binding "
        << ms(timings.binding_ns) << ", filter " << ms(timings.filter_ns) << ", wall "
        << ms(timings.wall_ns);
    if (build.wall_ns > 0) {
        out << "; engine " << (build.from_snapshot ? "thawed from snapshot" : "built") << " in "
            << ms(build.wall_ns) << " ms (" << build.docs << " docs, " << build.threads
            << " thread(s))";
        if (build.parallel_fallback) out << " [sequential fallback]";
    }
    if (degrade.any())
        out << "; degraded: " << degrade.snapshot_fallbacks << " snapshot fallbacks / "
            << degrade.snapshot_save_failures << " save failures / " << degrade.cache_recoveries
            << " cache recoveries / " << degrade.recompute_retries << " recompute retries / "
            << degrade.records_skipped << " records skipped";
    if (lint.ran())
        out << "; lint " << lint.errors << " errors / " << lint.warnings << " warnings / "
            << lint.notes << " notes (" << lint.rules_run << " rules, " << ms(lint.wall_ns)
            << " ms)";
    if (flow.ran())
        out << "; flow " << flow.nodes << " nodes / " << flow.edges << " edges, "
            << flow.tainted << " tainted, " << flow.chokepoints << " chokepoints ("
            << flow.taint_iterations << "+" << flow.slice_iterations << " iterations, "
            << flow.incremental_analyses << " incremental)";
    return out.str();
}

json::Value AssocMetrics::to_json() const {
    json::Object o;
    o["components"] = static_cast<std::uint64_t>(components);
    o["attributes"] = static_cast<std::uint64_t>(attributes);
    o["queries_run"] = static_cast<std::uint64_t>(queries_run);
    o["reused_components"] = static_cast<std::uint64_t>(reused_components);
    o["cache_hits"] = static_cast<std::uint64_t>(cache_hits);
    o["cache_misses"] = static_cast<std::uint64_t>(cache_misses);
    o["cache_invalidations"] = static_cast<std::uint64_t>(cache_invalidations);
    o["cache_hit_rate"] = cache_hit_rate();
    o["pattern_candidates"] = static_cast<std::uint64_t>(pattern_candidates);
    o["weakness_candidates"] = static_cast<std::uint64_t>(weakness_candidates);
    o["vulnerability_candidates"] = static_cast<std::uint64_t>(vulnerability_candidates);
    json::Object k;
    k["postings_scanned"] = kernel_postings;
    k["pruned_docs"] = kernel_pruned_docs;
    k["gated_hits"] = kernel_gated_hits;
    k["fallback_queries"] = kernel_fallbacks;
    k["blocks_decoded"] = kernel_blocks_decoded;
    k["blocks_skipped"] = kernel_blocks_skipped;
    k["segments_visited"] = kernel_segments_visited;
    k["tombstones_masked"] = kernel_tombstones_masked;
    o["kernel"] = std::move(k);
    o["threads"] = static_cast<std::uint64_t>(threads);
    json::Object t;
    t["analyze_ns"] = timings.analyze_ns;
    t["lexical_ns"] = timings.lexical_ns;
    t["binding_ns"] = timings.binding_ns;
    t["filter_ns"] = timings.filter_ns;
    t["wall_ns"] = timings.wall_ns;
    o["timings"] = std::move(t);
    o["build"] = build.to_json();
    if (lint.ran()) o["lint"] = lint.to_json();
    if (flow.ran()) o["flow"] = flow.to_json();
    if (degrade.any()) o["degrade"] = degrade.to_json();
    return json::Value(std::move(o));
}

} // namespace cybok::search
