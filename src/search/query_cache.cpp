#include "search/query_cache.hpp"

#include "util/fault.hpp"

namespace cybok::search {

std::optional<std::vector<Match>> QueryCache::get(const std::string& key,
                                                  std::string_view component) {
    // Models a poisoned or unreadable entry; the Associator treats the
    // typed failure as a miss and recomputes.
    CYBOK_FAULT_POINT("search.cache.get", Error("injected: cache get failed"));
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    component_keys_[std::string(component)].insert(key);
    return it->second;
}

void QueryCache::put(const std::string& key, std::vector<Match> value,
                     std::string_view component) {
    // Fires before any mutation, so a failed put never leaves a partial
    // entry; the Associator returns the result uncached.
    CYBOK_FAULT_POINT("search.cache.put", Error("injected: cache put failed"));
    std::lock_guard<std::mutex> lk(mutex_);
    auto [it, inserted] = entries_.try_emplace(key, std::move(value));
    if (!inserted) it->second = std::move(value);
    else insertion_order_.push_back(key);
    component_keys_[std::string(component)].insert(key);
    evict_to_capacity_locked();
}

std::size_t QueryCache::invalidate_component(std::string_view component) {
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = component_keys_.find(std::string(component));
    if (it == component_keys_.end()) return 0;
    std::size_t removed = 0;
    for (const std::string& key : it->second) removed += entries_.erase(key);
    component_keys_.erase(it);
    // insertion_order_ may keep names of erased entries; eviction treats
    // those as no-ops, so no compaction is needed here.
    return removed;
}

void QueryCache::clear() {
    std::lock_guard<std::mutex> lk(mutex_);
    entries_.clear();
    insertion_order_.clear();
    component_keys_.clear();
}

std::size_t QueryCache::size() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return entries_.size();
}

void QueryCache::evict_to_capacity_locked() {
    while (entries_.size() > capacity_ && !insertion_order_.empty()) {
        entries_.erase(insertion_order_.front());
        insertion_order_.pop_front();
    }
}

} // namespace cybok::search
