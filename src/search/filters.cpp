#include "search/filters.hpp"

#include <algorithm>

namespace cybok::search {

Filter by_class(VectorClass cls) {
    return Filter{std::string("class=") + std::string(vector_class_name(cls)),
                  [cls](const Match& m) { return m.cls == cls; }};
}

Filter min_score(double threshold) {
    return Filter{"score>=" + std::to_string(threshold),
                  [threshold](const Match& m) { return m.score >= threshold; }};
}

Filter min_severity(cvss::Severity band) {
    return Filter{std::string("severity>=") + std::string(cvss::severity_name(band)),
                  [band](const Match& m) {
                      if (m.cls != VectorClass::Vulnerability) return true;
                      if (m.severity < 0.0) return false; // unscored: drop under a severity gate
                      return cvss::severity_band(m.severity) >= band;
                  }};
}

Filter by_via(MatchVia via) {
    return Filter{std::string("via=") + std::string(match_via_name(via)),
                  [via](const Match& m) { return m.via == via; }};
}

Filter evidence_contains(std::string term) {
    return Filter{"evidence~" + term, [term = std::move(term)](const Match& m) {
                      return std::find(m.evidence.begin(), m.evidence.end(), term) !=
                             m.evidence.end();
                  }};
}

FilterChain& FilterChain::add(Filter f) {
    filters_.push_back(std::move(f));
    return *this;
}

FilterChain& FilterChain::top_k_per_class(std::size_t k) {
    top_k_ = k;
    return *this;
}

std::vector<Match> FilterChain::apply(std::vector<Match> matches, Report* report) const {
    if (report != nullptr) {
        *report = Report{};
        report->input = matches.size();
    }
    for (const Filter& f : filters_) {
        std::size_t before = matches.size();
        matches.erase(std::remove_if(matches.begin(), matches.end(),
                                     [&](const Match& m) { return !f.keep(m); }),
                      matches.end());
        if (report != nullptr) report->dropped_by[f.name] = before - matches.size();
    }
    if (top_k_ > 0) {
        std::size_t before = matches.size();
        auto rank = [](const Match& m) {
            // Platform bindings have score 0; rank them by severity so a
            // top-k gate keeps the worst vulnerabilities, not arbitrary ones.
            return m.score > 0.0 ? m.score : m.severity;
        };
        std::vector<Match> kept;
        for (VectorClass cls : {VectorClass::AttackPattern, VectorClass::Weakness,
                                VectorClass::Vulnerability}) {
            std::vector<Match> of_class;
            for (const Match& m : matches)
                if (m.cls == cls) of_class.push_back(m);
            std::stable_sort(of_class.begin(), of_class.end(),
                             [&](const Match& a, const Match& b) { return rank(a) > rank(b); });
            if (of_class.size() > top_k_) of_class.resize(top_k_);
            for (Match& m : of_class) kept.push_back(std::move(m));
        }
        matches = std::move(kept);
        if (report != nullptr)
            report->dropped_by["top-" + std::to_string(top_k_) + "-per-class"] =
                before - matches.size();
    }
    if (report != nullptr) report->output = matches.size();
    return matches;
}

std::vector<Match> abstract_vulnerabilities(const std::vector<Match>& matches,
                                            const kb::Corpus& corpus) {
    std::vector<Match> out;
    struct Group {
        std::size_t count = 0;
        double max_severity = -1.0;
        Match representative;
    };
    std::map<std::string, Group> groups; // key: CWE id or platform evidence

    for (const Match& m : matches) {
        if (m.cls != VectorClass::Vulnerability) {
            out.push_back(m);
            continue;
        }
        const kb::Vulnerability& v = corpus.vulnerabilities()[m.corpus_index];
        std::string key;
        Match rep;
        if (!v.weaknesses.empty()) {
            kb::WeaknessId wid = v.weaknesses.front();
            key = wid.to_string();
            rep.cls = VectorClass::Weakness;
            rep.id = key;
            const kb::Weakness* w = corpus.find(wid);
            rep.title = w != nullptr ? w->name : "(weakness class of " + m.id + ")";
            if (w != nullptr) {
                rep.corpus_index =
                    static_cast<std::size_t>(w - corpus.weaknesses().data());
            }
        } else {
            key = m.evidence.empty() ? "(unclassified)" : m.evidence.front();
            rep.cls = VectorClass::Vulnerability;
            rep.id = "group:" + key;
            rep.title = "unclassified vulnerabilities on " + key;
            rep.corpus_index = m.corpus_index;
        }
        rep.via = MatchVia::CrossReference;
        Group& g = groups.try_emplace(key, Group{0, -1.0, std::move(rep)}).first->second;
        ++g.count;
        g.max_severity = std::max(g.max_severity, m.severity);
    }

    for (auto& [key, g] : groups) {
        Match m = std::move(g.representative);
        m.severity = g.max_severity;
        m.evidence = {"abstracts " + std::to_string(g.count) + " vulnerabilities"};
        m.score = static_cast<double>(g.count); // rank groups by mass
        out.push_back(std::move(m));
    }
    return out;
}

} // namespace cybok::search
