// Memoizing cache for attribute queries. The same attribute text recurs
// constantly — "Linux OS" sits on several platforms of one model, and the
// what-if loop re-associates mostly-unchanged models — so the engine pays
// full BM25 + binding cost once per distinct (token sequence, attribute
// kind, platform, engine options) key and replays the result thereafter.
//
// Entries are content-addressed: the key fully determines the result
// against an immutable engine, so a cached value can never be stale.
// Component-scoped invalidation (invalidate_component) is therefore a
// *memory* policy, not a correctness requirement — it drops entries whose
// source attribute text was superseded by a refinement and would otherwise
// linger until capacity eviction.

#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "search/engine.hpp"

namespace cybok::search {

/// Thread-safe FIFO-bounded map from query key to unfiltered match list.
/// All methods lock internally; safe for concurrent mixed get/put from the
/// parallel association fan-out. Values are stored pre-filter so one entry
/// serves callers with different FilterChains.
class QueryCache {
public:
    explicit QueryCache(std::size_t capacity = 1 << 14) : capacity_(capacity) {}

    /// Cached matches for `key`, recording that `component` depends on the
    /// entry (for later invalidate_component). nullopt on miss.
    [[nodiscard]] std::optional<std::vector<Match>> get(const std::string& key,
                                                        std::string_view component);

    /// Insert (or overwrite) an entry. Oldest entries are evicted FIFO
    /// once `capacity` is exceeded.
    void put(const std::string& key, std::vector<Match> value, std::string_view component);

    /// Drop every entry recorded against `component`. Returns the number
    /// of live entries removed. Entries shared with other components are
    /// dropped too — they recompute on next demand (cheap, and keeps the
    /// bookkeeping a simple component -> keys multimap).
    std::size_t invalidate_component(std::string_view component);

    void clear();
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    void evict_to_capacity_locked();

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::unordered_map<std::string, std::vector<Match>> entries_;
    std::deque<std::string> insertion_order_;
    /// component name -> keys it has read or written (may contain keys
    /// already evicted; erase is a no-op then).
    std::unordered_map<std::string, std::unordered_set<std::string>> component_keys_;
};

} // namespace cybok::search
