// The attack-vector search engine — capability (2) of the paper: associate
// attack-vector data (attack patterns, weaknesses, vulnerabilities) to
// elements of the system model.
//
// Association uses two mechanisms, mirroring the prototype's behavior:
//
//  * lexical matching: attribute text is analyzed (tokenize, stopwords,
//    stem) and ranked against record text with BM25 (or TF-IDF, kept as an
//    ablation). High-level descriptors therefore land on attack patterns
//    and weaknesses, whose texts are technique-level prose.
//  * platform binding: PlatformRef attributes resolve to CPE-style names
//    and match vulnerabilities through exact product binding — the
//    low-level end of the paper's fidelity spectrum.
//
// Every match carries evidence (the matched terms or the platform URI), so
// an analyst can audit *why* a vector was associated — the paper's answer
// to NLP sensitivity is to keep the human in the loop.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cvss/cvss.hpp"
#include "kb/corpus.hpp"
#include "model/system_model.hpp"
#include "search/metrics.hpp"
#include "text/index.hpp"
#include "util/bytes.hpp"
#include "util/mmap.hpp"
#include "util/thread_pool.hpp"

namespace cybok::search {

/// Which record family a match refers to.
enum class VectorClass : std::uint8_t { AttackPattern, Weakness, Vulnerability };
[[nodiscard]] std::string_view vector_class_name(VectorClass c) noexcept;

/// How a match was established.
enum class MatchVia : std::uint8_t {
    Lexical,         ///< NL similarity between attribute and record text
    PlatformBinding, ///< CPE product match
    CrossReference,  ///< derived by following corpus cross-references
};
[[nodiscard]] std::string_view match_via_name(MatchVia v) noexcept;

/// One associated attack vector.
struct Match {
    VectorClass cls = VectorClass::AttackPattern;
    std::size_t corpus_index = 0; ///< index into the corpus vector for `cls`
    std::string id;               ///< "CAPEC-88", "CWE-78", "CVE-2019-10953"
    std::string title;            ///< record name / description head
    double score = 0.0;           ///< ranking score (BM25/TF-IDF; 0 for bindings)
    MatchVia via = MatchVia::Lexical;
    std::vector<std::string> evidence; ///< matched (stemmed) terms or CPE URI
    /// CVSS base score for vulnerabilities with a vector; -1 when absent.
    double severity = -1.0;
};

/// Engine configuration.
struct EngineOptions {
    enum class Ranker : std::uint8_t { Bm25, Tfidf };
    Ranker ranker = Ranker::Bm25;
    /// A lexical match is kept only if the summed IDF of its distinct
    /// matched terms reaches this threshold — this suppresses matches made
    /// purely of ubiquitous words, the paper's "unspecific properties
    /// result in … many irrelevant results" failure mode.
    double min_evidence_idf = 2.0;
    /// Match vulnerabilities lexically as well as via platform binding
    /// (ablation; default off — description text of CVEs is noisy).
    bool lexical_vulnerabilities = false;
    /// Weight multiplier for record titles/names relative to body text.
    float title_weight = 3.0f;
    /// Keep only the best k lexical hits per class query (0 = unlimited).
    /// Applied after the evidence gate; under BM25 it also arms the
    /// kernel's max-score pruning, which skips documents that provably
    /// cannot reach the top k — the surviving hits are exact.
    std::size_t max_lexical_hits = 0;
    /// Lanes for engine *construction*: record text is analyzed in shards
    /// on a util::ThreadPool and the three class indexes are built and
    /// finalized concurrently. 0 = hardware concurrency, 1 = the
    /// sequential reference path. The built engine is bit-identical across
    /// every value (the snapshot determinism test proves it), so this is
    /// deliberately NOT part of signature().
    std::size_t build_threads = 0;

    /// Compact stable encoding of every option that influences query
    /// results — the engine-options half of the query-cache key, so caches
    /// built under different options can never alias.
    [[nodiscard]] std::string signature() const;
};

/// The abstract query surface every association consumer runs against:
/// the monolithic SearchEngine below and the generational SegmentedEngine
/// (search/generation.hpp) both implement it, and both promise the same
/// thing — for the same corpus content, bit-identical results.
///
/// The composite queries (attribute fan-out, platform binding, weakness
/// expansion, explain) are implemented here once over three small hooks
/// (run_lexical + the per-class document statistics), so the two engines
/// cannot drift in dedup, metrics accounting, or evidence semantics.
///
/// Thread-safety contract: construction/apply is the only mutating
/// operation; once built, every member function is const and any number
/// of threads may query one engine concurrently without synchronization.
class QueryEngine {
public:
    QueryEngine() noexcept;
    virtual ~QueryEngine() = default;
    QueryEngine(const QueryEngine&) = delete;
    QueryEngine& operator=(const QueryEngine&) = delete;

    /// The corpus queries are answered against (for a segmented engine:
    /// the merged corpus with all deltas applied). May be expensive on
    /// first call — a segmented engine materializes the merged corpus
    /// lazily, so the O(delta) apply path never pays for it; the lexical
    /// query path reads records through the per-class accessors below
    /// instead.
    [[nodiscard]] virtual const kb::Corpus& corpus() const = 0;
    [[nodiscard]] virtual const EngineOptions& options() const noexcept = 0;
    /// How this engine came to exist: build phase timings and shape, or
    /// the snapshot-thaw marker. Copied into AssocMetrics by Associator.
    [[nodiscard]] virtual const BuildMetrics& build_metrics() const noexcept = 0;
    /// Aggregate shape/resident-size accounting over the class indexes
    /// (the bench regression gate watches these).
    [[nodiscard]] virtual text::IndexStats index_stats() const noexcept = 0;

    /// Process-unique id of this engine instance, monotonically assigned
    /// at construction. Two engines never share a generation even when
    /// they index identical content, so a cache keyed on it can never
    /// serve results computed against different corpus state (the query
    /// cache includes this in every key — see search::Associator).
    [[nodiscard]] std::uint64_t engine_generation() const noexcept { return generation_; }

    /// Free-text query against one record family (lexical only).
    [[nodiscard]] std::vector<Match> query_text(std::string_view text, VectorClass cls) const;

    /// Full attribute query: lexical against patterns and weaknesses for
    /// Descriptor/PlatformRef attributes, platform binding against
    /// vulnerabilities for PlatformRef attributes (plus lexical if the
    /// option is on). Parameter attributes match nothing by design — pure
    /// engineering parameters carry no security text. When `metrics` is
    /// non-null, per-stage timings and candidate counts are accumulated
    /// into it.
    [[nodiscard]] std::vector<Match> query_attribute(const model::Attribute& attr,
                                                     AssocMetrics* metrics = nullptr) const;

    /// query_attribute with the attribute text already analyzed (the token
    /// pipeline is deterministic, so callers that need the tokens anyway —
    /// e.g. to build a cache key — can avoid analyzing twice). `tokens`
    /// must equal attribute_tokens(attr).
    [[nodiscard]] std::vector<Match> query_attribute_tokens(
        const model::Attribute& attr, const std::vector<std::string>& tokens,
        AssocMetrics* metrics = nullptr) const;

    /// The normalized token sequence query_attribute matches with:
    /// analyze(name + " " + value) — tokenize, stopwords, stem.
    [[nodiscard]] static std::vector<std::string> attribute_tokens(const model::Attribute& attr);

    /// Vulnerabilities for a platform (exact binding path), as matches.
    [[nodiscard]] std::vector<Match> query_platform(const kb::Platform& platform) const;

    /// Expand a weakness match into the attack patterns that exploit it
    /// (cross-reference path); used by reports to show the attacker view
    /// behind an owner-view finding.
    [[nodiscard]] std::vector<Match> expand_weakness(const Match& weakness_match) const;

    /// Human-readable audit of *why* a match was produced: per matched
    /// term, its document frequency and IDF in the match's class document
    /// set; for platform bindings, the CPE rule that fired. The paper's
    /// answer to NLP sensitivity is analyst auditability — this is the
    /// audit.
    [[nodiscard]] std::string explain(const model::Attribute& attr, const Match& match) const;

protected:
    /// The lexical hot path each engine supplies: resolve tokens, run the
    /// scoring kernel, materialize Matches with evidence strings and
    /// kernel counters.
    [[nodiscard]] virtual std::vector<Match> run_lexical(const std::vector<std::string>& tokens,
                                                         VectorClass cls,
                                                         AssocMetrics* metrics) const = 0;
    /// Documents of `cls` containing `term` (merged view for segmented
    /// engines) — the explain() statistics hook.
    [[nodiscard]] virtual std::size_t class_doc_frequency(VectorClass cls,
                                                          std::string_view term) const = 0;
    /// Documents of `cls` (merged view for segmented engines).
    [[nodiscard]] virtual std::size_t class_doc_count(VectorClass cls) const noexcept = 0;

    /// Record access by merged corpus position — the lexical hot path
    /// (make_match) reads records through these so a segmented engine can
    /// resolve them from its base + segment overlay without materializing
    /// the merged corpus. Defaults delegate to corpus().
    [[nodiscard]] virtual const kb::AttackPattern& pattern_at(std::size_t index) const {
        return corpus().patterns()[index];
    }
    [[nodiscard]] virtual const kb::Weakness& weakness_at(std::size_t index) const {
        return corpus().weaknesses()[index];
    }
    [[nodiscard]] virtual const kb::Vulnerability& vulnerability_at(std::size_t index) const {
        return corpus().vulnerabilities()[index];
    }

    /// Materialize the identity half of a Match from record `index` of
    /// `cls` (id, title, CVSS severity for vulnerabilities), read through
    /// the per-class record accessors above.
    [[nodiscard]] Match make_match(VectorClass cls, std::size_t index) const;

private:
    std::uint64_t generation_;
};

/// Immutable index over one corpus. Construction analyzes and indexes all
/// record text; queries are read-only and cheap.
///
/// Thread-safety contract: the constructor is the only mutating operation.
/// Once constructed, every member function is const and touches only
/// finalized indexes (see text::InvertedIndex for the finalize-then-
/// read-only invariant), so any number of threads may query one engine
/// concurrently without synchronization — the parallel association
/// pipeline (search::Associator) relies on exactly this.
class SearchEngine final : public QueryEngine {
public:
    explicit SearchEngine(const kb::Corpus& corpus) : SearchEngine(corpus, EngineOptions{}) {}
    SearchEngine(const kb::Corpus& corpus, EngineOptions options)
        : SearchEngine(corpus, std::move(options), nullptr) {}
    /// As above, but sharing an existing pool for the build fan-out
    /// instead of spinning up a transient one (options.build_threads is
    /// then ignored). The pool is only used during construction.
    SearchEngine(const kb::Corpus& corpus, EngineOptions options, util::ThreadPool* pool);

    SearchEngine(const SearchEngine&) = delete;
    SearchEngine& operator=(const SearchEngine&) = delete;

    [[nodiscard]] const kb::Corpus& corpus() const noexcept override { return corpus_; }
    [[nodiscard]] const EngineOptions& options() const noexcept override { return options_; }
    [[nodiscard]] const BuildMetrics& build_metrics() const noexcept override {
        return build_metrics_;
    }

    /// Aggregate shape/resident-size accounting over the three class
    /// indexes (the bench regression gate watches these).
    [[nodiscard]] text::IndexStats index_stats() const noexcept override {
        text::IndexStats s = pattern_index_.stats();
        s += weakness_index_.stats();
        s += vulnerability_index_.stats();
        return s;
    }
    /// Direct access to one class index (tests, explain tooling, the
    /// segmented engine's base segment).
    [[nodiscard]] const text::InvertedIndex& class_index(VectorClass cls) const noexcept {
        switch (cls) {
            case VectorClass::AttackPattern: return pattern_index_;
            case VectorClass::Weakness: return weakness_index_;
            default: return vulnerability_index_;
        }
    }
    /// One class's BM25 scorer (null under the TF-IDF ranker). The
    /// segmented engine borrows these as base-segment bound tables.
    [[nodiscard]] const text::Bm25Scorer* class_bm25(VectorClass cls) const noexcept {
        switch (cls) {
            case VectorClass::AttackPattern: return pattern_bm25_ ? &*pattern_bm25_ : nullptr;
            case VectorClass::Weakness: return weakness_bm25_ ? &*weakness_bm25_ : nullptr;
            default: return vulnerability_bm25_ ? &*vulnerability_bm25_ : nullptr;
        }
    }

    /// Serialize the fully built engine — options and counts into `w`,
    /// the three finalized indexes and the active ranker's precomputed
    /// tables as 64-byte-aligned slabs in `slabs`. Thawing the bytes
    /// yields a bit-identical engine without touching the token pipeline
    /// (see kb/snapshot.hpp for the blob framing).
    void freeze(util::ByteWriter& w, util::SlabWriter& slabs) const;

    /// Reconstruct an engine from freeze() bytes over `corpus`, viewing
    /// the posting stores and score tables inside `slabs` in place (no
    /// per-posting decode; the engine must not outlive the slab memory —
    /// EngineSnapshot carries the backing). The corpus must be the same
    /// one the frozen engine indexed (validated by record counts);
    /// malformed bytes throw ValidationError or ParseError. Returned by
    /// pointer because the engine is neither copyable nor movable (it
    /// holds const references into itself).
    [[nodiscard]] static std::unique_ptr<SearchEngine> thaw(const kb::Corpus& corpus,
                                                            util::ByteReader& r,
                                                            const util::SlabView& slabs);

protected:
    /// The lexical hot path: resolves tokens once, runs the flat-accumulator
    /// scoring kernel (per-thread scratch arena, fused evidence-IDF gate,
    /// optional top-k/pruning per options_), and materializes Matches with
    /// evidence strings. Kernel counters land in `metrics` when non-null.
    [[nodiscard]] std::vector<Match> run_lexical(const std::vector<std::string>& tokens,
                                                 VectorClass cls,
                                                 AssocMetrics* metrics) const override;
    [[nodiscard]] std::size_t class_doc_frequency(VectorClass cls,
                                                  std::string_view term) const override {
        return class_index(cls).doc_frequency(term);
    }
    [[nodiscard]] std::size_t class_doc_count(VectorClass cls) const noexcept override {
        return class_index(cls).doc_count();
    }

private:
    struct ThawTag {};
    SearchEngine(ThawTag, const kb::Corpus& corpus, util::ByteReader& r,
                 const util::SlabView& slabs);

    const kb::Corpus& corpus_;
    EngineOptions options_;
    text::InvertedIndex pattern_index_;
    text::InvertedIndex weakness_index_;
    text::InvertedIndex vulnerability_index_;
    std::optional<text::Bm25Scorer> pattern_bm25_;
    std::optional<text::Bm25Scorer> weakness_bm25_;
    std::optional<text::Bm25Scorer> vulnerability_bm25_;
    std::optional<text::TfidfScorer> pattern_tfidf_;
    std::optional<text::TfidfScorer> weakness_tfidf_;
    std::optional<text::TfidfScorer> vulnerability_tfidf_;
    BuildMetrics build_metrics_;
};

/// A corpus and the engine indexing it, thawed together from one snapshot
/// blob, plus whichever memory backs the slab tables the engine views in
/// place: an aligned owned copy of the slab section (owning thaw) or a
/// shared read-only file mapping (zero-copy thaw). The engine holds
/// references into the corpus and the backing, so the whole struct must
/// stay together and alive as long as the engine is used.
struct EngineSnapshot {
    std::unique_ptr<kb::Corpus> corpus;
    std::unique_ptr<SearchEngine> engine;
    /// Owning thaw: the snapshot's slab section, copied once into
    /// 64-byte-aligned memory (empty on the mmap path).
    util::AlignedBuffer slab_backing;
    /// Zero-copy thaw: the file mapping the engine serves from. Shared so
    /// the registry's generation swap keeps an old mapping alive until the
    /// last pinned session drops it (null on the owning path).
    std::shared_ptr<const util::MappedFile> mapping;
    /// Why load_engine_snapshot fell back from mmap to the owning path
    /// (empty when it did not).
    std::string mmap_fallback_reason;

    /// True when the engine serves its tables straight from the mapped
    /// snapshot file (one physical copy, no per-session duplication).
    [[nodiscard]] bool zero_copy() const noexcept { return mapping != nullptr; }
};

/// Serialize corpus + engine into one framed snapshot blob (magic,
/// version, checksums, eager + aligned slab sections — see
/// kb/snapshot.hpp). The blob captures the *finalized* indexes and scorer
/// tables, so thawing skips tokenization, finalize, and table
/// precomputation entirely.
[[nodiscard]] std::string freeze_engine(const SearchEngine& engine);

/// Open a snapshot blob and reconstruct the corpus and engine (the owning
/// path: the slab section is copied once into aligned memory carried by
/// the returned EngineSnapshot; both checksums are verified). Throws
/// kb::SnapshotError for framing problems (bad magic/version/truncation/
/// checksum) — carrying `source` (originating file path, empty for
/// in-memory blobs) and the byte offset — and util::ValidationError for
/// malformed payload contents; payload decode truncations are rebased
/// into whole-blob offsets and rethrown as SnapshotError.
[[nodiscard]] EngineSnapshot thaw_engine(std::string_view blob, std::string_view source = {});

/// Zero-copy thaw over an existing file mapping: the eager section is
/// decoded (and checksum-verified) as usual, but the slab tables are
/// served from the mapping in place — no copy, no slab checksum pass, so
/// cold start costs O(pages actually touched). Same error contract as
/// thaw_engine.
[[nodiscard]] EngineSnapshot thaw_engine_mapped(std::shared_ptr<const util::MappedFile> mapping);

/// freeze_engine + write to `path` (atomic-enough: write then rename is
/// overkill for a cache file; plain overwrite). Throws util::IoError.
void save_engine_snapshot(const SearchEngine& engine, const std::string& path);

/// Load a snapshot file, preferring the zero-copy mmap path; if mapping
/// fails (fault site "snapshot.map", unsupported platform, special file),
/// falls back to the owning read_file + thaw_engine path and records the
/// reason in EngineSnapshot::mmap_fallback_reason. Corrupt blobs are NOT
/// a mapping failure: SnapshotError propagates from either path.
[[nodiscard]] EngineSnapshot load_engine_snapshot(const std::string& path);

} // namespace cybok::search
