#include "search/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "cvss/cvss2.hpp"
#include "kb/snapshot.hpp"
#include "search/indexing.hpp"
#include "text/scratch.hpp"
#include "text/tokenize.hpp"
#include "util/fault.hpp"
#include "util/fmt.hpp"
#include "util/strings.hpp"

namespace cybok::search {

std::string_view vector_class_name(VectorClass c) noexcept {
    switch (c) {
        case VectorClass::AttackPattern: return "attack-pattern";
        case VectorClass::Weakness: return "weakness";
        case VectorClass::Vulnerability: return "vulnerability";
    }
    return "?";
}

std::string_view match_via_name(MatchVia v) noexcept {
    switch (v) {
        case MatchVia::Lexical: return "lexical";
        case MatchVia::PlatformBinding: return "platform-binding";
        case MatchVia::CrossReference: return "cross-reference";
    }
    return "?";
}

namespace {

/// Truncate a long description for use as a match title (UTF-8-safe:
/// never cuts inside a multi-byte sequence).
std::string head(std::string_view text, std::size_t max_len = 70) {
    return strings::truncate_utf8(text, max_len);
}

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count());
}

} // namespace

QueryEngine::QueryEngine() noexcept {
    // Process-unique, monotone: the query cache keys on it, so no two
    // engine instances — however identical their content — ever alias.
    static std::atomic<std::uint64_t> next{1};
    generation_ = next.fetch_add(1, std::memory_order_relaxed);
}

std::string EngineOptions::signature() const {
    // std::to_chars, not iostreams: this string keys the query cache, so
    // it must not change spelling with the global locale.
    std::string out = ranker == Ranker::Bm25 ? "bm25" : "tfidf";
    out += "|idf=";
    fmt::append_number(out, min_evidence_idf);
    out += lexical_vulnerabilities ? "|lexvuln=1" : "|lexvuln=0";
    out += "|tw=";
    fmt::append_number(out, static_cast<double>(title_weight));
    out += "|k=";
    fmt::append_number(out, static_cast<unsigned long long>(max_lexical_hits));
    return out;
}

namespace {

/// One source field of one record, pending analysis: which text, at what
/// index weight. The field order per document matches the sequential
/// reference loop exactly — that ordering is what makes the parallel
/// build bit-identical (same interning order, same posting order, same
/// float accumulation order).
struct FieldSource {
    const std::string* text;
    float weight;
};

/// Collect every document's field sources for all three classes, in the
/// same class-then-record order the sequential loop visits them. Lanes:
/// 0 = patterns, 1 = weaknesses, 2 = vulnerabilities.
struct BuildPlan {
    std::vector<std::vector<FieldSource>> docs; // flat across classes
    std::array<std::size_t, 3> lane_begin{};    // first doc of each lane
    std::array<std::size_t, 3> lane_count{};
};

BuildPlan make_build_plan(const kb::Corpus& corpus, float title_weight) {
    BuildPlan plan;
    plan.docs.reserve(corpus.patterns().size() + corpus.weaknesses().size() +
                      corpus.vulnerabilities().size());

    // Field source + order comes from detail::for_each_field — the single
    // definition shared with the sequential path and the delta-segment
    // build (search/indexing.hpp).
    const auto plan_record = [&plan, title_weight](const auto& record) {
        std::vector<FieldSource>& f = plan.docs.emplace_back();
        detail::for_each_field(record, title_weight, [&f](const std::string& text, float weight) {
            f.push_back({&text, weight});
        });
    };

    plan.lane_begin[0] = 0;
    plan.lane_count[0] = corpus.patterns().size();
    for (const kb::AttackPattern& p : corpus.patterns()) plan_record(p);

    plan.lane_begin[1] = plan.docs.size();
    plan.lane_count[1] = corpus.weaknesses().size();
    for (const kb::Weakness& w : corpus.weaknesses()) plan_record(w);

    plan.lane_begin[2] = plan.docs.size();
    plan.lane_count[2] = corpus.vulnerabilities().size();
    for (const kb::Vulnerability& v : corpus.vulnerabilities()) plan_record(v);

    return plan;
}

/// An analyzed field: the token stream plus the weight it carries.
struct AnalyzedField {
    std::vector<std::string> tokens;
    float weight;
};

} // namespace

SearchEngine::SearchEngine(const kb::Corpus& corpus, EngineOptions options,
                           util::ThreadPool* pool)
    : corpus_(corpus), options_(options) {
    if (!corpus.indexed())
        throw ValidationError("search engine requires an indexed corpus (call reindex())");

    const Clock::time_point build_start = Clock::now();
    const float tw = options_.title_weight;
    const std::size_t threads =
        pool != nullptr ? pool->thread_count()
        : options_.build_threads == 0 ? util::ThreadPool::default_thread_count()
                                      : options_.build_threads;

    // Sequential reference path: one fused tokenize-and-insert pass. The
    // parallel path below must reproduce this bit for bit — the snapshot
    // determinism test compares frozen blobs of both — which is also what
    // lets a failed parallel build fall back here without changing any
    // result downstream.
    const auto sequential_build = [&] {
        for (const kb::AttackPattern& p : corpus.patterns())
            detail::index_record(pattern_index_, p, tw);
        pattern_index_.finalize();

        for (const kb::Weakness& w : corpus.weaknesses())
            detail::index_record(weakness_index_, w, tw);
        weakness_index_.finalize();

        for (const kb::Vulnerability& v : corpus.vulnerabilities())
            detail::index_record(vulnerability_index_, v, tw);
        vulnerability_index_.finalize();

        if (options_.ranker == EngineOptions::Ranker::Bm25) {
            pattern_bm25_.emplace(pattern_index_);
            weakness_bm25_.emplace(weakness_index_);
            vulnerability_bm25_.emplace(vulnerability_index_);
        } else {
            pattern_tfidf_.emplace(pattern_index_);
            weakness_tfidf_.emplace(weakness_index_);
            vulnerability_tfidf_.emplace(vulnerability_index_);
        }
    };

    if (threads <= 1) {
        sequential_build();
        build_metrics_.index_ns = ns_since(build_start);
    } else {
        // Parallel sharded build, two phases.
        //
        // Phase 1 — analyze: tokenize/stopword/stem every record field
        // across all three classes on the pool. This is the dominant cost
        // and is embarrassingly parallel (analyze() is pure).
        //
        // Phase 2 — insert: each class lane replays its documents *in
        // record order* into its own index, finalizes, and builds its
        // scorer. Insertion order equals the sequential loop's order, so
        // interning, postings, and float accumulation are identical; the
        // three lanes share nothing and run concurrently.
        util::ThreadPool local_pool(pool != nullptr ? 1 : threads);
        util::ThreadPool& p = pool != nullptr ? *pool : local_pool;

        try {
            const BuildPlan plan = make_build_plan(corpus, tw);
            std::vector<std::vector<AnalyzedField>> analyzed(plan.docs.size());

            const Clock::time_point tok_start = Clock::now();
            p.parallel_for(plan.docs.size(), [&](std::size_t i) {
                CYBOK_FAULT_POINT("search.build.shard",
                                  Error("injected: shard analyze failed"));
                const std::vector<FieldSource>& fields = plan.docs[i];
                std::vector<AnalyzedField>& out = analyzed[i];
                out.reserve(fields.size());
                for (const FieldSource& f : fields)
                    out.push_back({text::analyze(*f.text), f.weight});
            });
            build_metrics_.tokenize_ns = ns_since(tok_start);

            const Clock::time_point idx_start = Clock::now();
            std::array<text::InvertedIndex*, 3> lane_index = {&pattern_index_, &weakness_index_,
                                                              &vulnerability_index_};
            const bool bm25 = options_.ranker == EngineOptions::Ranker::Bm25;
            p.parallel_for(3, [&](std::size_t lane) {
                text::InvertedIndex& index = *lane_index[lane];
                const std::size_t begin = plan.lane_begin[lane];
                for (std::size_t d = 0; d < plan.lane_count[lane]; ++d) {
                    index.add_document();
                    for (const AnalyzedField& f : analyzed[begin + d])
                        index.add_terms(f.tokens, f.weight);
                }
                index.finalize();
                switch (lane) {
                    case 0:
                        bm25 ? void(pattern_bm25_.emplace(index))
                             : void(pattern_tfidf_.emplace(index));
                        break;
                    case 1:
                        bm25 ? void(weakness_bm25_.emplace(index))
                             : void(weakness_tfidf_.emplace(index));
                        break;
                    default:
                        bm25 ? void(vulnerability_bm25_.emplace(index))
                             : void(vulnerability_tfidf_.emplace(index));
                        break;
                }
            });
            build_metrics_.index_ns = ns_since(idx_start);
        } catch (const Error&) {
            // A failed lane leaves partially filled indexes behind. Reset
            // everything and run the bit-identical sequential reference
            // build, so a transient shard failure degrades to a slower
            // cold start instead of a failed or corrupted engine.
            pattern_index_ = text::InvertedIndex();
            weakness_index_ = text::InvertedIndex();
            vulnerability_index_ = text::InvertedIndex();
            pattern_bm25_.reset();
            weakness_bm25_.reset();
            vulnerability_bm25_.reset();
            pattern_tfidf_.reset();
            weakness_tfidf_.reset();
            vulnerability_tfidf_.reset();
            build_metrics_.parallel_fallback = true;
            build_metrics_.tokenize_ns = 0;
            const Clock::time_point seq_start = Clock::now();
            sequential_build();
            build_metrics_.index_ns = ns_since(seq_start);
        }
    }

    build_metrics_.wall_ns = ns_since(build_start);
    build_metrics_.docs = corpus.patterns().size() + corpus.weaknesses().size() +
                          corpus.vulnerabilities().size();
    build_metrics_.threads = threads;
}

Match QueryEngine::make_match(VectorClass cls, std::size_t index) const {
    Match m;
    m.cls = cls;
    m.corpus_index = index;
    switch (cls) {
        case VectorClass::AttackPattern: {
            const kb::AttackPattern& p = pattern_at(index);
            m.id = p.id.to_string();
            m.title = p.name;
            break;
        }
        case VectorClass::Weakness: {
            const kb::Weakness& w = weakness_at(index);
            m.id = w.id.to_string();
            m.title = w.name;
            break;
        }
        case VectorClass::Vulnerability: {
            const kb::Vulnerability& v = vulnerability_at(index);
            m.id = v.id.to_string();
            m.title = head(v.description);
            // Corpus snapshots mix v3 and v2 scoring; junk metadata on a
            // single record must not abort a whole-model association.
            if (!v.cvss_vector.empty())
                m.severity = cvss::score_any(v.cvss_vector).value_or(-1.0);
            break;
        }
    }
    return m;
}

std::vector<Match> SearchEngine::run_lexical(const std::vector<std::string>& tokens,
                                             VectorClass cls,
                                             AssocMetrics* metrics) const {
    const text::InvertedIndex* index = nullptr;
    const text::Bm25Scorer* bm25 = nullptr;
    const text::TfidfScorer* tfidf = nullptr;
    switch (cls) {
        case VectorClass::AttackPattern:
            index = &pattern_index_;
            bm25 = pattern_bm25_ ? &*pattern_bm25_ : nullptr;
            tfidf = pattern_tfidf_ ? &*pattern_tfidf_ : nullptr;
            break;
        case VectorClass::Weakness:
            index = &weakness_index_;
            bm25 = weakness_bm25_ ? &*weakness_bm25_ : nullptr;
            tfidf = weakness_tfidf_ ? &*weakness_tfidf_ : nullptr;
            break;
        case VectorClass::Vulnerability:
            index = &vulnerability_index_;
            bm25 = vulnerability_bm25_ ? &*vulnerability_bm25_ : nullptr;
            tfidf = vulnerability_tfidf_ ? &*vulnerability_tfidf_ : nullptr;
            break;
    }

    // The evidence-IDF gate runs inside the kernel (KernelOptions), so the
    // hits that come back are final: distinct sorted matched terms, no
    // per-hit dedup or IDF recomputation here.
    text::KernelOptions kopts;
    kopts.top_k = options_.max_lexical_hits;
    kopts.min_evidence_idf = options_.min_evidence_idf;
    text::KernelStats kstats;
    text::QueryScratch& scratch = text::tls_query_scratch();
    const std::vector<text::Hit> hits =
        bm25 != nullptr ? bm25->query_kernel(tokens, scratch, kopts, &kstats)
                        : tfidf->query_kernel(tokens, scratch, kopts, &kstats);

    std::vector<Match> out;
    out.reserve(hits.size());
    for (const text::Hit& h : hits) {
        Match m = make_match(cls, h.doc);
        m.score = h.score;
        m.via = MatchVia::Lexical;
        m.evidence.reserve(h.matched_terms.size());
        for (text::TermId t : h.matched_terms) m.evidence.push_back(index->vocabulary().term(t));
        out.push_back(std::move(m));
    }
    if (metrics != nullptr) {
        metrics->kernel_postings += kstats.postings_scanned;
        metrics->kernel_pruned_docs += kstats.docs_pruned;
        metrics->kernel_gated_hits += kstats.hits_gated;
        metrics->kernel_fallbacks += kstats.fallback_queries;
        metrics->kernel_blocks_decoded += kstats.blocks_decoded;
        metrics->kernel_blocks_skipped += kstats.blocks_skipped;
    }
    return out;
}

std::vector<Match> QueryEngine::query_text(std::string_view text, VectorClass cls) const {
    return run_lexical(text::analyze(text), cls, nullptr);
}

std::vector<Match> QueryEngine::query_platform(const kb::Platform& platform) const {
    const kb::Corpus& c = corpus();
    std::vector<Match> out;
    for (kb::VulnerabilityId id : c.vulnerabilities_for(platform)) {
        const kb::Vulnerability* v = c.find(id);
        // The id came from the corpus itself; index lookup cannot fail.
        std::size_t index = static_cast<std::size_t>(v - c.vulnerabilities().data());
        Match m = make_match(VectorClass::Vulnerability, index);
        m.via = MatchVia::PlatformBinding;
        m.evidence = {platform.uri()};
        out.push_back(std::move(m));
    }
    return out;
}

std::vector<std::string> QueryEngine::attribute_tokens(const model::Attribute& attr) {
    return text::analyze(attr.name + " " + attr.value);
}

std::vector<Match> QueryEngine::query_attribute(const model::Attribute& attr,
                                                AssocMetrics* metrics) const {
    if (attr.kind == model::AttributeKind::Parameter) return {};
    const Clock::time_point start = Clock::now();
    const std::vector<std::string> tokens = attribute_tokens(attr);
    if (metrics != nullptr) metrics->timings.analyze_ns += ns_since(start);
    return query_attribute_tokens(attr, tokens, metrics);
}

std::vector<Match> QueryEngine::query_attribute_tokens(const model::Attribute& attr,
                                                       const std::vector<std::string>& tokens,
                                                       AssocMetrics* metrics) const {
    std::vector<Match> out;
    if (attr.kind == model::AttributeKind::Parameter) return out;

    const Clock::time_point lex_start = Clock::now();
    for (Match& m : run_lexical(tokens, VectorClass::AttackPattern, metrics))
        out.push_back(std::move(m));
    for (Match& m : run_lexical(tokens, VectorClass::Weakness, metrics))
        out.push_back(std::move(m));
    if (metrics != nullptr) metrics->timings.lexical_ns += ns_since(lex_start);

    if (attr.kind == model::AttributeKind::PlatformRef && attr.platform.has_value()) {
        const Clock::time_point bind_start = Clock::now();
        for (Match& m : query_platform(*attr.platform)) out.push_back(std::move(m));
        if (metrics != nullptr) metrics->timings.binding_ns += ns_since(bind_start);
    }
    if (options().lexical_vulnerabilities) {
        const Clock::time_point lexvuln_start = Clock::now();
        std::vector<Match> lex = run_lexical(tokens, VectorClass::Vulnerability, metrics);
        // Deduplicate against platform-binding results (binding wins). A
        // hash set of the already-bound corpus indexes keeps this linear —
        // platform attributes routinely bind thousands of CVEs, so the
        // old any_of-per-candidate scan was quadratic exactly where the
        // result space is largest.
        std::unordered_set<std::size_t> bound;
        for (const Match& e : out)
            if (e.cls == VectorClass::Vulnerability) bound.insert(e.corpus_index);
        for (Match& m : lex)
            if (!bound.contains(m.corpus_index)) out.push_back(std::move(m));
        if (metrics != nullptr) metrics->timings.lexical_ns += ns_since(lexvuln_start);
    }

    if (metrics != nullptr) {
        ++metrics->queries_run;
        for (const Match& m : out) {
            switch (m.cls) {
                case VectorClass::AttackPattern: ++metrics->pattern_candidates; break;
                case VectorClass::Weakness: ++metrics->weakness_candidates; break;
                case VectorClass::Vulnerability: ++metrics->vulnerability_candidates; break;
            }
        }
    }
    return out;
}

std::vector<Match> QueryEngine::expand_weakness(const Match& weakness_match) const {
    if (weakness_match.cls != VectorClass::Weakness)
        throw ValidationError("expand_weakness requires a weakness match");
    const kb::Corpus& c = corpus();
    const kb::Weakness& w = c.weaknesses()[weakness_match.corpus_index];
    std::vector<Match> out;
    for (kb::AttackPatternId pid : w.related_patterns) {
        const kb::AttackPattern* p = c.find(pid);
        if (p == nullptr) continue;
        std::size_t index = static_cast<std::size_t>(p - c.patterns().data());
        Match m = make_match(VectorClass::AttackPattern, index);
        m.via = MatchVia::CrossReference;
        m.evidence = {w.id.to_string()};
        out.push_back(std::move(m));
    }
    return out;
}

void SearchEngine::freeze(util::ByteWriter& w, util::SlabWriter& slabs) const {
    // Options first: thaw must reconstruct the exact query behavior, and
    // the session layer compares signatures before trusting a snapshot.
    // build_threads is deliberately absent — it shapes construction, not
    // the constructed engine.
    w.u8(static_cast<std::uint8_t>(options_.ranker));
    w.f64(options_.min_evidence_idf);
    w.u8(options_.lexical_vulnerabilities ? 1 : 0);
    w.f32(options_.title_weight);
    w.u64(static_cast<std::uint64_t>(options_.max_lexical_hits));

    pattern_index_.freeze(w, slabs);
    weakness_index_.freeze(w, slabs);
    vulnerability_index_.freeze(w, slabs);

    // Only the active ranker's tables exist; the tag byte above tells
    // thaw which three scorers to expect.
    if (options_.ranker == EngineOptions::Ranker::Bm25) {
        pattern_bm25_->freeze(w, slabs);
        weakness_bm25_->freeze(w, slabs);
        vulnerability_bm25_->freeze(w, slabs);
    } else {
        pattern_tfidf_->freeze(w, slabs);
        weakness_tfidf_->freeze(w, slabs);
        vulnerability_tfidf_->freeze(w, slabs);
    }
}

SearchEngine::SearchEngine(ThawTag, const kb::Corpus& corpus, util::ByteReader& r,
                           const util::SlabView& slabs)
    : corpus_(corpus) {
    const Clock::time_point start = Clock::now();

    const std::uint8_t ranker = r.u8();
    if (ranker > 1) throw ValidationError("engine snapshot: unknown ranker tag");
    options_.ranker = static_cast<EngineOptions::Ranker>(ranker);
    options_.min_evidence_idf = r.f64();
    options_.lexical_vulnerabilities = r.u8() != 0;
    options_.title_weight = r.f32();
    options_.max_lexical_hits = static_cast<std::size_t>(r.u64());

    pattern_index_ = text::InvertedIndex::thaw(r, slabs);
    weakness_index_ = text::InvertedIndex::thaw(r, slabs);
    vulnerability_index_ = text::InvertedIndex::thaw(r, slabs);
    if (pattern_index_.doc_count() != corpus.patterns().size() ||
        weakness_index_.doc_count() != corpus.weaknesses().size() ||
        vulnerability_index_.doc_count() != corpus.vulnerabilities().size())
        throw ValidationError("engine snapshot does not match corpus shape");

    if (options_.ranker == EngineOptions::Ranker::Bm25) {
        pattern_bm25_.emplace(text::Bm25Scorer::thaw(pattern_index_, r, slabs));
        weakness_bm25_.emplace(text::Bm25Scorer::thaw(weakness_index_, r, slabs));
        vulnerability_bm25_.emplace(text::Bm25Scorer::thaw(vulnerability_index_, r, slabs));
    } else {
        pattern_tfidf_.emplace(text::TfidfScorer::thaw(pattern_index_, r, slabs));
        weakness_tfidf_.emplace(text::TfidfScorer::thaw(weakness_index_, r, slabs));
        vulnerability_tfidf_.emplace(text::TfidfScorer::thaw(vulnerability_index_, r, slabs));
    }

    build_metrics_.from_snapshot = true;
    build_metrics_.docs = corpus.patterns().size() + corpus.weaknesses().size() +
                          corpus.vulnerabilities().size();
    build_metrics_.wall_ns = ns_since(start);
}

std::unique_ptr<SearchEngine> SearchEngine::thaw(const kb::Corpus& corpus, util::ByteReader& r,
                                                 const util::SlabView& slabs) {
    return std::unique_ptr<SearchEngine>(new SearchEngine(ThawTag{}, corpus, r, slabs));
}

std::string freeze_engine(const SearchEngine& engine) {
    util::ByteWriter w;
    util::SlabWriter slabs;
    kb::freeze_corpus(w, engine.corpus());
    engine.freeze(w, slabs);
    return kb::seal_snapshot(std::move(w).take(), slabs.bytes());
}

namespace {

/// Shared tail of the owning and mapped thaw paths: decode the eager
/// section over the (already validated, already aligned) slab view.
EngineSnapshot thaw_engine_sections(EngineSnapshot snap, std::string_view eager,
                                    const util::SlabView& slabs, std::string_view source) {
    util::ByteReader r(eager);
    try {
        snap.corpus = std::make_unique<kb::Corpus>(kb::thaw_corpus(r));
        snap.engine = SearchEngine::thaw(*snap.corpus, r, slabs);
    } catch (const ParseError& e) {
        // A ByteReader truncation mid-eager-stream or a structural slab
        // violation. Rebase the eager-relative offset into a whole-blob
        // offset so the message pinpoints the corrupt byte in the file.
        throw kb::SnapshotError(std::string("snapshot payload: ") + e.what(),
                                std::string(source), kb::kSnapshotHeaderSize + e.offset());
    }
    // The framing already checksum-verified the eager section; leftover
    // bytes here mean a layout mismatch the version field should have
    // caught.
    if (!r.done())
        throw kb::SnapshotError("snapshot payload has trailing engine bytes",
                                std::string(source), kb::kSnapshotHeaderSize + r.position());
    return snap;
}

} // namespace

EngineSnapshot thaw_engine(std::string_view blob, std::string_view source) {
    const kb::SnapshotSections sections = kb::open_snapshot(blob, source);
    EngineSnapshot snap;
    // One memcpy of the slab section into 64-byte-aligned memory — the
    // only per-byte work the owning thaw does on the big tables (blobs in
    // std::string carry no alignment guarantee, so they cannot be viewed
    // in place).
    snap.slab_backing = util::AlignedBuffer(sections.slabs);
    const util::SlabView slabs(snap.slab_backing.view());
    return thaw_engine_sections(std::move(snap), sections.eager, slabs, source);
}

EngineSnapshot thaw_engine_mapped(std::shared_ptr<const util::MappedFile> mapping) {
    const std::string& source = mapping->path();
    // Skip the slab checksum: hashing the slabs would fault in the whole
    // file and defeat the zero-copy start. The slab tables are validated
    // structurally below and posting blocks self-check at decode time.
    const kb::SnapshotSections sections =
        kb::open_snapshot(mapping->view(), source, /*verify_slab_checksum=*/false);
    EngineSnapshot snap;
    snap.mapping = std::move(mapping);
    const util::SlabView slabs(sections.slabs);
    return thaw_engine_sections(std::move(snap), sections.eager, slabs, source);
}

void save_engine_snapshot(const SearchEngine& engine, const std::string& path) {
    util::write_file(path, freeze_engine(engine));
}

EngineSnapshot load_engine_snapshot(const std::string& path) {
    try {
        CYBOK_FAULT_POINT("snapshot.map", IoError("injected: mmap failed: " + path));
        auto mapping = std::make_shared<const util::MappedFile>(util::MappedFile::open(path));
        return thaw_engine_mapped(std::move(mapping));
    } catch (const IoError& e) {
        // Mapping failed (injected fault, unsupported platform, special
        // file). Fall back to the owning read+thaw path and record why;
        // a missing file fails both paths and propagates from read_file.
        // Corrupt blobs are not a mapping failure: SnapshotError from the
        // mapped thaw above propagates rather than being retried.
        EngineSnapshot snap = thaw_engine(util::read_file(path), path);
        snap.mmap_fallback_reason = e.what();
        return snap;
    }
}

std::string QueryEngine::explain(const model::Attribute& attr, const Match& match) const {
    std::ostringstream out;
    out << match.id << " (" << match.title << ") matched attribute \"" << attr.name << " = "
        << attr.value << "\" via " << match_via_name(match.via) << "\n";

    if (match.via == MatchVia::PlatformBinding) {
        out << "  CPE rule: attribute platform "
            << (attr.platform.has_value() ? attr.platform->uri() : std::string("<none>"))
            << " matches record binding " << (match.evidence.empty() ? "?" : match.evidence[0])
            << " (vendor+product equal, version ANY-compatible)\n";
        if (match.severity >= 0.0) out << "  CVSS base severity: " << match.severity << "\n";
        return out.str();
    }

    // Statistics come through the class_doc_* hooks, so a segmented
    // engine explains with merged document frequencies — the same numbers
    // its gate and ranking used.
    const double n_docs = static_cast<double>(class_doc_count(match.cls));
    out << "  query terms (after tokenize/stopwords/stem):\n";
    double total_idf = 0.0;
    for (const std::string& token : text::analyze(attr.name + " " + attr.value)) {
        const std::size_t df = class_doc_frequency(match.cls, token);
        const double idf = text::rsj_idf(n_docs, static_cast<double>(df));
        const bool matched = std::find(match.evidence.begin(), match.evidence.end(), token) !=
                             match.evidence.end();
        out << "    " << (matched ? "+" : " ") << " \"" << token << "\" df=" << df
            << " idf=" << idf << (matched ? "  <- matched this record" : "") << "\n";
        if (matched) total_idf += idf;
    }
    out << "  evidence IDF total " << total_idf << " (gate " << options().min_evidence_idf
        << "), ranking score " << match.score << "\n";
    return out.str();
}

} // namespace cybok::search
