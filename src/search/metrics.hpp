// Per-run instrumentation for the association engine: how many attribute
// queries actually ran, how many were served from the memoizing cache,
// what each pipeline stage cost, and how many candidates each record
// class produced. The paper warns that the association result space is
// "very large"; these counters are how the repo tracks what that space
// costs and how much the cache and the parallel fan-out buy back.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/json.hpp"

namespace cybok::search {

/// Wall-clock nanoseconds per association stage, accumulated across all
/// queries of a run (steady_clock). On a parallel run the stage sums are
/// CPU-time-like: concurrent queries each contribute their full duration,
/// so `lexical_ns` can exceed `wall_ns`.
struct StageTimings {
    std::uint64_t analyze_ns = 0; ///< tokenize + stopwords + stem of attribute text
    std::uint64_t lexical_ns = 0; ///< BM25/TF-IDF ranking + evidence gating
    std::uint64_t binding_ns = 0; ///< CPE platform-binding lookups
    std::uint64_t filter_ns = 0;  ///< FilterChain application
    std::uint64_t wall_ns = 0;    ///< end-to-end wall clock of the run

    void merge(const StageTimings& other) noexcept;
};

/// How the engine this run queries came to exist: cold-built (tokenize +
/// index + finalize, possibly across shards) or thawed from a binary
/// snapshot. Recorded once at engine construction and copied into every
/// AssocMetrics the engine's Associator produces.
struct BuildMetrics {
    std::uint64_t tokenize_ns = 0; ///< analyze() over all record fields (0 when thawed)
    std::uint64_t index_ns = 0;    ///< interning + postings + finalize + scorer tables
    std::uint64_t wall_ns = 0;     ///< end-to-end engine construction wall clock
    std::size_t docs = 0;          ///< documents across the three indexes
    std::size_t threads = 1;       ///< lanes the build fanned out across
    bool from_snapshot = false;    ///< true when the engine was thawed, not built
    /// The parallel sharded build failed (a lane threw); the engine reset
    /// its indexes and re-ran the sequential reference build instead.
    bool parallel_fallback = false;

    [[nodiscard]] json::Value to_json() const;
};

/// Graceful-degradation events: every place the pipeline absorbed a typed
/// failure and continued on a documented fallback path instead of
/// crashing or silently producing different results. Zero everywhere on a
/// healthy run; surfaced in the report's Diagnostics section (satellite of
/// the fault-injection subsystem, see ARCHITECTURE.md §6).
struct DegradeCounts {
    std::size_t snapshot_fallbacks = 0;     ///< cold-start snapshot unusable -> fresh build
    std::size_t snapshot_save_failures = 0; ///< snapshot write failed -> serve uncached
    std::size_t cache_recoveries = 0;       ///< cache get/put failed -> recompute / skip caching
    std::size_t recompute_retries = 0;      ///< attribute query retried after transient failure
    std::size_t records_skipped = 0;        ///< corpus records dropped by lenient decode
    std::size_t mmap_fallbacks = 0;         ///< snapshot mmap failed -> owning-buffer thaw
    std::size_t compaction_failures = 0;    ///< compaction fold failed -> old generation kept
    std::string last_reason;                ///< most recent degradation's error text

    [[nodiscard]] bool any() const noexcept {
        return snapshot_fallbacks + snapshot_save_failures + cache_recoveries +
                   recompute_retries + records_skipped + mmap_fallbacks +
                   compaction_failures >
               0;
    }
    void merge(const DegradeCounts& other);
    [[nodiscard]] json::Value to_json() const;
};

/// Diagnostic counts from the most recent lint run over the session state
/// the associations were computed from (zero until a lint runs). Kept here
/// so one AssocMetrics snapshot carries everything the report preamble and
/// the bench sidecars need about a run's inputs and execution.
struct LintCounts {
    std::size_t rules_run = 0;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
    std::uint64_t wall_ns = 0;

    [[nodiscard]] bool ran() const noexcept { return rules_run > 0; }
    /// Adopt whichever side has linted (later run wins on conflict).
    void merge(const LintCounts& other) noexcept;
    [[nodiscard]] json::Value to_json() const;
};

/// Counters from the most recent flow-pass run (exposure taint / hazard
/// slice / chokepoint fixpoints) over the session state — zero until a
/// flow analysis runs. Every counter is a deterministic function of the
/// model + association map (no timings), so bench sidecars can gate them
/// with exact ceilings the same way the kernel counters are gated.
struct FlowCounts {
    std::size_t nodes = 0;             ///< live components in the flow graph
    std::size_t edges = 0;             ///< directed edges (bidirectional = 2)
    std::uint64_t taint_iterations = 0; ///< worklist pops of the forward taint fixpoint
    std::uint64_t slice_iterations = 0; ///< worklist pops of the backward slice fixpoint
    std::uint64_t edges_traversed = 0;  ///< edge relaxations across both fixpoints
    std::size_t tainted = 0;           ///< components with taint > 0
    std::size_t chokepoints = 0;       ///< candidates that sever >= 1 entry->hazard flow
    std::size_t analyses = 0;          ///< full analyze() runs folded in
    std::size_t incremental_analyses = 0; ///< reanalyze() runs that took the delta path
    std::size_t reused_components = 0; ///< component results copied verbatim by reanalyze

    [[nodiscard]] bool ran() const noexcept { return analyses + incremental_analyses > 0; }
    /// Adopt whichever side has analyzed (later run wins on conflict);
    /// analyses/incremental/reused accumulate.
    void merge(const FlowCounts& other) noexcept;
    [[nodiscard]] json::Value to_json() const;
};

/// Counters for one (or several merged) association run(s). Thread-local
/// instances are accumulated by worker lanes and merged under a lock, so
/// the hot path never contends on shared counters.
struct AssocMetrics {
    // -- query volume --------------------------------------------------------
    std::size_t components = 0;      ///< components visited
    std::size_t attributes = 0;      ///< attributes visited (incl. cache hits)
    std::size_t queries_run = 0;     ///< engine queries actually executed
    std::size_t reused_components = 0; ///< components copied verbatim by reassociate

    // -- cache ---------------------------------------------------------------
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t cache_invalidations = 0; ///< entries dropped by component invalidation

    // -- result volume per record class --------------------------------------
    std::size_t pattern_candidates = 0;
    std::size_t weakness_candidates = 0;
    std::size_t vulnerability_candidates = 0;

    // -- scoring kernel -------------------------------------------------------
    std::uint64_t kernel_postings = 0;    ///< postings actually decoded by the scoring kernel
    std::uint64_t kernel_pruned_docs = 0; ///< pivot docs proven below the top-k floor (BMW)
    std::uint64_t kernel_gated_hits = 0;  ///< candidates dropped by the fused evidence gate
    std::uint64_t kernel_fallbacks = 0;   ///< queries routed to the reference scorer (>64 terms)
    std::uint64_t kernel_blocks_decoded = 0; ///< posting blocks decompressed
    std::uint64_t kernel_blocks_skipped = 0; ///< posting blocks skipped via block-max bounds
    std::uint64_t kernel_segments_visited = 0;  ///< segments holding >=1 query-term list
    std::uint64_t kernel_tombstones_masked = 0; ///< postings skipped as withdrawn/superseded

    // -- execution shape -----------------------------------------------------
    std::size_t threads = 1; ///< lanes the run fanned out across
    StageTimings timings;
    BuildMetrics build;    ///< how the engine behind this run was constructed
    LintCounts lint;       ///< diagnostics found by the session's lint pass
    FlowCounts flow;       ///< fixpoint counters from the session's flow pass
    DegradeCounts degrade; ///< absorbed failures + the fallback paths taken

    /// Fold `other` into this (cache/query counters add; threads maxes).
    void merge(const AssocMetrics& other);

    /// hits / (hits + misses); 0 when the cache saw no traffic.
    [[nodiscard]] double cache_hit_rate() const noexcept;

    [[nodiscard]] std::size_t total_candidates() const noexcept {
        return pattern_candidates + weakness_candidates + vulnerability_candidates;
    }

    /// One-paragraph human-readable summary (dashboard / bench preambles).
    [[nodiscard]] std::string summary() const;

    /// Machine-readable form (BENCH_*.json sidecar friendly).
    [[nodiscard]] json::Value to_json() const;
};

} // namespace cybok::search
