// The filter pipeline for managing the large result space.
//
// The paper: "the total number of attack vectors returned by the search
// process is large … Filtering functionality is implemented to manage
// these attack vectors." Filters are composable named predicates plus two
// structural reductions (top-k, vulnerability abstraction); the chain
// records how many matches each stage dropped so the dashboard can show
// the funnel.

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "search/engine.hpp"

namespace cybok::search {

/// A named predicate over matches; true = keep.
struct Filter {
    std::string name;
    std::function<bool(const Match&)> keep;
};

// -- predicate factories ---------------------------------------------------

/// Keep only the given class.
[[nodiscard]] Filter by_class(VectorClass cls);
/// Keep matches whose ranking score is at least `threshold`.
[[nodiscard]] Filter min_score(double threshold);
/// Keep vulnerabilities whose CVSS severity band is at least `band`;
/// non-vulnerability matches always pass (severity is a vulnerability
/// concept — the paper's CVSS caveat).
[[nodiscard]] Filter min_severity(cvss::Severity band);
/// Keep matches established via the given mechanism.
[[nodiscard]] Filter by_via(MatchVia via);
/// Keep matches whose evidence contains the given term.
[[nodiscard]] Filter evidence_contains(std::string term);

/// A sequential filter chain with per-stage drop accounting.
class FilterChain {
public:
    FilterChain& add(Filter f);
    /// After predicates, keep only the `k` highest-scoring matches per
    /// class (0 = unlimited). Vulnerability matches from platform bindings
    /// rank by severity since their lexical score is 0.
    FilterChain& top_k_per_class(std::size_t k);

    struct Report {
        std::size_t input = 0;
        std::size_t output = 0;
        /// stage name -> matches dropped by that stage.
        std::map<std::string, std::size_t> dropped_by;
    };

    /// Apply to a match list; returns the surviving matches and fills
    /// `report` if non-null.
    [[nodiscard]] std::vector<Match> apply(std::vector<Match> matches,
                                           Report* report = nullptr) const;

    [[nodiscard]] std::size_t stage_count() const noexcept { return filters_.size(); }

private:
    std::vector<Filter> filters_;
    std::size_t top_k_ = 0;
};

/// The paper's fidelity-mitigation: "abstract away vulnerabilities at the
/// earlier stages of the design lifecycle". Replaces vulnerability matches
/// by one aggregated weakness-class match per distinct CWE (carrying the
/// count and the maximum severity of the vulnerabilities it abstracts);
/// vulnerabilities without CWE references are aggregated per platform
/// evidence. Pattern/weakness matches pass through unchanged.
[[nodiscard]] std::vector<Match> abstract_vulnerabilities(const std::vector<Match>& matches,
                                                          const kb::Corpus& corpus);

} // namespace cybok::search
