#include "cvss/cvss.hpp"

#include <cmath>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace cybok::cvss {

namespace {

// -- metric weights (CVSS v3.1 specification, table 8.4) -----------------

double weight(AttackVector v) {
    switch (v) {
        case AttackVector::Network: return 0.85;
        case AttackVector::Adjacent: return 0.62;
        case AttackVector::Local: return 0.55;
        case AttackVector::Physical: return 0.2;
    }
    return 0.0;
}

double weight(AttackComplexity v) {
    return v == AttackComplexity::Low ? 0.77 : 0.44;
}

double weight(PrivilegesRequired v, Scope s) {
    switch (v) {
        case PrivilegesRequired::None: return 0.85;
        case PrivilegesRequired::Low: return s == Scope::Changed ? 0.68 : 0.62;
        case PrivilegesRequired::High: return s == Scope::Changed ? 0.5 : 0.27;
    }
    return 0.0;
}

double weight(UserInteraction v) {
    return v == UserInteraction::None ? 0.85 : 0.62;
}

double weight(Impact v) {
    switch (v) {
        case Impact::High: return 0.56;
        case Impact::Low: return 0.22;
        case Impact::None: return 0.0;
    }
    return 0.0;
}

double weight(ExploitMaturity v) {
    switch (v) {
        case ExploitMaturity::NotDefined:
        case ExploitMaturity::High: return 1.0;
        case ExploitMaturity::Functional: return 0.97;
        case ExploitMaturity::ProofOfConcept: return 0.94;
        case ExploitMaturity::Unproven: return 0.91;
    }
    return 1.0;
}

double weight(RemediationLevel v) {
    switch (v) {
        case RemediationLevel::NotDefined:
        case RemediationLevel::Unavailable: return 1.0;
        case RemediationLevel::Workaround: return 0.97;
        case RemediationLevel::TemporaryFix: return 0.96;
        case RemediationLevel::OfficialFix: return 0.95;
    }
    return 1.0;
}

double weight(ReportConfidence v) {
    switch (v) {
        case ReportConfidence::NotDefined:
        case ReportConfidence::Confirmed: return 1.0;
        case ReportConfidence::Reasonable: return 0.96;
        case ReportConfidence::Unknown: return 0.92;
    }
    return 1.0;
}

double weight(Requirement v) {
    switch (v) {
        case Requirement::NotDefined:
        case Requirement::Medium: return 1.0;
        case Requirement::High: return 1.5;
        case Requirement::Low: return 0.5;
    }
    return 1.0;
}

// -- parsing --------------------------------------------------------------

template <typename T>
T parse_metric(std::string_view value, const std::map<std::string_view, T>& table,
               std::string_view metric) {
    auto it = table.find(value);
    if (it == table.end())
        throw ParseError("invalid CVSS value '" + std::string(value) + "' for metric " +
                         std::string(metric));
    return it->second;
}

} // namespace

Vector parse(std::string_view text) {
    std::string_view rest = strings::trim(text);
    if (rest.starts_with("CVSS:3.1/")) rest.remove_prefix(9);
    else if (rest.starts_with("CVSS:3.0/")) rest.remove_prefix(9);
    else throw ParseError("CVSS vector must start with 'CVSS:3.1/' or 'CVSS:3.0/'");

    Vector v;
    bool have_av = false, have_ac = false, have_pr = false, have_ui = false;
    bool have_s = false, have_c = false, have_i = false, have_a = false;

    static const std::map<std::string_view, AttackVector> av_tab{
        {"N", AttackVector::Network}, {"A", AttackVector::Adjacent},
        {"L", AttackVector::Local}, {"P", AttackVector::Physical}};
    static const std::map<std::string_view, AttackComplexity> ac_tab{
        {"L", AttackComplexity::Low}, {"H", AttackComplexity::High}};
    static const std::map<std::string_view, PrivilegesRequired> pr_tab{
        {"N", PrivilegesRequired::None}, {"L", PrivilegesRequired::Low},
        {"H", PrivilegesRequired::High}};
    static const std::map<std::string_view, UserInteraction> ui_tab{
        {"N", UserInteraction::None}, {"R", UserInteraction::Required}};
    static const std::map<std::string_view, Scope> s_tab{{"U", Scope::Unchanged},
                                                         {"C", Scope::Changed}};
    static const std::map<std::string_view, Impact> cia_tab{
        {"H", Impact::High}, {"L", Impact::Low}, {"N", Impact::None}};
    static const std::map<std::string_view, ExploitMaturity> e_tab{
        {"X", ExploitMaturity::NotDefined}, {"H", ExploitMaturity::High},
        {"F", ExploitMaturity::Functional}, {"P", ExploitMaturity::ProofOfConcept},
        {"U", ExploitMaturity::Unproven}};
    static const std::map<std::string_view, RemediationLevel> rl_tab{
        {"X", RemediationLevel::NotDefined}, {"U", RemediationLevel::Unavailable},
        {"W", RemediationLevel::Workaround}, {"T", RemediationLevel::TemporaryFix},
        {"O", RemediationLevel::OfficialFix}};
    static const std::map<std::string_view, ReportConfidence> rc_tab{
        {"X", ReportConfidence::NotDefined}, {"C", ReportConfidence::Confirmed},
        {"R", ReportConfidence::Reasonable}, {"U", ReportConfidence::Unknown}};
    static const std::map<std::string_view, Requirement> req_tab{
        {"X", Requirement::NotDefined}, {"H", Requirement::High},
        {"M", Requirement::Medium}, {"L", Requirement::Low}};

    for (std::string_view part : strings::split(rest, '/')) {
        if (part.empty()) throw ParseError("empty CVSS metric group");
        std::size_t colon = part.find(':');
        if (colon == std::string_view::npos)
            throw ParseError("CVSS metric missing ':' separator: " + std::string(part));
        std::string_view key = part.substr(0, colon);
        std::string_view val = part.substr(colon + 1);

        if (key == "AV") { v.av = parse_metric(val, av_tab, key); have_av = true; }
        else if (key == "AC") { v.ac = parse_metric(val, ac_tab, key); have_ac = true; }
        else if (key == "PR") { v.pr = parse_metric(val, pr_tab, key); have_pr = true; }
        else if (key == "UI") { v.ui = parse_metric(val, ui_tab, key); have_ui = true; }
        else if (key == "S") { v.scope = parse_metric(val, s_tab, key); have_s = true; }
        else if (key == "C") { v.conf = parse_metric(val, cia_tab, key); have_c = true; }
        else if (key == "I") { v.integ = parse_metric(val, cia_tab, key); have_i = true; }
        else if (key == "A") { v.avail = parse_metric(val, cia_tab, key); have_a = true; }
        else if (key == "E") { v.exploit = parse_metric(val, e_tab, key); }
        else if (key == "RL") { v.remediation = parse_metric(val, rl_tab, key); }
        else if (key == "RC") { v.confidence = parse_metric(val, rc_tab, key); }
        else if (key == "CR") { v.cr = parse_metric(val, req_tab, key); }
        else if (key == "IR") { v.ir = parse_metric(val, req_tab, key); }
        else if (key == "AR") { v.ar = parse_metric(val, req_tab, key); }
        else if (key == "MAV") { if (val != "X") v.mav = parse_metric(val, av_tab, key); }
        else if (key == "MAC") { if (val != "X") v.mac = parse_metric(val, ac_tab, key); }
        else if (key == "MPR") { if (val != "X") v.mpr = parse_metric(val, pr_tab, key); }
        else if (key == "MUI") { if (val != "X") v.mui = parse_metric(val, ui_tab, key); }
        else if (key == "MS") { if (val != "X") v.mscope = parse_metric(val, s_tab, key); }
        else if (key == "MC") { if (val != "X") v.mconf = parse_metric(val, cia_tab, key); }
        else if (key == "MI") { if (val != "X") v.minteg = parse_metric(val, cia_tab, key); }
        else if (key == "MA") { if (val != "X") v.mavail = parse_metric(val, cia_tab, key); }
        else throw ParseError("unknown CVSS metric: " + std::string(key));
    }

    if (!(have_av && have_ac && have_pr && have_ui && have_s && have_c && have_i && have_a))
        throw ParseError("CVSS vector is missing mandatory base metrics");
    return v;
}

namespace {
const char* av_code(AttackVector v) {
    switch (v) {
        case AttackVector::Network: return "N";
        case AttackVector::Adjacent: return "A";
        case AttackVector::Local: return "L";
        case AttackVector::Physical: return "P";
    }
    return "?";
}
const char* cia_code(Impact v) {
    switch (v) {
        case Impact::High: return "H";
        case Impact::Low: return "L";
        case Impact::None: return "N";
    }
    return "?";
}
const char* pr_code(PrivilegesRequired v) {
    switch (v) {
        case PrivilegesRequired::None: return "N";
        case PrivilegesRequired::Low: return "L";
        case PrivilegesRequired::High: return "H";
    }
    return "?";
}
} // namespace

std::string to_string(const Vector& v) {
    std::string out = "CVSS:3.1";
    out += std::string("/AV:") + av_code(v.av);
    out += std::string("/AC:") + (v.ac == AttackComplexity::Low ? "L" : "H");
    out += std::string("/PR:") + pr_code(v.pr);
    out += std::string("/UI:") + (v.ui == UserInteraction::None ? "N" : "R");
    out += std::string("/S:") + (v.scope == Scope::Unchanged ? "U" : "C");
    out += std::string("/C:") + cia_code(v.conf);
    out += std::string("/I:") + cia_code(v.integ);
    out += std::string("/A:") + cia_code(v.avail);
    switch (v.exploit) {
        case ExploitMaturity::NotDefined: break;
        case ExploitMaturity::High: out += "/E:H"; break;
        case ExploitMaturity::Functional: out += "/E:F"; break;
        case ExploitMaturity::ProofOfConcept: out += "/E:P"; break;
        case ExploitMaturity::Unproven: out += "/E:U"; break;
    }
    switch (v.remediation) {
        case RemediationLevel::NotDefined: break;
        case RemediationLevel::Unavailable: out += "/RL:U"; break;
        case RemediationLevel::Workaround: out += "/RL:W"; break;
        case RemediationLevel::TemporaryFix: out += "/RL:T"; break;
        case RemediationLevel::OfficialFix: out += "/RL:O"; break;
    }
    switch (v.confidence) {
        case ReportConfidence::NotDefined: break;
        case ReportConfidence::Confirmed: out += "/RC:C"; break;
        case ReportConfidence::Reasonable: out += "/RC:R"; break;
        case ReportConfidence::Unknown: out += "/RC:U"; break;
    }
    auto req = [&](const char* name, Requirement r) {
        switch (r) {
            case Requirement::NotDefined: break;
            case Requirement::High: out += std::string("/") + name + ":H"; break;
            case Requirement::Medium: out += std::string("/") + name + ":M"; break;
            case Requirement::Low: out += std::string("/") + name + ":L"; break;
        }
    };
    req("CR", v.cr);
    req("IR", v.ir);
    req("AR", v.ar);
    if (v.mav) out += std::string("/MAV:") + av_code(*v.mav);
    if (v.mac) out += std::string("/MAC:") + (*v.mac == AttackComplexity::Low ? "L" : "H");
    if (v.mpr) out += std::string("/MPR:") + pr_code(*v.mpr);
    if (v.mui) out += std::string("/MUI:") + (*v.mui == UserInteraction::None ? "N" : "R");
    if (v.mscope) out += std::string("/MS:") + (*v.mscope == Scope::Unchanged ? "U" : "C");
    if (v.mconf) out += std::string("/MC:") + cia_code(*v.mconf);
    if (v.minteg) out += std::string("/MI:") + cia_code(*v.minteg);
    if (v.mavail) out += std::string("/MA:") + cia_code(*v.mavail);
    return out;
}

double roundup(double value) {
    // CVSS v3.1 Appendix A pseudocode.
    const std::int64_t scaled = static_cast<std::int64_t>(std::llround(value * 100000.0));
    if (scaled % 10000 == 0) return static_cast<double>(scaled) / 100000.0;
    return (std::floor(static_cast<double>(scaled) / 10000.0) + 1.0) / 10.0;
}

double impact_subscore(const Vector& v) {
    const double iss =
        1.0 - (1.0 - weight(v.conf)) * (1.0 - weight(v.integ)) * (1.0 - weight(v.avail));
    if (v.scope == Scope::Unchanged) return 6.42 * iss;
    return 7.52 * (iss - 0.029) - 3.25 * std::pow(iss - 0.02, 15.0);
}

double exploitability_subscore(const Vector& v) {
    return 8.22 * weight(v.av) * weight(v.ac) * weight(v.pr, v.scope) * weight(v.ui);
}

double base_score(const Vector& v) {
    const double impact = impact_subscore(v);
    if (impact <= 0.0) return 0.0;
    const double expl = exploitability_subscore(v);
    if (v.scope == Scope::Unchanged) return roundup(std::min(impact + expl, 10.0));
    return roundup(std::min(1.08 * (impact + expl), 10.0));
}

double temporal_score(const Vector& v) {
    return roundup(base_score(v) * weight(v.exploit) * weight(v.remediation) *
                   weight(v.confidence));
}

double environmental_score(const Vector& v) {
    const AttackVector mav = v.mav.value_or(v.av);
    const AttackComplexity mac = v.mac.value_or(v.ac);
    const PrivilegesRequired mpr = v.mpr.value_or(v.pr);
    const UserInteraction mui = v.mui.value_or(v.ui);
    const Scope ms = v.mscope.value_or(v.scope);
    const Impact mc = v.mconf.value_or(v.conf);
    const Impact mi = v.minteg.value_or(v.integ);
    const Impact ma = v.mavail.value_or(v.avail);

    const double miss = std::min(1.0 - (1.0 - weight(v.cr) * weight(mc)) *
                                           (1.0 - weight(v.ir) * weight(mi)) *
                                           (1.0 - weight(v.ar) * weight(ma)),
                                 0.915);
    double m_impact;
    if (ms == Scope::Unchanged) {
        m_impact = 6.42 * miss;
    } else {
        m_impact = 7.52 * (miss - 0.029) - 3.25 * std::pow(miss * 0.9731 - 0.02, 13.0);
    }
    if (m_impact <= 0.0) return 0.0;
    const double m_expl = 8.22 * weight(mav) * weight(mac) * weight(mpr, ms) * weight(mui);
    const double temporal_factor =
        weight(v.exploit) * weight(v.remediation) * weight(v.confidence);
    if (ms == Scope::Unchanged)
        return roundup(roundup(std::min(m_impact + m_expl, 10.0)) * temporal_factor);
    return roundup(roundup(std::min(1.08 * (m_impact + m_expl), 10.0)) * temporal_factor);
}

Severity severity_band(double score) {
    if (score <= 0.0) return Severity::None;
    if (score < 4.0) return Severity::Low;
    if (score < 7.0) return Severity::Medium;
    if (score < 9.0) return Severity::High;
    return Severity::Critical;
}

std::string_view severity_name(Severity s) {
    switch (s) {
        case Severity::None: return "None";
        case Severity::Low: return "Low";
        case Severity::Medium: return "Medium";
        case Severity::High: return "High";
        case Severity::Critical: return "Critical";
    }
    return "?";
}

} // namespace cybok::cvss
