// CVSS v3.1 vector parsing and scoring (base, temporal, environmental),
// implemented to the FIRST.org specification.
//
// The paper (citing Spring et al., "Towards Improving CVSS") stresses that
// CVSS measures the *severity* of a vulnerability, not the *risk* a system
// faces; this module therefore exposes scores and severity bands only, and
// the analysis layer (src/analysis) uses them exclusively for filtering and
// qualitative comparison — never as a standalone risk number.

#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace cybok::cvss {

// Base metric enumerations. Numeric values are assigned by the scorer.
enum class AttackVector { Network, Adjacent, Local, Physical };
enum class AttackComplexity { Low, High };
enum class PrivilegesRequired { None, Low, High };
enum class UserInteraction { None, Required };
enum class Scope { Unchanged, Changed };
enum class Impact { High, Low, None };

// Temporal metrics; NotDefined scores as 1.0.
enum class ExploitMaturity { NotDefined, High, Functional, ProofOfConcept, Unproven };
enum class RemediationLevel { NotDefined, Unavailable, Workaround, TemporaryFix, OfficialFix };
enum class ReportConfidence { NotDefined, Confirmed, Reasonable, Unknown };

// Environmental requirement metrics; NotDefined scores as 1.0.
enum class Requirement { NotDefined, High, Medium, Low };

/// A parsed CVSS v3.1 vector. Base metrics are mandatory; temporal and
/// environmental metrics default to NotDefined. Modified base metrics
/// (MAV..MA) default to "inherit the base metric".
struct Vector {
    // Base
    AttackVector av = AttackVector::Network;
    AttackComplexity ac = AttackComplexity::Low;
    PrivilegesRequired pr = PrivilegesRequired::None;
    UserInteraction ui = UserInteraction::None;
    Scope scope = Scope::Unchanged;
    Impact conf = Impact::None;
    Impact integ = Impact::None;
    Impact avail = Impact::None;

    // Temporal
    ExploitMaturity exploit = ExploitMaturity::NotDefined;
    RemediationLevel remediation = RemediationLevel::NotDefined;
    ReportConfidence confidence = ReportConfidence::NotDefined;

    // Environmental requirements
    Requirement cr = Requirement::NotDefined;
    Requirement ir = Requirement::NotDefined;
    Requirement ar = Requirement::NotDefined;

    // Modified base metrics; nullopt means "same as base".
    std::optional<AttackVector> mav;
    std::optional<AttackComplexity> mac;
    std::optional<PrivilegesRequired> mpr;
    std::optional<UserInteraction> mui;
    std::optional<Scope> mscope;
    std::optional<Impact> mconf;
    std::optional<Impact> minteg;
    std::optional<Impact> mavail;

    friend bool operator==(const Vector&, const Vector&) = default;
};

/// Parse a "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H" style string.
/// Accepts the CVSS:3.0 prefix as well (identical math in 3.1 scoring).
/// Throws cybok::ParseError on malformed input or missing base metrics.
[[nodiscard]] Vector parse(std::string_view text);

/// Serialize back to canonical vector-string form (base metrics always,
/// optional groups only when defined).
[[nodiscard]] std::string to_string(const Vector& v);

/// Base score in [0.0, 10.0], one decimal (spec Roundup semantics).
[[nodiscard]] double base_score(const Vector& v);

/// Temporal score (equals base score when all temporal metrics NotDefined).
[[nodiscard]] double temporal_score(const Vector& v);

/// Environmental score (equals temporal score when nothing is modified).
[[nodiscard]] double environmental_score(const Vector& v);

/// Sub-scores the spec defines alongside the base score.
[[nodiscard]] double impact_subscore(const Vector& v);
[[nodiscard]] double exploitability_subscore(const Vector& v);

/// Qualitative severity rating per the spec's bands.
enum class Severity { None, Low, Medium, High, Critical };
[[nodiscard]] Severity severity_band(double score);
[[nodiscard]] std::string_view severity_name(Severity s);

/// The spec's Roundup: smallest number with one decimal >= input,
/// with the floating-point stabilization from CVSS v3.1 Appendix A.
[[nodiscard]] double roundup(double value);

} // namespace cybok::cvss
