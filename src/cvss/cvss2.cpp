#include "cvss/cvss2.hpp"

#include <cmath>

#include "cvss/cvss.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace cybok::cvss2 {

namespace {

double weight(AccessVector v) {
    switch (v) {
        case AccessVector::Local: return 0.395;
        case AccessVector::AdjacentNetwork: return 0.646;
        case AccessVector::Network: return 1.0;
    }
    return 0.0;
}

double weight(AccessComplexity v) {
    switch (v) {
        case AccessComplexity::High: return 0.35;
        case AccessComplexity::Medium: return 0.61;
        case AccessComplexity::Low: return 0.71;
    }
    return 0.0;
}

double weight(Authentication v) {
    switch (v) {
        case Authentication::Multiple: return 0.45;
        case Authentication::Single: return 0.56;
        case Authentication::None: return 0.704;
    }
    return 0.0;
}

double weight(Impact2 v) {
    switch (v) {
        case Impact2::None: return 0.0;
        case Impact2::Partial: return 0.275;
        case Impact2::Complete: return 0.660;
    }
    return 0.0;
}

double round1(double x) { return std::round(x * 10.0) / 10.0; }

} // namespace

Vector parse(std::string_view text) {
    std::string_view rest = strings::trim(text);
    // Accept NVD-style wrappers: "CVSS2#AV:N/..." or "(AV:N/...)".
    if (rest.starts_with("CVSS2#")) rest.remove_prefix(6);
    if (rest.starts_with("(") && rest.ends_with(")")) {
        rest.remove_prefix(1);
        rest.remove_suffix(1);
    }
    Vector v;
    bool have[6] = {false, false, false, false, false, false};
    for (std::string_view part : strings::split(rest, '/')) {
        std::size_t colon = part.find(':');
        if (colon == std::string_view::npos)
            throw ParseError("CVSS2 metric missing ':': " + std::string(part));
        std::string_view key = part.substr(0, colon);
        std::string_view val = part.substr(colon + 1);
        auto impact = [&](std::string_view s) {
            if (s == "N") return Impact2::None;
            if (s == "P") return Impact2::Partial;
            if (s == "C") return Impact2::Complete;
            throw ParseError("bad CVSS2 impact value: " + std::string(s));
        };
        if (key == "AV") {
            have[0] = true;
            if (val == "L") v.av = AccessVector::Local;
            else if (val == "A") v.av = AccessVector::AdjacentNetwork;
            else if (val == "N") v.av = AccessVector::Network;
            else throw ParseError("bad AV value: " + std::string(val));
        } else if (key == "AC") {
            have[1] = true;
            if (val == "H") v.ac = AccessComplexity::High;
            else if (val == "M") v.ac = AccessComplexity::Medium;
            else if (val == "L") v.ac = AccessComplexity::Low;
            else throw ParseError("bad AC value: " + std::string(val));
        } else if (key == "Au") {
            have[2] = true;
            if (val == "M") v.au = Authentication::Multiple;
            else if (val == "S") v.au = Authentication::Single;
            else if (val == "N") v.au = Authentication::None;
            else throw ParseError("bad Au value: " + std::string(val));
        } else if (key == "C") {
            have[3] = true;
            v.conf = impact(val);
        } else if (key == "I") {
            have[4] = true;
            v.integ = impact(val);
        } else if (key == "A") {
            have[5] = true;
            v.avail = impact(val);
        } else {
            // Temporal/environmental v2 metrics are ignored (base only).
            if (key != "E" && key != "RL" && key != "RC")
                throw ParseError("unknown CVSS2 metric: " + std::string(key));
        }
    }
    for (bool h : have)
        if (!h) throw ParseError("CVSS2 vector is missing base metrics");
    return v;
}

std::string to_string(const Vector& v) {
    std::string out = "AV:";
    out += v.av == AccessVector::Local ? "L" : v.av == AccessVector::AdjacentNetwork ? "A" : "N";
    out += "/AC:";
    out += v.ac == AccessComplexity::High ? "H" : v.ac == AccessComplexity::Medium ? "M" : "L";
    out += "/Au:";
    out += v.au == Authentication::Multiple ? "M" : v.au == Authentication::Single ? "S" : "N";
    auto impact = [](Impact2 i) {
        return i == Impact2::None ? "N" : i == Impact2::Partial ? "P" : "C";
    };
    out += std::string("/C:") + impact(v.conf);
    out += std::string("/I:") + impact(v.integ);
    out += std::string("/A:") + impact(v.avail);
    return out;
}

double impact_subscore(const Vector& v) {
    return 10.41 * (1.0 - (1.0 - weight(v.conf)) * (1.0 - weight(v.integ)) *
                              (1.0 - weight(v.avail)));
}

double exploitability_subscore(const Vector& v) {
    return 20.0 * weight(v.av) * weight(v.ac) * weight(v.au);
}

double base_score(const Vector& v) {
    const double impact = impact_subscore(v);
    const double exploitability = exploitability_subscore(v);
    const double f_impact = impact == 0.0 ? 0.0 : 1.176;
    return round1((0.6 * impact + 0.4 * exploitability - 1.5) * f_impact);
}

} // namespace cybok::cvss2

namespace cybok::cvss {

std::optional<double> score_any(std::string_view vector_text) noexcept {
    try {
        std::string_view t = strings::trim(vector_text);
        if (t.starts_with("CVSS:3")) return base_score(parse(t));
        return cvss2::base_score(cvss2::parse(t));
    } catch (const Error&) {
        return std::nullopt;
    }
}

} // namespace cybok::cvss
