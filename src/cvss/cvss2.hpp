// CVSS v2 base vectors and scoring (the scheme attached to the older half
// of the NVD corpus; a real MITRE snapshot mixes v2-only and v3-scored
// records, so the importer and the severity filter must handle both).

#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace cybok::cvss2 {

enum class AccessVector { Local, AdjacentNetwork, Network };
enum class AccessComplexity { High, Medium, Low };
enum class Authentication { Multiple, Single, None };
enum class Impact2 { None, Partial, Complete };

/// A parsed CVSS v2 base vector ("AV:N/AC:L/Au:N/C:P/I:P/A:P", with or
/// without a "CVSS2#" / parenthesized wrapper).
struct Vector {
    AccessVector av = AccessVector::Network;
    AccessComplexity ac = AccessComplexity::Low;
    Authentication au = Authentication::None;
    Impact2 conf = Impact2::None;
    Impact2 integ = Impact2::None;
    Impact2 avail = Impact2::None;

    friend bool operator==(const Vector&, const Vector&) = default;
};

/// Parse; throws cybok::ParseError on malformed input.
[[nodiscard]] Vector parse(std::string_view text);
[[nodiscard]] std::string to_string(const Vector& v);

/// Base score per the CVSS v2 specification (one decimal).
[[nodiscard]] double base_score(const Vector& v);
[[nodiscard]] double impact_subscore(const Vector& v);
[[nodiscard]] double exploitability_subscore(const Vector& v);

} // namespace cybok::cvss2

namespace cybok::cvss {

/// Score a vector string of either generation: "CVSS:3.x/..." dispatches
/// to the v3.1 scorer, anything else is tried as v2. Returns nullopt for
/// strings neither parser accepts (corpus records with junk metadata must
/// not take the analysis down).
[[nodiscard]] std::optional<double> score_any(std::string_view vector_text) noexcept;

} // namespace cybok::cvss
