// GraphML serialization of PropertyGraph.
//
// GraphML is the interchange format the paper's exporter tool emits from
// SysML models ("GraphML export", Bakirtzis & Simon 2018) and the format the
// CYBOK search engine and the analyst dashboard consume. The writer emits
// the attribute-typed GraphML dialect (graphml/key/graph/node/edge/data);
// the reader accepts the same subset, which round-trips everything the
// writer produces.

#pragma once

#include <string>
#include <string_view>

#include "graph/property_graph.hpp"

namespace cybok::graph {

/// Serialize to GraphML. Node/edge labels are stored under the reserved
/// attribute name "label". Property keys are declared per element domain.
[[nodiscard]] std::string to_graphml(const PropertyGraph& g,
                                     std::string_view graph_id = "G");

/// Parse a GraphML document produced by to_graphml (or any document using
/// the same subset: one <graph>, typed <key> declarations, <data> values).
/// Throws ParseError on malformed XML or GraphML.
[[nodiscard]] PropertyGraph from_graphml(std::string_view xml);

/// File helpers (throw IoError).
void save_graphml(const std::string& path, const PropertyGraph& g);
[[nodiscard]] PropertyGraph load_graphml(const std::string& path);

} // namespace cybok::graph
