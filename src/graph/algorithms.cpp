#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <set>
#include <stack>

namespace cybok::graph {

namespace {

std::vector<NodeId> step(const PropertyGraph& g, NodeId n, Direction dir) {
    switch (dir) {
        case Direction::Forward: return g.successors(n);
        case Direction::Backward: return g.predecessors(n);
        case Direction::Undirected: return g.neighbors(n);
    }
    return {};
}

} // namespace

std::vector<NodeId> bfs_order(const PropertyGraph& g, NodeId start, Direction dir) {
    return reachable_from(g, {start}, dir);
}

std::vector<NodeId> reachable_from(const PropertyGraph& g, const std::vector<NodeId>& starts,
                                   Direction dir) {
    std::vector<bool> seen;
    std::vector<NodeId> order;
    std::deque<NodeId> frontier;
    auto mark = [&](NodeId n) {
        if (seen.size() <= n.value) seen.resize(n.value + 1, false);
        if (seen[n.value]) return false;
        seen[n.value] = true;
        return true;
    };
    for (NodeId s : starts) {
        if (!g.contains(s)) continue;
        if (mark(s)) {
            frontier.push_back(s);
            order.push_back(s);
        }
    }
    while (!frontier.empty()) {
        NodeId n = frontier.front();
        frontier.pop_front();
        for (NodeId m : step(g, n, dir)) {
            if (mark(m)) {
                frontier.push_back(m);
                order.push_back(m);
            }
        }
    }
    return order;
}

std::vector<NodeId> dfs_postorder(const PropertyGraph& g) {
    std::vector<NodeId> order;
    std::vector<char> state; // 0 unseen, 1 open, 2 done
    auto st = [&](NodeId n) -> char& {
        if (state.size() <= n.value) state.resize(n.value + 1, 0);
        return state[n.value];
    };
    for (NodeId root : g.nodes()) {
        if (st(root) != 0) continue;
        // Iterative DFS with explicit expansion flag.
        std::stack<std::pair<NodeId, bool>> stack;
        stack.push({root, false});
        while (!stack.empty()) {
            auto [n, expanded] = stack.top();
            stack.pop();
            if (expanded) {
                st(n) = 2;
                order.push_back(n);
                continue;
            }
            if (st(n) != 0) continue;
            st(n) = 1;
            stack.push({n, true});
            std::vector<NodeId> succ = g.successors(n);
            // Push in reverse so traversal visits successors in id order.
            for (auto it = succ.rbegin(); it != succ.rend(); ++it)
                if (st(*it) == 0) stack.push({*it, false});
        }
    }
    return order;
}

std::optional<std::vector<NodeId>> topological_order(const PropertyGraph& g) {
    std::vector<NodeId> nodes = g.nodes();
    std::map<NodeId, std::size_t> indegree;
    for (NodeId n : nodes) indegree[n] = g.in_degree(n);
    // Min-heap by id for deterministic output.
    std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
    for (NodeId n : nodes)
        if (indegree[n] == 0) ready.push(n);
    std::vector<NodeId> order;
    order.reserve(nodes.size());
    while (!ready.empty()) {
        NodeId n = ready.top();
        ready.pop();
        order.push_back(n);
        for (NodeId m : g.successors(n))
            if (--indegree[m] == 0) ready.push(m);
    }
    if (order.size() != nodes.size()) return std::nullopt;
    return order;
}

bool has_cycle(const PropertyGraph& g) { return !topological_order(g).has_value(); }

std::vector<std::vector<NodeId>> weakly_connected_components(const PropertyGraph& g) {
    std::vector<std::vector<NodeId>> components;
    std::set<NodeId> visited;
    for (NodeId n : g.nodes()) {
        if (visited.contains(n)) continue;
        std::vector<NodeId> comp = bfs_order(g, n, Direction::Undirected);
        std::sort(comp.begin(), comp.end());
        for (NodeId m : comp) visited.insert(m);
        components.push_back(std::move(comp));
    }
    std::sort(components.begin(), components.end(),
              [](const auto& a, const auto& b) { return a.front() < b.front(); });
    return components;
}

std::vector<std::vector<NodeId>> strongly_connected_components(const PropertyGraph& g) {
    // Iterative Tarjan.
    struct Frame {
        NodeId node;
        std::size_t next_child = 0;
        std::vector<NodeId> succ;
    };
    std::map<NodeId, int> index;
    std::map<NodeId, int> low;
    std::map<NodeId, bool> on_stack;
    std::vector<NodeId> stack;
    std::vector<std::vector<NodeId>> components;
    int counter = 0;

    for (NodeId root : g.nodes()) {
        if (index.contains(root)) continue;
        std::vector<Frame> frames;
        frames.push_back(Frame{root, 0, g.successors(root)});
        index[root] = low[root] = counter++;
        stack.push_back(root);
        on_stack[root] = true;

        while (!frames.empty()) {
            Frame& f = frames.back();
            if (f.next_child < f.succ.size()) {
                NodeId w = f.succ[f.next_child++];
                if (!index.contains(w)) {
                    index[w] = low[w] = counter++;
                    stack.push_back(w);
                    on_stack[w] = true;
                    frames.push_back(Frame{w, 0, g.successors(w)});
                } else if (on_stack[w]) {
                    low[f.node] = std::min(low[f.node], index[w]);
                }
                continue;
            }
            // All children done: close the frame.
            NodeId v = f.node;
            frames.pop_back();
            if (!frames.empty())
                low[frames.back().node] = std::min(low[frames.back().node], low[v]);
            if (low[v] == index[v]) {
                std::vector<NodeId> comp;
                while (true) {
                    NodeId w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    comp.push_back(w);
                    if (w == v) break;
                }
                std::sort(comp.begin(), comp.end());
                components.push_back(std::move(comp));
            }
        }
    }
    std::sort(components.begin(), components.end(),
              [](const auto& a, const auto& b) { return a.front() < b.front(); });
    return components;
}

std::vector<std::uint32_t> bfs_distances(const PropertyGraph& g, NodeId from, Direction dir) {
    std::vector<std::uint32_t> dist;
    auto d = [&](NodeId n) -> std::uint32_t& {
        if (dist.size() <= n.value) dist.resize(n.value + 1, UINT32_MAX);
        return dist[n.value];
    };
    if (!g.contains(from)) return dist;
    d(from) = 0;
    std::deque<NodeId> frontier{from};
    while (!frontier.empty()) {
        NodeId n = frontier.front();
        frontier.pop_front();
        std::uint32_t dn = d(n);
        for (NodeId m : step(g, n, dir)) {
            if (d(m) == UINT32_MAX) {
                d(m) = dn + 1;
                frontier.push_back(m);
            }
        }
    }
    return dist;
}

std::vector<NodeId> shortest_path(const PropertyGraph& g, NodeId from, NodeId to, Direction dir) {
    if (!g.contains(from) || !g.contains(to)) return {};
    std::map<NodeId, NodeId> parent;
    std::deque<NodeId> frontier{from};
    parent[from] = from;
    while (!frontier.empty()) {
        NodeId n = frontier.front();
        frontier.pop_front();
        if (n == to) break;
        for (NodeId m : step(g, n, dir)) {
            if (!parent.contains(m)) {
                parent[m] = n;
                frontier.push_back(m);
            }
        }
    }
    if (!parent.contains(to)) return {};
    std::vector<NodeId> path;
    for (NodeId n = to; ; n = parent[n]) {
        path.push_back(n);
        if (n == from) break;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

SimplePaths all_simple_paths_bounded(const PropertyGraph& g, NodeId from, NodeId to,
                                     std::size_t max_hops, std::size_t max_paths) {
    SimplePaths out;
    if (!g.contains(from) || !g.contains(to)) return out;
    std::vector<NodeId> current{from};
    std::set<NodeId> on_path{from};
    std::function<void(NodeId)> dfs = [&](NodeId n) {
        if (out.paths.size() >= max_paths) {
            out.truncated = true; // a branch was still open when the cap hit
            return;
        }
        if (n == to) {
            out.paths.push_back(current);
            return;
        }
        if (current.size() > max_hops) {
            // The hop bound pruned this branch; it could have held more
            // paths, so the enumeration is no longer exhaustive.
            out.truncated = true;
            return;
        }
        std::vector<NodeId> succ = g.successors(n);
        std::sort(succ.begin(), succ.end());
        for (NodeId m : succ) {
            if (on_path.contains(m)) continue;
            current.push_back(m);
            on_path.insert(m);
            dfs(m);
            on_path.erase(m);
            current.pop_back();
        }
    };
    dfs(from);
    if (out.paths.size() >= max_paths) out.truncated = true;
    return out;
}

std::vector<std::vector<NodeId>> all_simple_paths(const PropertyGraph& g, NodeId from, NodeId to,
                                                  std::size_t max_hops, std::size_t max_paths) {
    return all_simple_paths_bounded(g, from, to, max_hops, max_paths).paths;
}

std::vector<std::vector<NodeId>> k_shortest_paths(const PropertyGraph& g, NodeId from, NodeId to,
                                                  std::size_t k) {
    // Enumerate bounded simple paths and keep the k shortest; adequate for
    // architecture-scale graphs (tens to hundreds of nodes).
    std::size_t bound = g.node_count();
    std::vector<std::vector<NodeId>> all = all_simple_paths(g, from, to, bound, 65536);
    std::stable_sort(all.begin(), all.end(),
                     [](const auto& a, const auto& b) { return a.size() < b.size(); });
    if (all.size() > k) all.resize(k);
    return all;
}

std::map<NodeId, std::size_t> degree_centrality(const PropertyGraph& g) {
    std::map<NodeId, std::size_t> out;
    for (NodeId n : g.nodes()) out[n] = g.in_degree(n) + g.out_degree(n);
    return out;
}

std::map<NodeId, double> betweenness_centrality(const PropertyGraph& g) {
    // Brandes (2001), unweighted directed variant.
    std::map<NodeId, double> cb;
    std::vector<NodeId> nodes = g.nodes();
    for (NodeId n : nodes) cb[n] = 0.0;
    for (NodeId s : nodes) {
        std::stack<NodeId> order;
        std::map<NodeId, std::vector<NodeId>> preds;
        std::map<NodeId, double> sigma;
        std::map<NodeId, std::int64_t> dist;
        for (NodeId n : nodes) {
            sigma[n] = 0.0;
            dist[n] = -1;
        }
        sigma[s] = 1.0;
        dist[s] = 0;
        std::deque<NodeId> queue{s};
        while (!queue.empty()) {
            NodeId v = queue.front();
            queue.pop_front();
            order.push(v);
            for (NodeId w : g.successors(v)) {
                if (dist[w] < 0) {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if (dist[w] == dist[v] + 1) {
                    sigma[w] += sigma[v];
                    preds[w].push_back(v);
                }
            }
        }
        std::map<NodeId, double> delta;
        for (NodeId n : nodes) delta[n] = 0.0;
        while (!order.empty()) {
            NodeId w = order.top();
            order.pop();
            for (NodeId v : preds[w])
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w]);
            if (w != s) cb[w] += delta[w];
        }
    }
    return cb;
}

std::vector<NodeId> articulation_points(const PropertyGraph& g) {
    // Hopcroft–Tarjan over the undirected view.
    std::map<NodeId, int> disc;
    std::map<NodeId, int> low;
    std::set<NodeId> points;
    int timer = 0;
    std::function<void(NodeId, NodeId, bool)> dfs = [&](NodeId u, NodeId parent, bool is_root) {
        disc[u] = low[u] = timer++;
        int children = 0;
        for (NodeId v : g.neighbors(u)) {
            if (v == parent) continue;
            if (disc.contains(v)) {
                low[u] = std::min(low[u], disc[v]);
            } else {
                ++children;
                dfs(v, u, false);
                low[u] = std::min(low[u], low[v]);
                if (!is_root && low[v] >= disc[u]) points.insert(u);
            }
        }
        if (is_root && children > 1) points.insert(u);
    };
    for (NodeId n : g.nodes())
        if (!disc.contains(n)) dfs(n, NodeId{}, true);
    return {points.begin(), points.end()};
}

std::vector<NodeId> min_vertex_cut(const PropertyGraph& g, const std::vector<NodeId>& sources,
                                   const std::vector<NodeId>& targets) {
    // Node-splitting reduction: every intermediate node v becomes an arc
    // v_in -> v_out with capacity 1; graph edges u -> v become arcs
    // u_out -> v_in with effectively-infinite capacity. A max-flow from a
    // super-source (feeding every source's out side) to a super-sink (fed
    // by every target's in side) then equals the minimum number of
    // intermediate nodes on any source->target disconnecting set
    // (Menger), and the cut is read off the residual reachability.
    const std::set<NodeId> source_set(sources.begin(), sources.end());
    const std::set<NodeId> target_set(targets.begin(), targets.end());
    std::vector<NodeId> live;
    for (NodeId n : g.nodes())
        live.push_back(n);
    if (live.empty() || source_set.empty() || target_set.empty()) return {};

    // Vertex layout: node i -> in = 2i, out = 2i + 1; then S, T.
    std::map<NodeId, std::uint32_t> index;
    for (std::uint32_t i = 0; i < live.size(); ++i) index[live[i]] = i;
    const std::uint32_t kS = static_cast<std::uint32_t>(2 * live.size());
    const std::uint32_t kT = kS + 1;
    // Capacity larger than any achievable node-cut value stands in for
    // infinity; intermediate splits cap every augmenting path at 1.
    const std::int64_t kInf = static_cast<std::int64_t>(live.size()) + 1;

    struct Arc {
        std::uint32_t to = 0;
        std::int64_t cap = 0;
        std::size_t rev = 0; ///< index of the reverse arc in adj[to]
    };
    std::vector<std::vector<Arc>> adj(kT + 1);
    auto add_arc = [&](std::uint32_t from, std::uint32_t to, std::int64_t cap) {
        adj[from].push_back({to, cap, adj[to].size()});
        adj[to].push_back({from, 0, adj[from].size() - 1});
    };

    for (std::uint32_t i = 0; i < live.size(); ++i) {
        const NodeId n = live[i];
        const bool terminal = source_set.contains(n) || target_set.contains(n);
        add_arc(2 * i, 2 * i + 1, terminal ? kInf : 1);
        if (source_set.contains(n)) add_arc(kS, 2 * i, kInf);
        if (target_set.contains(n)) add_arc(2 * i + 1, kT, kInf);
    }
    for (NodeId n : live) {
        // Deterministic arc order: successors sorted by id.
        std::vector<NodeId> succ = g.successors(n);
        std::sort(succ.begin(), succ.end());
        succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
        for (NodeId m : succ) {
            if (m == n) continue; // self-loops never carry s->t flow
            // A direct source->target edge is unseverable by an
            // intermediate cut; modeling it would make the flow infinite.
            if (source_set.contains(n) && target_set.contains(m)) continue;
            add_arc(2 * index.at(n) + 1, 2 * index.at(m), kInf);
        }
    }

    // Edmonds–Karp: BFS shortest augmenting paths until none remains.
    const std::size_t vertex_count = adj.size();
    std::vector<std::pair<std::uint32_t, std::size_t>> parent(vertex_count); // (vertex, arc idx)
    std::vector<bool> visited(vertex_count);
    while (true) {
        std::fill(visited.begin(), visited.end(), false);
        std::deque<std::uint32_t> queue{kS};
        visited[kS] = true;
        while (!queue.empty() && !visited[kT]) {
            const std::uint32_t u = queue.front();
            queue.pop_front();
            for (std::size_t a = 0; a < adj[u].size(); ++a) {
                const Arc& arc = adj[u][a];
                if (arc.cap <= 0 || visited[arc.to]) continue;
                visited[arc.to] = true;
                parent[arc.to] = {u, a};
                queue.push_back(arc.to);
            }
        }
        if (!visited[kT]) break;
        std::int64_t bottleneck = kInf;
        for (std::uint32_t v = kT; v != kS; v = parent[v].first)
            bottleneck = std::min(bottleneck, adj[parent[v].first][parent[v].second].cap);
        for (std::uint32_t v = kT; v != kS; v = parent[v].first) {
            Arc& arc = adj[parent[v].first][parent[v].second];
            arc.cap -= bottleneck;
            adj[arc.to][arc.rev].cap += bottleneck;
        }
    }

    // Min cut = intermediate nodes whose in side is residual-reachable
    // from S while their out side is not (the saturated split arcs that
    // cross the cut).
    std::fill(visited.begin(), visited.end(), false);
    std::deque<std::uint32_t> queue{kS};
    visited[kS] = true;
    while (!queue.empty()) {
        const std::uint32_t u = queue.front();
        queue.pop_front();
        for (const Arc& arc : adj[u]) {
            if (arc.cap <= 0 || visited[arc.to]) continue;
            visited[arc.to] = true;
            queue.push_back(arc.to);
        }
    }
    std::vector<NodeId> cut;
    for (std::uint32_t i = 0; i < live.size(); ++i) {
        const NodeId n = live[i];
        if (source_set.contains(n) || target_set.contains(n)) continue;
        if (visited[2 * i] && !visited[2 * i + 1]) cut.push_back(n);
    }
    return cut; // live[] is id-ordered, so the cut already is too
}

Subgraph induced_subgraph(const PropertyGraph& g, const std::vector<NodeId>& keep) {
    Subgraph out;
    std::set<NodeId> keep_set(keep.begin(), keep.end());
    for (NodeId n : g.nodes()) {
        if (!keep_set.contains(n)) continue;
        NodeId nn = out.graph.add_node(g.node(n).label);
        out.graph.node(nn).properties = g.node(n).properties;
        out.node_map[n] = nn;
    }
    for (EdgeId e : g.edges()) {
        const auto& ed = g.edge(e);
        auto s = out.node_map.find(ed.source);
        auto t = out.node_map.find(ed.target);
        if (s == out.node_map.end() || t == out.node_map.end()) continue;
        EdgeId ne = out.graph.add_edge(s->second, t->second, ed.label);
        out.graph.edge(ne).properties = ed.properties;
    }
    return out;
}

} // namespace cybok::graph
