#include "graph/dot.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace cybok::graph {

namespace {
std::string dot_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}
} // namespace

std::string to_dot(const PropertyGraph& g, const DotOptions& opts) {
    std::ostringstream out;
    out << "digraph \"" << dot_escape(opts.graph_name) << "\" {\n";
    if (opts.rankdir_lr) out << "  rankdir=LR;\n";
    out << "  node [shape=box, style=\"rounded,filled\", fillcolor=white];\n";
    for (NodeId n : g.nodes()) {
        std::string label = g.node(n).label;
        if (!opts.annotation_key.empty()) {
            if (const Property* p = g.get_property(n, opts.annotation_key))
                label += "\n" + property_to_string(*p);
        }
        out << "  n" << n.value << " [label=\"" << dot_escape(label) << "\"";
        if (const Property* p = g.get_property(n, opts.fillcolor_key))
            out << ", fillcolor=\"" << dot_escape(property_to_string(*p)) << "\"";
        out << "];\n";
    }
    for (EdgeId e : g.edges()) {
        const auto& ed = g.edge(e);
        out << "  n" << ed.source.value << " -> n" << ed.target.value;
        if (!ed.label.empty()) out << " [label=\"" << dot_escape(ed.label) << "\"]";
        out << ";\n";
    }
    out << "}\n";
    return out.str();
}

} // namespace cybok::graph
