// Graph algorithms used by the security-analysis layer: traversal,
// reachability (attack-surface exposure), shortest paths (attack paths),
// centrality (component criticality), and structural queries.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "graph/property_graph.hpp"

namespace cybok::graph {

/// Direction in which edges are followed during traversal.
enum class Direction { Forward, Backward, Undirected };

/// Nodes reachable from `start` (inclusive), BFS order.
[[nodiscard]] std::vector<NodeId> bfs_order(const PropertyGraph& g, NodeId start,
                                            Direction dir = Direction::Forward);

/// Nodes reachable from any node in `starts` (inclusive of live starts).
[[nodiscard]] std::vector<NodeId> reachable_from(const PropertyGraph& g,
                                                 const std::vector<NodeId>& starts,
                                                 Direction dir = Direction::Forward);

/// Depth-first post-order over the whole graph (deterministic by node id).
[[nodiscard]] std::vector<NodeId> dfs_postorder(const PropertyGraph& g);

/// Topological order of all live nodes, or nullopt if the graph has a
/// directed cycle.
[[nodiscard]] std::optional<std::vector<NodeId>> topological_order(const PropertyGraph& g);

/// True if a directed cycle exists.
[[nodiscard]] bool has_cycle(const PropertyGraph& g);

/// Weakly connected components; each inner vector is one component, nodes
/// sorted by id, components sorted by their smallest node id.
[[nodiscard]] std::vector<std::vector<NodeId>> weakly_connected_components(const PropertyGraph& g);

/// Strongly connected components (Tarjan, iterative); nodes sorted by id
/// within a component, components sorted by their smallest node id.
/// Singleton components are included (every DAG node is its own SCC).
[[nodiscard]] std::vector<std::vector<NodeId>> strongly_connected_components(
    const PropertyGraph& g);

/// Unweighted shortest path from `from` to `to` (inclusive endpoints), or
/// empty if unreachable.
[[nodiscard]] std::vector<NodeId> shortest_path(const PropertyGraph& g, NodeId from, NodeId to,
                                                Direction dir = Direction::Forward);

/// Unweighted shortest-path distance from `from` to every node
/// (UINT32_MAX where unreachable). Indexed by raw node id value.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const PropertyGraph& g, NodeId from,
                                                       Direction dir = Direction::Forward);

/// Up to `k` simple paths from `from` to `to`, shortest first (Yen-style
/// enumeration over the unweighted graph). Each path includes endpoints.
[[nodiscard]] std::vector<std::vector<NodeId>> k_shortest_paths(const PropertyGraph& g,
                                                                NodeId from, NodeId to,
                                                                std::size_t k);

/// All simple paths from `from` to `to` of length <= max_hops (edge count),
/// capped at `max_paths` results. DFS enumeration; deterministic order.
[[nodiscard]] std::vector<std::vector<NodeId>> all_simple_paths(const PropertyGraph& g,
                                                                NodeId from, NodeId to,
                                                                std::size_t max_hops,
                                                                std::size_t max_paths = 4096);

/// all_simple_paths with an explicit truncation signal: `truncated` is true
/// when the enumeration gave up on a bound (the result cap was reached, or
/// some branch was cut off by max_hops) rather than because the path space
/// was exhausted. Lets callers distinguish "no more paths" from "gave up".
struct SimplePaths {
    std::vector<std::vector<NodeId>> paths;
    bool truncated = false;
};
[[nodiscard]] SimplePaths all_simple_paths_bounded(const PropertyGraph& g, NodeId from,
                                                   NodeId to, std::size_t max_hops,
                                                   std::size_t max_paths = 4096);

/// In+out degree for every live node.
[[nodiscard]] std::map<NodeId, std::size_t> degree_centrality(const PropertyGraph& g);

/// Brandes' betweenness centrality over the directed, unweighted graph.
/// Scores are unnormalized pair counts.
[[nodiscard]] std::map<NodeId, double> betweenness_centrality(const PropertyGraph& g);

/// Nodes whose removal disconnects the undirected view (articulation points).
[[nodiscard]] std::vector<NodeId> articulation_points(const PropertyGraph& g);

/// A minimum-cardinality set of *intermediate* nodes whose removal severs
/// every directed path from `sources` to `targets` (unit node capacities
/// via node splitting + Edmonds–Karp max-flow). Source and target nodes
/// are never cut candidates, so a direct source->target edge represents an
/// unseverable flow and is ignored. Returns the cut nodes sorted by id;
/// empty when nothing needs cutting (no source reaches a target through an
/// intermediate). Deterministic.
[[nodiscard]] std::vector<NodeId> min_vertex_cut(const PropertyGraph& g,
                                                 const std::vector<NodeId>& sources,
                                                 const std::vector<NodeId>& targets);

/// Induced subgraph on `keep` (copies labels/properties; returns the new
/// graph and the old->new node mapping).
struct Subgraph {
    PropertyGraph graph;
    std::map<NodeId, NodeId> node_map;
};
[[nodiscard]] Subgraph induced_subgraph(const PropertyGraph& g, const std::vector<NodeId>& keep);

} // namespace cybok::graph
