#include "graph/property_graph.hpp"

#include <algorithm>

namespace cybok::graph {

std::string property_to_string(const Property& p) {
    if (const auto* s = std::get_if<std::string>(&p)) return *s;
    if (const auto* d = std::get_if<double>(&p)) {
        std::string out = std::to_string(*d);
        // Trim trailing zeros for readability but keep at least one decimal.
        while (out.size() > 1 && out.back() == '0' && out[out.size() - 2] != '.') out.pop_back();
        return out;
    }
    if (const auto* i = std::get_if<std::int64_t>(&p)) return std::to_string(*i);
    return std::get<bool>(p) ? "true" : "false";
}

void PropertyGraph::check(NodeId id) const {
    if (id.value >= nodes_.size() || !nodes_[id.value].alive)
        throw NotFoundError("graph: node id " + std::to_string(id.value) + " is not live");
}

void PropertyGraph::check(EdgeId id) const {
    if (id.value >= edges_.size() || !edges_[id.value].alive)
        throw NotFoundError("graph: edge id " + std::to_string(id.value) + " is not live");
}

NodeId PropertyGraph::add_node(std::string label) {
    NodeSlot slot;
    slot.data.label = std::move(label);
    nodes_.push_back(std::move(slot));
    ++live_nodes_;
    return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

EdgeId PropertyGraph::add_edge(NodeId source, NodeId target, std::string label) {
    check(source);
    check(target);
    EdgeSlot slot;
    slot.data.source = source;
    slot.data.target = target;
    slot.data.label = std::move(label);
    edges_.push_back(std::move(slot));
    EdgeId id{static_cast<std::uint32_t>(edges_.size() - 1)};
    nodes_[source.value].out.push_back(id);
    nodes_[target.value].in.push_back(id);
    ++live_edges_;
    return id;
}

void PropertyGraph::remove_edge(EdgeId id) {
    check(id);
    EdgeSlot& slot = edges_[id.value];
    auto erase_from = [id](std::vector<EdgeId>& v) {
        v.erase(std::remove(v.begin(), v.end(), id), v.end());
    };
    erase_from(nodes_[slot.data.source.value].out);
    erase_from(nodes_[slot.data.target.value].in);
    slot.alive = false;
    --live_edges_;
}

void PropertyGraph::remove_node(NodeId id) {
    check(id);
    // Copy: remove_edge mutates the adjacency lists we iterate.
    std::vector<EdgeId> incident = nodes_[id.value].out;
    incident.insert(incident.end(), nodes_[id.value].in.begin(), nodes_[id.value].in.end());
    for (EdgeId e : incident)
        if (contains(e)) remove_edge(e);
    nodes_[id.value].alive = false;
    --live_nodes_;
}

bool PropertyGraph::contains(NodeId id) const noexcept {
    return id.value < nodes_.size() && nodes_[id.value].alive;
}

bool PropertyGraph::contains(EdgeId id) const noexcept {
    return id.value < edges_.size() && edges_[id.value].alive;
}

const PropertyGraph::Node& PropertyGraph::node(NodeId id) const {
    check(id);
    return nodes_[id.value].data;
}

PropertyGraph::Node& PropertyGraph::node(NodeId id) {
    check(id);
    return nodes_[id.value].data;
}

const PropertyGraph::Edge& PropertyGraph::edge(EdgeId id) const {
    check(id);
    return edges_[id.value].data;
}

PropertyGraph::Edge& PropertyGraph::edge(EdgeId id) {
    check(id);
    return edges_[id.value].data;
}

std::optional<NodeId> PropertyGraph::find_node(std::string_view label) const noexcept {
    for (std::uint32_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i].alive && nodes_[i].data.label == label) return NodeId{i};
    return std::nullopt;
}

void PropertyGraph::set_property(NodeId id, std::string_view key, Property value) {
    check(id);
    nodes_[id.value].data.properties.insert_or_assign(std::string(key), std::move(value));
}

void PropertyGraph::set_property(EdgeId id, std::string_view key, Property value) {
    check(id);
    edges_[id.value].data.properties.insert_or_assign(std::string(key), std::move(value));
}

const Property* PropertyGraph::get_property(NodeId id, std::string_view key) const noexcept {
    if (!contains(id)) return nullptr;
    const PropertyMap& m = nodes_[id.value].data.properties;
    auto it = m.find(key);
    return it == m.end() ? nullptr : &it->second;
}

const Property* PropertyGraph::get_property(EdgeId id, std::string_view key) const noexcept {
    if (!contains(id)) return nullptr;
    const PropertyMap& m = edges_[id.value].data.properties;
    auto it = m.find(key);
    return it == m.end() ? nullptr : &it->second;
}

std::vector<NodeId> PropertyGraph::nodes() const {
    std::vector<NodeId> out;
    out.reserve(live_nodes_);
    for (std::uint32_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i].alive) out.push_back(NodeId{i});
    return out;
}

std::vector<EdgeId> PropertyGraph::edges() const {
    std::vector<EdgeId> out;
    out.reserve(live_edges_);
    for (std::uint32_t i = 0; i < edges_.size(); ++i)
        if (edges_[i].alive) out.push_back(EdgeId{i});
    return out;
}

const std::vector<EdgeId>& PropertyGraph::out_edges(NodeId id) const {
    check(id);
    return nodes_[id.value].out;
}

const std::vector<EdgeId>& PropertyGraph::in_edges(NodeId id) const {
    check(id);
    return nodes_[id.value].in;
}

std::vector<NodeId> PropertyGraph::successors(NodeId id) const {
    std::vector<NodeId> out;
    for (EdgeId e : out_edges(id)) out.push_back(edges_[e.value].data.target);
    return out;
}

std::vector<NodeId> PropertyGraph::predecessors(NodeId id) const {
    std::vector<NodeId> out;
    for (EdgeId e : in_edges(id)) out.push_back(edges_[e.value].data.source);
    return out;
}

std::vector<NodeId> PropertyGraph::neighbors(NodeId id) const {
    std::vector<NodeId> out = successors(id);
    for (NodeId p : predecessors(id)) out.push_back(p);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::optional<EdgeId> PropertyGraph::find_edge(NodeId source, NodeId target) const {
    for (EdgeId e : out_edges(source))
        if (edges_[e.value].data.target == target) return e;
    return std::nullopt;
}

} // namespace cybok::graph
