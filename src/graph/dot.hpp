// Graphviz DOT export — the dashboard's graph-view serialization.

#pragma once

#include <string>
#include <string_view>

#include "graph/property_graph.hpp"

namespace cybok::graph {

/// Options controlling DOT rendering.
struct DotOptions {
    std::string graph_name = "G";
    /// Property key whose value (if present) colors the node, e.g. the
    /// analysis layer sets "dot.fillcolor" on high-exposure components.
    std::string fillcolor_key = "dot.fillcolor";
    /// Property key appended to the node label when present (e.g. a count
    /// of associated attack vectors).
    std::string annotation_key;
    bool rankdir_lr = false;
};

/// Serialize the graph to Graphviz DOT.
[[nodiscard]] std::string to_dot(const PropertyGraph& g, const DotOptions& opts = {});

} // namespace cybok::graph
