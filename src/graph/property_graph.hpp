// A generic directed property graph — the "general architectural model" the
// paper's capability (1) exports system models into. Nodes and edges carry
// string-keyed typed properties; the graph is the lingua franca between the
// modeling layer, the GraphML/DOT serializers, and the analysis algorithms.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace cybok::graph {

/// Stable handle to a node. Handles are never reused within one graph.
struct NodeId {
    std::uint32_t value = UINT32_MAX;
    [[nodiscard]] bool valid() const noexcept { return value != UINT32_MAX; }
    friend auto operator<=>(const NodeId&, const NodeId&) = default;
};

/// Stable handle to an edge.
struct EdgeId {
    std::uint32_t value = UINT32_MAX;
    [[nodiscard]] bool valid() const noexcept { return value != UINT32_MAX; }
    friend auto operator<=>(const EdgeId&, const EdgeId&) = default;
};

/// Property values: the subset of types GraphML attributes support.
using Property = std::variant<std::string, double, std::int64_t, bool>;

/// Ordered so that serialization is deterministic.
using PropertyMap = std::map<std::string, Property, std::less<>>;

/// Render a property as the string GraphML/DOT would emit.
[[nodiscard]] std::string property_to_string(const Property& p);

/// A directed multigraph with properties, supporting O(1) amortized
/// insertion and tombstone removal (handles of removed elements stay
/// invalid forever; iteration skips tombstones).
class PropertyGraph {
public:
    struct Node {
        std::string label;
        PropertyMap properties;
    };
    struct Edge {
        NodeId source;
        NodeId target;
        std::string label;
        PropertyMap properties;
    };

    // -- construction ------------------------------------------------------

    NodeId add_node(std::string label);
    EdgeId add_edge(NodeId source, NodeId target, std::string label = "");

    /// Remove a node and all incident edges. Throws NotFoundError if stale.
    void remove_node(NodeId id);
    void remove_edge(EdgeId id);

    // -- element access ----------------------------------------------------

    [[nodiscard]] bool contains(NodeId id) const noexcept;
    [[nodiscard]] bool contains(EdgeId id) const noexcept;

    [[nodiscard]] const Node& node(NodeId id) const;
    [[nodiscard]] Node& node(NodeId id);
    [[nodiscard]] const Edge& edge(EdgeId id) const;
    [[nodiscard]] Edge& edge(EdgeId id);

    /// First node whose label equals `label`, if any.
    [[nodiscard]] std::optional<NodeId> find_node(std::string_view label) const noexcept;

    // -- properties --------------------------------------------------------

    void set_property(NodeId id, std::string_view key, Property value);
    void set_property(EdgeId id, std::string_view key, Property value);
    [[nodiscard]] const Property* get_property(NodeId id, std::string_view key) const noexcept;
    [[nodiscard]] const Property* get_property(EdgeId id, std::string_view key) const noexcept;

    // -- topology ----------------------------------------------------------

    [[nodiscard]] std::size_t node_count() const noexcept { return live_nodes_; }
    [[nodiscard]] std::size_t edge_count() const noexcept { return live_edges_; }

    /// Live node / edge ids in insertion order.
    [[nodiscard]] std::vector<NodeId> nodes() const;
    [[nodiscard]] std::vector<EdgeId> edges() const;

    [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId id) const;
    [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId id) const;
    [[nodiscard]] std::vector<NodeId> successors(NodeId id) const;
    [[nodiscard]] std::vector<NodeId> predecessors(NodeId id) const;
    /// Successors ∪ predecessors (deduplicated) — the undirected view.
    [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const;

    [[nodiscard]] std::size_t out_degree(NodeId id) const { return out_edges(id).size(); }
    [[nodiscard]] std::size_t in_degree(NodeId id) const { return in_edges(id).size(); }

    /// Any edge source -> target, if one exists.
    [[nodiscard]] std::optional<EdgeId> find_edge(NodeId source, NodeId target) const;

private:
    void check(NodeId id) const;
    void check(EdgeId id) const;

    struct NodeSlot {
        Node data;
        std::vector<EdgeId> out;
        std::vector<EdgeId> in;
        bool alive = true;
    };
    struct EdgeSlot {
        Edge data;
        bool alive = true;
    };

    std::vector<NodeSlot> nodes_;
    std::vector<EdgeSlot> edges_;
    std::size_t live_nodes_ = 0;
    std::size_t live_edges_ = 0;
};

} // namespace cybok::graph
