#include "graph/graphml.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/strings.hpp"
#include "util/xml.hpp"

namespace cybok::graph {

namespace {

const char* type_name(const Property& p) {
    if (std::holds_alternative<std::string>(p)) return "string";
    if (std::holds_alternative<double>(p)) return "double";
    if (std::holds_alternative<std::int64_t>(p)) return "long";
    return "boolean";
}

std::string value_text(const Property& p) {
    if (const auto* d = std::get_if<double>(&p)) {
        std::ostringstream ss;
        ss.precision(17);
        ss << *d;
        return ss.str();
    }
    return property_to_string(p);
}

Property parse_property(std::string_view type, std::string_view text) {
    std::string s(strings::trim(text));
    if (type == "string") return Property(std::move(s));
    if (type == "double" || type == "float") return Property(std::stod(s));
    if (type == "long" || type == "int") return Property(static_cast<std::int64_t>(std::stoll(s)));
    if (type == "boolean") return Property(s == "true" || s == "1");
    throw ParseError("unknown GraphML attr.type: " + std::string(type));
}

} // namespace

std::string to_graphml(const PropertyGraph& g, std::string_view graph_id) {
    // Collect key declarations: (domain, name) -> (key id, type).
    struct KeyDecl {
        std::string id;
        std::string type;
    };
    std::map<std::pair<std::string, std::string>, KeyDecl> keys;
    int key_counter = 0;
    auto declare = [&](const std::string& domain, const std::string& name, const Property& p) {
        auto k = std::make_pair(domain, name);
        if (!keys.contains(k))
            keys[k] = KeyDecl{"k" + std::to_string(key_counter++), type_name(p)};
    };
    declare("node", "label", Property(std::string{}));
    declare("edge", "label", Property(std::string{}));
    for (NodeId n : g.nodes())
        for (const auto& [name, p] : g.node(n).properties) declare("node", name, p);
    for (EdgeId e : g.edges())
        for (const auto& [name, p] : g.edge(e).properties) declare("edge", name, p);

    std::ostringstream out;
    out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
        << "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
    for (const auto& [k, decl] : keys) {
        out << "  <key id=\"" << decl.id << "\" for=\"" << k.first << "\" attr.name=\""
            << xml::escape(k.second) << "\" attr.type=\"" << decl.type << "\"/>\n";
    }
    out << "  <graph id=\"" << xml::escape(graph_id) << "\" edgedefault=\"directed\">\n";
    for (NodeId n : g.nodes()) {
        out << "    <node id=\"n" << n.value << "\">\n";
        out << "      <data key=\"" << keys.at({"node", "label"}).id << "\">"
            << xml::escape(g.node(n).label) << "</data>\n";
        for (const auto& [name, p] : g.node(n).properties) {
            out << "      <data key=\"" << keys.at({"node", name}).id << "\">"
                << xml::escape(value_text(p)) << "</data>\n";
        }
        out << "    </node>\n";
    }
    int edge_i = 0;
    for (EdgeId e : g.edges()) {
        const auto& ed = g.edge(e);
        out << "    <edge id=\"e" << edge_i++ << "\" source=\"n" << ed.source.value
            << "\" target=\"n" << ed.target.value << "\">\n";
        out << "      <data key=\"" << keys.at({"edge", "label"}).id << "\">"
            << xml::escape(ed.label) << "</data>\n";
        for (const auto& [name, p] : ed.properties) {
            out << "      <data key=\"" << keys.at({"edge", name}).id << "\">"
                << xml::escape(value_text(p)) << "</data>\n";
        }
        out << "    </edge>\n";
    }
    out << "  </graph>\n</graphml>\n";
    return out.str();
}

PropertyGraph from_graphml(std::string_view xml) {
    cybok::xml::Node root = cybok::xml::parse(xml);
    if (root.name != "graphml") throw ParseError("root element is not <graphml>");

    struct KeyInfo {
        std::string domain;
        std::string name;
        std::string type;
    };
    std::map<std::string, KeyInfo> keys;
    const cybok::xml::Node* graph = nullptr;
    for (const cybok::xml::Node& child : root.children) {
        if (child.name == "key") {
            keys[child.attr("id")] =
                KeyInfo{child.attr("for"), child.attr("attr.name"), child.attr("attr.type")};
        } else if (child.name == "graph") {
            if (graph != nullptr) throw ParseError("multiple <graph> elements unsupported");
            graph = &child;
        }
    }
    if (graph == nullptr) throw ParseError("no <graph> element");

    PropertyGraph g;
    std::map<std::string, NodeId> node_ids;
    // Nodes first (GraphML permits interleaving; two passes keep it simple).
    for (const cybok::xml::Node& el : graph->children) {
        if (el.name != "node") continue;
        NodeId n = g.add_node("");
        node_ids[el.attr("id")] = n;
        for (const cybok::xml::Node& data : el.children) {
            if (data.name != "data") continue;
            auto it = keys.find(data.attr("key"));
            if (it == keys.end()) throw ParseError("undeclared key: " + data.attr("key"));
            if (it->second.name == "label") g.node(n).label = std::string(strings::trim(data.text));
            else g.set_property(n, it->second.name, parse_property(it->second.type, data.text));
        }
    }
    for (const cybok::xml::Node& el : graph->children) {
        if (el.name != "edge") continue;
        auto s = node_ids.find(el.attr("source"));
        auto t = node_ids.find(el.attr("target"));
        if (s == node_ids.end() || t == node_ids.end())
            throw ParseError("edge references unknown node");
        EdgeId e = g.add_edge(s->second, t->second);
        for (const cybok::xml::Node& data : el.children) {
            if (data.name != "data") continue;
            auto it = keys.find(data.attr("key"));
            if (it == keys.end()) throw ParseError("undeclared key: " + data.attr("key"));
            if (it->second.name == "label") g.edge(e).label = std::string(strings::trim(data.text));
            else g.set_property(e, it->second.name, parse_property(it->second.type, data.text));
        }
    }
    return g;
}

void save_graphml(const std::string& path, const PropertyGraph& g) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open file for writing: " + path);
    out << to_graphml(g);
    if (!out) throw IoError("write failed: " + path);
}

PropertyGraph load_graphml(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot open file for reading: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return from_graphml(ss.str());
}

} // namespace cybok::graph
