#include "model/system_model.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace cybok::model {

std::string_view fidelity_name(Fidelity f) noexcept {
    switch (f) {
        case Fidelity::Conceptual: return "conceptual";
        case Fidelity::Functional: return "functional";
        case Fidelity::Logical: return "logical";
        case Fidelity::Implementation: return "implementation";
    }
    return "?";
}

std::string_view attribute_kind_name(AttributeKind k) noexcept {
    switch (k) {
        case AttributeKind::Descriptor: return "descriptor";
        case AttributeKind::PlatformRef: return "platform-ref";
        case AttributeKind::Parameter: return "parameter";
    }
    return "?";
}

std::string_view component_type_name(ComponentType t) noexcept {
    switch (t) {
        case ComponentType::Controller: return "controller";
        case ComponentType::Sensor: return "sensor";
        case ComponentType::Actuator: return "actuator";
        case ComponentType::Compute: return "compute";
        case ComponentType::Network: return "network";
        case ComponentType::Software: return "software";
        case ComponentType::HumanInterface: return "human-interface";
        case ComponentType::PhysicalProcess: return "physical-process";
        case ComponentType::Other: return "other";
    }
    return "?";
}

std::string_view channel_kind_name(ChannelKind k) noexcept {
    switch (k) {
        case ChannelKind::Ethernet: return "ethernet";
        case ChannelKind::Serial: return "serial";
        case ChannelKind::Fieldbus: return "fieldbus";
        case ChannelKind::Wireless: return "wireless";
        case ChannelKind::AnalogSignal: return "analog-signal";
        case ChannelKind::Mechanical: return "mechanical";
        case ChannelKind::LogicalFlow: return "logical-flow";
    }
    return "?";
}

ComponentId SystemModel::add_component(std::string name, ComponentType type,
                                       std::string description) {
    Component c;
    c.id = ComponentId{static_cast<std::uint32_t>(components_.size())};
    c.name = std::move(name);
    c.type = type;
    c.description = std::move(description);
    components_.push_back(std::move(c));
    return components_.back().id;
}

bool SystemModel::contains(ComponentId id) const noexcept {
    return id.value < components_.size() && components_[id.value].id.valid();
}

const Component& SystemModel::component(ComponentId id) const {
    if (!contains(id))
        throw NotFoundError("model: no component with id " + std::to_string(id.value));
    return components_[id.value];
}

Component& SystemModel::component(ComponentId id) {
    if (!contains(id))
        throw NotFoundError("model: no component with id " + std::to_string(id.value));
    return components_[id.value];
}

std::optional<ComponentId> SystemModel::find_component(std::string_view name) const noexcept {
    for (const Component& c : components_)
        if (c.id.valid() && c.name == name) return c.id;
    return std::nullopt;
}

void SystemModel::remove_component(ComponentId id) {
    Component& c = component(id);
    c.id = ComponentId{}; // tombstone
    connectors_.erase(std::remove_if(connectors_.begin(), connectors_.end(),
                                     [id](const Connector& k) {
                                         return k.from == id || k.to == id;
                                     }),
                      connectors_.end());
}

void SystemModel::set_attribute(ComponentId id, Attribute attr) {
    Component& c = component(id);
    for (Attribute& existing : c.attributes) {
        if (existing.name == attr.name) {
            existing = std::move(attr);
            return;
        }
    }
    c.attributes.push_back(std::move(attr));
}

bool SystemModel::remove_attribute(ComponentId id, std::string_view attr_name) {
    Component& c = component(id);
    auto it = std::find_if(c.attributes.begin(), c.attributes.end(),
                           [&](const Attribute& a) { return a.name == attr_name; });
    if (it == c.attributes.end()) return false;
    c.attributes.erase(it);
    return true;
}

const Attribute* SystemModel::find_attribute(ComponentId id,
                                             std::string_view attr_name) const noexcept {
    if (!contains(id)) return nullptr;
    for (const Attribute& a : components_[id.value].attributes)
        if (a.name == attr_name) return &a;
    return nullptr;
}

void SystemModel::connect(ComponentId from, ComponentId to, std::string name,
                          ChannelKind kind, bool bidirectional, Fidelity fidelity) {
    if (!contains(from) || !contains(to))
        throw NotFoundError("model: connector references unknown component");
    connectors_.push_back(Connector{from, to, std::move(name), kind, bidirectional, fidelity});
}

std::vector<std::string> SystemModel::validate() const {
    std::vector<std::string> issues;

    std::map<std::string, int> name_counts;
    for (const Component& c : components_)
        if (c.id.valid()) ++name_counts[c.name];
    for (const auto& [name, count] : name_counts)
        if (count > 1)
            issues.push_back("duplicate component name: \"" + name + "\" (" +
                             std::to_string(count) + " components)");

    for (const Connector& k : connectors_) {
        if (!contains(k.from) || !contains(k.to))
            issues.push_back("connector \"" + k.name + "\" references a removed component");
    }

    std::set<std::uint32_t> connected;
    for (const Connector& k : connectors_) {
        connected.insert(k.from.value);
        connected.insert(k.to.value);
    }
    for (const Component& c : components_) {
        if (!c.id.valid()) continue;
        if (!connected.contains(c.id.value) && component_count() > 1)
            issues.push_back("component \"" + c.name + "\" has no connectors");
        for (const Attribute& a : c.attributes) {
            if (a.kind == AttributeKind::PlatformRef && !a.platform.has_value())
                issues.push_back("component \"" + c.name + "\": platform-ref attribute \"" +
                                 a.name + "\" has no resolved platform");
            if (a.name.empty())
                issues.push_back("component \"" + c.name + "\" has an unnamed attribute");
        }
    }
    return issues;
}

SystemModel SystemModel::at_fidelity(Fidelity f) const {
    SystemModel out(name_, description_);
    // Preserve ids: re-add in order, including tombstones.
    for (const Component& c : components_) {
        ComponentId id = out.add_component(c.name, c.type, c.description);
        Component& nc = out.component(id);
        nc.external_facing = c.external_facing;
        nc.subsystem = c.subsystem;
        for (const Attribute& a : c.attributes)
            if (a.fidelity <= f) nc.attributes.push_back(a);
        if (!c.id.valid()) nc.id = ComponentId{}; // keep tombstone
    }
    for (const Connector& k : connectors_)
        if (k.fidelity <= f) out.connectors_.push_back(k);
    return out;
}

Fidelity SystemModel::max_fidelity() const noexcept {
    Fidelity f = Fidelity::Conceptual;
    for (const Component& c : components_) {
        if (!c.id.valid()) continue;
        for (const Attribute& a : c.attributes)
            if (a.fidelity > f) f = a.fidelity;
    }
    for (const Connector& k : connectors_)
        if (k.fidelity > f) f = k.fidelity;
    return f;
}

std::size_t SystemModel::component_count() const noexcept {
    std::size_t n = 0;
    for (const Component& c : components_)
        if (c.id.valid()) ++n;
    return n;
}

} // namespace cybok::model
