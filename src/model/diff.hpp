// Model diffing: the unit of "architectural refinement" in the paper's
// iterative what-if loop. A diff between two model versions tells the
// incremental association engine exactly which components need re-querying.

#pragma once

#include <string>
#include <vector>

#include "model/system_model.hpp"

namespace cybok::model {

/// A change to one attribute of one component.
struct AttributeChange {
    std::string component;  ///< component name (names are the stable key
                            ///< across model versions)
    std::string attribute;
    enum class Kind { Added, Removed, Modified } kind;
    std::string old_value;  ///< empty for Added
    std::string new_value;  ///< empty for Removed
};

/// Structural + attribute delta between two model versions.
struct ModelDiff {
    std::vector<std::string> added_components;
    std::vector<std::string> removed_components;
    std::vector<AttributeChange> attribute_changes;
    std::vector<std::string> added_connectors;   ///< "<from> -> <to> (<name>)"
    std::vector<std::string> removed_connectors;

    [[nodiscard]] bool empty() const noexcept {
        return added_components.empty() && removed_components.empty() &&
               attribute_changes.empty() && added_connectors.empty() &&
               removed_connectors.empty();
    }

    /// Names of components whose attack-vector associations may have
    /// changed (added components + components with attribute changes).
    [[nodiscard]] std::vector<std::string> touched_components() const;
};

/// Compute the delta from `before` to `after`. Components are matched by
/// name; a renamed component appears as removed + added.
[[nodiscard]] ModelDiff diff(const SystemModel& before, const SystemModel& after);

/// Human-readable one-line-per-change rendering.
[[nodiscard]] std::string to_string(const ModelDiff& d);

} // namespace cybok::model
