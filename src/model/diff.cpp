#include "model/diff.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace cybok::model {

std::vector<std::string> ModelDiff::touched_components() const {
    std::set<std::string> names(added_components.begin(), added_components.end());
    for (const AttributeChange& c : attribute_changes) names.insert(c.component);
    return {names.begin(), names.end()};
}

namespace {

std::map<std::string, const Component*> by_name(const SystemModel& m) {
    std::map<std::string, const Component*> out;
    for (const Component& c : m.components())
        if (c.id.valid()) out.emplace(c.name, &c);
    return out;
}

std::string connector_key(const SystemModel& m, const Connector& k) {
    std::string from = m.contains(k.from) ? m.component(k.from).name : "?";
    std::string to = m.contains(k.to) ? m.component(k.to).name : "?";
    std::string key = from + " -> " + to + " (" + k.name + ")";
    if (k.bidirectional) key += " [bidir]";
    return key;
}

} // namespace

ModelDiff diff(const SystemModel& before, const SystemModel& after) {
    ModelDiff d;
    auto old_comps = by_name(before);
    auto new_comps = by_name(after);

    for (const auto& [name, _] : new_comps)
        if (!old_comps.contains(name)) d.added_components.push_back(name);
    for (const auto& [name, _] : old_comps)
        if (!new_comps.contains(name)) d.removed_components.push_back(name);

    for (const auto& [name, new_c] : new_comps) {
        auto it = old_comps.find(name);
        if (it == old_comps.end()) continue;
        const Component* old_c = it->second;
        std::map<std::string, const Attribute*> old_attrs;
        for (const Attribute& a : old_c->attributes) old_attrs.emplace(a.name, &a);
        std::set<std::string> seen;
        for (const Attribute& a : new_c->attributes) {
            seen.insert(a.name);
            auto oit = old_attrs.find(a.name);
            if (oit == old_attrs.end()) {
                d.attribute_changes.push_back(
                    {name, a.name, AttributeChange::Kind::Added, "", a.value});
            } else if (!(*oit->second == a)) {
                d.attribute_changes.push_back({name, a.name, AttributeChange::Kind::Modified,
                                               oit->second->value, a.value});
            }
        }
        for (const auto& [attr_name, old_a] : old_attrs) {
            if (!seen.contains(attr_name))
                d.attribute_changes.push_back(
                    {name, attr_name, AttributeChange::Kind::Removed, old_a->value, ""});
        }
    }

    std::multiset<std::string> old_conns;
    for (const Connector& k : before.connectors()) old_conns.insert(connector_key(before, k));
    std::multiset<std::string> new_conns;
    for (const Connector& k : after.connectors()) new_conns.insert(connector_key(after, k));
    for (const std::string& key : new_conns)
        if (old_conns.erase(key) == 0) d.added_connectors.push_back(key);
    // Whatever survives in old_conns was not matched by a new connector.
    for (const std::string& key : old_conns) d.removed_connectors.push_back(key);

    return d;
}

std::string to_string(const ModelDiff& d) {
    std::ostringstream out;
    for (const std::string& c : d.added_components) out << "+ component " << c << '\n';
    for (const std::string& c : d.removed_components) out << "- component " << c << '\n';
    for (const AttributeChange& c : d.attribute_changes) {
        switch (c.kind) {
            case AttributeChange::Kind::Added:
                out << "+ " << c.component << "." << c.attribute << " = \"" << c.new_value
                    << "\"\n";
                break;
            case AttributeChange::Kind::Removed:
                out << "- " << c.component << "." << c.attribute << " (was \"" << c.old_value
                    << "\")\n";
                break;
            case AttributeChange::Kind::Modified:
                out << "~ " << c.component << "." << c.attribute << ": \"" << c.old_value
                    << "\" -> \"" << c.new_value << "\"\n";
                break;
        }
    }
    for (const std::string& k : d.added_connectors) out << "+ connector " << k << '\n';
    for (const std::string& k : d.removed_connectors) out << "- connector " << k << '\n';
    return out.str();
}

} // namespace cybok::model
