// Capability (1) of the paper: export the modeling-language-specific system
// model to the general architectural model (a property graph, serializable
// as GraphML) that the security tooling consumes.

#pragma once

#include "graph/property_graph.hpp"
#include "model/system_model.hpp"

namespace cybok::model {

/// Convert the system model to the general architectural graph.
///
/// Node properties: "type", "subsystem", "external" plus one
/// "attr.<name>" property per attribute (value text) and
/// "attr.<name>.kind"/"attr.<name>.fidelity" metadata. Edge properties:
/// "channel" and "fidelity". Bidirectional connectors become two edges.
[[nodiscard]] graph::PropertyGraph to_graph(const SystemModel& m);

/// Inverse of to_graph for graphs produced by it (used to ingest GraphML
/// models exported from external modeling tools). Throws ValidationError
/// when required properties are missing.
[[nodiscard]] SystemModel from_graph(const graph::PropertyGraph& g);

} // namespace cybok::model
