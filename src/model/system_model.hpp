// The system-model layer: a SysML-flavored architectural description of a
// cyber-physical system at design time.
//
// The paper requires the model to carry "extra design information … in the
// form of an initial architecture" beyond current modeling practice; here
// that information is typed *attributes* on components, each tagged with
// the fidelity level at which it becomes known. Projecting the model to a
// lower fidelity (at_fidelity) reproduces an earlier design iteration —
// the knob behind the paper's "result space is highly sensitive to the
// fidelity of the model" lesson.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kb/platform.hpp"
#include "util/error.hpp"

namespace cybok::model {

/// How far along the design lifecycle a piece of model information sits.
/// Conceptual: mission-level; Functional: what the system does; Logical:
/// architecture blocks and channels; Implementation: concrete hardware and
/// software products.
enum class Fidelity : std::uint8_t { Conceptual = 0, Functional = 1, Logical = 2,
                                     Implementation = 3 };
[[nodiscard]] std::string_view fidelity_name(Fidelity f) noexcept;

/// What an attribute's value denotes — the search engine treats these
/// differently (the paper: "high-level descriptions … match attack pattern
/// and weakness instances; low-level or more specific descriptions …
/// relate more closely to vulnerability instances").
enum class AttributeKind : std::uint8_t {
    Descriptor,  ///< free-text characterization ("supervisory controller")
    PlatformRef, ///< names a concrete product ("Windows 7", resolvable to CPE)
    Parameter,   ///< an engineering parameter ("max speed 10000 rpm")
};
[[nodiscard]] std::string_view attribute_kind_name(AttributeKind k) noexcept;

/// One piece of design information attached to a component.
struct Attribute {
    std::string name;  ///< e.g. "os", "controller-software", "role"
    std::string value; ///< e.g. "NI RT Linux OS"
    AttributeKind kind = AttributeKind::Descriptor;
    /// Lifecycle stage at which this information exists in the model.
    Fidelity fidelity = Fidelity::Logical;
    /// For PlatformRef attributes: the resolved structured platform name.
    std::optional<kb::Platform> platform;

    friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// Architectural role of a component.
enum class ComponentType : std::uint8_t {
    Controller, Sensor, Actuator, Compute, Network, Software, HumanInterface,
    PhysicalProcess, Other,
};
[[nodiscard]] std::string_view component_type_name(ComponentType t) noexcept;

struct ComponentId {
    std::uint32_t value = UINT32_MAX;
    [[nodiscard]] bool valid() const noexcept { return value != UINT32_MAX; }
    friend auto operator<=>(const ComponentId&, const ComponentId&) = default;
};

/// A block in the architecture.
struct Component {
    ComponentId id;
    std::string name;
    ComponentType type = ComponentType::Other;
    std::string description;
    std::vector<Attribute> attributes;
    /// Reachable from outside the system boundary (network uplink,
    /// removable media, physical access) — an attacker entry point.
    bool external_facing = false;
    /// Optional subsystem grouping ("control network", "corporate network").
    std::string subsystem;
};

/// Physical/logical nature of a connection.
enum class ChannelKind : std::uint8_t {
    Ethernet, Serial, Fieldbus, Wireless, AnalogSignal, Mechanical, LogicalFlow,
};
[[nodiscard]] std::string_view channel_kind_name(ChannelKind k) noexcept;

/// A directed connection between two components (set `bidirectional` for
/// request/response links; export creates one edge per direction).
struct Connector {
    ComponentId from;
    ComponentId to;
    std::string name; ///< e.g. "MODBUS/TCP", "4-20mA"
    ChannelKind kind = ChannelKind::Ethernet;
    bool bidirectional = false;
    Fidelity fidelity = Fidelity::Logical;
};

/// The system model. Components and connectors are append-only with stable
/// ids; attribute edits go through set_attribute/remove_attribute so the
/// diff layer can track them.
class SystemModel {
public:
    SystemModel() = default;
    SystemModel(std::string name, std::string description)
        : name_(std::move(name)), description_(std::move(description)) {}

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::string& description() const noexcept { return description_; }
    void set_description(std::string description) { description_ = std::move(description); }

    // -- components ---------------------------------------------------------

    ComponentId add_component(std::string name, ComponentType type,
                              std::string description = "");
    [[nodiscard]] const Component& component(ComponentId id) const;
    [[nodiscard]] Component& component(ComponentId id);
    [[nodiscard]] const std::vector<Component>& components() const noexcept { return components_; }
    [[nodiscard]] std::optional<ComponentId> find_component(std::string_view name) const noexcept;
    void remove_component(ComponentId id);
    [[nodiscard]] bool contains(ComponentId id) const noexcept;

    // -- attributes ---------------------------------------------------------

    /// Add or replace (by attribute name) an attribute on a component.
    void set_attribute(ComponentId id, Attribute attr);
    /// Remove by name; returns false if absent.
    bool remove_attribute(ComponentId id, std::string_view attr_name);
    [[nodiscard]] const Attribute* find_attribute(ComponentId id,
                                                  std::string_view attr_name) const noexcept;

    // -- connectors ---------------------------------------------------------

    void connect(ComponentId from, ComponentId to, std::string name,
                 ChannelKind kind = ChannelKind::Ethernet, bool bidirectional = false,
                 Fidelity fidelity = Fidelity::Logical);
    [[nodiscard]] const std::vector<Connector>& connectors() const noexcept { return connectors_; }

    // -- whole-model operations ----------------------------------------------

    /// Structural sanity check; returns human-readable problems (empty =
    /// valid): dangling connectors, duplicate component names, unresolved
    /// PlatformRef attributes, isolated components.
    [[nodiscard]] std::vector<std::string> validate() const;

    /// Projection containing only information available at fidelity <= f
    /// (attributes and connectors above f are dropped; components always
    /// survive — blocks exist from the start, their details don't).
    [[nodiscard]] SystemModel at_fidelity(Fidelity f) const;

    /// Highest fidelity any attribute in the model carries.
    [[nodiscard]] Fidelity max_fidelity() const noexcept;

    /// Count of live components.
    [[nodiscard]] std::size_t component_count() const noexcept;

private:
    std::string name_;
    std::string description_;
    std::vector<Component> components_; // tombstoned via id.valid()==false
    std::vector<Connector> connectors_;
};

} // namespace cybok::model
