#include "model/dsl.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "kb/platform.hpp"

namespace cybok::model {

namespace {

// ---------------------------------------------------------------- lexer

enum class TokKind { Ident, String, Symbol, End };

struct Token {
    TokKind kind = TokKind::End;
    std::string text;
    std::size_t offset = 0;
};

class Lexer {
public:
    explicit Lexer(std::string_view text) : text_(text) { advance(); }

    [[nodiscard]] const Token& peek() const noexcept { return current_; }

    Token take() {
        Token t = current_;
        advance();
        return t;
    }

private:
    void skip_ws_and_comments() {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                ++pos_;
            } else if (c == '#') {
                while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
            } else {
                break;
            }
        }
    }

    static bool ident_char(char c) noexcept {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
               c == '-' || c == '_' || c == '.';
    }

    void advance() {
        skip_ws_and_comments();
        current_.offset = pos_;
        if (pos_ >= text_.size()) {
            current_.kind = TokKind::End;
            current_.text.clear();
            return;
        }
        char c = text_[pos_];
        if (c == '"') {
            ++pos_;
            std::string out;
            while (pos_ < text_.size() && text_[pos_] != '"') {
                if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
                    ++pos_;
                    char esc = text_[pos_];
                    out.push_back(esc == 'n' ? '\n' : esc);
                } else {
                    out.push_back(text_[pos_]);
                }
                ++pos_;
            }
            if (pos_ >= text_.size())
                throw ParseError("unterminated string literal", current_.offset);
            ++pos_; // closing quote
            current_.kind = TokKind::String;
            current_.text = std::move(out);
            return;
        }
        // Arrows before identifiers: '-' is also an identifier character,
        // so "->" must be recognized here or it would lex as ident "-".
        if (text_.substr(pos_, 3) == "<->") {
            current_ = Token{TokKind::Symbol, "<->", pos_};
            pos_ += 3;
            return;
        }
        if (text_.substr(pos_, 2) == "->") {
            current_ = Token{TokKind::Symbol, "->", pos_};
            pos_ += 2;
            return;
        }
        if (ident_char(c)) {
            std::size_t start = pos_;
            while (pos_ < text_.size() && ident_char(text_[pos_])) ++pos_;
            current_.kind = TokKind::Ident;
            current_.text = std::string(text_.substr(start, pos_ - start));
            return;
        }
        if (c == '{' || c == '}' || c == '=') {
            current_ = Token{TokKind::Symbol, std::string(1, c), pos_};
            ++pos_;
            return;
        }
        throw ParseError(std::string("unexpected character '") + c + "'", pos_);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    Token current_;
};

// --------------------------------------------------------------- parser

ComponentType parse_component_type(const Token& t) {
    for (int i = 0; i <= static_cast<int>(ComponentType::Other); ++i) {
        auto ct = static_cast<ComponentType>(i);
        if (component_type_name(ct) == t.text) return ct;
    }
    throw ParseError("unknown component type: " + t.text, t.offset);
}

ChannelKind parse_channel_kind(const Token& t) {
    for (int i = 0; i <= static_cast<int>(ChannelKind::LogicalFlow); ++i) {
        auto k = static_cast<ChannelKind>(i);
        if (channel_kind_name(k) == t.text) return k;
    }
    throw ParseError("unknown channel kind: " + t.text, t.offset);
}

Fidelity parse_fidelity(const Token& t) {
    for (int i = 0; i <= static_cast<int>(Fidelity::Implementation); ++i) {
        auto f = static_cast<Fidelity>(i);
        if (fidelity_name(f) == t.text) return f;
    }
    throw ParseError("unknown fidelity level: " + t.text, t.offset);
}

class Parser {
public:
    explicit Parser(std::string_view text) : lex_(text) {}

    SystemModel parse() {
        expect_ident("system");
        std::string name = expect_string();
        SystemModel m(std::move(name), "");
        expect_symbol("{");
        while (!at_symbol("}")) {
            Token t = lex_.take();
            if (t.kind != TokKind::Ident)
                throw ParseError("expected directive, got '" + t.text + "'", t.offset);
            if (t.text == "description") {
                m.set_description(expect_string());
            } else if (t.text == "component") {
                parse_component(m);
            } else if (t.text == "connect") {
                parse_connect(m);
            } else {
                throw ParseError("unknown directive: " + t.text, t.offset);
            }
        }
        expect_symbol("}");
        if (lex_.peek().kind != TokKind::End)
            throw ParseError("trailing content after system block", lex_.peek().offset);
        return m;
    }

private:
    void parse_component(SystemModel& m) {
        std::string name = expect_string();
        if (m.find_component(name).has_value())
            throw ValidationError("duplicate component: " + name);
        ComponentType type = ComponentType::Other;
        std::string subsystem;
        bool external = false;
        bool saw_type = false;
        // Header options until '{'.
        while (!at_symbol("{")) {
            Token t = lex_.take();
            if (t.kind != TokKind::Ident)
                throw ParseError("expected component option", t.offset);
            if (t.text == "type") {
                expect_symbol("=");
                type = parse_component_type(lex_.take());
                saw_type = true;
            } else if (t.text == "subsystem") {
                expect_symbol("=");
                subsystem = expect_string();
            } else if (t.text == "external") {
                external = true;
            } else {
                throw ParseError("unknown component option: " + t.text, t.offset);
            }
        }
        if (!saw_type) throw ValidationError("component \"" + name + "\" needs type=...");
        expect_symbol("{");

        ComponentId id = m.add_component(std::move(name), type);
        m.component(id).subsystem = std::move(subsystem);
        m.component(id).external_facing = external;

        while (!at_symbol("}")) {
            Token t = lex_.take();
            if (t.kind != TokKind::Ident)
                throw ParseError("expected attribute directive", t.offset);
            if (t.text == "description") {
                m.component(id).description = expect_string();
                continue;
            }
            AttributeKind kind;
            Fidelity fidelity;
            if (t.text == "descriptor") {
                kind = AttributeKind::Descriptor;
                fidelity = Fidelity::Functional;
            } else if (t.text == "platform") {
                kind = AttributeKind::PlatformRef;
                fidelity = Fidelity::Implementation;
            } else if (t.text == "parameter") {
                kind = AttributeKind::Parameter;
                fidelity = Fidelity::Logical;
            } else {
                throw ParseError("unknown attribute directive: " + t.text, t.offset);
            }
            Token name_tok = lex_.take();
            if (name_tok.kind != TokKind::Ident)
                throw ParseError("expected attribute name", name_tok.offset);
            expect_symbol("=");
            Attribute attr;
            attr.name = name_tok.text;
            attr.value = expect_string();
            attr.kind = kind;
            attr.fidelity = fidelity;
            // Trailing options: cpe="..." fidelity=<level>
            while (lex_.peek().kind == TokKind::Ident &&
                   (lex_.peek().text == "cpe" || lex_.peek().text == "fidelity")) {
                Token opt = lex_.take();
                expect_symbol("=");
                if (opt.text == "cpe") {
                    attr.platform = kb::Platform::parse(expect_string());
                } else {
                    attr.fidelity = parse_fidelity(lex_.take());
                }
            }
            if (kind == AttributeKind::PlatformRef && !attr.platform.has_value())
                throw ValidationError("platform attribute \"" + attr.name +
                                      "\" needs cpe=\"...\"");
            m.set_attribute(id, std::move(attr));
        }
        expect_symbol("}");
    }

    void parse_connect(SystemModel& m) {
        std::string from = expect_string();
        Token arrow = lex_.take();
        if (arrow.kind != TokKind::Symbol || (arrow.text != "->" && arrow.text != "<->"))
            throw ParseError("expected -> or <-> in connect", arrow.offset);
        bool bidirectional = arrow.text == "<->";
        std::string to = expect_string();
        expect_ident("via");
        std::string label = expect_string();
        ChannelKind kind = ChannelKind::LogicalFlow;
        Fidelity fidelity = Fidelity::Logical;
        while (lex_.peek().kind == TokKind::Ident &&
               (lex_.peek().text == "kind" || lex_.peek().text == "fidelity")) {
            Token opt = lex_.take();
            expect_symbol("=");
            if (opt.text == "kind") kind = parse_channel_kind(lex_.take());
            else fidelity = parse_fidelity(lex_.take());
        }
        auto from_id = m.find_component(from);
        auto to_id = m.find_component(to);
        if (!from_id.has_value())
            throw ValidationError("connect references unknown component: " + from);
        if (!to_id.has_value())
            throw ValidationError("connect references unknown component: " + to);
        m.connect(*from_id, *to_id, std::move(label), kind, bidirectional, fidelity);
    }

    void expect_ident(std::string_view word) {
        Token t = lex_.take();
        if (t.kind != TokKind::Ident || t.text != word)
            throw ParseError("expected '" + std::string(word) + "', got '" + t.text + "'",
                             t.offset);
    }

    std::string expect_string() {
        Token t = lex_.take();
        if (t.kind != TokKind::String)
            throw ParseError("expected string literal, got '" + t.text + "'", t.offset);
        return t.text;
    }

    void expect_symbol(std::string_view sym) {
        Token t = lex_.take();
        if (t.kind != TokKind::Symbol || t.text != sym)
            throw ParseError("expected '" + std::string(sym) + "', got '" + t.text + "'",
                             t.offset);
    }

    [[nodiscard]] bool at_symbol(std::string_view sym) {
        return lex_.peek().kind == TokKind::Symbol && lex_.peek().text == sym;
    }

    Lexer lex_;
};

std::string quote(std::string_view s) {
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace

SystemModel parse_dsl(std::string_view text) { return Parser(text).parse(); }

std::string to_dsl(const SystemModel& m) {
    std::ostringstream out;
    out << "system " << quote(m.name()) << " {\n";
    if (!m.description().empty())
        out << "  description " << quote(m.description()) << "\n";
    for (const Component& c : m.components()) {
        if (!c.id.valid()) continue;
        out << "\n  component " << quote(c.name) << " type="
            << component_type_name(c.type);
        if (!c.subsystem.empty()) out << " subsystem=" << quote(c.subsystem);
        if (c.external_facing) out << " external";
        out << " {\n";
        if (!c.description.empty())
            out << "    description " << quote(c.description) << "\n";
        for (const Attribute& a : c.attributes) {
            const char* directive = "descriptor";
            Fidelity default_fid = Fidelity::Functional;
            if (a.kind == AttributeKind::PlatformRef) {
                directive = "platform";
                default_fid = Fidelity::Implementation;
            } else if (a.kind == AttributeKind::Parameter) {
                directive = "parameter";
                default_fid = Fidelity::Logical;
            }
            out << "    " << directive << " " << a.name << " = " << quote(a.value);
            if (a.platform.has_value()) out << " cpe=" << quote(a.platform->uri());
            if (a.fidelity != default_fid)
                out << " fidelity=" << fidelity_name(a.fidelity);
            out << "\n";
        }
        out << "  }\n";
    }
    if (!m.connectors().empty()) out << "\n";
    for (const Connector& k : m.connectors()) {
        if (!m.contains(k.from) || !m.contains(k.to)) continue;
        out << "  connect " << quote(m.component(k.from).name)
            << (k.bidirectional ? " <-> " : " -> ") << quote(m.component(k.to).name)
            << " via " << quote(k.name) << " kind=" << channel_kind_name(k.kind);
        if (k.fidelity != Fidelity::Logical) out << " fidelity=" << fidelity_name(k.fidelity);
        out << "\n";
    }
    out << "}\n";
    return out.str();
}

SystemModel load_dsl(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot open file for reading: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse_dsl(ss.str());
}

void save_dsl(const std::string& path, const SystemModel& m) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open file for writing: " + path);
    out << to_dsl(m);
    if (!out) throw IoError("write failed: " + path);
}

} // namespace cybok::model
