// Mission layer: missions -> system functions -> component allocations.
//
// The paper's methodology lineage (its reference [9], "A model-based
// approach to security analysis for cyber-physical systems") is
// mission-aware: what makes a component critical is not its CVE count but
// the mission functions that die with it. This layer records that
// traceability so the analysis can answer "which missions does this
// attack vector ultimately threaten?".

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/system_model.hpp"

namespace cybok::model {

/// A system function ("regulate temperature", "separate particulate").
struct Function {
    std::string id;   ///< "F-1"
    std::string text;
    /// Components this function is allocated to (all are needed; losing
    /// any one degrades the function).
    std::vector<std::string> allocated_to;
};

/// A mission with the functions it requires.
struct Mission {
    std::string id;   ///< "M-1"
    std::string text;
    std::vector<std::string> requires_functions; ///< function ids
};

/// Missions + functions + allocation for one system model.
class MissionModel {
public:
    void add(Function function);
    void add(Mission mission);

    [[nodiscard]] const std::vector<Function>& functions() const noexcept { return functions_; }
    [[nodiscard]] const std::vector<Mission>& missions() const noexcept { return missions_; }
    [[nodiscard]] const Function* find_function(std::string_view id) const noexcept;
    [[nodiscard]] const Mission* find_mission(std::string_view id) const noexcept;

    /// Functions allocated (at least partly) to the component.
    [[nodiscard]] std::vector<const Function*> functions_on(std::string_view component) const;

    /// Missions requiring any function allocated to the component — the
    /// blast radius of losing it.
    [[nodiscard]] std::vector<const Mission*> missions_threatened_by(
        std::string_view component) const;

    /// Referential integrity against a system model: allocations name
    /// existing components, mission function references resolve, ids are
    /// unique, every function is allocated. Empty = valid.
    [[nodiscard]] std::vector<std::string> validate(const SystemModel& m) const;

private:
    std::vector<Function> functions_;
    std::vector<Mission> missions_;
};

} // namespace cybok::model
