// A textual architecture description language (".sysm") for SystemModel.
//
// GraphML is the machine interchange format (model/export.hpp); this DSL
// is the human one — version-controllable, diffable, and writable without
// a modeling tool, which is exactly the situation the paper targets ("the
// only available description is design documents or incomplete
// documentation of legacy systems").
//
// Grammar (line comments start with '#'):
//
//   system "<name>" {
//     description "<text>"
//     component "<name>" type=<component-type> [subsystem="<text>"] [external] {
//       [description "<text>"]
//       descriptor <attr-name> = "<text>" [fidelity=<level>]
//       platform   <attr-name> = "<text>" cpe="<cpe-2.3-uri>"
//       parameter  <attr-name> = "<text>"
//     }
//     connect "<from>" -> "<to>"  via "<label>" [kind=<channel>] [fidelity=<level>]
//     connect "<from>" <-> "<to>" via "<label>" [kind=<channel>] [fidelity=<level>]
//   }
//
// <component-type>, <channel>, <level> use the canonical names from
// system_model.hpp (component_type_name / channel_kind_name /
// fidelity_name). Unspecified fidelity defaults: descriptor=functional,
// platform=implementation, parameter=logical, connector=logical.

#pragma once

#include <string>
#include <string_view>

#include "model/system_model.hpp"

namespace cybok::model {

/// Parse a DSL document into a model. Throws ParseError (with offset) on
/// syntax errors and ValidationError on semantic ones (unknown component
/// in connect, unknown enum name, duplicate component).
[[nodiscard]] SystemModel parse_dsl(std::string_view text);

/// Serialize a model to DSL text. parse_dsl(to_dsl(m)) reconstructs an
/// equivalent model (diff-empty up to attribute ordering).
[[nodiscard]] std::string to_dsl(const SystemModel& m);

/// File helpers (throw IoError).
[[nodiscard]] SystemModel load_dsl(const std::string& path);
void save_dsl(const std::string& path, const SystemModel& m);

} // namespace cybok::model
