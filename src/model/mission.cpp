#include "model/mission.hpp"

#include <algorithm>
#include <set>

namespace cybok::model {

void MissionModel::add(Function function) { functions_.push_back(std::move(function)); }
void MissionModel::add(Mission mission) { missions_.push_back(std::move(mission)); }

const Function* MissionModel::find_function(std::string_view id) const noexcept {
    for (const Function& f : functions_)
        if (f.id == id) return &f;
    return nullptr;
}

const Mission* MissionModel::find_mission(std::string_view id) const noexcept {
    for (const Mission& m : missions_)
        if (m.id == id) return &m;
    return nullptr;
}

std::vector<const Function*> MissionModel::functions_on(std::string_view component) const {
    std::vector<const Function*> out;
    for (const Function& f : functions_) {
        if (std::find(f.allocated_to.begin(), f.allocated_to.end(), component) !=
            f.allocated_to.end())
            out.push_back(&f);
    }
    return out;
}

std::vector<const Mission*> MissionModel::missions_threatened_by(
    std::string_view component) const {
    std::set<std::string> function_ids;
    for (const Function* f : functions_on(component)) function_ids.insert(f->id);
    std::vector<const Mission*> out;
    for (const Mission& m : missions_) {
        bool hit = std::any_of(m.requires_functions.begin(), m.requires_functions.end(),
                               [&](const std::string& fid) {
                                   return function_ids.contains(fid);
                               });
        if (hit) out.push_back(&m);
    }
    return out;
}

std::vector<std::string> MissionModel::validate(const SystemModel& m) const {
    std::vector<std::string> issues;
    std::set<std::string> ids;
    for (const Function& f : functions_) {
        if (!ids.insert(f.id).second) issues.push_back("duplicate id: " + f.id);
        if (f.allocated_to.empty())
            issues.push_back("function " + f.id + " is not allocated to any component");
        for (const std::string& component : f.allocated_to)
            if (!m.find_component(component).has_value())
                issues.push_back("function " + f.id + " allocated to unknown component \"" +
                                 component + "\"");
    }
    for (const Mission& mission : missions_) {
        if (!ids.insert(mission.id).second) issues.push_back("duplicate id: " + mission.id);
        if (mission.requires_functions.empty())
            issues.push_back("mission " + mission.id + " requires no functions");
        for (const std::string& fid : mission.requires_functions)
            if (find_function(fid) == nullptr)
                issues.push_back("mission " + mission.id + " references unknown function " +
                                 fid);
    }
    return issues;
}

} // namespace cybok::model
