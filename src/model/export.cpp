#include "model/export.hpp"

#include <map>

#include "util/strings.hpp"

namespace cybok::model {

namespace {

ComponentType component_type_from_name(std::string_view s) {
    for (int i = 0; i <= static_cast<int>(ComponentType::Other); ++i) {
        auto t = static_cast<ComponentType>(i);
        if (component_type_name(t) == s) return t;
    }
    throw ValidationError("unknown component type: " + std::string(s));
}

ChannelKind channel_kind_from_name(std::string_view s) {
    for (int i = 0; i <= static_cast<int>(ChannelKind::LogicalFlow); ++i) {
        auto k = static_cast<ChannelKind>(i);
        if (channel_kind_name(k) == s) return k;
    }
    throw ValidationError("unknown channel kind: " + std::string(s));
}

AttributeKind attribute_kind_from_name(std::string_view s) {
    for (int i = 0; i <= static_cast<int>(AttributeKind::Parameter); ++i) {
        auto k = static_cast<AttributeKind>(i);
        if (attribute_kind_name(k) == s) return k;
    }
    throw ValidationError("unknown attribute kind: " + std::string(s));
}

Fidelity fidelity_from_int(std::int64_t i) {
    if (i < 0 || i > static_cast<int>(Fidelity::Implementation))
        throw ValidationError("fidelity out of range: " + std::to_string(i));
    return static_cast<Fidelity>(i);
}

} // namespace

graph::PropertyGraph to_graph(const SystemModel& m) {
    graph::PropertyGraph g;
    std::map<std::uint32_t, graph::NodeId> node_of;
    for (const Component& c : m.components()) {
        if (!c.id.valid()) continue;
        graph::NodeId n = g.add_node(c.name);
        node_of[c.id.value] = n;
        g.set_property(n, "type", std::string(component_type_name(c.type)));
        if (!c.subsystem.empty()) g.set_property(n, "subsystem", c.subsystem);
        if (!c.description.empty()) g.set_property(n, "description", c.description);
        g.set_property(n, "external", c.external_facing);
        for (const Attribute& a : c.attributes) {
            g.set_property(n, "attr." + a.name, a.value);
            g.set_property(n, "attr." + a.name + ".kind",
                           std::string(attribute_kind_name(a.kind)));
            g.set_property(n, "attr." + a.name + ".fidelity",
                           static_cast<std::int64_t>(a.fidelity));
            if (a.platform.has_value())
                g.set_property(n, "attr." + a.name + ".platform", a.platform->uri());
        }
    }
    for (const Connector& k : m.connectors()) {
        auto add = [&](ComponentId from, ComponentId to) {
            graph::EdgeId e = g.add_edge(node_of.at(from.value), node_of.at(to.value), k.name);
            g.set_property(e, "channel", std::string(channel_kind_name(k.kind)));
            g.set_property(e, "fidelity", static_cast<std::int64_t>(k.fidelity));
        };
        add(k.from, k.to);
        if (k.bidirectional) add(k.to, k.from);
    }
    return g;
}

SystemModel from_graph(const graph::PropertyGraph& g) {
    SystemModel m("imported", "model imported from architectural graph");
    std::map<graph::NodeId, ComponentId> comp_of;

    for (graph::NodeId n : g.nodes()) {
        const graph::PropertyGraph::Node& node = g.node(n);
        const graph::Property* type_p = g.get_property(n, "type");
        if (type_p == nullptr)
            throw ValidationError("node \"" + node.label + "\" lacks a 'type' property");
        ComponentId id = m.add_component(node.label,
                                         component_type_from_name(
                                             graph::property_to_string(*type_p)));
        comp_of[n] = id;
        Component& c = m.component(id);
        if (const graph::Property* p = g.get_property(n, "subsystem"))
            c.subsystem = graph::property_to_string(*p);
        if (const graph::Property* p = g.get_property(n, "description"))
            c.description = graph::property_to_string(*p);
        if (const graph::Property* p = g.get_property(n, "external"))
            c.external_facing = std::holds_alternative<bool>(*p) ? std::get<bool>(*p)
                                : graph::property_to_string(*p) == "true";

        // Reassemble attributes from the attr.<name>[.suffix] properties.
        for (const auto& [key, value] : node.properties) {
            if (!key.starts_with("attr.")) continue;
            std::string_view rest = std::string_view(key).substr(5);
            if (rest.find('.') != std::string_view::npos) continue; // metadata key
            Attribute a;
            a.name = std::string(rest);
            a.value = graph::property_to_string(value);
            if (const graph::Property* p = g.get_property(n, key + ".kind"))
                a.kind = attribute_kind_from_name(graph::property_to_string(*p));
            if (const graph::Property* p = g.get_property(n, key + ".fidelity")) {
                if (const auto* i = std::get_if<std::int64_t>(p))
                    a.fidelity = fidelity_from_int(*i);
            }
            if (const graph::Property* p = g.get_property(n, key + ".platform"))
                a.platform = kb::Platform::parse(graph::property_to_string(*p));
            m.set_attribute(id, std::move(a));
        }
    }

    for (graph::EdgeId e : g.edges()) {
        const auto& edge = g.edge(e);
        ChannelKind kind = ChannelKind::LogicalFlow;
        Fidelity fid = Fidelity::Logical;
        if (const graph::Property* p = g.get_property(e, "channel"))
            kind = channel_kind_from_name(graph::property_to_string(*p));
        if (const graph::Property* p = g.get_property(e, "fidelity"))
            if (const auto* i = std::get_if<std::int64_t>(p)) fid = fidelity_from_int(*i);
        m.connect(comp_of.at(edge.source), comp_of.at(edge.target), edge.label, kind,
                  /*bidirectional=*/false, fid);
    }
    return m;
}

} // namespace cybok::model
