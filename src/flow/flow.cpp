#include "flow/flow.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/property_graph.hpp"

namespace cybok::flow {

namespace {

/// Dense CSR-style view of a model's live components and connectors —
/// the shared substrate all three fixpoints run over. Adjacency lists are
/// sorted + deduplicated so iteration order (and therefore every counter)
/// is a pure function of the model.
struct FlowGraph {
    std::vector<const model::Component*> comps; ///< live, model order
    std::map<std::string_view, std::uint32_t> by_name; ///< first occurrence wins
    std::vector<std::vector<std::uint32_t>> fwd;
    std::vector<std::vector<std::uint32_t>> bwd;
    std::size_t edge_count = 0;

    [[nodiscard]] std::size_t size() const noexcept { return comps.size(); }
};

FlowGraph build_graph(const model::SystemModel& m) {
    FlowGraph g;
    std::map<std::uint32_t, std::uint32_t> by_id;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        by_id[c.id.value] = static_cast<std::uint32_t>(g.comps.size());
        g.by_name.emplace(c.name, static_cast<std::uint32_t>(g.comps.size()));
        g.comps.push_back(&c);
    }
    g.fwd.resize(g.size());
    g.bwd.resize(g.size());
    for (const model::Connector& k : m.connectors()) {
        if (!m.contains(k.from) || !m.contains(k.to)) continue; // M002's finding
        const std::uint32_t u = by_id.at(k.from.value);
        const std::uint32_t v = by_id.at(k.to.value);
        g.fwd[u].push_back(v);
        g.bwd[v].push_back(u);
        if (k.bidirectional && u != v) {
            g.fwd[v].push_back(u);
            g.bwd[u].push_back(v);
        }
    }
    for (std::size_t i = 0; i < g.size(); ++i) {
        auto dedup = [](std::vector<std::uint32_t>& adj) {
            std::sort(adj.begin(), adj.end());
            adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
        };
        dedup(g.fwd[i]);
        dedup(g.bwd[i]);
        g.edge_count += g.fwd[i].size();
    }
    return g;
}

/// Per-component inputs to the transfer functions, derived from the
/// association map and the hazard model.
struct Facts {
    std::vector<std::size_t> vectors;
    std::vector<double> max_cvss;
    std::vector<double> perm;
    std::vector<bool> entry;        ///< external-facing and permeable
    std::vector<bool> hazard_linked; ///< controller of >= 1 UCA
    std::vector<std::string> hazard_ids; ///< sorted unique hazard ids
    /// Seed bits per component (hazard_ids positions); empty rows for
    /// non-controllers. Width in 64-bit words.
    std::size_t words = 0;
    std::vector<std::uint64_t> seeds; ///< size() * words, flat
};

Facts build_facts(const FlowGraph& g, const search::AssociationMap& associations,
                  const safety::HazardModel* hazards, const FlowOptions& options) {
    Facts f;
    const std::size_t n = g.size();
    f.vectors.assign(n, 0);
    f.max_cvss.assign(n, -1.0);
    f.perm.assign(n, 0.0);
    f.entry.assign(n, false);
    f.hazard_linked.assign(n, false);

    std::map<std::string_view, std::pair<std::size_t, double>> by_name;
    for (const search::ComponentAssociation& ca : associations.components) {
        auto [it, inserted] = by_name.try_emplace(ca.component, 0, -1.0);
        if (!inserted) continue; // duplicate names: first occurrence wins
        it->second.first = ca.total();
        for (const search::AttributeAssociation& aa : ca.attributes)
            for (const search::Match& match : aa.matches)
                it->second.second = std::max(it->second.second, match.severity);
    }
    for (std::size_t i = 0; i < n; ++i) {
        auto it = by_name.find(g.comps[i]->name);
        if (it != by_name.end()) {
            f.vectors[i] = it->second.first;
            f.max_cvss[i] = it->second.second;
        }
        f.perm[i] = permeability(f.vectors[i], f.max_cvss[i], options);
        f.entry[i] = g.comps[i]->external_facing && f.perm[i] > 0.0;
    }

    if (hazards != nullptr) {
        for (const safety::Hazard& h : hazards->hazards()) f.hazard_ids.push_back(h.id);
        std::sort(f.hazard_ids.begin(), f.hazard_ids.end());
        f.hazard_ids.erase(std::unique(f.hazard_ids.begin(), f.hazard_ids.end()),
                           f.hazard_ids.end());
        f.words = (f.hazard_ids.size() + 63) / 64;
        f.seeds.assign(n * f.words, 0);
        for (const safety::UnsafeControlAction& uca : hazards->ucas()) {
            auto it = g.by_name.find(uca.controller);
            if (it == g.by_name.end()) continue; // C001's finding
            f.hazard_linked[it->second] = true;
            for (const std::string& h : uca.hazards) {
                const auto pos = std::lower_bound(f.hazard_ids.begin(), f.hazard_ids.end(), h);
                if (pos == f.hazard_ids.end() || *pos != h) continue;
                const std::size_t bit =
                    static_cast<std::size_t>(pos - f.hazard_ids.begin());
                f.seeds[it->second * f.words + bit / 64] |= std::uint64_t{1} << (bit % 64);
            }
        }
    }
    return f;
}

double entry_taint(const Facts& f, std::uint32_t i) { return f.entry[i] ? f.perm[i] : 0.0; }

/// Forward/backward closure of `start` over the graph — the affected
/// region of an incremental run.
std::vector<bool> closure(const FlowGraph& g, const std::vector<std::uint32_t>& start,
                          bool forward) {
    std::vector<bool> in(g.size(), false);
    std::deque<std::uint32_t> queue;
    for (std::uint32_t s : start) {
        if (in[s]) continue;
        in[s] = true;
        queue.push_back(s);
    }
    while (!queue.empty()) {
        const std::uint32_t u = queue.front();
        queue.pop_front();
        for (std::uint32_t v : forward ? g.fwd[u] : g.bwd[u]) {
            if (in[v]) continue;
            in[v] = true;
            queue.push_back(v);
        }
    }
    return in;
}

/// The forward taint fixpoint, restricted to `affected` (all-true on a
/// full run). Values outside the region are boundary inputs and are never
/// written. Pull-style chaotic iteration: pop the smallest pending node,
/// recompute its value from its predecessors, push affected successors on
/// change. Monotone (join = max, transfer = multiply by perm <= 1), so the
/// iteration converges to the region's unique least fixpoint regardless
/// of order — the determinism and full-vs-incremental-identity argument.
void taint_fixpoint(const FlowGraph& g, const Facts& f, const std::vector<bool>& affected,
                    std::vector<double>& taint, const FlowOptions& options,
                    search::FlowCounts& counts, bool& converged) {
    std::set<std::uint32_t> worklist;
    for (std::uint32_t i = 0; i < g.size(); ++i) {
        if (!affected[i]) continue;
        taint[i] = entry_taint(f, i);
        worklist.insert(i);
    }
    while (!worklist.empty()) {
        if (++counts.taint_iterations > options.max_iterations) {
            converged = false;
            break;
        }
        const std::uint32_t u = *worklist.begin();
        worklist.erase(worklist.begin());
        double value = entry_taint(f, u);
        for (std::uint32_t w : g.bwd[u]) {
            ++counts.edges_traversed;
            value = std::max(value, taint[w] * f.perm[u]);
        }
        if (value > taint[u]) {
            taint[u] = value;
            for (std::uint32_t v : g.fwd[u])
                if (affected[v]) worklist.insert(v);
        }
    }
}

/// The backward slice fixpoint over the hazard bitset lattice, restricted
/// to `affected`: bits(v) = seeds(v) | union of bits(successors). Same
/// chaotic-iteration structure as the taint pass, against edge direction.
void slice_fixpoint(const FlowGraph& g, const Facts& f, const std::vector<bool>& affected,
                    std::vector<std::uint64_t>& bits, const FlowOptions& options,
                    search::FlowCounts& counts, bool& converged) {
    if (f.words == 0) return;
    std::set<std::uint32_t> worklist;
    for (std::uint32_t i = 0; i < g.size(); ++i) {
        if (!affected[i]) continue;
        for (std::size_t w = 0; w < f.words; ++w)
            bits[i * f.words + w] = f.seeds[i * f.words + w];
        worklist.insert(i);
    }
    while (!worklist.empty()) {
        if (++counts.slice_iterations > options.max_iterations) {
            converged = false;
            break;
        }
        const std::uint32_t v = *worklist.begin();
        worklist.erase(worklist.begin());
        bool changed = false;
        for (std::uint32_t s : g.fwd[v]) {
            ++counts.edges_traversed;
            for (std::size_t w = 0; w < f.words; ++w) {
                const std::uint64_t merged = bits[v * f.words + w] | bits[s * f.words + w];
                if (merged != bits[v * f.words + w]) {
                    bits[v * f.words + w] = merged;
                    changed = true;
                }
            }
        }
        if (changed)
            for (std::uint32_t u : g.bwd[v])
                if (affected[u]) worklist.insert(u);
    }
}

/// Multi-source BFS depth from the entry points along permeable
/// components (full recompute on every run — linear and deterministic).
std::vector<std::uint32_t> entry_depths(const FlowGraph& g, const Facts& f) {
    std::vector<std::uint32_t> depth(g.size(), UINT32_MAX);
    std::deque<std::uint32_t> queue;
    for (std::uint32_t i = 0; i < g.size(); ++i) {
        if (!f.entry[i]) continue;
        depth[i] = 0;
        queue.push_back(i);
    }
    while (!queue.empty()) {
        const std::uint32_t u = queue.front();
        queue.pop_front();
        for (std::uint32_t v : g.fwd[u]) {
            if (depth[v] != UINT32_MAX || f.perm[v] <= 0.0) continue;
            depth[v] = depth[u] + 1;
            queue.push_back(v);
        }
    }
    return depth;
}

/// BFS over the tainted subgraph, skipping `blocked` (UINT32_MAX = none).
/// Returns the number of reached hazard-linked targets (counting `from`
/// itself when it is one).
std::size_t reachable_targets(const FlowGraph& g, const std::vector<bool>& tainted,
                              const std::vector<bool>& is_target, std::uint32_t from,
                              std::uint32_t blocked) {
    std::vector<bool> seen(g.size(), false);
    std::deque<std::uint32_t> queue{from};
    seen[from] = true;
    std::size_t hits = is_target[from] ? 1 : 0;
    while (!queue.empty()) {
        const std::uint32_t u = queue.front();
        queue.pop_front();
        for (std::uint32_t v : g.fwd[u]) {
            if (seen[v] || !tainted[v] || v == blocked) continue;
            seen[v] = true;
            if (is_target[v]) ++hits;
            queue.push_back(v);
        }
    }
    return hits;
}

struct ChokepointAnalysis {
    std::vector<Chokepoint> chokepoints;
    std::size_t flows_total = 0;
    std::size_t min_cut_size = 0;
};

/// Chokepoint ranking on the taint-reachable subgraph: candidates are its
/// articulation points plus the minimum entry->hazard vertex cut; each is
/// scored by how many connected entry->hazard flows disappear when it is
/// removed (hardening an entry or a controller itself severs its own
/// flows, so endpoints are legitimate candidates too).
ChokepointAnalysis rank_chokepoints(const FlowGraph& g, const Facts& f,
                                    const std::vector<double>& taint) {
    ChokepointAnalysis out;
    if (f.hazard_ids.empty()) return out;
    std::vector<bool> tainted(g.size(), false);
    std::vector<bool> is_target(g.size(), false);
    std::vector<std::uint32_t> entries;
    for (std::uint32_t i = 0; i < g.size(); ++i) {
        tainted[i] = taint[i] > 0.0;
        is_target[i] = tainted[i] && f.hazard_linked[i];
        if (tainted[i] && f.entry[i]) entries.push_back(i);
    }

    for (std::uint32_t e : entries)
        out.flows_total += reachable_targets(g, tainted, is_target, e, UINT32_MAX);
    if (out.flows_total == 0) return out;

    // The tainted subgraph as a PropertyGraph, for the graph/algorithms
    // structural passes (self-loops dropped — they never affect
    // connectivity).
    graph::PropertyGraph sub;
    std::map<std::uint32_t, graph::NodeId> node_of;
    std::map<graph::NodeId, std::uint32_t> dense_of;
    for (std::uint32_t i = 0; i < g.size(); ++i) {
        if (!tainted[i]) continue;
        const graph::NodeId n = sub.add_node(g.comps[i]->name);
        node_of[i] = n;
        dense_of[n] = i;
    }
    for (const auto& [i, n] : node_of)
        for (std::uint32_t v : g.fwd[i])
            if (v != i && tainted[v]) sub.add_edge(n, node_of.at(v));

    std::vector<graph::NodeId> source_nodes;
    std::vector<graph::NodeId> target_nodes;
    for (std::uint32_t e : entries) source_nodes.push_back(node_of.at(e));
    for (std::uint32_t i = 0; i < g.size(); ++i)
        if (is_target[i]) target_nodes.push_back(node_of.at(i));

    std::set<std::uint32_t> candidates;
    std::set<std::uint32_t> articulation;
    std::set<std::uint32_t> in_cut;
    for (graph::NodeId n : graph::articulation_points(sub)) {
        articulation.insert(dense_of.at(n));
        candidates.insert(dense_of.at(n));
    }
    const std::vector<graph::NodeId> cut =
        graph::min_vertex_cut(sub, source_nodes, target_nodes);
    out.min_cut_size = cut.size();
    for (graph::NodeId n : cut) {
        in_cut.insert(dense_of.at(n));
        candidates.insert(dense_of.at(n));
    }
    // Entries and controllers sever their own flows by construction; rank
    // them alongside the structural candidates.
    for (std::uint32_t e : entries) candidates.insert(e);
    for (std::uint32_t i = 0; i < g.size(); ++i)
        if (is_target[i]) candidates.insert(i);

    for (std::uint32_t c : candidates) {
        std::size_t connected_after = 0;
        for (std::uint32_t e : entries) {
            if (e == c) continue;
            std::size_t hits = reachable_targets(g, tainted, is_target, e, c);
            if (is_target[e] && e != c) {
                // reachable_targets counts e itself; keep that (a tainted
                // entry that is also a controller is a zero-hop flow) —
                // but never count the blocked candidate.
            }
            if (c != UINT32_MAX && is_target[c]) {
                // Pairs ending at the hardened candidate are severed; the
                // BFS already excludes c, so nothing to subtract.
            }
            connected_after += hits;
        }
        const std::size_t severed = out.flows_total - connected_after;
        if (severed == 0) continue;
        Chokepoint cp;
        cp.component = g.comps[c]->name;
        cp.severed = severed;
        cp.articulation = articulation.contains(c);
        cp.in_min_cut = in_cut.contains(c);
        out.chokepoints.push_back(std::move(cp));
    }
    std::sort(out.chokepoints.begin(), out.chokepoints.end(),
              [](const Chokepoint& a, const Chokepoint& b) {
                  if (a.severed != b.severed) return a.severed > b.severed;
                  return a.component < b.component;
              });
    return out;
}

/// Assemble the public result from the internal vectors.
FlowResult assemble(const FlowGraph& g, const Facts& f, const std::vector<double>& taint,
                    const std::vector<std::uint32_t>& depth,
                    const std::vector<std::uint64_t>& bits, bool converged,
                    search::FlowCounts counts) {
    FlowResult r;
    r.converged = converged;
    r.components.reserve(g.size());
    for (std::uint32_t i = 0; i < g.size(); ++i) {
        ComponentFlow cf;
        cf.component = g.comps[i]->name;
        cf.vectors = f.vectors[i];
        cf.max_cvss = f.max_cvss[i];
        cf.permeability = f.perm[i];
        cf.taint = taint[i];
        cf.depth = depth[i];
        cf.entry_point = f.entry[i];
        cf.hazard_linked = f.hazard_linked[i];
        for (std::size_t b = 0; b < f.hazard_ids.size(); ++b)
            if ((bits[i * f.words + b / 64] >> (b % 64)) & 1)
                cf.influences.push_back(f.hazard_ids[b]);
        r.components.push_back(std::move(cf));
    }

    for (std::size_t b = 0; b < f.hazard_ids.size(); ++b) {
        HazardSlice slice;
        slice.hazard = f.hazard_ids[b];
        for (std::uint32_t i = 0; i < g.size(); ++i) {
            if (((bits[i * f.words + b / 64] >> (b % 64)) & 1) == 0) continue;
            slice.components.push_back(g.comps[i]->name);
            if (f.hazard_linked[i] && taint[i] > 0.0 &&
                (f.seeds[i * f.words + b / 64] >> (b % 64) & 1))
                slice.tainted_reach = true;
        }
        std::sort(slice.components.begin(), slice.components.end());
        r.slices.push_back(std::move(slice));
    }

    ChokepointAnalysis chokes = rank_chokepoints(g, f, taint);
    r.chokepoints = std::move(chokes.chokepoints);
    r.flows_total = chokes.flows_total;
    r.min_cut_size = chokes.min_cut_size;

    counts.nodes = g.size();
    counts.edges = g.edge_count;
    counts.tainted = 0;
    for (std::uint32_t i = 0; i < g.size(); ++i)
        if (taint[i] > 0.0) ++counts.tainted;
    counts.chokepoints = r.chokepoints.size();
    r.counts = counts;
    return r;
}

/// %a rendering: exact, locale-independent, round-trippable — the
/// fingerprint must treat two doubles as equal iff their bits are.
std::string hex_double(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

} // namespace

double permeability(std::size_t vectors, double max_cvss, const FlowOptions& options) noexcept {
    if (vectors < std::max<std::size_t>(options.min_vectors_per_hop, 1)) return 0.0;
    // log2 saturation: 1 vector ~ 0.17, 7 ~ 0.5, 63+ = 1.0 — evidence mass
    // has diminishing returns, mirroring the paper's "many irrelevant
    // results" caution about raw match counts.
    const double vec_term =
        std::min(1.0, std::log2(1.0 + static_cast<double>(vectors)) / 6.0);
    const double sev_term = max_cvss < 0.0 ? 0.0 : std::min(max_cvss, 10.0) / 10.0;
    const double p = options.base_permeability + options.vector_weight * vec_term +
                     options.severity_weight * sev_term;
    return std::clamp(p, 0.0, 1.0);
}

const ComponentFlow* FlowResult::find(std::string_view component) const noexcept {
    for (const ComponentFlow& cf : components)
        if (cf.component == component) return &cf;
    return nullptr;
}

std::string FlowResult::summary() const {
    std::ostringstream out;
    out << counts.tainted << " tainted / " << components.size() << " components, "
        << flows_total << (flows_total == 1 ? " entry->hazard flow, " : " entry->hazard flows, ")
        << chokepoints.size() << (chokepoints.size() == 1 ? " chokepoint" : " chokepoints");
    if (!converged) out << " [NOT CONVERGED]";
    return out.str();
}

json::Value FlowResult::to_json() const {
    json::Object o;
    json::Array comps;
    comps.reserve(components.size());
    for (const ComponentFlow& cf : components) {
        json::Object c;
        c["component"] = cf.component;
        c["vectors"] = static_cast<std::uint64_t>(cf.vectors);
        if (cf.max_cvss >= 0.0) c["max_cvss"] = cf.max_cvss;
        c["permeability"] = cf.permeability;
        c["taint"] = cf.taint;
        if (cf.depth != UINT32_MAX) c["depth"] = static_cast<std::uint64_t>(cf.depth);
        c["entry_point"] = json::Value(cf.entry_point);
        c["hazard_linked"] = json::Value(cf.hazard_linked);
        if (!cf.influences.empty()) {
            json::Array inf;
            for (const std::string& h : cf.influences) inf.push_back(json::Value(h));
            c["influences"] = std::move(inf);
        }
        comps.push_back(std::move(c));
    }
    o["components"] = std::move(comps);
    json::Array slice_rows;
    for (const HazardSlice& s : slices) {
        json::Object row;
        row["hazard"] = s.hazard;
        json::Array members;
        for (const std::string& c : s.components) members.push_back(json::Value(c));
        row["components"] = std::move(members);
        row["tainted_reach"] = json::Value(s.tainted_reach);
        slice_rows.push_back(std::move(row));
    }
    o["slices"] = std::move(slice_rows);
    json::Array choke_rows;
    for (const Chokepoint& c : chokepoints) {
        json::Object row;
        row["component"] = c.component;
        row["severed"] = static_cast<std::uint64_t>(c.severed);
        row["articulation"] = json::Value(c.articulation);
        row["in_min_cut"] = json::Value(c.in_min_cut);
        choke_rows.push_back(std::move(row));
    }
    o["chokepoints"] = std::move(choke_rows);
    o["flows_total"] = static_cast<std::uint64_t>(flows_total);
    o["min_cut_size"] = static_cast<std::uint64_t>(min_cut_size);
    o["converged"] = json::Value(converged);
    o["counts"] = counts.to_json();
    return json::Value(std::move(o));
}

std::string FlowResult::fingerprint() const {
    std::ostringstream out;
    for (const ComponentFlow& cf : components) {
        out << cf.component << '|' << cf.vectors << '|' << hex_double(cf.max_cvss) << '|'
            << hex_double(cf.permeability) << '|' << hex_double(cf.taint) << '|' << cf.depth
            << '|' << cf.entry_point << '|' << cf.hazard_linked << '|';
        for (const std::string& h : cf.influences) out << h << ',';
        out << '\n';
    }
    for (const HazardSlice& s : slices) {
        out << s.hazard << '|' << s.tainted_reach << '|';
        for (const std::string& c : s.components) out << c << ',';
        out << '\n';
    }
    for (const Chokepoint& c : chokepoints)
        out << c.component << '|' << c.severed << '|' << c.articulation << '|' << c.in_min_cut
            << '\n';
    out << flows_total << '|' << min_cut_size << '|' << converged << '\n';
    return out.str();
}

FlowResult analyze(const model::SystemModel& m, const search::AssociationMap& associations,
                   const safety::HazardModel* hazards, const FlowOptions& options) {
    const FlowGraph g = build_graph(m);
    const Facts f = build_facts(g, associations, hazards, options);
    search::FlowCounts counts;
    counts.analyses = 1;
    bool converged = true;

    const std::vector<bool> all(g.size(), true);
    std::vector<double> taint(g.size(), 0.0);
    taint_fixpoint(g, f, all, taint, options, counts, converged);
    std::vector<std::uint64_t> bits(g.size() * f.words, 0);
    slice_fixpoint(g, f, all, bits, options, counts, converged);
    const std::vector<std::uint32_t> depth = entry_depths(g, f);
    return assemble(g, f, taint, depth, bits, converged, counts);
}

FlowResult reanalyze(const FlowResult& previous, const model::ModelDiff& diff,
                     const model::SystemModel& after,
                     const search::AssociationMap& associations,
                     const safety::HazardModel* hazards, const FlowOptions& options) {
    const FlowGraph g = build_graph(after);
    const Facts f = build_facts(g, associations, hazards, options);

    // The incremental path assumes the hazard universe is the one
    // `previous` was computed under (session commits never change it); a
    // different slice vocabulary invalidates every stored bit, so fall
    // back to the full pass.
    std::vector<std::string> prev_hazards;
    for (const HazardSlice& s : previous.slices) prev_hazards.push_back(s.hazard);
    if (prev_hazards != f.hazard_ids) return analyze(after, associations, hazards, options);

    // Changed components: the diff's touched set, endpoints of changed
    // connectors, plus any component whose transfer-function inputs
    // (permeability / entry / hazard-link flags) drifted from `previous`
    // — that last check also absorbs engine adoptions and association
    // changes the diff cannot see.
    std::set<std::string_view> changed_names;
    const std::vector<std::string> touched = diff.touched_components();
    for (const std::string& name : touched) changed_names.insert(name);
    auto endpoints = [&](const std::string& key) {
        // Connector keys render as "<from> -> <to> (<name>)".
        const std::size_t arrow = key.find(" -> ");
        if (arrow == std::string::npos) return;
        const std::size_t paren = key.rfind(" (");
        changed_names.insert(std::string_view(key).substr(0, arrow));
        const std::size_t to_begin = arrow + 4;
        const std::size_t to_end = (paren == std::string::npos || paren < to_begin)
                                       ? key.size()
                                       : paren;
        changed_names.insert(std::string_view(key).substr(to_begin, to_end - to_begin));
    };
    for (const std::string& key : diff.added_connectors) endpoints(key);
    for (const std::string& key : diff.removed_connectors) endpoints(key);

    std::vector<std::uint32_t> changed;
    for (std::uint32_t i = 0; i < g.size(); ++i) {
        const ComponentFlow* prev = previous.find(g.comps[i]->name);
        const bool drifted = prev == nullptr || prev->permeability != f.perm[i] ||
                             prev->vectors != f.vectors[i] || prev->max_cvss != f.max_cvss[i] ||
                             prev->entry_point != f.entry[i] ||
                             prev->hazard_linked != f.hazard_linked[i];
        if (drifted || changed_names.contains(std::string_view(g.comps[i]->name)))
            changed.push_back(i);
    }

    search::FlowCounts counts;
    counts.incremental_analyses = 1;
    bool converged = true;

    if (changed.empty() && diff.empty()) {
        // Nothing moved: every value carries over verbatim.
        FlowResult r = previous;
        counts.nodes = g.size();
        counts.edges = g.edge_count;
        counts.tainted = previous.counts.tainted;
        counts.chokepoints = previous.chokepoints.size();
        counts.reused_components = g.size();
        r.counts = counts;
        return r;
    }

    // Affected regions: taint can only change downstream of a changed
    // node (forward closure); slice bits only upstream (backward
    // closure). Everything outside carries its previous fixpoint value —
    // no path connects it to any change, so its value provably cannot
    // differ from a full recompute's.
    const std::vector<bool> affected_fwd = closure(g, changed, /*forward=*/true);
    const std::vector<bool> affected_bwd = closure(g, changed, /*forward=*/false);

    std::vector<double> taint(g.size(), 0.0);
    std::vector<std::uint64_t> bits(g.size() * f.words, 0);
    std::size_t reused = 0;
    for (std::uint32_t i = 0; i < g.size(); ++i) {
        const ComponentFlow* prev = previous.find(g.comps[i]->name);
        if (!affected_fwd[i]) taint[i] = prev->taint; // prev != null: else in `changed`
        if (!affected_bwd[i] && f.words > 0) {
            for (const std::string& h : prev->influences) {
                const auto pos = std::lower_bound(f.hazard_ids.begin(), f.hazard_ids.end(), h);
                const std::size_t bit = static_cast<std::size_t>(pos - f.hazard_ids.begin());
                bits[i * f.words + bit / 64] |= std::uint64_t{1} << (bit % 64);
            }
        }
        if (!affected_fwd[i] && !affected_bwd[i]) ++reused;
    }
    taint_fixpoint(g, f, affected_fwd, taint, options, counts, converged);
    slice_fixpoint(g, f, affected_bwd, bits, options, counts, converged);
    const std::vector<std::uint32_t> depth = entry_depths(g, f);
    counts.reused_components = reused;
    return assemble(g, f, taint, depth, bits, converged, counts);
}

} // namespace cybok::flow
