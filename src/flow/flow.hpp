// The flow pass: compiler-style dataflow analysis over the architectural
// graph. Where the lint rules check *syntactic* well-formedness, this layer
// reasons about how compromise *propagates* across connectors — the missing
// half of the paper's "security analysis must interface with the system
// model" claim. Three fixpoint analyses run over one shared flow graph:
//
//   1. exposure taint — a forward worklist fixpoint from external-facing
//      entry points. The lattice value per component is a double in [0, 1]
//      (join = max); the transfer function attenuates the incoming taint by
//      the target component's *permeability*, a [0, 1] factor derived from
//      its associated attack-vector evidence and worst CVSS score. Because
//      every permeability is <= 1, cycles can never raise a value, so the
//      fixpoint equals the max over simple-path attenuation products — a
//      finite set — and the worklist terminates without widening and is
//      order-independent (hence byte-identical at any thread count of the
//      surrounding lint driver).
//
//   2. hazard backward slice — a reverse fixpoint over a finite bitset
//      lattice (join = union): seed the controllers of each unsafe control
//      action with that UCA's hazard bits and propagate against edge
//      direction. A component's final bits name every hazard it can
//      influence; per hazard the member set is the minimal sub-architecture
//      that can reach one of its controllers.
//
//   3. chokepoint ranking — on the taint-reachable subgraph, candidate
//      components (articulation points plus the minimum entry->hazard
//      vertex cut, both via graph/algorithms) are scored by how many
//      connected entry->hazard flows their hardening severs.
//
// analyze() recomputes everything; reanalyze() is the incremental mode:
// given the previous result and a model::ModelDiff it resets only the
// affected region (forward closure of the changed components for taint,
// backward closure for slices) to bottom and re-runs the worklist there,
// copying every unaffected component's value verbatim. Unaffected nodes
// have no path from any changed node, so their fixpoint values provably
// cannot differ — fingerprint() of the incremental result is oracle-checked
// identical to a full recompute (tests/test_flow.cpp, and under the fault
// matrix in tests/test_fault_matrix.cpp).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "model/diff.hpp"
#include "model/system_model.hpp"
#include "safety/hazards.hpp"
#include "search/association.hpp"
#include "search/metrics.hpp"
#include "util/json.hpp"

namespace cybok::flow {

/// Taint at or above this on a hazard-linked controller is the F001 error:
/// an external entry point can plausibly drive an unsafe control action.
inline constexpr double kHazardTaintError = 0.5;
/// Taint at or above this on a non-entry component is the F002 warning:
/// external reach with almost no attenuation along the way.
inline constexpr double kUnattenuatedTaint = 0.8;

struct FlowOptions {
    /// Minimum associated vectors for a component to be permeable at all
    /// (same defender knob as analysis::AttackPathOptions; must be >= 1).
    std::size_t min_vectors_per_hop = 1;
    /// Permeability model: base + vector_weight * saturating-log(vectors)
    /// + severity_weight * (max CVSS / 10), clamped to [0, 1].
    double base_permeability = 0.35;
    double vector_weight = 0.40;
    double severity_weight = 0.25;
    /// Safety valve on worklist pops per fixpoint; the attenuation argument
    /// above proves convergence, so hitting this marks converged = false
    /// rather than looping forever if that argument is ever broken.
    std::uint64_t max_iterations = 1u << 22;
};

/// Per-component result of the taint and slice fixpoints.
struct ComponentFlow {
    std::string component;
    std::size_t vectors = 0;    ///< associated vectors (all classes)
    double max_cvss = -1.0;     ///< worst associated CVSS base score; -1 none
    double permeability = 0.0;  ///< per-hop attenuation factor in [0, 1]
    double taint = 0.0;         ///< exposure taint fixpoint value in [0, 1]
    /// Hops from the nearest entry point along permeable components
    /// (UINT32_MAX when no exploitable path reaches this component).
    std::uint32_t depth = UINT32_MAX;
    bool entry_point = false;   ///< external-facing and permeable
    bool hazard_linked = false; ///< controller of at least one UCA
    /// Hazard ids this component can influence (backward-slice bits), sorted.
    std::vector<std::string> influences;
};

/// The minimal sub-architecture that can influence one hazard.
struct HazardSlice {
    std::string hazard;                  ///< hazard id, e.g. "H-1"
    std::vector<std::string> components; ///< sorted member names
    /// True when taint reaches a controller of this hazard — the slice is
    /// not just structurally connected but externally exploitable.
    bool tainted_reach = false;
};

/// One ranked chokepoint on the taint-reachable subgraph.
struct Chokepoint {
    std::string component;
    std::size_t severed = 0; ///< connected entry->hazard flows its hardening severs
    bool articulation = false; ///< articulation point of the tainted subgraph
    bool in_min_cut = false;   ///< member of the minimum entry->hazard vertex cut
};

struct FlowResult {
    std::vector<ComponentFlow> components; ///< live components, model order
    std::vector<HazardSlice> slices;       ///< sorted by hazard id
    std::vector<Chokepoint> chokepoints;   ///< severed desc, then name asc
    std::size_t flows_total = 0; ///< connected entry->hazard pairs on the tainted subgraph
    std::size_t min_cut_size = 0; ///< size of the minimum entry->hazard vertex cut (0 = none)
    bool converged = true;       ///< false only if max_iterations tripped
    search::FlowCounts counts;   ///< deterministic fixpoint counters

    [[nodiscard]] const ComponentFlow* find(std::string_view component) const noexcept;
    /// "12 tainted / 40 components, 3 flows, 2 chokepoints" — deterministic.
    [[nodiscard]] std::string summary() const;
    [[nodiscard]] json::Value to_json() const;
    /// Canonical byte rendering of every analysis value (taint, depths,
    /// slices, chokepoints — NOT the run-shape counters, which legitimately
    /// differ between a full and an incremental run). Two results with
    /// equal fingerprints are analytically identical; this is the
    /// incremental-vs-full oracle key.
    [[nodiscard]] std::string fingerprint() const;
};

/// The per-hop attenuation factor for a component carrying `vectors`
/// associated attack vectors with worst CVSS base score `max_cvss` (-1 =
/// unscored). Zero below min_vectors_per_hop — a component with nothing to
/// exploit does not propagate compromise.
[[nodiscard]] double permeability(std::size_t vectors, double max_cvss,
                                  const FlowOptions& options = {}) noexcept;

/// Full analysis: all three fixpoints from scratch. `hazards` may be null —
/// slices and chokepoints are then empty and only taint is computed.
[[nodiscard]] FlowResult analyze(const model::SystemModel& m,
                                 const search::AssociationMap& associations,
                                 const safety::HazardModel* hazards = nullptr,
                                 const FlowOptions& options = {});

/// Incremental re-analysis after a model edit. `diff` must be exactly
/// model::diff(before, after) where `previous` was computed over `before`;
/// `associations` is the (re)association map for `after`. Components whose
/// facts and region are untouched are copied from `previous`; the affected
/// region re-runs its worklist. fingerprint() of the result equals that of
/// analyze(after, associations, hazards, options) — guaranteed, and
/// oracle-tested.
[[nodiscard]] FlowResult reanalyze(const FlowResult& previous, const model::ModelDiff& diff,
                                   const model::SystemModel& after,
                                   const search::AssociationMap& associations,
                                   const safety::HazardModel* hazards = nullptr,
                                   const FlowOptions& options = {});

} // namespace cybok::flow
