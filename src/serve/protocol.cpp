#include "serve/protocol.hpp"

#include <algorithm>

#include "util/fault.hpp"

namespace cybok::serve {

const std::vector<ErrorCodeInfo>& known_error_codes() {
    static const std::vector<ErrorCodeInfo> codes = {
        {ErrorCode::BadFrame, "bad_frame",
         "length prefix or terminator violated; the server closes the connection"},
        {ErrorCode::BadRequest, "bad_request",
         "payload is not a JSON object or a field is missing/mistyped; connection stays open"},
        {ErrorCode::UnknownType, "unknown_type", "`type` is not a known wire name"},
        {ErrorCode::UnknownSession, "unknown_session", "`session` names no open session"},
        {ErrorCode::ModelInvalid, "model_invalid",
         "model DSL failed to parse or validate; nothing was created or changed"},
        {ErrorCode::Overloaded, "overloaded",
         "bounded request queue is full; retry with backoff"},
        {ErrorCode::SessionLimit, "session_limit",
         "registry is at max_sessions; close a session or raise the cap"},
        {ErrorCode::SwapFailed, "swap_failed",
         "snapshot.swap rejected (unreadable/corrupt blob); the old generation keeps serving"},
        {ErrorCode::DeltaFailed, "delta_failed",
         "delta.apply rejected (unreadable blob, validation failure, or non-BM25 engine); "
         "the old generation keeps serving"},
        {ErrorCode::CompactFailed, "compact_failed",
         "compaction fold failed; the segmented generation keeps serving, failure counted"},
        {ErrorCode::ShuttingDown, "shutting_down",
         "server is draining; no new work is accepted"},
        {ErrorCode::Internal, "internal", "unexpected server-side failure (bug or injected fault)"},
    };
    return codes;
}

std::string_view error_code_name(ErrorCode code) noexcept {
    const auto& codes = known_error_codes();
    const auto idx = static_cast<std::size_t>(code);
    return idx < codes.size() ? codes[idx].wire : "internal";
}

const std::vector<MessageTypeInfo>& known_message_types() {
    static const std::vector<MessageTypeInfo> types = {
        {MsgType::Hello, "hello",
         "handshake: server + protocol versions, current generation, corpus shape"},
        {MsgType::Ping, "ping", "liveness probe; echoes `text`"},
        {MsgType::SessionOpen, "session.open",
         "create a session: a copy-on-write overlay of the base model, or an own model DSL"},
        {MsgType::SessionClose, "session.close", "drop a session and free its overlay"},
        {MsgType::SessionList, "session.list", "enumerate open sessions"},
        {MsgType::Query, "query",
         "free-text search against the shared engine (sessionless, lock-free)"},
        {MsgType::Associate, "associate",
         "a session's association table: Table 1 rows plus per-class totals"},
        {MsgType::WhatIf, "whatif",
         "evaluate a candidate model DSL against a session; `commit` adopts it"},
        {MsgType::Posture, "posture", "a session's per-component security posture"},
        {MsgType::FlowAnalyze, "flow.analyze",
         "a session's dataflow fixpoint view: exposure taint, hazard slices, chokepoints"},
        {MsgType::Metrics, "metrics",
         "server/registry counters, or one session's AssocMetrics when `session` is set"},
        {MsgType::SnapshotSwap, "snapshot.swap",
         "admin: load a new snapshot, drain in-flight requests, switch generations"},
        {MsgType::DeltaApply, "delta.apply",
         "admin: apply a frozen corpus delta in O(delta), drain, switch generations"},
        {MsgType::Compact, "compact",
         "admin: fold delta segments into a fresh base generation and switch to it"},
        {MsgType::Shutdown, "shutdown", "admin: graceful stop after the response is written"},
        {MsgType::FleetAnalyze, "fleet.analyze",
         "batch-analyze N generated zoo systems on the shared engine; comparative ranking"},
    };
    return types;
}

std::string_view message_type_name(MsgType type) noexcept {
    const auto& types = known_message_types();
    const auto idx = static_cast<std::size_t>(type);
    return idx < types.size() ? types[idx].wire : "ping";
}

// -- framing -----------------------------------------------------------------

std::string encode_frame(std::string_view payload) {
    std::string frame = std::to_string(payload.size());
    frame += '\n';
    frame += payload;
    frame += '\n';
    return frame;
}

std::string encode_frame(const json::Value& v) {
    const std::string payload = json::dump(v);
    return encode_frame(std::string_view(payload));
}

void FrameDecoder::feed(std::string_view bytes) {
    // Compact the already-consumed prefix before growing, so a long-lived
    // connection's buffer stays proportional to its unread bytes.
    if (consumed_ > 0 && consumed_ == buffer_.size()) {
        buffer_.clear();
        consumed_ = 0;
    } else if (consumed_ > 4096) {
        buffer_.erase(0, consumed_);
        consumed_ = 0;
    }
    buffer_.append(bytes);
}

std::optional<std::string> FrameDecoder::next() {
    CYBOK_FAULT_POINT("serve.frame.decode",
                      ProtocolError(ErrorCode::BadFrame, "injected: frame decode failed"));
    if (poisoned_)
        throw ProtocolError(ErrorCode::BadFrame, "frame decoder poisoned by earlier violation");
    const std::string_view view = std::string_view(buffer_).substr(consumed_);
    // Locate the length line. An optional '\r' before '\n' is tolerated.
    const std::size_t nl = view.find('\n');
    // 8 digits + '\r' bounds the longest legal length line; anything
    // longer without a newline can never become valid.
    constexpr std::size_t kMaxLengthLine = 9;
    if (nl == std::string_view::npos) {
        if (view.size() > kMaxLengthLine) {
            poisoned_ = true;
            throw ProtocolError(ErrorCode::BadFrame, "length prefix not terminated by newline");
        }
        return std::nullopt;
    }
    std::string_view digits = view.substr(0, nl);
    if (!digits.empty() && digits.back() == '\r') digits.remove_suffix(1);
    if (digits.empty() || digits.size() > 8 ||
        !std::all_of(digits.begin(), digits.end(), [](char c) { return c >= '0' && c <= '9'; })) {
        poisoned_ = true;
        throw ProtocolError(ErrorCode::BadFrame,
                            "bad length prefix: '" + std::string(digits.substr(0, 32)) + "'");
    }
    std::size_t length = 0;
    for (char c : digits) length = length * 10 + static_cast<std::size_t>(c - '0');
    if (length > max_frame_bytes_) {
        poisoned_ = true;
        throw ProtocolError(ErrorCode::BadFrame,
                            "frame of " + std::to_string(length) + " bytes exceeds limit of " +
                                std::to_string(max_frame_bytes_));
    }
    // Need the payload plus its one-byte terminator.
    if (view.size() < nl + 1 + length + 1) return std::nullopt;
    if (view[nl + 1 + length] != '\n') {
        poisoned_ = true;
        throw ProtocolError(ErrorCode::BadFrame, "payload not followed by newline terminator");
    }
    std::string payload(view.substr(nl + 1, length));
    consumed_ += nl + 1 + length + 1;
    return payload;
}

// -- requests ----------------------------------------------------------------

namespace {

/// at(key) with the typed protocol error instead of NotFoundError.
std::string require_string(const json::Value& obj, std::string_view key,
                           std::string_view type_name) {
    if (!obj.contains(key) || !obj.at(key).is_string())
        throw ProtocolError(ErrorCode::BadRequest, std::string(type_name) +
                                                       " requires string field `" +
                                                       std::string(key) + "`");
    return obj.at(key).as_string();
}

} // namespace

Request decode_request(std::string_view payload) {
    CYBOK_FAULT_POINT("serve.request.decode",
                      ProtocolError(ErrorCode::BadRequest, "injected: request decode failed"));
    json::Value doc;
    try {
        doc = json::parse(payload);
    } catch (const ParseError& e) {
        throw ProtocolError(ErrorCode::BadRequest, std::string("payload is not JSON: ") + e.what());
    }
    if (!doc.is_object())
        throw ProtocolError(ErrorCode::BadRequest, "payload must be a JSON object");
    if (!doc.contains("type") || !doc.at("type").is_string())
        throw ProtocolError(ErrorCode::BadRequest, "request requires string field `type`");
    const std::string& wire = doc.at("type").as_string();

    Request req;
    bool known = false;
    for (const MessageTypeInfo& info : known_message_types()) {
        if (info.wire == wire) {
            req.type = info.type;
            known = true;
            break;
        }
    }
    if (!known) throw ProtocolError(ErrorCode::UnknownType, "unknown request type: " + wire);

    if (doc.contains("id")) {
        if (!doc.at("id").is_number())
            throw ProtocolError(ErrorCode::BadRequest, "`id` must be a number");
        req.id = doc.at("id").as_int();
    }

    switch (req.type) {
    case MsgType::Hello:
    case MsgType::SessionList:
    case MsgType::Compact:
    case MsgType::Shutdown:
        break;
    case MsgType::Ping:
        req.text = doc.get_string("text");
        break;
    case MsgType::SessionOpen:
        req.model_dsl = doc.get_string("model"); // optional: empty = base overlay
        break;
    case MsgType::SessionClose:
    case MsgType::Associate:
    case MsgType::Posture:
    case MsgType::FlowAnalyze:
        req.session = require_string(doc, "session", wire);
        break;
    case MsgType::Query: {
        req.text = require_string(doc, "text", wire);
        req.cls = doc.get_string("class");
        if (req.cls != "" && req.cls != "pattern" && req.cls != "weakness" &&
            req.cls != "vulnerability")
            throw ProtocolError(ErrorCode::BadRequest,
                                "`class` must be pattern|weakness|vulnerability: " + req.cls);
        const std::int64_t limit = doc.get_int("limit", 10);
        if (limit < 0) throw ProtocolError(ErrorCode::BadRequest, "`limit` must be >= 0");
        req.limit = static_cast<std::size_t>(limit);
        break;
    }
    case MsgType::WhatIf:
        req.session = require_string(doc, "session", wire);
        req.model_dsl = require_string(doc, "model", wire);
        if (doc.contains("commit") && !doc.at("commit").is_bool())
            throw ProtocolError(ErrorCode::BadRequest, "`commit` must be a boolean");
        req.commit = doc.get_bool("commit", false);
        break;
    case MsgType::Metrics:
        req.session = doc.get_string("session"); // optional: empty = server-wide
        break;
    case MsgType::SnapshotSwap:
        req.snapshot = require_string(doc, "snapshot", wire);
        break;
    case MsgType::DeltaApply:
        req.delta = require_string(doc, "delta", wire);
        break;
    case MsgType::FleetAnalyze: {
        const std::int64_t systems = doc.get_int("systems", 8);
        if (systems < 1 || systems > 4096)
            throw ProtocolError(ErrorCode::BadRequest, "`systems` must be in [1, 4096]");
        req.systems = static_cast<std::size_t>(systems);
        const std::int64_t components = doc.get_int("components", 40);
        if (components < 10 || components > 10000)
            throw ProtocolError(ErrorCode::BadRequest, "`components` must be in [10, 10000]");
        req.components = static_cast<std::size_t>(components);
        const std::int64_t seed = doc.get_int("seed", 11);
        if (seed < 0) throw ProtocolError(ErrorCode::BadRequest, "`seed` must be >= 0");
        req.seed = static_cast<std::uint64_t>(seed);
        req.domains = doc.get_string("domains"); // csv; validated by the handler
        break;
    }
    }
    return req;
}

json::Value encode_request(const Request& req) {
    json::Object obj;
    obj["type"] = std::string(message_type_name(req.type));
    obj["id"] = req.id;
    switch (req.type) {
    case MsgType::Hello:
    case MsgType::SessionList:
    case MsgType::Compact:
    case MsgType::Shutdown:
        break;
    case MsgType::Ping:
        if (!req.text.empty()) obj["text"] = req.text;
        break;
    case MsgType::SessionOpen:
        if (!req.model_dsl.empty()) obj["model"] = req.model_dsl;
        break;
    case MsgType::SessionClose:
    case MsgType::Associate:
    case MsgType::Posture:
    case MsgType::FlowAnalyze:
        obj["session"] = req.session;
        break;
    case MsgType::Query:
        obj["text"] = req.text;
        if (!req.cls.empty()) obj["class"] = req.cls;
        obj["limit"] = static_cast<std::uint64_t>(req.limit);
        break;
    case MsgType::WhatIf:
        obj["session"] = req.session;
        obj["model"] = req.model_dsl;
        obj["commit"] = req.commit;
        break;
    case MsgType::Metrics:
        if (!req.session.empty()) obj["session"] = req.session;
        break;
    case MsgType::SnapshotSwap:
        obj["snapshot"] = req.snapshot;
        break;
    case MsgType::DeltaApply:
        obj["delta"] = req.delta;
        break;
    case MsgType::FleetAnalyze:
        obj["systems"] = static_cast<std::uint64_t>(req.systems);
        obj["components"] = static_cast<std::uint64_t>(req.components);
        obj["seed"] = req.seed;
        if (!req.domains.empty()) obj["domains"] = req.domains;
        break;
    }
    return json::Value(std::move(obj));
}

// -- responses ---------------------------------------------------------------

json::Value ok_response(std::int64_t id, MsgType type, json::Value result) {
    json::Object obj;
    obj["id"] = id;
    obj["ok"] = true;
    obj["type"] = std::string(message_type_name(type));
    obj["result"] = std::move(result);
    return json::Value(std::move(obj));
}

json::Value error_response(std::int64_t id, ErrorCode code, std::string_view message) {
    json::Object err;
    err["code"] = std::string(error_code_name(code));
    err["message"] = std::string(message);
    json::Object obj;
    obj["id"] = id;
    obj["ok"] = false;
    obj["error"] = json::Value(std::move(err));
    return json::Value(std::move(obj));
}

Response decode_response(std::string_view payload) {
    json::Value doc;
    try {
        doc = json::parse(payload);
    } catch (const ParseError& e) {
        throw ProtocolError(ErrorCode::BadRequest,
                            std::string("response is not JSON: ") + e.what());
    }
    if (!doc.is_object() || !doc.contains("ok") || !doc.at("ok").is_bool())
        throw ProtocolError(ErrorCode::BadRequest, "response must be an object with bool `ok`");
    Response resp;
    resp.id = doc.get_int("id", 0);
    resp.ok = doc.at("ok").as_bool();
    if (resp.ok) {
        resp.type = doc.get_string("type");
        if (doc.contains("result")) resp.body = doc.at("result");
    } else {
        if (!doc.contains("error") || !doc.at("error").is_object())
            throw ProtocolError(ErrorCode::BadRequest,
                                "failure response must carry an `error` object");
        resp.error_code = doc.at("error").get_string("code");
        resp.error_message = doc.at("error").get_string("message");
    }
    return resp;
}

} // namespace cybok::serve
