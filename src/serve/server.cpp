#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "analysis/fleet.hpp"
#include "model/dsl.hpp"
#include "util/fault.hpp"

namespace cybok::serve {

namespace {

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Best-effort extraction of the client correlation id from a raw frame
/// payload, for rejections issued before the request is decoded (overload,
/// shutdown). A payload too broken to parse gets id 0 — the client can
/// still match the rejection by elimination, and the code tells the story.
std::int64_t peek_id(std::string_view payload) noexcept {
    try {
        const json::Value doc = json::parse(payload);
        if (doc.is_object() && doc.contains("id") && doc.at("id").is_number())
            return doc.at("id").as_int();
    } catch (...) { // NOLINT(bugprone-empty-catch): id is advisory here
    }
    return 0;
}

json::Value posture_row(const analysis::ComponentPosture& p) {
    json::Value row;
    row["component"] = p.component;
    row["attack_patterns"] = p.attack_patterns;
    row["weaknesses"] = p.weaknesses;
    row["vulnerabilities"] = p.vulnerabilities;
    row["total"] = p.total_vectors();
    if (p.max_severity >= 0.0) row["max_severity"] = p.max_severity;
    row["centrality"] = p.centrality;
    if (p.exposure_hops != UINT32_MAX) row["exposure_hops"] = std::uint64_t{p.exposure_hops};
    return row;
}

} // namespace

// -- Connection --------------------------------------------------------------

Server::Connection::~Connection() {
    if (fd >= 0) ::close(fd);
}

// -- lifecycle ---------------------------------------------------------------

Server::Server(std::shared_ptr<const core::SharedEngine> engine, model::SystemModel base_model,
               ServerOptions options)
    : options_(std::move(options)),
      registry_(std::move(engine), std::move(base_model), options_.registry) {
    if (options_.lanes == 0) options_.lanes = util::ThreadPool::default_thread_count();
}

Server::~Server() {
    stop();
    wait();
}

void Server::start() {
    CYBOK_EXPECTS(!running_.load());
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw IoError("serve: socket() failed: " + std::string(strerror(errno)));
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bind.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw IoError("serve: bad bind address: " + options_.bind);
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd_, SOMAXCONN) != 0) {
        const std::string why = strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw IoError("serve: cannot listen on " + options_.bind + ":" +
                      std::to_string(options_.port) + ": " + why);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
    set_nonblocking(listen_fd_);

    if (::pipe(wake_pipe_) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw IoError("serve: pipe() failed: " + std::string(strerror(errno)));
    }
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);

    running_.store(true, std::memory_order_release);
    stopping_.store(false, std::memory_order_release);
    pool_ = std::make_unique<util::ThreadPool>(options_.lanes);
    io_thread_ = std::thread([this] { io_loop(); });
    // One parallel_for over `lanes` indices with one index per lane: each
    // pool thread (plus this dispatcher) parks in consume_loop until
    // shutdown — the pool IS the worker-lane set.
    dispatch_thread_ = std::thread(
        [this] { pool_->parallel_for(options_.lanes, [this](std::size_t) { consume_loop(); }); });
}

void Server::stop() {
    if (!running_.load(std::memory_order_acquire)) return;
    stopping_.store(true, std::memory_order_release);
    queue_cv_.notify_all();
    wake_io();
}

void Server::wait() {
    if (io_thread_.joinable()) io_thread_.join();
    if (dispatch_thread_.joinable()) dispatch_thread_.join();
    pool_.reset();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    for (int& fd : wake_pipe_) {
        if (fd >= 0) ::close(fd);
        fd = -1;
    }
    running_.store(false, std::memory_order_release);
}

void Server::wake_io() noexcept {
    if (wake_pipe_[1] >= 0) {
        const char byte = 'w';
        (void)!::write(wake_pipe_[1], &byte, 1);
    }
}

// -- IO thread ---------------------------------------------------------------

void Server::io_loop() {
    std::vector<std::shared_ptr<Connection>> conns;
    while (!stopping_.load(std::memory_order_acquire)) {
        std::vector<pollfd> fds;
        fds.reserve(conns.size() + 2);
        fds.push_back({wake_pipe_[0], POLLIN, 0});
        fds.push_back({listen_fd_, POLLIN, 0});
        for (const auto& conn : conns) fds.push_back({conn->fd, POLLIN, 0});

        const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 500);
        if (rc < 0) {
            if (errno == EINTR) continue;
            break; // unrecoverable poll failure; shut the server down
        }
        if ((fds[0].revents & POLLIN) != 0) {
            char buf[64];
            while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {}
        }
        if ((fds[1].revents & POLLIN) != 0) {
            for (;;) {
                const int cfd = ::accept(listen_fd_, nullptr, nullptr);
                if (cfd < 0) break; // EAGAIN / transient: poll signals again
                try {
                    CYBOK_FAULT_POINT("serve.accept", IoError("injected: accept failed"));
                } catch (const Error&) {
                    // Degradation contract: this connection is dropped; the
                    // listener keeps accepting.
                    ::close(cfd);
                    continue;
                }
                set_nonblocking(cfd);
                conns.push_back(std::make_shared<Connection>(cfd, options_.max_frame_bytes));
                ++stats_.connections_accepted;
                ++stats_.connections_open;
            }
        }
        // fds[i + 2] is conns[i] for the connections that existed when fds
        // was built; ones accepted above were never polled, so they carry
        // no events this round (the next poll() covers them).
        const std::size_t polled = fds.size() - 2;
        std::vector<std::shared_ptr<Connection>> alive;
        alive.reserve(conns.size());
        for (std::size_t i = 0; i < conns.size(); ++i) {
            const short revents = i < polled ? fds[i + 2].revents : short{0};
            bool keep = !conns[i]->dead.load(std::memory_order_acquire);
            if (keep && (revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                keep = drain_connection(conns[i]);
            if (keep)
                alive.push_back(std::move(conns[i]));
            else
                --stats_.connections_open;
        }
        conns = std::move(alive);
    }
    // Graceful exit: drop our references. Connections with responses still
    // in flight stay open until the owning worker writes and releases them.
    stats_.connections_open -= conns.size();
    conns.clear();
}

bool Server::drain_connection(const std::shared_ptr<Connection>& conn) {
    char buf[65536];
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n == 0) return false;                               // peer closed
    if (n < 0) return errno == EAGAIN || errno == EINTR;    // transient
    conn->decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    try {
        while (std::optional<std::string> payload = conn->decoder.next())
            enqueue(conn, std::move(*payload));
    } catch (const ProtocolError& e) {
        // Framing violation: the stream has no resynchronization point.
        // Tell the client why (best effort), then drop the connection.
        ++stats_.bad_frames;
        write_response(conn, error_response(0, e.code(), e.what()));
        conn->dead.store(true, std::memory_order_release);
        return false;
    }
    return true;
}

void Server::enqueue(const std::shared_ptr<Connection>& conn, std::string payload) {
    ++stats_.requests_received;
    if (stopping_.load(std::memory_order_acquire)) {
        write_response(conn, error_response(peek_id(payload), ErrorCode::ShuttingDown,
                                            "server is draining; no new work accepted"));
        return;
    }
    {
        std::unique_lock<std::mutex> lk(queue_mutex_);
        if (queue_.size() >= options_.queue_capacity) {
            lk.unlock();
            // Admission control: reject at the door instead of buffering —
            // the IO thread stays responsive and the client gets a typed
            // signal to back off.
            ++stats_.overload_rejections;
            write_response(conn, error_response(peek_id(payload), ErrorCode::Overloaded,
                                                "request queue full (" +
                                                    std::to_string(options_.queue_capacity) +
                                                    "); retry with backoff"));
            return;
        }
        queue_.push_back(WorkItem{conn, std::move(payload)});
    }
    queue_cv_.notify_one();
}

// -- worker lanes ------------------------------------------------------------

void Server::consume_loop() {
    for (;;) {
        WorkItem item;
        {
            std::unique_lock<std::mutex> lk(queue_mutex_);
            queue_cv_.wait(lk, [this] {
                return !queue_.empty() || stopping_.load(std::memory_order_acquire);
            });
            if (queue_.empty()) return; // stopping and drained
            item = std::move(queue_.front());
            queue_.pop_front();
        }
        handle(item);
    }
}

void Server::handle(const WorkItem& item) {
    std::int64_t id = 0;
    bool is_shutdown = false;
    json::Value response;
    try {
        const Request req = decode_request(item.payload);
        id = req.id;
        is_shutdown = req.type == MsgType::Shutdown;
        response = execute(req);
    } catch (const ProtocolError& e) {
        response = error_response(id, e.code(), e.what());
    } catch (const Error& e) {
        response = error_response(id, ErrorCode::Internal, e.what());
    } catch (const std::exception& e) {
        response = error_response(id, ErrorCode::Internal,
                                  std::string("unexpected: ") + e.what());
    }
    write_response(item.conn, response);
    // Shutdown stops *after* its own response is on the wire, so the
    // requesting client always sees the acknowledgement.
    if (is_shutdown) stop();
}

json::Value Server::execute(const Request& req) {
    switch (req.type) {
    case MsgType::Hello:
    case MsgType::Ping:
    case MsgType::Query:
    case MsgType::SessionOpen:
    case MsgType::SessionClose:
    case MsgType::SessionList:
    case MsgType::Associate:
    case MsgType::WhatIf:
    case MsgType::Posture:
    case MsgType::FlowAnalyze:
    case MsgType::Metrics:
    case MsgType::FleetAnalyze: {
        // The lease is the hot-swap drain: while any request holds it,
        // snapshot.swap's exclusive acquisition waits, so this request
        // completes against the generation pinned here.
        SessionRegistry::ReadLease lease(registry_);
        switch (req.type) {
        case MsgType::Hello: return ok_response(req.id, req.type, handle_hello(lease));
        case MsgType::Ping: {
            json::Value r;
            r["echo"] = req.text;
            return ok_response(req.id, req.type, std::move(r));
        }
        case MsgType::Query: return ok_response(req.id, req.type, handle_query(lease, req));
        case MsgType::SessionOpen:
            return ok_response(req.id, req.type, handle_session_open(req));
        case MsgType::SessionClose: {
            registry_.close(req.session);
            json::Value r;
            r["closed"] = req.session;
            return ok_response(req.id, req.type, std::move(r));
        }
        case MsgType::SessionList: return ok_response(req.id, req.type, handle_session_list());
        case MsgType::Associate: return ok_response(req.id, req.type, handle_associate(req));
        case MsgType::WhatIf: return ok_response(req.id, req.type, handle_whatif(req));
        case MsgType::Posture: return ok_response(req.id, req.type, handle_posture(req));
        case MsgType::FlowAnalyze: return ok_response(req.id, req.type, handle_flow(req));
        case MsgType::Metrics: return ok_response(req.id, req.type, handle_metrics(req));
        case MsgType::FleetAnalyze:
            return ok_response(req.id, req.type, handle_fleet(lease, req));
        default: break; // unreachable; the outer switch filtered
        }
        break;
    }
    case MsgType::SnapshotSwap:
        // No lease here: swap takes the gate exclusively and would
        // deadlock against its own shared hold.
        return ok_response(req.id, req.type, handle_swap(req));
    case MsgType::DeltaApply:
        // Likewise leaseless: the drain-gated flip is inside apply_delta.
        return ok_response(req.id, req.type, handle_delta_apply(req));
    case MsgType::Compact:
        return ok_response(req.id, req.type, handle_compact(req));
    case MsgType::Shutdown: {
        json::Value r;
        r["stopping"] = true;
        return ok_response(req.id, req.type, std::move(r));
    }
    }
    throw ProtocolError(ErrorCode::Internal, "unhandled message type");
}

// -- handlers ----------------------------------------------------------------

json::Value Server::handle_hello(const SessionRegistry::ReadLease& lease) {
    const Generation& gen = *lease.generation();
    json::Value result;
    result["server"] = "cybok-serve";
    result["version"] = std::string(core::version());
    result["protocol"] = std::uint64_t{kProtocolVersion};
    result["generation"] = gen.id;
    result["source"] = gen.source;
    const kb::Corpus& corpus = gen.engine->corpus();
    json::Value shape;
    shape["patterns"] = corpus.patterns().size();
    shape["weaknesses"] = corpus.weaknesses().size();
    shape["vulnerabilities"] = corpus.vulnerabilities().size();
    result["corpus"] = std::move(shape);
    result["open_sessions"] = registry_.stats().open_sessions;
    result["max_frame_bytes"] = options_.max_frame_bytes;
    return result;
}

json::Value Server::handle_query(const SessionRegistry::ReadLease& lease, const Request& req) {
    const search::QueryEngine& engine = lease.generation()->engine->query();
    std::vector<search::VectorClass> classes;
    if (req.cls == "pattern")
        classes = {search::VectorClass::AttackPattern};
    else if (req.cls == "weakness")
        classes = {search::VectorClass::Weakness};
    else if (req.cls == "vulnerability")
        classes = {search::VectorClass::Vulnerability};
    else
        classes = {search::VectorClass::AttackPattern, search::VectorClass::Weakness,
                   search::VectorClass::Vulnerability};
    json::Array hits;
    for (const search::VectorClass cls : classes) {
        const std::vector<search::Match> matches = engine.query_text(req.text, cls);
        const std::size_t n = std::min(req.limit, matches.size());
        for (std::size_t i = 0; i < n; ++i) {
            const search::Match& m = matches[i];
            json::Value hit;
            hit["class"] = search::vector_class_name(m.cls);
            hit["id"] = m.id;
            hit["title"] = m.title;
            hit["score"] = m.score;
            hit["via"] = search::match_via_name(m.via);
            if (m.severity >= 0.0) hit["severity"] = m.severity;
            hits.push_back(std::move(hit));
        }
    }
    json::Value result;
    result["count"] = hits.size();
    result["hits"] = std::move(hits);
    return result;
}

json::Value Server::handle_fleet(const SessionRegistry::ReadLease& lease, const Request& req) {
    analysis::FleetOptions options;
    options.systems = req.systems;
    options.base_seed = req.seed;
    options.components = req.components;
    // A server lane is already one of N concurrent workers; fanning each
    // fleet request across the full machine would oversubscribe it.
    options.threads = 1;
    std::string_view csv = req.domains;
    while (!csv.empty()) {
        const std::size_t comma = csv.find(',');
        const std::string_view name = csv.substr(0, comma);
        if (!name.empty()) {
            const std::optional<synth::ZooDomain> d = synth::parse_zoo_domain(name);
            if (!d)
                throw ProtocolError(ErrorCode::BadRequest,
                                    "unknown zoo domain: " + std::string(name));
            options.domains.push_back(*d);
        }
        if (comma == std::string_view::npos) break;
        csv.remove_prefix(comma + 1);
    }
    const search::QueryEngine& engine = lease.generation()->engine->query();
    return analysis::analyze_fleet(engine, options).to_json();
}

json::Value Server::handle_session_open(const Request& req) {
    const std::string id = registry_.open(req.model_dsl); // serve.session.open fires inside

    const std::shared_ptr<ServeSession> session = registry_.find(id);
    json::Value result;
    result["session"] = id;
    result["generation"] = session->generation();
    result["materialized"] = session->materialized();
    return result;
}

json::Value Server::handle_session_list() {
    json::Array rows;
    for (const SessionInfo& info : registry_.list()) {
        json::Value row;
        row["session"] = info.id;
        row["generation"] = info.generation;
        row["materialized"] = info.materialized;
        row["requests"] = info.requests;
        rows.push_back(std::move(row));
    }
    json::Value result;
    result["count"] = rows.size();
    result["sessions"] = std::move(rows);
    return result;
}

json::Value Server::handle_associate(const Request& req) {
    const std::shared_ptr<ServeSession> session = registry_.find(req.session);
    session->count_request();
    ServeSession::AnalysisGuard guard(*session);
    const search::AssociationMap& assoc = guard->associations();
    json::Array rows;
    for (const search::AssociationMap::TableRow& row : assoc.attribute_table()) {
        json::Value r;
        r["attribute"] = row.attribute;
        r["attack_patterns"] = row.attack_patterns;
        r["weaknesses"] = row.weaknesses;
        r["vulnerabilities"] = row.vulnerabilities;
        rows.push_back(std::move(r));
    }
    json::Value result;
    result["rows"] = std::move(rows);
    result["attack_patterns"] = assoc.total(search::VectorClass::AttackPattern);
    result["weaknesses"] = assoc.total(search::VectorClass::Weakness);
    result["vulnerabilities"] = assoc.total(search::VectorClass::Vulnerability);
    result["total"] = assoc.total();
    return result;
}

json::Value Server::handle_whatif(const Request& req) {
    model::SystemModel candidate;
    try {
        candidate = model::parse_dsl(req.model_dsl);
    } catch (const Error& e) {
        throw ProtocolError(ErrorCode::ModelInvalid,
                            std::string("candidate model rejected: ") + e.what());
    }
    const std::shared_ptr<ServeSession> session = registry_.find(req.session);
    session->count_request();
    // A commit mutates session state, so the COW fork must happen first —
    // the shared base analysis is never committed to.
    if (req.commit) registry_.materialize(*session);
    ServeSession::AnalysisGuard guard(*session);
    const analysis::WhatIfResult r = guard->propose(candidate);
    json::Value result;
    result["verdict"] = analysis::verdict_name(r.comparison.verdict);
    result["delta_total"] = r.comparison.delta_total;
    json::Array rows;
    for (const analysis::PostureComparison::Row& row : r.comparison.rows) {
        json::Value c;
        c["component"] = row.component;
        c["delta_patterns"] = row.delta_patterns;
        c["delta_weaknesses"] = row.delta_weaknesses;
        c["delta_vulnerabilities"] = row.delta_vulnerabilities;
        rows.push_back(std::move(c));
    }
    result["rows"] = std::move(rows);
    result["after_total"] = r.after_associations.total();
    result["committed"] = req.commit;
    if (req.commit) (void)guard->commit(std::move(candidate));
    return result;
}

json::Value Server::handle_posture(const Request& req) {
    const std::shared_ptr<ServeSession> session = registry_.find(req.session);
    session->count_request();
    ServeSession::AnalysisGuard guard(*session);
    const analysis::SecurityPosture& posture = guard->posture();
    json::Array rows;
    for (const analysis::ComponentPosture& p : posture.components)
        rows.push_back(posture_row(p));
    json::Value result;
    result["components"] = std::move(rows);
    result["total_vectors"] = posture.total_vectors();
    return result;
}

json::Value Server::handle_flow(const Request& req) {
    const std::shared_ptr<ServeSession> session = registry_.find(req.session);
    session->count_request();
    ServeSession::AnalysisGuard guard(*session);
    // The session caches the FlowResult and re-analyzes incrementally
    // across whatif commits, so repeated flow.analyze calls are cheap.
    return guard->flow().to_json();
}

json::Value Server::handle_metrics(const Request& req) {
    json::Value result;
    if (!req.session.empty()) {
        const std::shared_ptr<ServeSession> session = registry_.find(req.session);
        ServeSession::AnalysisGuard guard(*session);
        result["session"] = req.session;
        result["assoc"] = guard->assoc_metrics().to_json();
        return result;
    }
    json::Value server;
    server["connections_accepted"] = stats_.connections_accepted.load();
    server["connections_open"] = stats_.connections_open.load();
    server["requests_received"] = stats_.requests_received.load();
    server["responses_sent"] = stats_.responses_sent.load();
    server["overload_rejections"] = stats_.overload_rejections.load();
    server["bad_frames"] = stats_.bad_frames.load();
    server["error_responses"] = stats_.error_responses.load();
    server["write_failures"] = stats_.write_failures.load();
    result["server"] = std::move(server);
    const RegistryStats reg = registry_.stats();
    json::Value registry;
    registry["open_sessions"] = reg.open_sessions;
    registry["peak_sessions"] = reg.peak_sessions;
    registry["total_opened"] = reg.total_opened;
    registry["session_limit_rejections"] = reg.session_limit_rejections;
    registry["swaps"] = reg.swaps;
    registry["deltas_applied"] = reg.deltas_applied;
    registry["compactions"] = reg.compactions;
    registry["compaction_failures"] = reg.compaction_failures;
    registry["current_generation"] = reg.current_generation;
    registry["current_segments"] = reg.current_segments;
    result["registry"] = std::move(registry);
    result["assoc"] = registry_.aggregate_metrics().to_json();
    return result;
}

json::Value Server::handle_swap(const Request& req) {
    const std::uint64_t previous = registry_.current()->id;
    const std::uint64_t generation = registry_.swap(req.snapshot);
    json::Value result;
    result["generation"] = generation;
    result["previous"] = previous;
    result["source"] = req.snapshot;
    return result;
}

json::Value Server::handle_delta_apply(const Request& req) {
    const std::uint64_t previous = registry_.current()->id;
    const std::uint64_t generation = registry_.apply_delta(req.delta);
    json::Value result;
    result["generation"] = generation;
    result["previous"] = previous;
    result["source"] = req.delta;
    // The apply succeeded, so the live generation is the segmented one we
    // just installed (admin requests serialize on the registry).
    const std::shared_ptr<const Generation> gen = registry_.current();
    if (gen->engine->segmented != nullptr) {
        const search::DeltaApplyMetrics& m = gen->engine->segmented->apply_metrics();
        json::Value applied;
        applied["records"] = m.report.total();
        applied["segment_docs"] = m.segment_docs;
        applied["segments"] = m.segments;
        applied["apply_ns"] = m.apply_ns;
        result["applied"] = std::move(applied);
    }
    return result;
}

json::Value Server::handle_compact(const Request& /*req*/) {
    const std::uint64_t previous = registry_.current()->id;
    const std::uint64_t generation = registry_.compact();
    json::Value result;
    result["generation"] = generation;
    result["previous"] = previous;
    result["folded"] = generation != previous;
    return result;
}

// -- response writing --------------------------------------------------------

void Server::write_response(const std::shared_ptr<Connection>& conn,
                            const json::Value& response) {
    if (response.is_object() && !response.get_bool("ok", true)) ++stats_.error_responses;
    std::lock_guard<std::mutex> lk(conn->write_mutex);
    if (conn->dead.load(std::memory_order_acquire)) {
        ++stats_.write_failures;
        return;
    }
    try {
        CYBOK_FAULT_POINT("serve.response.write", IoError("injected: response write failed"));
    } catch (const Error&) {
        // Degradation contract: the request already executed; the response
        // is abandoned and the connection closed (the client sees EOF and
        // retries against a live connection).
        conn->dead.store(true, std::memory_order_release);
        ++stats_.write_failures;
        return;
    }
    const std::string frame = encode_frame(response);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        // MSG_NOSIGNAL: a dead peer yields EPIPE, not SIGPIPE.
        const ssize_t n =
            ::send(conn->fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Nonblocking fd with a full send buffer: wait for
                // writability instead of spinning.
                pollfd pfd{conn->fd, POLLOUT, 0};
                (void)::poll(&pfd, 1, 1000);
                continue;
            }
            conn->dead.store(true, std::memory_order_release);
            ++stats_.write_failures;
            return;
        }
        sent += static_cast<std::size_t>(n);
    }
    ++stats_.responses_sent;
}

} // namespace cybok::serve
