#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cybok::serve {

BlockingClient::BlockingClient(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw IoError("client: socket() failed: " + std::string(strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        throw IoError("client: bad address: " + host);
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        const std::string why = strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw IoError("client: cannot connect to " + host + ":" + std::to_string(port) + ": " +
                      why);
    }
}

BlockingClient::~BlockingClient() { close(); }

void BlockingClient::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void BlockingClient::send(Request req) {
    if (fd_ < 0) throw IoError("client: not connected");
    req.id = next_id_++;
    const std::string frame = encode_frame(encode_request(req));
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n =
            ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            close();
            throw IoError("client: send failed: " + std::string(strerror(errno)));
        }
        sent += static_cast<std::size_t>(n);
    }
}

Response BlockingClient::receive() {
    for (;;) {
        if (std::optional<std::string> payload = decoder_.next())
            return decode_response(*payload);
        if (fd_ < 0) throw IoError("client: not connected");
        char buf[65536];
        const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
        if (n == 0) {
            close();
            throw IoError("client: server closed the connection");
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            close();
            throw IoError("client: recv failed: " + std::string(strerror(errno)));
        }
        decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
}

Response BlockingClient::call(Request req) {
    send(std::move(req));
    const std::int64_t want = last_id();
    for (;;) {
        Response resp = receive();
        // On the serial call() path only this id can be outstanding;
        // anything else would be a pipelined leftover the caller mixed in.
        if (resp.id == want) return resp;
    }
}

} // namespace cybok::serve
