// The cybok-serve wire protocol: length-prefixed JSON lines.
//
// A frame is
//
//   LENGTH '\n' PAYLOAD '\n'
//
// where LENGTH is the ASCII decimal byte count of PAYLOAD (1–8 digits, no
// sign, no leading '+'; an optional '\r' before the first '\n' is accepted
// so `nc -C` and telnet transcripts work), and PAYLOAD is one complete
// JSON object in exactly that many bytes. The trailing '\n' is a frame
// terminator, not part of the payload. Both directions use the same
// framing; docs/PROTOCOL.md is the client-author reference and carries a
// worked `nc` transcript.
//
// Every request object carries `type` (one of the wire names in
// known_message_types()) and an optional integer `id` echoed verbatim in
// the response, so clients may pipeline. Responses are `{"id", "ok":
// true, "type", "result": {...}}` or `{"id", "ok": false, "error":
// {"code", "message"}}` with `code` one of known_error_codes().
//
// Decode failures are *typed*, never crashes: framing violations raise
// ProtocolError(ErrorCode::BadFrame) and poison the decoder (the stream
// position is unrecoverable, the server closes the connection); payload
// violations (bad JSON, unknown type, missing/mistyped fields) raise
// BadRequest/UnknownType and leave the connection usable — the next frame
// is independent. tests/test_serve_protocol.cpp drives every message type
// round-trip and the adversarial-frame matrix under asan.
//
// Doc-comment standard and lockstep: the two tables below
// (known_message_types / known_error_codes) are the protocol's source of
// truth; a test asserts every wire name appears in docs/PROTOCOL.md so
// the doc cannot drift from this header.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"

namespace cybok::serve {

/// Protocol revision carried in the `hello` response. Bumped on any
/// incompatible change to framing or message schemas.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Default ceiling on one frame's payload size. Large enough for any
/// model DSL or report this repo produces; small enough that a garbage
/// length prefix cannot make the server buffer gigabytes.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

/// Typed error codes carried in the `error.code` field of a failure
/// response. The wire names are stable API (clients switch on them).
enum class ErrorCode : std::uint8_t {
    BadFrame,      ///< framing violated; the server closes the connection
    BadRequest,    ///< payload not a JSON object / missing or mistyped field
    UnknownType,   ///< `type` is not a known wire name
    UnknownSession,///< `session` names no open session
    ModelInvalid,  ///< model DSL failed to parse or validate
    Overloaded,    ///< bounded request queue full — retry with backoff
    SessionLimit,  ///< registry at max_sessions — close one or raise the cap
    SwapFailed,    ///< snapshot.swap rejected; the old generation keeps serving
    DeltaFailed,   ///< delta.apply rejected; the old generation keeps serving
    CompactFailed, ///< compact failed; the segmented generation keeps serving
    ShuttingDown,  ///< server is draining; no new work accepted
    Internal,      ///< unexpected server-side failure (bug or injected fault)
};
[[nodiscard]] std::string_view error_code_name(ErrorCode code) noexcept;

/// One row of the error-code table (rendered in docs/PROTOCOL.md).
struct ErrorCodeInfo {
    ErrorCode code;
    std::string_view wire;    ///< stable wire name, e.g. "overloaded"
    std::string_view summary; ///< one-line meaning + client action
};
/// Every error code, in enum order. Tests assert the table is complete
/// and that docs/PROTOCOL.md mentions each wire name.
[[nodiscard]] const std::vector<ErrorCodeInfo>& known_error_codes();

/// A protocol violation, carrying the typed code the error response (or
/// connection teardown) should use.
class ProtocolError : public Error {
public:
    ProtocolError(ErrorCode code, const std::string& what) : Error(what), code_(code) {}
    [[nodiscard]] ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

/// Every request type the server dispatches. Wire names are dotted
/// lowercase ("session.open"); the enum is the in-process form.
enum class MsgType : std::uint8_t {
    Hello,        ///< handshake: server + protocol version, generation, corpus shape
    Ping,         ///< liveness probe; echoes `text`
    SessionOpen,  ///< create a session (base-model overlay, or own model DSL)
    SessionClose, ///< drop a session
    SessionList,  ///< enumerate open sessions
    Query,        ///< free-text search against the shared engine (no session)
    Associate,    ///< a session's association table (Table 1 rows)
    WhatIf,       ///< evaluate a candidate model DSL against a session; optional commit
    Posture,      ///< a session's per-component security posture
    FlowAnalyze,  ///< a session's dataflow fixpoint view (taint/slices/chokepoints)
    Metrics,      ///< server/registry counters, or one session's AssocMetrics
    SnapshotSwap, ///< admin: drain in-flight requests, switch to a new snapshot
    DeltaApply,   ///< admin: apply a frozen corpus delta as a new generation
    Compact,      ///< admin: fold delta segments into a fresh base generation
    Shutdown,     ///< admin: graceful stop after the response is written
    FleetAnalyze, ///< batch-analyze N generated zoo systems; comparative ranking
};
[[nodiscard]] std::string_view message_type_name(MsgType type) noexcept;

/// One row of the message-type table (rendered in docs/PROTOCOL.md).
struct MessageTypeInfo {
    MsgType type;
    std::string_view wire;    ///< stable wire name, e.g. "session.open"
    std::string_view summary; ///< one-line purpose
};
/// Every message type, in enum order — the lockstep table the protocol
/// doc and the round-trip tests iterate.
[[nodiscard]] const std::vector<MessageTypeInfo>& known_message_types();

// -- framing -----------------------------------------------------------------

/// Wrap a payload in the length-prefixed frame. `payload` must be the
/// exact bytes to send (normally compact JSON from json::dump).
[[nodiscard]] std::string encode_frame(std::string_view payload);
/// dump(v) + encode_frame.
[[nodiscard]] std::string encode_frame(const json::Value& v);
/// Exact-match overload: a std::string payload would otherwise be
/// ambiguous between string_view and json::Value (which converts
/// implicitly from std::string).
[[nodiscard]] inline std::string encode_frame(const std::string& payload) {
    return encode_frame(std::string_view(payload));
}

/// Incremental frame decoder: feed() arbitrary byte chunks as they arrive
/// from the socket, then drain complete payloads with next(). Framing
/// violations (non-digit length, oversized frame, missing terminator)
/// throw ProtocolError(BadFrame) and poison the decoder — after a framing
/// error the byte stream has no recoverable resynchronization point, so
/// the owner must close the connection.
class FrameDecoder {
public:
    explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
        : max_frame_bytes_(max_frame_bytes) {}

    /// Append raw bytes from the transport.
    void feed(std::string_view bytes);

    /// The next complete payload, or nullopt when more bytes are needed.
    /// Throws ProtocolError(BadFrame) on a framing violation.
    [[nodiscard]] std::optional<std::string> next();

    /// Bytes buffered but not yet consumed as frames.
    [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }
    [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

private:
    std::size_t max_frame_bytes_;
    std::string buffer_;
    std::size_t consumed_ = 0; ///< prefix of buffer_ already emitted
    bool poisoned_ = false;
};

// -- requests ----------------------------------------------------------------

/// A decoded request: the type plus the union of every field any request
/// uses (unused fields keep their defaults). Field semantics per type are
/// specified in docs/PROTOCOL.md; decode_request enforces per-type
/// required fields with typed errors.
struct Request {
    MsgType type = MsgType::Ping;
    std::int64_t id = 0;      ///< client correlation id, echoed in the response
    std::string session;      ///< session.close/associate/whatif/posture/flow.analyze/metrics
    std::string text;         ///< query: the free-text query; ping: echo payload
    std::string cls;          ///< query: "pattern"|"weakness"|"vulnerability"|"" (all)
    std::size_t limit = 10;   ///< query: max hits returned per class
    std::string model_dsl;    ///< session.open (optional) / whatif (required)
    bool commit = false;      ///< whatif: adopt the candidate on this session
    std::string snapshot;     ///< snapshot.swap: path to the new snapshot blob
    std::string delta;        ///< delta.apply: path to a frozen corpus-delta blob
    std::size_t systems = 8;  ///< fleet.analyze: systems to generate, in [1, 4096]
    std::string domains;      ///< fleet.analyze: csv of zoo domains ("" = all four)
    std::uint64_t seed = 11;  ///< fleet.analyze: base seed (system i uses seed + i)
    std::size_t components = 40; ///< fleet.analyze: components per system
};

/// Parse one frame payload into a Request. Throws ProtocolError with
/// BadRequest (not JSON / not an object / field of the wrong type /
/// missing required field) or UnknownType.
[[nodiscard]] Request decode_request(std::string_view payload);

/// Re-encode a Request as its wire JSON object (round-trip inverse of
/// decode_request; the client subcommand and tests build requests this way).
[[nodiscard]] json::Value encode_request(const Request& req);

// -- responses ---------------------------------------------------------------

/// Build a success response envelope.
[[nodiscard]] json::Value ok_response(std::int64_t id, MsgType type, json::Value result);
/// Build a failure response envelope.
[[nodiscard]] json::Value error_response(std::int64_t id, ErrorCode code,
                                         std::string_view message);

/// A decoded response (client side). `body` is the `result` object on
/// success, null otherwise.
struct Response {
    std::int64_t id = 0;
    bool ok = false;
    std::string type;          ///< echoed request type ("" on failure)
    json::Value body;          ///< `result` on success
    std::string error_code;    ///< wire error code on failure
    std::string error_message; ///< human-readable detail on failure
};

/// Parse one frame payload into a Response. Throws ProtocolError
/// (BadRequest) when the payload is not a valid response envelope.
[[nodiscard]] Response decode_response(std::string_view payload);

} // namespace cybok::serve
