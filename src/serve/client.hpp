// A small blocking client for the cybok-serve protocol — the reference
// implementation of the client side of docs/PROTOCOL.md, used by the
// `cybok client` subcommand, the end-to-end tests, and bench_serve.
//
// One BlockingClient owns one TCP connection. call() is the simple
// request/response path; send() + receive() expose pipelining (many
// requests in flight, responses correlated by `id` — the server may
// reorder responses across worker lanes, so receive() hands back whatever
// arrives next and the caller matches ids).
//
// Thread-safety: none. One BlockingClient per thread; the protocol itself
// is what makes the *server* safe under thousands of these.

#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"

namespace cybok::serve {

class BlockingClient {
public:
    /// Connect to host:port. Throws IoError when the connection fails.
    BlockingClient(const std::string& host, std::uint16_t port);
    ~BlockingClient();

    BlockingClient(const BlockingClient&) = delete;
    BlockingClient& operator=(const BlockingClient&) = delete;

    /// Assign the next correlation id, send the request, and block for the
    /// response bearing that id (buffering any others is unnecessary on
    /// this strictly serial path). Throws IoError on a dead connection and
    /// ProtocolError on an unparseable response.
    Response call(Request req);

    /// Pipelining primitives: send without waiting; receive the next
    /// response in server order.
    void send(Request req);
    [[nodiscard]] Response receive();

    /// Ids handed out so far (the id the next send() will use minus one).
    [[nodiscard]] std::int64_t last_id() const noexcept { return next_id_ - 1; }

    void close() noexcept;
    [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

private:
    int fd_ = -1;
    FrameDecoder decoder_;
    std::int64_t next_id_ = 1;
};

} // namespace cybok::serve
