#include "serve/registry.hpp"

#include <algorithm>
#include <optional>

#include "kb/delta.hpp"
#include "kb/snapshot.hpp"
#include "model/dsl.hpp"
#include "util/bytes.hpp"
#include "util/fault.hpp"

namespace cybok::serve {

std::shared_ptr<const core::SharedEngine> load_generation(const std::string& snapshot_path) {
    CYBOK_FAULT_POINT("serve.swap.load",
                      kb::SnapshotError("injected: swap snapshot load failed", snapshot_path, 0));
    search::EngineSnapshot snap = search::load_engine_snapshot(snapshot_path);
    auto handle = std::make_shared<core::SharedEngine>();
    handle->owned_corpus = std::move(snap.corpus);
    handle->engine = std::move(snap.engine);
    // Keep the snapshot's backing storage alive for the generation's whole
    // lifetime: on the zero-copy path the engine reads the mmap'd file in
    // place, so the mapping (one physical copy, shared by every session of
    // the generation and surviving hot swaps until the last lease drops)
    // must outlive the engine.
    handle->slab_backing = std::move(snap.slab_backing);
    handle->mapping = std::move(snap.mapping);
    if (!snap.mmap_fallback_reason.empty()) {
        ++handle->cold_start.mmap_fallbacks;
        handle->cold_start.last_reason = snap.mmap_fallback_reason;
    }
    return handle;
}

// -- ServeSession ------------------------------------------------------------

ServeSession::ServeSession(std::string id, std::shared_ptr<const Generation> gen,
                           std::shared_ptr<BaseAnalysis> base)
    : id_(std::move(id)), gen_(std::move(gen)), base_(std::move(base)) {}

ServeSession::ServeSession(std::string id, std::shared_ptr<const Generation> gen,
                           model::SystemModel own, const core::SessionOptions& options)
    : id_(std::move(id)), gen_(std::move(gen)),
      own_(std::make_unique<core::AnalysisSession>(std::move(own), gen_->engine, options)) {
    materialized_.store(true, std::memory_order_release);
}

void ServeSession::materialize(const core::SessionOptions& options) {
    std::lock_guard<std::mutex> lk(op_mutex_);
    if (own_ != nullptr) return;
    // The fork copies the *pristine* base model (immutable by contract —
    // the base analysis never commits), so no base-analysis lock is
    // needed; concurrent readers of the base keep going unharmed.
    own_ = std::make_unique<core::AnalysisSession>(*base_->base_model, gen_->engine, options);
    materialized_.store(true, std::memory_order_release);
}

// -- SessionRegistry ---------------------------------------------------------

SessionRegistry::SessionRegistry(std::shared_ptr<const core::SharedEngine> engine,
                                 model::SystemModel base_model, RegistryOptions options)
    : options_(std::move(options)),
      base_model_(std::make_shared<const model::SystemModel>(std::move(base_model))),
      current_(std::make_shared<const Generation>(Generation{1, std::move(engine), "<built>"})) {
    CYBOK_EXPECTS(current_->engine != nullptr &&
                  (current_->engine->engine != nullptr ||
                   current_->engine->segmented != nullptr));
    stats_.current_generation = 1;
}

core::SessionOptions SessionRegistry::session_options() const {
    core::SessionOptions opts;
    opts.engine = options_.engine;
    opts.assoc.threads = options_.session_threads;
    opts.assoc.cache_capacity = options_.session_cache_capacity;
    return opts;
}

std::shared_ptr<ServeSession::BaseAnalysis> SessionRegistry::base_analysis_for(
    const std::shared_ptr<const Generation>& gen) {
    // Lazily (re)build the base analysis for the live generation: after a
    // swap the old one keeps serving its pinned sessions, but new overlay
    // sessions must layer over the new engine. Caller holds mutex_.
    if (base_analysis_ == nullptr || base_analysis_generation_ != gen->id) {
        core::SessionOptions opts = session_options();
        // The base analysis serves every unforked session, so give it the
        // library-default cache rather than the small per-session one.
        opts.assoc.cache_capacity = search::AssocOptions{}.cache_capacity;
        base_analysis_ =
            std::make_shared<ServeSession::BaseAnalysis>(base_model_, gen->engine, opts);
        base_analysis_generation_ = gen->id;
    }
    return base_analysis_;
}

std::string SessionRegistry::open(const std::string& model_dsl) {
    CYBOK_FAULT_POINT("serve.session.open",
                      Error("injected: session construction failed"));
    // Parse outside the registry lock: DSL errors must not serialize other
    // opens, and nothing is allocated in the registry until the model is
    // known-good.
    std::optional<model::SystemModel> own;
    if (!model_dsl.empty()) {
        try {
            own = model::parse_dsl(model_dsl);
        } catch (const Error& e) {
            throw ProtocolError(ErrorCode::ModelInvalid,
                                std::string("model DSL rejected: ") + e.what());
        }
    }
    // Lock order is always swap_gate_ before mutex_ (swap() relies on it),
    // so pin the generation before taking the registry lock.
    std::shared_ptr<const Generation> gen = current();
    std::lock_guard<std::mutex> lk(mutex_);
    if (sessions_.size() >= options_.max_sessions) {
        ++stats_.session_limit_rejections;
        throw ProtocolError(ErrorCode::SessionLimit,
                            "session limit reached (" + std::to_string(options_.max_sessions) +
                                " open); close a session or raise --max-sessions");
    }
    std::string id = "s-" + std::to_string(next_session_++);
    std::shared_ptr<ServeSession> session;
    if (own.has_value()) {
        session = std::make_shared<ServeSession>(id, gen, std::move(*own), session_options());
    } else {
        session = std::make_shared<ServeSession>(id, gen, base_analysis_for(gen));
    }
    sessions_.emplace_back(id, std::move(session));
    ++stats_.total_opened;
    stats_.peak_sessions = std::max(stats_.peak_sessions, sessions_.size());
    return id;
}

std::shared_ptr<ServeSession> SessionRegistry::find(std::string_view id) const {
    std::lock_guard<std::mutex> lk(mutex_);
    for (const auto& [sid, session] : sessions_)
        if (sid == id) return session;
    throw ProtocolError(ErrorCode::UnknownSession, "no such session: " + std::string(id));
}

void SessionRegistry::close(std::string_view id) {
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = std::find_if(sessions_.begin(), sessions_.end(),
                           [&](const auto& entry) { return entry.first == id; });
    if (it == sessions_.end())
        throw ProtocolError(ErrorCode::UnknownSession, "no such session: " + std::string(id));
    sessions_.erase(it);
}

std::vector<SessionInfo> SessionRegistry::list() const {
    std::lock_guard<std::mutex> lk(mutex_);
    std::vector<SessionInfo> infos;
    infos.reserve(sessions_.size());
    for (const auto& [sid, session] : sessions_)
        infos.push_back({sid, session->generation(), session->materialized(),
                         session->requests()});
    return infos;
}

RegistryStats SessionRegistry::stats() const {
    // swap_gate_ (inside current()) is never taken while holding mutex_.
    const std::shared_ptr<const Generation> gen = current();
    std::lock_guard<std::mutex> lk(mutex_);
    RegistryStats s = stats_;
    s.open_sessions = sessions_.size();
    s.current_generation = gen->id;
    s.current_segments =
        gen->engine->segmented != nullptr ? gen->engine->segmented->segment_count() : 0;
    return s;
}

std::uint64_t SessionRegistry::flip_generation(std::shared_ptr<const core::SharedEngine> fresh,
                                               std::string source, FlipKind kind) {
    // Announce the flip so new leases park instead of piling onto the
    // shared side (reader-preferring rwlocks would otherwise let a
    // saturating request load starve this exclusive acquisition forever).
    // The announcement must be withdrawn on every path out, or parked
    // leases would wait forever.
    swap_pending_.fetch_add(1, std::memory_order_acq_rel);
    const auto withdraw = [this]() noexcept {
        {
            std::lock_guard<std::mutex> lk(swap_wait_mutex_);
            swap_pending_.fetch_sub(1, std::memory_order_acq_rel);
        }
        swap_wait_cv_.notify_all();
    };
    std::uint64_t id = 0;
    try {
        // Exclusive acquisition waits for every outstanding ReadLease:
        // this IS the drain — each in-flight request completes against
        // the generation it pinned before we flip the pointer.
        std::unique_lock<std::shared_mutex> gate(swap_gate_);
        std::lock_guard<std::mutex> lk(mutex_);
        id = next_generation_++;
        current_ = std::make_shared<const Generation>(
            Generation{id, std::move(fresh), std::move(source)});
        switch (kind) {
        case FlipKind::Swap: ++stats_.swaps; break;
        case FlipKind::Delta: ++stats_.deltas_applied; break;
        case FlipKind::Compact: ++stats_.compactions; break;
        }
        stats_.current_generation = id;
        // The old base analysis still serves sessions pinned to the old
        // generation; dropping our reference here lets it die with them.
        // A fresh one is built lazily on the next base-overlay open.
        base_analysis_.reset();
        base_analysis_generation_ = 0;
    } catch (...) {
        withdraw();
        throw;
    }
    withdraw();
    return id;
}

std::uint64_t SessionRegistry::swap(const std::string& snapshot_path) {
    std::lock_guard<std::mutex> admin(admin_mutex_);
    // Thaw the new generation *before* taking the gate: seconds of IO and
    // table fill must not stall in-flight requests, and a corrupt blob
    // must be rejected while the old generation is still untouched.
    std::shared_ptr<const core::SharedEngine> fresh;
    try {
        fresh = load_generation(snapshot_path);
    } catch (const Error& e) {
        throw ProtocolError(ErrorCode::SwapFailed,
                            std::string("snapshot rejected: ") + e.what());
    }
    return flip_generation(std::move(fresh), snapshot_path, FlipKind::Swap);
}

std::uint64_t SessionRegistry::apply_delta(const std::string& delta_path) {
    std::lock_guard<std::mutex> admin(admin_mutex_);
    // Decode and apply *before* the gate: O(delta) segment construction
    // must not stall in-flight requests, and any failure — unreadable
    // blob, validation error, injected segment-build fault — leaves the
    // live generation untouched and authoritative. admin_mutex_ keeps a
    // concurrent swap/compact from flipping under us, so the overlay is
    // guaranteed to be built against the generation we publish over.
    std::shared_ptr<const core::SharedEngine> next;
    try {
        const std::string blob = util::read_file(delta_path);
        const kb::CorpusDelta delta = kb::thaw_corpus_delta(blob, delta_path);
        next = core::apply_corpus_delta(current()->engine, delta);
    } catch (const Error& e) {
        throw ProtocolError(ErrorCode::DeltaFailed,
                            std::string("delta rejected: ") + e.what());
    }
    return flip_generation(std::move(next), "<delta:" + delta_path + ">", FlipKind::Delta);
}

std::uint64_t SessionRegistry::compact() {
    std::lock_guard<std::mutex> admin(admin_mutex_);
    const std::shared_ptr<const Generation> gen = current();
    if (gen->engine->segmented == nullptr) return gen->id; // nothing to fold
    std::shared_ptr<const core::SharedEngine> folded;
    try {
        // Crash-consistency site: a fold that dies here publishes nothing —
        // the segmented generation stays authoritative and keeps serving.
        CYBOK_FAULT_POINT("serve.compact.fold", Error("injected: compaction fold failed"));
        folded = core::compact(gen->engine);
    } catch (const Error& e) {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            ++stats_.compaction_failures;
            ++degrade_.compaction_failures;
            degrade_.last_reason = e.what();
        }
        throw ProtocolError(ErrorCode::CompactFailed,
                            std::string("compaction failed: ") + e.what());
    }
    return flip_generation(std::move(folded), "<compacted>", FlipKind::Compact);
}

search::AssocMetrics SessionRegistry::aggregate_metrics() const {
    std::vector<std::shared_ptr<ServeSession>> sessions;
    std::shared_ptr<ServeSession::BaseAnalysis> base;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        sessions.reserve(sessions_.size());
        for (const auto& [sid, session] : sessions_) sessions.push_back(session);
        base = base_analysis_;
    }
    search::AssocMetrics total;
    {
        // Registry-level absorbed failures (failed compaction folds).
        std::lock_guard<std::mutex> lk(mutex_);
        total.degrade.merge(degrade_);
    }
    // Each generation's cold-start degradations count once, no matter how
    // many sessions share the engine (SharedEngine::cold_start).
    std::vector<const core::SharedEngine*> counted_engines;
    auto count_engine = [&](const core::SharedEngine* engine) {
        if (engine == nullptr) return;
        if (std::find(counted_engines.begin(), counted_engines.end(), engine) !=
            counted_engines.end())
            return;
        counted_engines.push_back(engine);
        total.degrade.merge(engine->cold_start);
    };
    if (base != nullptr) {
        std::lock_guard<std::mutex> lk(base->mutex);
        total.merge(base->session.assoc_metrics());
        count_engine(base->session.engine_handle().get());
    }
    for (const auto& session : sessions) {
        if (session->materialized()) {
            ServeSession::AnalysisGuard guard(*session);
            total.merge(guard->assoc_metrics());
        }
        count_engine(session->generation_handle()->engine.get());
    }
    // Even with no sessions yet, surface the live generation's cold start
    // (e.g. a stale snapshot fallback at serve startup).
    count_engine(current()->engine.get());
    return total;
}

} // namespace cybok::serve
