// The cybok analysis server: one shared immutable engine, many cheap
// concurrent analyst sessions, served over the length-prefixed JSON-line
// protocol in protocol.hpp.
//
// Architecture (one box per thread role):
//
//            ┌────────────┐   bounded    ┌───────────────────────────┐
//   sockets →│  IO thread │── request ──→│ worker lanes              │
//            │ poll(2):   │   queue      │ (util::ThreadPool —       │
//            │ accept,    │              │  each lane pops requests, │
//            │ read,      │←─ responses ─│  executes under a         │
//            │ frame      │   written    │  registry ReadLease,      │
//            │ decode     │   directly   │  writes the response)     │
//            └────────────┘              └───────────────────────────┘
//
// One IO thread owns every socket read: it accepts connections, feeds
// bytes into each connection's FrameDecoder, and enqueues complete frames
// onto a bounded request queue. Worker lanes — the existing
// util::ThreadPool, entered once via parallel_for(lanes, consume-loop) —
// pop frames, decode, execute against the SessionRegistry, and write the
// response themselves under a per-connection write mutex (responses to
// pipelined requests on one connection may interleave in any order;
// clients correlate by `id`).
//
// Admission control: when the bounded queue is full the IO thread rejects
// the frame immediately with a typed `overloaded` error response — the
// request never enters the system, so an overloaded server stays
// responsive and sheds load instead of building an unbounded backlog.
//
// Graceful shutdown: `shutdown` (or stop()) stops the accept loop,
// rejects queued-but-new work with `shutting_down`, drains the in-flight
// queue, and joins every thread. In-flight requests complete and their
// responses are written before the sockets close.
//
// Fault sites (ARCHITECTURE.md §6): serve.accept (a failed accept drops
// that connection, the listener keeps accepting) and serve.response.write
// (the response is abandoned and the connection closed; the request
// itself already executed). The protocol and registry layers carry their
// own sites (serve.frame.decode, serve.request.decode,
// serve.session.open, serve.swap.load).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.hpp"
#include "util/thread_pool.hpp"

namespace cybok::serve {

/// Server configuration.
struct ServerOptions {
    /// Bind address. The default is loopback-only: the protocol has no
    /// authentication, so exposing it wider is an explicit operator act.
    std::string bind = "127.0.0.1";
    /// TCP port; 0 binds an ephemeral port (read it back with port()).
    std::uint16_t port = 0;
    /// Worker lanes executing requests (0 = hardware concurrency).
    std::size_t lanes = 0;
    /// Bounded request-queue capacity; frames beyond it are rejected with
    /// a typed `overloaded` response (admission control, not buffering).
    std::size_t queue_capacity = 256;
    /// Per-frame payload ceiling handed to each connection's FrameDecoder.
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Registry (session) configuration.
    RegistryOptions registry;
};

/// Monotonic server counters (all atomics: read them live from any thread).
struct ServerStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_open{0};
    std::atomic<std::uint64_t> requests_received{0};
    std::atomic<std::uint64_t> responses_sent{0};
    std::atomic<std::uint64_t> overload_rejections{0};
    std::atomic<std::uint64_t> bad_frames{0};      ///< framing violations (connection closed)
    std::atomic<std::uint64_t> error_responses{0}; ///< typed failure responses written
    std::atomic<std::uint64_t> write_failures{0};  ///< responses lost to dead peers / faults
};

/// The analysis server. Construct with a shared engine + base model,
/// start(), then stop() (or let a `shutdown` request do it) and wait().
class Server {
public:
    Server(std::shared_ptr<const core::SharedEngine> engine, model::SystemModel base_model,
           ServerOptions options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind, listen, and spawn the IO thread + worker lanes. Throws
    /// IoError when the address cannot be bound.
    void start();

    /// The bound TCP port (valid after start(); resolves port 0).
    [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

    /// Begin graceful shutdown: stop accepting, drain in-flight work.
    /// Safe to call from any thread, including a worker lane. Idempotent.
    void stop();

    /// Block until every thread has exited (after stop() or `shutdown`).
    void wait();

    [[nodiscard]] bool running() const noexcept {
        return running_.load(std::memory_order_acquire);
    }

    [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
    [[nodiscard]] SessionRegistry& registry() noexcept { return registry_; }
    [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }

private:
    /// One accepted connection. The fd closes when the last reference
    /// drops, so a worker writing a response can never race fd reuse.
    struct Connection {
        explicit Connection(int socket_fd, std::size_t max_frame)
            : fd(socket_fd), decoder(max_frame) {}
        ~Connection();
        Connection(const Connection&) = delete;
        Connection& operator=(const Connection&) = delete;

        int fd;
        FrameDecoder decoder;
        std::mutex write_mutex;            ///< serializes response writes
        std::atomic<bool> dead{false};     ///< peer gone / framing violated
    };

    struct WorkItem {
        std::shared_ptr<Connection> conn;
        std::string payload;
    };

    void io_loop();
    void consume_loop();
    /// Read-ready: drain the socket into the decoder, enqueue frames.
    /// Returns false when the connection must be dropped.
    [[nodiscard]] bool drain_connection(const std::shared_ptr<Connection>& conn);
    void enqueue(const std::shared_ptr<Connection>& conn, std::string payload);
    void handle(const WorkItem& item);
    /// Execute one decoded request (worker lane). Returns the response.
    [[nodiscard]] json::Value execute(const Request& req);

    json::Value handle_hello(const SessionRegistry::ReadLease& lease);
    json::Value handle_query(const SessionRegistry::ReadLease& lease, const Request& req);
    json::Value handle_fleet(const SessionRegistry::ReadLease& lease, const Request& req);
    json::Value handle_session_open(const Request& req);
    json::Value handle_session_list();
    json::Value handle_associate(const Request& req);
    json::Value handle_whatif(const Request& req);
    json::Value handle_posture(const Request& req);
    json::Value handle_flow(const Request& req);
    json::Value handle_metrics(const Request& req);
    json::Value handle_swap(const Request& req);
    json::Value handle_delta_apply(const Request& req);
    json::Value handle_compact(const Request& req);

    /// Frame + write a response payload under the connection's write
    /// mutex. Failures mark the connection dead and are counted.
    void write_response(const std::shared_ptr<Connection>& conn, const json::Value& response);
    void wake_io() noexcept;

    ServerOptions options_;
    SessionRegistry registry_;

    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1}; ///< self-pipe: stop() wakes the poll loop
    std::uint16_t bound_port_ = 0;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<WorkItem> queue_;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    std::unique_ptr<util::ThreadPool> pool_;
    std::thread io_thread_;
    std::thread dispatch_thread_; ///< enters pool_->parallel_for(lanes, consume_loop)

    ServerStats stats_;
};

} // namespace cybok::serve
