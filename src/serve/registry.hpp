// The serve-side session registry: one shared immutable engine
// generation, thousands of lightweight analyst sessions layered over it.
//
// Cost model. The expensive object is the engine (tokenized, finalized
// indexes + scorer tables over the whole corpus — megabytes, seconds to
// build cold); a session is cheap (a model overlay plus lazily computed
// association state). The registry therefore thaws/builds the engine
// exactly once per *generation* (core::make_shared_engine — the hoisted
// cold-start path, so the snapshot's signature/shape staleness check runs
// once, not once per session) and every session pins the generation it
// was opened against via shared_ptr.
//
// Copy-on-write overlays. Sessions opened without their own model share
// the generation's *base analysis* — one core::AnalysisSession over the
// base model whose lazily computed association map, posture, and query
// cache are shared by every unforked session (open 500 sessions, pay for
// one association pass). The first mutating operation (a whatif with
// commit=true) *materializes* the session: the base model is copied, a
// private AnalysisSession is built over the same shared engine, and the
// commit applies there — the base and every other session are untouched.
// Sessions opened with their own model DSL are materialized from birth.
//
// Hot swap. swap() installs a new engine generation from a snapshot blob:
// the blob is thawed *outside* any lock (seconds of work), then the
// registry's generation pointer flips under the swap gate's exclusive
// lock. Request handlers hold the gate shared for the duration of each
// request (ReadLease), so acquiring the exclusive lock IS the drain: every
// in-flight request completes against the generation it pinned before the
// flip, and no request ever observes a half-switched registry. Sessions
// opened before the swap stay pinned to their original generation (their
// association state indexes the old corpus); new sessions get the new one.
// The old generation is freed when its last session closes.
//
// Admission control. open() enforces max_sessions with a typed
// session_limit rejection; the server layers a bounded request queue with
// typed overloaded rejections on top (server.hpp).
//
// Thread-safety: every public member is safe to call from any number of
// server lanes concurrently. Per-session operations serialize on the
// session's own mutex (or the shared base-analysis mutex while unforked);
// registry bookkeeping is under an internal lock; swap drains via the
// reader-writer gate described above.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/session.hpp"
#include "serve/protocol.hpp"

namespace cybok::serve {

/// Registry configuration.
struct RegistryOptions {
    /// Admission cap on concurrently open sessions; open() beyond it is
    /// rejected with ProtocolError(SessionLimit).
    std::size_t max_sessions = 4096;
    /// Associator lanes per session. Serve defaults to 1 (inline): request
    /// concurrency comes from the server's lanes, and one thread pool per
    /// session would oversubscribe the host at thousands of sessions.
    std::size_t session_threads = 1;
    /// Per-session query-cache entries (the base analysis uses the
    /// library default instead — it serves every unforked session).
    std::size_t session_cache_capacity = 1 << 10;
    /// Engine options for fresh builds and the snapshot staleness check.
    search::EngineOptions engine;
};

/// One sealed engine generation: the shared engine plus its identity.
struct Generation {
    std::uint64_t id = 0;
    std::shared_ptr<const core::SharedEngine> engine;
    std::string source; ///< snapshot path, or "<built>" for fresh builds
};

/// Load a generation's engine from a standalone snapshot blob (no
/// reference corpus needed — the blob carries its own). Throws
/// kb::SnapshotError / ValidationError on unusable blobs; swap() maps
/// those to ProtocolError(SwapFailed).
[[nodiscard]] std::shared_ptr<const core::SharedEngine> load_generation(
    const std::string& snapshot_path);

/// One open session: id, pinned generation, and the copy-on-write overlay
/// state. All access to the underlying AnalysisSession goes through an
/// AnalysisGuard, which takes the session's op mutex (serializing
/// pipelined requests against the same session) and, while the session is
/// an unforked overlay, the shared base-analysis mutex as well.
class ServeSession {
public:
    /// Shared state of a generation's base-model analysis: one
    /// AnalysisSession every unforked overlay session reads through,
    /// serialized by one mutex (lazy computations mutate it).
    struct BaseAnalysis {
        std::mutex mutex;
        std::shared_ptr<const model::SystemModel> base_model;
        core::AnalysisSession session;
        BaseAnalysis(std::shared_ptr<const model::SystemModel> base,
                     std::shared_ptr<const core::SharedEngine> engine,
                     const core::SessionOptions& options)
            : base_model(std::move(base)), session(*base_model, engine, options) {}
        BaseAnalysis(const BaseAnalysis&) = delete;
        BaseAnalysis& operator=(const BaseAnalysis&) = delete;
    };

    /// Unforked overlay over the generation's base analysis.
    ServeSession(std::string id, std::shared_ptr<const Generation> gen,
                 std::shared_ptr<BaseAnalysis> base);
    /// Materialized from birth over an own model.
    ServeSession(std::string id, std::shared_ptr<const Generation> gen, model::SystemModel own,
                 const core::SessionOptions& options);

    [[nodiscard]] const std::string& id() const noexcept { return id_; }
    [[nodiscard]] std::uint64_t generation() const noexcept { return gen_->id; }
    [[nodiscard]] const std::shared_ptr<const Generation>& generation_handle() const noexcept {
        return gen_;
    }
    /// True once this session owns a private model copy (COW fork done).
    /// Lock-free so session.list never blocks on a long analysis.
    [[nodiscard]] bool materialized() const noexcept {
        return materialized_.load(std::memory_order_acquire);
    }
    /// Requests dispatched to this session so far (monotonic).
    [[nodiscard]] std::uint64_t requests() const noexcept {
        return requests_.load(std::memory_order_relaxed);
    }
    void count_request() noexcept { requests_.fetch_add(1, std::memory_order_relaxed); }

    /// Copy-on-write fork: copy the pristine base model into a private
    /// AnalysisSession over the same shared engine. No-op when already
    /// materialized. Takes the op mutex itself — call *before*
    /// constructing an AnalysisGuard, never while holding one.
    void materialize(const core::SessionOptions& options);

    /// Scoped access to the session's AnalysisSession: op mutex always,
    /// plus the shared base mutex while unforked. Lock order is op-then-
    /// base everywhere, and the base mutex is always innermost, so guards
    /// on different sessions can never deadlock.
    class AnalysisGuard {
    public:
        explicit AnalysisGuard(ServeSession& sess) : op_(sess.op_mutex_) {
            if (sess.own_ == nullptr) base_ = std::unique_lock<std::mutex>(sess.base_->mutex);
            analysis_ = sess.own_ != nullptr ? sess.own_.get() : &sess.base_->session;
        }
        [[nodiscard]] core::AnalysisSession& operator*() const noexcept { return *analysis_; }
        [[nodiscard]] core::AnalysisSession* operator->() const noexcept { return analysis_; }

    private:
        std::unique_lock<std::mutex> op_;
        std::unique_lock<std::mutex> base_;
        core::AnalysisSession* analysis_;
    };

private:
    friend class AnalysisGuard;

    std::string id_;
    std::shared_ptr<const Generation> gen_;
    std::shared_ptr<BaseAnalysis> base_; ///< null when opened with an own model
    std::mutex op_mutex_;                ///< serializes requests on this session
    std::unique_ptr<core::AnalysisSession> own_; ///< guarded by op_mutex_
    std::atomic<bool> materialized_{false};
    std::atomic<std::uint64_t> requests_{0};
};

/// A session row for session.list / metrics.
struct SessionInfo {
    std::string id;
    std::uint64_t generation = 0;
    bool materialized = false;
    std::uint64_t requests = 0;
};

/// Registry-wide counters.
struct RegistryStats {
    std::size_t open_sessions = 0;
    std::size_t peak_sessions = 0;
    std::uint64_t total_opened = 0;
    std::uint64_t session_limit_rejections = 0;
    std::uint64_t swaps = 0;
    std::uint64_t deltas_applied = 0;       ///< delta.apply generation flips
    std::uint64_t compactions = 0;          ///< compact generation flips
    std::uint64_t compaction_failures = 0;  ///< folds that failed (old generation kept)
    std::uint64_t current_generation = 0;
    std::size_t current_segments = 0; ///< delta segments behind the live generation
};

class SessionRegistry {
public:
    /// Registry over an initial generation (from core::make_shared_engine
    /// or load_generation) and the base model new sessions overlay.
    SessionRegistry(std::shared_ptr<const core::SharedEngine> engine,
                    model::SystemModel base_model, RegistryOptions options);

    SessionRegistry(const SessionRegistry&) = delete;
    SessionRegistry& operator=(const SessionRegistry&) = delete;

    /// RAII drain gate + pinned generation for one request. Handlers hold
    /// one for the duration of request execution; swap() waits for all
    /// outstanding leases (that is the documented drain).
    class ReadLease {
    public:
        explicit ReadLease(const SessionRegistry& r) {
            // Writer-preference shim: platform rwlocks may favor readers
            // (glibc's default), so a saturating request load could
            // otherwise hold the gate shared forever and starve swap().
            // New leases wait out a pending swap before joining.
            r.await_swap_clear();
            lock_ = std::shared_lock<std::shared_mutex>(r.swap_gate_);
            gen_ = r.snapshot_current();
        }
        [[nodiscard]] const std::shared_ptr<const Generation>& generation() const noexcept {
            return gen_;
        }

    private:
        std::shared_lock<std::shared_mutex> lock_;
        std::shared_ptr<const Generation> gen_;
    };

    /// The live generation (for callers outside a lease).
    [[nodiscard]] std::shared_ptr<const Generation> current() const {
        await_swap_clear();
        std::shared_lock<std::shared_mutex> lk(swap_gate_);
        return snapshot_current();
    }

    /// Open a session. Empty `model_dsl` = copy-on-write overlay of the
    /// base model; otherwise the DSL is parsed + validated and the session
    /// is materialized from birth. Throws ProtocolError(SessionLimit) at
    /// the admission cap and ProtocolError(ModelInvalid) on bad DSL.
    [[nodiscard]] std::string open(const std::string& model_dsl);

    /// Look up a session; throws ProtocolError(UnknownSession).
    [[nodiscard]] std::shared_ptr<ServeSession> find(std::string_view id) const;

    /// Close a session; throws ProtocolError(UnknownSession).
    void close(std::string_view id);

    /// Fork a session's COW overlay before a commit (no-op when already
    /// materialized). Separate from ServeSession::materialize only to
    /// supply the registry's per-session options.
    void materialize(ServeSession& session) { session.materialize(session_options()); }

    [[nodiscard]] std::vector<SessionInfo> list() const;
    [[nodiscard]] RegistryStats stats() const;

    /// Install a new generation from a snapshot blob: thaw outside the
    /// gate, drain in-flight leases, flip. Returns the new generation id.
    /// Throws ProtocolError(SwapFailed) on an unusable blob; the old
    /// generation keeps serving in that case.
    std::uint64_t swap(const std::string& snapshot_path);

    /// Install the next generation by applying a frozen corpus delta
    /// (kb::freeze_corpus_delta blob at `delta_path`) over the live
    /// generation in O(delta) — the feed-tick path. Same drain-gated flip
    /// as swap(); sessions opened before the apply stay pinned to their
    /// generation. Throws ProtocolError(DeltaFailed) on an unreadable
    /// blob, a validation failure, or a non-BM25 engine; the old
    /// generation keeps serving and nothing is published.
    std::uint64_t apply_delta(const std::string& delta_path);

    /// Fold the live generation's delta segments into a fresh from-scratch
    /// base generation (core::compact) and flip to it. Queries against the
    /// result are bit-identical; the win is dropped tombstone masks and
    /// merge overhead. No-op (returns the live id) when the generation has
    /// no segments. A failed fold — crash-consistency fault site
    /// "serve.compact.fold" — leaves the segmented generation authoritative,
    /// counts a compaction failure, and throws ProtocolError(CompactFailed).
    std::uint64_t compact();

    /// Sum of AssocMetrics over the base analysis and every materialized
    /// session, plus each live generation's cold-start degradations
    /// (counted once per generation — see core::SharedEngine::cold_start).
    [[nodiscard]] search::AssocMetrics aggregate_metrics() const;

    [[nodiscard]] const RegistryOptions& options() const noexcept { return options_; }

private:
    [[nodiscard]] const std::shared_ptr<const Generation>& snapshot_current() const noexcept {
        return current_;
    }
    /// Block while any swap() is between announcing itself and releasing
    /// the gate. Keeps the reader stream from starving the exclusive
    /// acquisition on reader-preferring rwlock implementations.
    void await_swap_clear() const {
        if (swap_pending_.load(std::memory_order_acquire) == 0) return;
        std::unique_lock<std::mutex> lk(swap_wait_mutex_);
        swap_wait_cv_.wait(
            lk, [this] { return swap_pending_.load(std::memory_order_acquire) == 0; });
    }
    [[nodiscard]] core::SessionOptions session_options() const;
    /// What kind of generation flip a counter should attribute.
    enum class FlipKind : std::uint8_t { Swap, Delta, Compact };
    /// The shared drain-gated pointer flip behind swap/apply_delta/compact:
    /// announce, drain every ReadLease, publish `fresh`, drop the old base
    /// analysis. The expensive/fallible construction of `fresh` has already
    /// happened outside the gate.
    std::uint64_t flip_generation(std::shared_ptr<const core::SharedEngine> fresh,
                                  std::string source, FlipKind kind);
    /// The base analysis for `gen`, created lazily on the first
    /// base-overlay open after construction or a swap. Caller holds mutex_.
    [[nodiscard]] std::shared_ptr<ServeSession::BaseAnalysis> base_analysis_for(
        const std::shared_ptr<const Generation>& gen);

    RegistryOptions options_;
    std::shared_ptr<const model::SystemModel> base_model_;

    /// Serializes generation *mutators* (swap/apply_delta/compact) against
    /// each other, so an apply computed against generation G can never
    /// clobber a flip that landed in between. Never blocks request leases.
    /// Lock order: admin_mutex_ -> swap_gate_ -> mutex_.
    std::mutex admin_mutex_;

    mutable std::shared_mutex swap_gate_; ///< shared = request in flight, exclusive = swap
    std::shared_ptr<const Generation> current_; ///< guarded by swap_gate_
    mutable std::atomic<int> swap_pending_{0};  ///< swaps between announce and flip
    mutable std::mutex swap_wait_mutex_;        ///< with swap_wait_cv_: lease parking lot
    mutable std::condition_variable swap_wait_cv_;

    mutable std::mutex mutex_; ///< sessions_ + counters + base_analysis_
    std::vector<std::pair<std::string, std::shared_ptr<ServeSession>>> sessions_;
    std::shared_ptr<ServeSession::BaseAnalysis> base_analysis_; ///< for current_ generation
    std::uint64_t base_analysis_generation_ = 0;
    std::uint64_t next_session_ = 1;
    std::uint64_t next_generation_ = 2; ///< generation 1 is the construction one
    RegistryStats stats_;
    search::DegradeCounts degrade_; ///< registry-level absorbed failures (compaction)
};

} // namespace cybok::serve
