#include "text/segments.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <unordered_map>

#include "text/kernel_util.hpp"

namespace cybok::text {

namespace {

/// Rounding slack on rescaled bounds: ~1e-6 relative dwarfs the ~1e-16
/// relative error the scale computation can introduce, and costs at most
/// a handful of spurious block decodes.
constexpr double kBoundSlack = 1.0 + 1e-6;

/// First local doc of `seg` with ordinal >= target (== seg.docs when none).
std::uint32_t local_lower_bound(const SegmentView& seg, DocId target_ord) noexcept {
    const std::uint32_t* begin = seg.ordinals;
    const std::uint32_t* end = begin + seg.docs;
    return static_cast<std::uint32_t>(std::lower_bound(begin, end, target_ord) - begin);
}

/// Current global ordinal of a cursor positioned in `seg` (kNoDocId when
/// exhausted).
DocId cursor_ord(const SegmentView& seg, const PostingCursor& pc) noexcept {
    return pc.exhausted() ? kNoDocId : seg.ordinals[pc.doc()];
}

/// NextGEQ in ordinal space: advance to the first posting whose global
/// ordinal is >= target (ordinals are strictly ascending in local doc id,
/// so the local lower bound translates the target exactly).
void seek_ord(const SegmentView& seg, PostingCursor& pc, DocId target_ord) {
    const std::uint32_t local = local_lower_bound(seg, target_ord);
    pc.seek(local >= seg.docs ? kNoDocId : static_cast<DocId>(local));
}

/// Reference path for queries wider than the 64-bit matched-term bitset:
/// term-at-a-time map accumulators (each doc is live in exactly one
/// segment, so per-doc sums still run in canonical term order), then the
/// same gate / top-k semantics the single-index fallback applies.
std::vector<Hit> query_segments_reference(const std::vector<SegmentView>& segments,
                                          const std::vector<SegmentedTerm>& terms,
                                          const KernelOptions& opts, SegmentedStats* stats) {
    std::uint64_t masked = 0;
    std::unordered_map<DocId, Hit> acc;
    for (std::size_t i = 0; i < terms.size(); ++i) {
        const double idf_t = terms[i].idf;
        for (const SegmentView& seg : segments) {
            const TermId tid = seg.index->vocabulary().lookup(terms[i].term);
            if (tid == kNoTerm) continue;
            const Bm25Scorer::Params& params = seg.scorer->params();
            for_each_posting(seg.index->list(tid), [&](DocId d, float w) {
                if (seg.live[d] == 0) {
                    ++masked;
                    return;
                }
                const double tf = w;
                const double contrib =
                    idf_t * (tf * (params.k1 + 1.0)) / (tf + seg.merged_norms[d]);
                const DocId ord = seg.ordinals[d];
                Hit& h = acc.try_emplace(ord, Hit{ord, 0.0, {}}).first->second;
                h.score += contrib;
                h.matched_terms.push_back(static_cast<TermId>(i));
            });
        }
    }
    std::vector<Hit> hits;
    hits.reserve(acc.size());
    for (auto& [_, h] : acc) hits.push_back(std::move(h));
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.doc < b.doc;
    });
    std::vector<Hit> out;
    out.reserve(hits.size());
    std::uint64_t gated = 0;
    for (Hit& h : hits) {
        double evidence = 0.0;
        for (TermId i : h.matched_terms) evidence += terms[i].idf;
        if (evidence < opts.min_evidence_idf) {
            ++gated;
            continue;
        }
        out.push_back(std::move(h));
    }
    if (opts.top_k > 0 && out.size() > opts.top_k) out.resize(opts.top_k);
    if (stats != nullptr) {
        ++stats->kernel.fallback_queries;
        stats->kernel.hits_gated += gated;
        stats->tombstones_masked += masked;
    }
    return out;
}

/// Document-at-a-time Block-Max WAND across segments: one cursor per
/// (canonical term, segment) pair that has postings, ordered and pivoted
/// in global ordinal space. The structure mirrors the single-index
/// query_kernel_bmw step for step; the differences are the ordinal
/// translation (seek_ord / cursor_ord), the per-cursor bound rescaling,
/// and the tombstone mask at evaluation. Summing term-level bounds over
/// multiple cursors of one term only loosens them (a document exists in
/// exactly one segment), never invalidates them.
std::vector<Hit> query_segments_bmw(const std::vector<SegmentView>& segments,
                                    const std::vector<SegmentedTerm>& terms,
                                    QueryScratch& scratch, const KernelOptions& opts,
                                    SegmentedStats* stats) {
    const std::size_t n_terms = terms.size();
    const std::size_t n_segs = segments.size();
    const std::size_t k = opts.top_k;
    PostingStats pstats;
    std::uint64_t masked = 0;

    // Build the cursor set term-major, so ascending cursor index is
    // ascending canonical term — the exact-evaluation order below.
    auto& seg_tids = scratch.seg_tids; // resolved by the caller
    auto& cur_seg = scratch.cursor_seg;
    auto& cur_term = scratch.cursor_term;
    auto& cur_scale = scratch.cursor_scale;
    auto& cur_bound = scratch.cursor_bound;
    cur_seg.clear();
    cur_term.clear();
    cur_scale.clear();
    cur_bound.clear();
    for (std::size_t i = 0; i < n_terms; ++i) {
        for (std::size_t g = 0; g < n_segs; ++g) {
            const TermId tid = seg_tids[i * n_segs + g];
            if (tid == kNoTerm || segments[g].index->list(tid).empty()) continue;
            const double scale = segments[g].bound_scale[tid];
            cur_seg.push_back(static_cast<std::uint32_t>(g));
            cur_term.push_back(static_cast<std::uint32_t>(i));
            cur_scale.push_back(scale);
            cur_bound.push_back(segments[g].scorer->max_contribution(tid) * scale);
        }
    }
    const std::size_t n_cursors = cur_seg.size();
    scratch.ensure_bmw(n_cursors);
    auto& cursors = scratch.cursors;
    auto& order = scratch.order;
    for (std::size_t c = 0; c < n_cursors; ++c) {
        const SegmentView& seg = segments[cur_seg[c]];
        cursors[c].reset(seg.index->list(seg_tids[cur_term[c] * n_segs + cur_seg[c]]),
                         scratch.block_docs.data() + c * kBlockDocs,
                         scratch.block_weights.data() + c * kBlockDocs, &pstats);
        if (!cursors[c].exhausted()) order.push_back(static_cast<std::uint32_t>(c));
    }

    auto& heap = scratch.heap; // min-heap of top-k gate-passing scores
    double theta = -std::numeric_limits<double>::infinity();
    std::uint64_t pruned = 0;
    while (!order.empty()) {
        std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
            const DocId da = cursor_ord(segments[cur_seg[a]], cursors[a]);
            const DocId db = cursor_ord(segments[cur_seg[b]], cursors[b]);
            if (da != db) return da < db;
            return a < b;
        });
        // Pivot: shortest prefix whose term-level bound can reach theta.
        double ub = 0.0;
        std::size_t p = 0;
        bool found = false;
        for (; p < order.size(); ++p) {
            ub += cur_bound[order[p]];
            if (ub >= theta) {
                found = true;
                break;
            }
        }
        if (!found) break; // no remaining document can reach the floor
        const DocId pivot = cursor_ord(segments[cur_seg[order[p]]], cursors[order[p]]);
        while (p + 1 < order.size() &&
               cursor_ord(segments[cur_seg[order[p + 1]]], cursors[order[p + 1]]) == pivot)
            ++p;

        // Block-level refinement in ordinal space: each cursor's candidate
        // block is the one that would hold the pivot's local position, and
        // its rescaled block max bounds the merged contribution.
        double block_ub = 0.0;
        DocId min_boundary = kNoDocId;
        for (std::size_t i = 0; i <= p; ++i) {
            const std::uint32_t c = order[i];
            const SegmentView& seg = segments[cur_seg[c]];
            const PostingCursor& pc = cursors[c];
            const std::uint32_t local = local_lower_bound(seg, pivot);
            if (local >= seg.docs) continue; // segment ends before the pivot
            const std::uint32_t b = pc.find_block(static_cast<DocId>(local));
            if (b >= pc.n_blocks()) continue; // list ends before the pivot
            block_ub += seg.scorer->block_max_bound(pc.block_base() + b) * cur_scale[c];
            min_boundary = std::min(min_boundary, seg.ordinals[pc.last_doc_of(b)]);
        }

        if (block_ub >= theta) {
            // Evaluate the pivot exactly: ascending canonical term order,
            // one live segment per term, dead postings masked.
            for (std::size_t i = 0; i <= p; ++i) {
                const std::uint32_t c = order[i];
                seek_ord(segments[cur_seg[c]], cursors[c], pivot);
            }
            double score = 0.0, evidence = 0.0;
            std::uint64_t bits = 0;
            for (std::size_t c = 0; c < n_cursors; ++c) {
                const SegmentView& seg = segments[cur_seg[c]];
                const PostingCursor& pc = cursors[c];
                if (pc.exhausted() || cursor_ord(seg, pc) != pivot) continue;
                if (seg.live[pc.doc()] == 0) {
                    ++masked;
                    continue;
                }
                const double tf = pc.weight();
                const double idf_t = terms[cur_term[c]].idf;
                const double k1 = seg.scorer->params().k1;
                score += idf_t * (tf * (k1 + 1.0)) / (tf + seg.merged_norms[pc.doc()]);
                evidence += idf_t;
                bits |= std::uint64_t{1} << cur_term[c];
            }
            // A pivot whose postings were all tombstones is not a document
            // of the merged corpus's result set — don't materialize it.
            if (bits != 0) {
                scratch.stamp[pivot] = scratch.epoch;
                scratch.score[pivot] = score;
                scratch.evidence_idf[pivot] = evidence;
                scratch.term_bits[pivot] = bits;
                scratch.touched.push_back(pivot);
                if (evidence >= opts.min_evidence_idf) {
                    heap.push_back(score);
                    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
                    if (heap.size() > k) {
                        std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
                        heap.pop_back();
                    }
                    if (heap.size() == k) theta = heap.front();
                }
            }
            for (std::size_t i = 0; i <= p; ++i) {
                const std::uint32_t c = order[i];
                const SegmentView& seg = segments[cur_seg[c]];
                if (!cursors[c].exhausted() && cursor_ord(seg, cursors[c]) == pivot)
                    seek_ord(seg, cursors[c], pivot + 1);
            }
        } else {
            // Every ordinal in [pivot, min_boundary] draws its possible
            // contributions from exactly the blocks bounded above, so the
            // whole range is below theta. Jump past it, but never past the
            // first cursor outside the pivot prefix.
            ++pruned;
            DocId target = min_boundary == kNoDocId ? kNoDocId : min_boundary + 1;
            if (p + 1 < order.size()) {
                const std::uint32_t c = order[p + 1];
                target = std::min(target, cursor_ord(segments[cur_seg[c]], cursors[c]));
            }
            for (std::size_t i = 0; i <= p; ++i) {
                const std::uint32_t c = order[i];
                seek_ord(segments[cur_seg[c]], cursors[c], target);
            }
        }
        order.erase(std::remove_if(order.begin(), order.end(),
                                   [&](std::uint32_t c) { return cursors[c].exhausted(); }),
                    order.end());
    }
    for (std::size_t c = 0; c < n_cursors; ++c)
        pstats.blocks_skipped += cursors[c].undecoded_tail();
    if (stats != nullptr) {
        stats->kernel.postings_scanned += pstats.postings_decoded;
        stats->kernel.blocks_decoded += pstats.blocks_decoded;
        stats->kernel.blocks_skipped += pstats.blocks_skipped;
        stats->kernel.docs_pruned += pruned;
        stats->tombstones_masked += masked;
    }
    return detail::collect_hits(scratch, opts, stats != nullptr ? &stats->kernel : nullptr,
                                [&scratch](DocId d) { return scratch.score[d]; });
}

} // namespace

std::vector<Hit> query_segments(const std::vector<SegmentView>& segments,
                                std::size_t ordinal_limit,
                                const std::vector<SegmentedTerm>& terms, QueryScratch& scratch,
                                const KernelOptions& opts, SegmentedStats* stats) {
    if (terms.empty()) return {};
    if (terms.size() > 64) return query_segments_reference(segments, terms, opts, stats);

    const std::size_t n_terms = terms.size();
    const std::size_t n_segs = segments.size();
    scratch.begin(ordinal_limit);
    // scratch.terms carries canonical term *indices* here: collect_hits
    // reads them out of the matched bitset, and the engine layer maps
    // index -> string (per-segment TermIds are meaningless across
    // segments).
    for (std::size_t i = 0; i < n_terms; ++i) scratch.terms.push_back(static_cast<TermId>(i));

    // Resolve every (term, segment) TermId once; count visited segments.
    auto& seg_tids = scratch.seg_tids;
    seg_tids.assign(n_terms * n_segs, kNoTerm);
    std::uint64_t visited_count = 0;
    for (std::size_t g = 0; g < n_segs; ++g) {
        bool visited = false;
        for (std::size_t i = 0; i < n_terms; ++i) {
            const TermId tid = segments[g].index->vocabulary().lookup(terms[i].term);
            if (tid == kNoTerm || segments[g].index->list(tid).empty()) continue;
            seg_tids[i * n_segs + g] = tid;
            visited = true;
        }
        if (visited) ++visited_count;
    }
    if (stats != nullptr) stats->segments_visited += visited_count;

    if (opts.prune && opts.top_k > 0) return query_segments_bmw(segments, terms, scratch, opts, stats);

    // Unpruned path: term-at-a-time over every block of every segment, in
    // the reference accumulation order (ascending canonical term; each doc
    // lives in one segment, so per-doc sums follow that order exactly).
    PostingStats pstats;
    std::uint64_t masked = 0;
    std::uint32_t docs[kBlockDocs];
    float weights[kBlockDocs];
    for (std::size_t i = 0; i < n_terms; ++i) {
        const double idf_t = terms[i].idf;
        const std::uint64_t bit = std::uint64_t{1} << i;
        for (std::size_t g = 0; g < n_segs; ++g) {
            const TermId tid = seg_tids[i * n_segs + g];
            if (tid == kNoTerm) continue;
            const SegmentView& seg = segments[g];
            const double k1 = seg.scorer->params().k1;
            const ListView lv = seg.index->list(tid);
            for (std::uint32_t b = 0; b < lv.n_blocks; ++b) {
                const std::size_t n = decode_block(lv, b, docs, weights, &pstats);
                for (std::size_t j = 0; j < n; ++j) {
                    const DocId d = docs[j];
                    if (seg.live[d] == 0) {
                        ++masked;
                        continue;
                    }
                    const DocId ord = seg.ordinals[d];
                    const double tf = weights[j];
                    const double contrib =
                        idf_t * (tf * (k1 + 1.0)) / (tf + seg.merged_norms[d]);
                    if (scratch.stamp[ord] == scratch.epoch) {
                        scratch.score[ord] += contrib;
                        scratch.evidence_idf[ord] += idf_t;
                        scratch.term_bits[ord] |= bit;
                    } else {
                        scratch.stamp[ord] = scratch.epoch;
                        scratch.score[ord] = contrib;
                        scratch.evidence_idf[ord] = idf_t;
                        scratch.term_bits[ord] = bit;
                        scratch.touched.push_back(ord);
                    }
                }
            }
        }
    }
    if (stats != nullptr) {
        stats->kernel.postings_scanned += pstats.postings_decoded;
        stats->kernel.blocks_decoded += pstats.blocks_decoded;
        stats->kernel.blocks_skipped += pstats.blocks_skipped;
        stats->tombstones_masked += masked;
    }
    return detail::collect_hits(scratch, opts, stats != nullptr ? &stats->kernel : nullptr,
                                [&scratch](DocId d) { return scratch.score[d]; });
}

std::vector<double> merged_norms(const InvertedIndex& index, Bm25Scorer::Params params,
                                 double merged_avg_len) {
    const double avg = std::max(merged_avg_len, 1e-9);
    std::vector<double> norms(index.doc_count());
    for (DocId d = 0; d < norms.size(); ++d)
        norms[d] = params.k1 * (1.0 - params.b + params.b * index.doc_length(d) / avg);
    return norms;
}

std::vector<double> merged_bound_scales(const InvertedIndex& index,
                                        const std::vector<double>& merged_idf,
                                        double merged_avg_len) {
    const double avg_local = std::max(index.avg_doc_length(), 1e-9);
    const double avg_scale = std::max(1.0, std::max(merged_avg_len, 1e-9) / avg_local);
    std::vector<double> scales(index.term_count(), 0.0);
    for (TermId t = 0; t < scales.size(); ++t) {
        const double idf_local = index.idf(t);
        if (idf_local <= 0.0) continue; // term with no postings: bound stays 0
        scales[t] = (merged_idf[t] / idf_local) * avg_scale * kBoundSlack;
    }
    return scales;
}

} // namespace cybok::text
