// Multi-segment query execution — the text-layer half of generational
// segmented indexing (search/generation.hpp builds the segments; this
// file scores across them).
//
// A *segment* is one self-contained finalized InvertedIndex whose local
// documents map to global *ordinals* — positions in an append-only id
// space where ascending ordinal order equals merged-corpus document
// order. The base snapshot is segment 0 (ordinal == local doc id); each
// applied delta adds a segment whose ordinals are strictly ascending but
// interleave with earlier segments' (a modified record keeps its original
// ordinal, so its replacement lives in a later segment at a low ordinal).
// Every ordinal is *owned* by exactly one segment — the one holding its
// live version; postings for that ordinal in any other segment are
// tombstone-masked at query time.
//
// Bit-identity contract: for any query, the hits returned here — scores,
// ordinal order, matched canonical terms — are bitwise identical to what
// a from-scratch single-index build over the merged corpus would return,
// because
//   * per-document contributions are summed in the canonical ascending
//     term-string order (the engine resolves SegmentedTerm entries in
//     that order, and each document's postings live in exactly one
//     segment, so term-major traversal reproduces the reference order);
//   * each contribution uses the exact merged-statistics expression
//     idf_merged * (tf * (k1+1)) / (tf + norm_merged[doc]), with
//     merged_norms recomputed by the engine per apply via the same
//     formula the from-scratch Bm25Scorer constructor uses; and
//   * pruning only ever *skips* documents proven below the top-k floor:
//     per-segment constructor bounds are rescaled into valid (slightly
//     loose) merged-statistics bounds, and every surviving document is
//     scored exactly, so the selected set and its scores match the
//     unpruned result — the same argument the single-index BMW kernel
//     makes, with looser bounds.
//
// Hits come back with doc = global ordinal and matched_terms = indices
// into the caller's term array (ids are per-segment here, so TermIds
// would be meaningless); the engine maps ordinals to merged positions
// and indices to strings.

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "text/index.hpp"
#include "text/scratch.hpp"

namespace cybok::text {

/// One segment, viewed by the kernel. All pointers are borrowed and must
/// outlive the query; arrays are indexed by the segment's local DocId.
struct SegmentView {
    const InvertedIndex* index = nullptr; ///< finalized
    const Bm25Scorer* scorer = nullptr;   ///< bound tables under the segment's own stats
    /// BM25 length norms under *merged* statistics (see merged_norms()).
    const double* merged_norms = nullptr;
    /// Local doc -> global ordinal, strictly ascending.
    const std::uint32_t* ordinals = nullptr;
    /// 1 = this segment owns the ordinal (live); 0 = tombstoned here.
    const std::uint8_t* live = nullptr;
    /// Rescale factor per local TermId turning the scorer's constructor
    /// bounds into valid merged-statistics bounds (see merged_bound_scales()).
    const double* bound_scale = nullptr;
    std::size_t docs = 0;
};

/// One canonical query term: distinct, in ascending term-string order,
/// carrying the merged-corpus IDF (the engine resolves both from its
/// merged document-frequency table). Terms with merged df == 0 should be
/// dropped by the caller — a from-scratch merged index would not contain
/// them.
struct SegmentedTerm {
    std::string_view term;
    double idf;
};

/// Kernel instrumentation plus the segmented-path counters.
struct SegmentedStats {
    KernelStats kernel;
    std::uint64_t segments_visited = 0;  ///< segments holding >= 1 query-term list
    std::uint64_t tombstones_masked = 0; ///< postings skipped as dead
};

/// Score `terms` across `segments`. `ordinal_limit` bounds the ordinal
/// space (max ordinal ever assigned + 1) and sizes the scratch arena.
/// Semantics and options exactly match Bm25Scorer::query_kernel on the
/// merged corpus (see the bit-identity contract above); queries with more
/// than 64 distinct terms take a reference term-at-a-time path, mirroring
/// the single-index fallback. All segments must share the base scorer's
/// BM25 parameters.
[[nodiscard]] std::vector<Hit> query_segments(const std::vector<SegmentView>& segments,
                                              std::size_t ordinal_limit,
                                              const std::vector<SegmentedTerm>& terms,
                                              QueryScratch& scratch, const KernelOptions& opts,
                                              SegmentedStats* stats = nullptr);

/// Per-doc BM25 norms for one segment under merged statistics — the
/// byte-exact expression the from-scratch Bm25Scorer constructor uses
/// (k1 * (1 - b + b * len / max(avg, 1e-9))), so evaluated scores cannot
/// drift from a merged rebuild. Recomputed per apply (O(segment docs)).
[[nodiscard]] std::vector<double> merged_norms(const InvertedIndex& index,
                                               Bm25Scorer::Params params, double merged_avg_len);

/// Per-local-term rescale factors for one segment's constructor bounds:
///
///   scale[t] = (idf_merged[t] / idf_local[t]) * max(1, avg_m / avg_l) * slack
///
/// Validity: a posting's merged contribution differs from its local one
/// by the idf ratio times (tf + norm_l) / (tf + norm_m), and the latter
/// is <= max(1, norm_l / norm_m) <= max(1, avg_m / avg_l) (mediant
/// inequality; norms are affine in len/avg with positive coefficients).
/// The slack factor absorbs floating-point rounding in computing the
/// scale itself. Bounds only need validity, not tightness — every
/// admitted document is scored exactly. `merged_idf[t]` is the merged
/// IDF of local term t's string. Recomputed per apply (O(vocabulary)).
[[nodiscard]] std::vector<double> merged_bound_scales(const InvertedIndex& index,
                                                      const std::vector<double>& merged_idf,
                                                      double merged_avg_len);

} // namespace cybok::text
