// Vocabulary and inverted index over tokenized documents, plus the two
// ranking functions the search engine offers (BM25 and TF-IDF cosine).
//
// Thread-safety contract (build-then-freeze): an InvertedIndex has two
// phases. During *building* (add_document / add_term) it is single-writer
// and must not be read. After finalize() the index — including its
// Vocabulary — is logically immutable: every remaining operation is const
// and performs no hidden mutation, so any number of threads may query it
// concurrently with no synchronization, provided finalize() happens-before
// the first concurrent read (e.g. via the thread-creation ordering the
// parallel association pipeline uses). The scorers hold const references
// and inherit the same guarantee.
//
// Snapshot freeze/thaw extends the contract: freeze() is a const read of a
// finalized index (safe concurrently with queries), and thaw() returns an
// index that is *born finalized* — the build phase never existed for it,
// so the same happens-before rule applies from the moment thaw returns.

#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/scratch.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace cybok::text {

/// Robertson–Spärck Jones IDF with +1 smoothing — the single spelling of
/// the formula shared by BM25 scoring, the engine's evidence-quality gate,
/// and explain() output, so gate and explanation cannot drift.
[[nodiscard]] inline double rsj_idf(double n_docs, double doc_freq) noexcept {
    return std::log(1.0 + (n_docs - doc_freq + 0.5) / (doc_freq + 0.5));
}

/// Dense id of an interned term within one Vocabulary.
using TermId = std::uint32_t;
/// Dense id of a document within one InvertedIndex.
using DocId = std::uint32_t;
/// Sentinel: term not present in the vocabulary.
inline constexpr TermId kNoTerm = UINT32_MAX;

/// Transparent string hash so string_view probes into the vocabulary map
/// need not materialize a std::string (the lookup hot path runs once per
/// query token).
struct StringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
        return std::hash<std::string_view>{}(s);
    }
};

/// Bidirectional term <-> dense id mapping. lookup() is const and
/// allocation-free (heterogeneous probe); safe for concurrent readers once
/// interning has stopped (see the file-level thread-safety contract).
class Vocabulary {
public:
    /// Id of `term`, interning it if new.
    TermId intern(std::string_view term);
    /// Id of `term` or kNoTerm when absent (no interning).
    [[nodiscard]] TermId lookup(std::string_view term) const noexcept;
    /// The interned spelling for `id`; throws NotFoundError on a bad id.
    [[nodiscard]] const std::string& term(TermId id) const;
    [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }

    /// Serialize terms in id order; thaw() re-interns them in that order,
    /// so term ids round-trip exactly (snapshot freeze/thaw support).
    void freeze(util::ByteWriter& w) const;
    [[nodiscard]] static Vocabulary thaw(util::ByteReader& r);

private:
    std::unordered_map<std::string, TermId, StringHash, std::equal_to<>> ids_;
    std::vector<std::string> terms_;
};

/// One posting: a document and the (weighted) term frequency inside it.
struct Posting {
    DocId doc;
    float weight;
};

/// Inverted index with document length normalization. Documents are added
/// as pre-analyzed token streams; each token may carry a field weight
/// (e.g. title tokens count 3x body tokens). finalize() freezes the index;
/// after that every operation is const and concurrent reads are safe (the
/// build-then-freeze contract at the top of this file).
class InvertedIndex {
public:
    /// Begin a new document; returns its id. Tokens are then accumulated
    /// via add_term until the next add_document call.
    DocId add_document();
    /// Accumulate one token into the current document (build phase only).
    void add_term(std::string_view token, float field_weight = 1.0f);

    /// Convenience: a whole token vector with one weight.
    void add_terms(const std::vector<std::string>& tokens, float field_weight = 1.0f);

    /// Finish building: sorts postings, computes statistics. Must be
    /// called once before any query; adding after finalize throws. This is
    /// the freeze point of the thread-safety contract: finalize() must
    /// happen-before any concurrent read of this index.
    void finalize();

    /// True once finalize() has run (reads are only legal then).
    [[nodiscard]] bool finalized() const noexcept { return finalized_; }
    /// Number of documents added so far.
    [[nodiscard]] std::size_t doc_count() const noexcept { return doc_lengths_.size(); }
    /// Number of distinct terms interned so far.
    [[nodiscard]] std::size_t term_count() const noexcept { return vocab_.size(); }
    /// Mean weighted document length (valid after finalize()).
    [[nodiscard]] double avg_doc_length() const noexcept { return avg_len_; }
    /// The term <-> id mapping backing this index.
    [[nodiscard]] const Vocabulary& vocabulary() const noexcept { return vocab_; }

    /// Number of documents containing the term (0 for unknown terms).
    [[nodiscard]] std::size_t doc_frequency(std::string_view term) const noexcept;
    /// Weighted length of a document.
    [[nodiscard]] double doc_length(DocId d) const;
    [[nodiscard]] const std::vector<Posting>& postings(TermId t) const;

    /// Precomputed rsj_idf of a term (valid after finalize(); 0 for ids
    /// outside the vocabulary). This is both the BM25 term weight and the
    /// evidence-gate weight — one table, computed once at finalize, so
    /// query() never recomputes a log or round-trips through strings.
    [[nodiscard]] double idf(TermId t) const noexcept {
        return t < idf_.size() ? idf_[t] : 0.0;
    }

    /// Serialize the finalized index — vocabulary, postings, document
    /// lengths, the IDF table — for the binary snapshot path. Requires
    /// finalized(); throws ValidationError otherwise.
    void freeze(util::ByteWriter& w) const;
    /// Inverse of freeze(): an already-finalized index with every derived
    /// table loaded, skipping tokenization and finalize entirely. The
    /// thawed index is bit-identical to the one that was frozen.
    [[nodiscard]] static InvertedIndex thaw(util::ByteReader& r);

private:
    friend class Bm25Scorer;
    friend class TfidfScorer;

    Vocabulary vocab_;
    std::vector<std::vector<Posting>> postings_; // indexed by TermId
    std::vector<double> doc_lengths_;
    std::vector<double> idf_; // rsj_idf per term, filled by finalize()
    double avg_len_ = 0.0;
    bool finalized_ = false;
    DocId current_doc_ = UINT32_MAX;
    // During building: per-document term accumulation buffer.
    std::unordered_map<TermId, float> accum_;
    void flush_accum();
};

/// A scored document hit, with the query terms that matched it (by term
/// id) — the search layer turns these into human-readable evidence.
struct Hit {
    DocId doc;
    double score;
    std::vector<TermId> matched_terms;
};

/// Options for the flat-accumulator scoring kernel (query_kernel on the
/// scorers). Defaults reproduce the reference query() exactly: every
/// gate-passing hit, no truncation, no pruning.
struct KernelOptions {
    /// Keep only the best k hits by (score desc, doc asc); 0 = unlimited.
    std::size_t top_k = 0;
    /// Fused evidence-quality gate: a hit survives only if the summed
    /// rsj_idf of its distinct matched terms reaches this threshold (the
    /// engine's min_evidence_idf, evaluated inside the kernel so the
    /// caller never re-deduplicates matched terms or recomputes IDF).
    double min_evidence_idf = 0.0;
    /// Term-at-a-time max-score pruning (BM25 only; needs top_k > 0):
    /// once the remaining terms' summed score bound cannot beat the
    /// current top-k floor, documents not yet seen are skipped. Exact —
    /// the surviving top-k is identical to the unpruned result.
    bool prune = true;
};

/// Per-query kernel instrumentation (accumulated into AssocMetrics by the
/// search layer).
struct KernelStats {
    std::uint64_t postings_scanned = 0; ///< postings visited across all query terms
    std::uint64_t docs_pruned = 0;      ///< accumulator admissions skipped by max-score
    std::uint64_t hits_gated = 0;       ///< candidates dropped by the evidence gate
    std::uint64_t fallback_queries = 0; ///< queries routed to the reference scorer (>64 terms)
};

/// Okapi BM25 ranking over an InvertedIndex. Holds a const reference to a
/// finalized index; query() / query_kernel() are const and safe for
/// concurrent callers (each kernel caller brings its own QueryScratch).
///
/// query() is the sequential reference implementation — hash-map
/// accumulators, no pruning. query_kernel() is the flat-accumulator
/// kernel the engine runs: identical hits (doc, score, matched terms) by
/// construction, proven by the kernel property tests.
class Bm25Scorer {
public:
    /// Standard BM25 knobs: k1 = term-frequency saturation, b = length
    /// normalization strength.
    struct Params {
        double k1 = 1.2;
        double b = 0.75;
    };

    explicit Bm25Scorer(const InvertedIndex& index) : Bm25Scorer(index, Params{}) {}
    Bm25Scorer(const InvertedIndex& index, Params params);

    /// Rank all documents matching >= 1 query token. Results sorted by
    /// descending score (ties by ascending doc id). Reference semantics.
    [[nodiscard]] std::vector<Hit> query(const std::vector<std::string>& tokens) const;

    /// Flat-accumulator kernel: same ranking as query(), plus the fused
    /// evidence gate, optional top-k truncation, and max-score pruning
    /// (see KernelOptions). matched_terms come back distinct and sorted.
    [[nodiscard]] std::vector<Hit> query_kernel(const std::vector<std::string>& tokens,
                                                QueryScratch& scratch,
                                                const KernelOptions& opts = {},
                                                KernelStats* stats = nullptr) const;

    /// IDF of one term (Robertson–Sparck Jones with +1 smoothing).
    [[nodiscard]] double idf(std::string_view term) const noexcept;

    /// Serialize params plus the constructor-computed tables (per-doc BM25
    /// norms, per-term max-score pruning bounds).
    void freeze(util::ByteWriter& w) const;
    /// Construct over `index` with the tables read back instead of
    /// recomputed — the snapshot thaw path. Throws ValidationError when
    /// the table shapes do not match `index`.
    [[nodiscard]] static Bm25Scorer thaw(const InvertedIndex& index, util::ByteReader& r);

private:
    struct ThawTag {};
    Bm25Scorer(ThawTag, const InvertedIndex& index, util::ByteReader& r);

    const InvertedIndex& index_;
    Params params_;
    // Precomputed at construction so the query loop does no division by
    // avg_doc_length and no per-posting recomputation:
    std::vector<double> norms_;       ///< k1*(1-b+b*len/avg) per doc
    std::vector<double> max_contrib_; ///< max posting contribution per term (pruning bound)
};

/// TF-IDF cosine-similarity ranking (the ablation baseline for BM25).
/// Same concurrency guarantee as Bm25Scorer: const queries over a
/// finalized index.
class TfidfScorer {
public:
    explicit TfidfScorer(const InvertedIndex& index);

    /// Reference semantics (hash-map accumulators, all hits).
    [[nodiscard]] std::vector<Hit> query(const std::vector<std::string>& tokens) const;

    /// Flat-accumulator kernel with fused evidence gate and optional
    /// top-k. Max-score pruning is not applied: per-document cosine
    /// normalization makes partial scores non-monotone bounds, so pruning
    /// could not stay exact (KernelOptions::prune is ignored).
    [[nodiscard]] std::vector<Hit> query_kernel(const std::vector<std::string>& tokens,
                                                QueryScratch& scratch,
                                                const KernelOptions& opts = {},
                                                KernelStats* stats = nullptr) const;

    /// Serialize the constructor-computed tables (doc norms, IDF, per-term
    /// document weights).
    void freeze(util::ByteWriter& w) const;
    /// Construct over `index` with tables read back instead of recomputed.
    [[nodiscard]] static TfidfScorer thaw(const InvertedIndex& index, util::ByteReader& r);

private:
    struct ThawTag {};
    TfidfScorer(ThawTag, const InvertedIndex& index, util::ByteReader& r);

    const InvertedIndex& index_;
    std::vector<double> doc_norms_; // L2 norm of each doc's tf-idf vector
    std::vector<double> idf_;       // log(n/df) per term (0 for empty postings)
    std::vector<std::vector<double>> doc_weights_; // per term, parallel to postings
};

/// Jaccard similarity of two token sets.
[[nodiscard]] double jaccard(const std::vector<std::string>& a, const std::vector<std::string>& b);

} // namespace cybok::text
