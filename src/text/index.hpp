// Vocabulary and inverted index over tokenized documents, plus the two
// ranking functions the search engine offers (BM25 and TF-IDF cosine).
//
// Thread-safety contract (build-then-freeze): an InvertedIndex has two
// phases. During *building* (add_document / add_term) it is single-writer
// and must not be read. After finalize() the index — including its
// Vocabulary — is logically immutable: every remaining operation is const
// and performs no hidden mutation, so any number of threads may query it
// concurrently with no synchronization, provided finalize() happens-before
// the first concurrent read (e.g. via the thread-creation ordering the
// parallel association pipeline uses). The scorers hold const references
// and inherit the same guarantee.
//
// Storage: finalize() compresses the posting lists into a block-compressed
// PostingStore (text/postings.hpp) and the per-doc / per-term tables into
// flat f64 tables. A fresh build owns those bytes; a thawed index *views*
// snapshot slabs in place — either an aligned owned copy or an mmap — so
// thaw does no per-posting work and the resident representation is the
// compressed one in both cases.
//
// Snapshot freeze/thaw extends the contract: freeze() is a const read of a
// finalized index (safe concurrently with queries), and thaw() returns an
// index that is *born finalized* — the build phase never existed for it,
// so the same happens-before rule applies from the moment thaw returns.
// A thawed index must not outlive the slab memory it views.

#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/postings.hpp"
#include "text/scratch.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace cybok::text {

/// Robertson–Spärck Jones IDF with +1 smoothing — the single spelling of
/// the formula shared by BM25 scoring, the engine's evidence-quality gate,
/// and explain() output, so gate and explanation cannot drift.
[[nodiscard]] inline double rsj_idf(double n_docs, double doc_freq) noexcept {
    return std::log(1.0 + (n_docs - doc_freq + 0.5) / (doc_freq + 0.5));
}

/// Transparent string hash so string_view probes into the vocabulary map
/// need not materialize a std::string (the lookup hot path runs once per
/// query token).
struct StringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
        return std::hash<std::string_view>{}(s);
    }
};

/// Bidirectional term <-> dense id mapping. lookup() is const and
/// allocation-free (heterogeneous probe); safe for concurrent readers once
/// interning has stopped (see the file-level thread-safety contract).
class Vocabulary {
public:
    /// Id of `term`, interning it if new.
    TermId intern(std::string_view term);
    /// Id of `term` or kNoTerm when absent (no interning).
    [[nodiscard]] TermId lookup(std::string_view term) const noexcept;
    /// The interned spelling for `id`; throws NotFoundError on a bad id.
    [[nodiscard]] const std::string& term(TermId id) const;
    [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }

    /// Serialize terms in id order; thaw() re-interns them in that order,
    /// so term ids round-trip exactly (snapshot freeze/thaw support).
    void freeze(util::ByteWriter& w) const;
    [[nodiscard]] static Vocabulary thaw(util::ByteReader& r);

private:
    std::unordered_map<std::string, TermId, StringHash, std::equal_to<>> ids_;
    std::vector<std::string> terms_;
};

/// Resident-size and shape accounting for one finalized index (summed
/// across indexes by SearchEngine::index_stats; the bench regression gate
/// watches postings_bytes against uncompressed_postings_bytes).
struct IndexStats {
    std::uint64_t docs = 0;
    std::uint64_t terms = 0;
    std::uint64_t postings = 0;
    std::uint64_t blocks = 0;
    /// Resident bytes of the compressed posting store (term table + block
    /// metadata + packed data).
    std::uint64_t postings_bytes = 0;
    /// Resident bytes of the index's flat f64 tables (doc lengths, IDF).
    std::uint64_t table_bytes = 0;
    /// What the postings would cost uncompressed: 8 bytes per posting
    /// (u32 doc + f32 weight) plus a 24-byte vector header per term — the
    /// resident cost of the pre-block representation, kept as the
    /// compression-ratio baseline.
    std::uint64_t uncompressed_postings_bytes = 0;
    /// True when every index counted serves its postings from external
    /// slab memory (snapshot thaw — an owned aligned copy or an mmap)
    /// rather than bytes it encoded itself.
    bool mapped = false;

    IndexStats& operator+=(const IndexStats& o) noexcept {
        docs += o.docs;
        terms += o.terms;
        postings += o.postings;
        blocks += o.blocks;
        postings_bytes += o.postings_bytes;
        table_bytes += o.table_bytes;
        uncompressed_postings_bytes += o.uncompressed_postings_bytes;
        mapped = mapped && o.mapped;
        return *this;
    }
};

namespace detail {
/// Reject adding a document when `doc_count` documents already exist and
/// the next id would collide with the UINT32_MAX "no current document"
/// sentinel. Throws ValidationError naming the offending count. Factored
/// out of add_document so the overflow contract is unit-testable without
/// actually adding 2^32 documents.
void check_doc_capacity(std::size_t doc_count);
} // namespace detail

/// Inverted index with document length normalization. Documents are added
/// as pre-analyzed token streams; each token may carry a field weight
/// (e.g. title tokens count 3x body tokens). finalize() freezes the index;
/// after that every operation is const and concurrent reads are safe (the
/// build-then-freeze contract at the top of this file).
class InvertedIndex {
public:
    /// Begin a new document; returns its id. Tokens are then accumulated
    /// via add_term until the next add_document call.
    DocId add_document();
    /// Accumulate one token into the current document (build phase only).
    void add_term(std::string_view token, float field_weight = 1.0f);

    /// Convenience: a whole token vector with one weight.
    void add_terms(const std::vector<std::string>& tokens, float field_weight = 1.0f);

    /// Finish building: sorts postings, block-compresses them into the
    /// posting store, computes statistics. Must be called once before any
    /// query; adding after finalize throws. This is the freeze point of
    /// the thread-safety contract: finalize() must happen-before any
    /// concurrent read of this index.
    void finalize();

    /// True once finalize() has run (reads are only legal then).
    [[nodiscard]] bool finalized() const noexcept { return finalized_; }
    /// Number of documents added so far.
    [[nodiscard]] std::size_t doc_count() const noexcept {
        return finalized_ ? doc_lengths_.size() : build_lengths_.size();
    }
    /// Number of distinct terms interned so far.
    [[nodiscard]] std::size_t term_count() const noexcept { return vocab_.size(); }
    /// Mean weighted document length (valid after finalize()).
    [[nodiscard]] double avg_doc_length() const noexcept { return avg_len_; }
    /// The term <-> id mapping backing this index.
    [[nodiscard]] const Vocabulary& vocabulary() const noexcept { return vocab_; }

    /// Number of documents containing the term (0 for unknown terms).
    [[nodiscard]] std::size_t doc_frequency(std::string_view term) const noexcept;
    /// Weighted length of a document.
    [[nodiscard]] double doc_length(DocId d) const;

    /// View of term `t`'s compressed posting list (finalized only; an
    /// empty view for unknown ids). The cheap accessor query loops use.
    [[nodiscard]] ListView list(TermId t) const noexcept { return store_.list(t); }
    /// Materialize term `t`'s postings (tests, explain paths — decodes
    /// every block; not for query hot loops).
    [[nodiscard]] std::vector<Posting> postings(TermId t) const { return decode_postings(list(t)); }
    /// The block-compressed posting storage (finalized only).
    [[nodiscard]] const PostingStore& store() const noexcept { return store_; }
    /// Shape and resident-size accounting (finalized only).
    [[nodiscard]] IndexStats stats() const noexcept;

    /// Precomputed rsj_idf of a term (valid after finalize(); 0 for ids
    /// outside the vocabulary). This is both the BM25 term weight and the
    /// evidence-gate weight — one table, computed once at finalize, so
    /// query() never recomputes a log or round-trips through strings.
    [[nodiscard]] double idf(TermId t) const noexcept {
        return t < idf_.size() ? idf_[t] : 0.0;
    }

    /// Serialize the finalized index: vocabulary and counts into the eager
    /// stream, the posting store and f64 tables as aligned slabs. Requires
    /// finalized(); throws ValidationError otherwise.
    void freeze(util::ByteWriter& w, util::SlabWriter& slabs) const;
    /// Inverse of freeze(): an already-finalized index whose tables *view*
    /// `slabs` in place — no per-posting decode, no table copies. The
    /// thawed index is bit-identical to the one that was frozen and must
    /// not outlive the slab memory. Structural slab validation failures
    /// throw ParseError; shape mismatches throw ValidationError.
    [[nodiscard]] static InvertedIndex thaw(util::ByteReader& r, const util::SlabView& slabs);

private:
    friend class Bm25Scorer;
    friend class TfidfScorer;

    Vocabulary vocab_;
    // Finalized state: compressed postings + flat tables (owned or viewing
    // snapshot slabs — see the storage note at the top of this file).
    PostingStore store_;
    util::F64Table doc_lengths_;
    util::F64Table idf_; // rsj_idf per term, filled by finalize()
    double avg_len_ = 0.0;
    bool finalized_ = false;
    // Build-phase state, discarded by finalize().
    std::vector<std::vector<Posting>> build_postings_; // indexed by TermId
    std::vector<double> build_lengths_;
    DocId current_doc_ = UINT32_MAX;
    std::unordered_map<TermId, float> accum_; // per-document accumulation
    void flush_accum();
};

/// A scored document hit, with the query terms that matched it (by term
/// id, in canonical ascending term-string order) — the search layer turns
/// these into human-readable evidence.
struct Hit {
    DocId doc;
    double score;
    std::vector<TermId> matched_terms;
};

/// Options for the flat-accumulator scoring kernel (query_kernel on the
/// scorers). Defaults reproduce the reference query() exactly: every
/// gate-passing hit, no truncation, no pruning.
struct KernelOptions {
    /// Keep only the best k hits by (score desc, doc asc); 0 = unlimited.
    std::size_t top_k = 0;
    /// Fused evidence-quality gate: a hit survives only if the summed
    /// rsj_idf of its distinct matched terms reaches this threshold (the
    /// engine's min_evidence_idf, evaluated inside the kernel so the
    /// caller never re-deduplicates matched terms or recomputes IDF).
    double min_evidence_idf = 0.0;
    /// Block-Max WAND pruning (BM25 only; needs top_k > 0): documents —
    /// and whole compressed blocks — whose score upper bound cannot beat
    /// the current top-k floor are skipped without decompression. Exact —
    /// the surviving top-k is identical to the unpruned result.
    bool prune = true;
};

/// Per-query kernel instrumentation (accumulated into AssocMetrics by the
/// search layer).
struct KernelStats {
    std::uint64_t postings_scanned = 0; ///< postings actually decoded and scored
    std::uint64_t docs_pruned = 0;      ///< accumulator admissions skipped by pruning
    std::uint64_t hits_gated = 0;       ///< candidates dropped by the evidence gate
    std::uint64_t fallback_queries = 0; ///< queries routed to the reference scorer (>64 terms)
    std::uint64_t blocks_decoded = 0;   ///< posting blocks decompressed
    std::uint64_t blocks_skipped = 0;   ///< posting blocks skipped without decompression
};

/// Okapi BM25 ranking over an InvertedIndex. Holds a const reference to a
/// finalized index; query() / query_kernel() are const and safe for
/// concurrent callers (each kernel caller brings its own QueryScratch).
///
/// query() is the sequential reference implementation — hash-map
/// accumulators, no pruning, every block decoded. query_kernel() is the
/// kernel the engine runs: a term-at-a-time flat-accumulator pass when
/// unpruned, and Block-Max WAND (document-at-a-time with block-granular
/// skipping) when pruning with top-k. Identical hits (doc, score, matched
/// terms) by construction, proven by the kernel property tests and the
/// soak-matrix equality oracle.
class Bm25Scorer {
public:
    /// Standard BM25 knobs: k1 = term-frequency saturation, b = length
    /// normalization strength.
    struct Params {
        double k1 = 1.2;
        double b = 0.75;
    };

    explicit Bm25Scorer(const InvertedIndex& index) : Bm25Scorer(index, Params{}) {}
    Bm25Scorer(const InvertedIndex& index, Params params);

    /// Rank all documents matching >= 1 query token. Results sorted by
    /// descending score (ties by ascending doc id). Reference semantics.
    [[nodiscard]] std::vector<Hit> query(const std::vector<std::string>& tokens) const;

    /// Flat-accumulator kernel: same ranking as query(), plus the fused
    /// evidence gate, optional top-k truncation, and Block-Max WAND
    /// pruning (see KernelOptions). matched_terms come back distinct and
    /// sorted.
    [[nodiscard]] std::vector<Hit> query_kernel(const std::vector<std::string>& tokens,
                                                QueryScratch& scratch,
                                                const KernelOptions& opts = {},
                                                KernelStats* stats = nullptr) const;

    /// IDF of one term (Robertson–Sparck Jones with +1 smoothing).
    [[nodiscard]] double idf(std::string_view term) const noexcept;

    /// The BM25 knobs this scorer was built with (the multi-segment path
    /// must score every segment with the base scorer's parameters).
    [[nodiscard]] const Params& params() const noexcept { return params_; }
    /// Constructor-computed max posting contribution of term `t` under
    /// *this index's own* statistics (0 for ids outside the vocabulary).
    /// The segment layer rescales these into valid bounds under merged
    /// statistics; see text/segments.hpp.
    [[nodiscard]] double max_contribution(TermId t) const noexcept {
        return t < max_contrib_.size() ? max_contrib_[t] : 0.0;
    }
    /// Max contribution of one compressed block, by global block index
    /// (ListView::block_base + local block), under this index's own stats.
    [[nodiscard]] double block_max_bound(std::size_t global_block) const noexcept {
        return global_block < block_max_.size() ? block_max_[global_block] : 0.0;
    }

    /// Serialize params into the eager stream and the constructor-computed
    /// tables (per-doc BM25 norms, per-term and per-block max impact
    /// scores) as aligned slabs.
    void freeze(util::ByteWriter& w, util::SlabWriter& slabs) const;
    /// Construct over `index` with the tables viewed from `slabs` instead
    /// of recomputed — the snapshot thaw path. Throws ValidationError when
    /// the table shapes do not match `index`.
    [[nodiscard]] static Bm25Scorer thaw(const InvertedIndex& index, util::ByteReader& r,
                                         const util::SlabView& slabs);

private:
    struct ThawTag {};
    Bm25Scorer(ThawTag, const InvertedIndex& index, util::ByteReader& r,
               const util::SlabView& slabs);

    std::vector<Hit> query_kernel_bmw(QueryScratch& scratch, const KernelOptions& opts,
                                      KernelStats* stats) const;

    const InvertedIndex& index_;
    Params params_;
    // Precomputed at construction so the query loop does no division by
    // avg_doc_length and no per-posting recomputation:
    util::F64Table norms_;       ///< k1*(1-b+b*len/avg) per doc
    util::F64Table max_contrib_; ///< max posting contribution per term (WAND pivot bound)
    util::F64Table block_max_;   ///< max contribution per block, by global block index
};

/// TF-IDF cosine-similarity ranking (the ablation baseline for BM25).
/// Same concurrency guarantee as Bm25Scorer: const queries over a
/// finalized index.
class TfidfScorer {
public:
    explicit TfidfScorer(const InvertedIndex& index);

    /// Reference semantics (hash-map accumulators, all hits).
    [[nodiscard]] std::vector<Hit> query(const std::vector<std::string>& tokens) const;

    /// Flat-accumulator kernel with fused evidence gate and optional
    /// top-k. Pruning is not applied: per-document cosine normalization
    /// makes partial scores non-monotone bounds, so skipping could not
    /// stay exact (KernelOptions::prune is ignored).
    [[nodiscard]] std::vector<Hit> query_kernel(const std::vector<std::string>& tokens,
                                                QueryScratch& scratch,
                                                const KernelOptions& opts = {},
                                                KernelStats* stats = nullptr) const;

    /// Serialize the constructor-computed tables (doc norms, IDF, the flat
    /// per-posting document weights) as aligned slabs.
    void freeze(util::ByteWriter& w, util::SlabWriter& slabs) const;
    /// Construct over `index` with tables viewed from `slabs` instead of
    /// recomputed.
    [[nodiscard]] static TfidfScorer thaw(const InvertedIndex& index, util::ByteReader& r,
                                          const util::SlabView& slabs);

private:
    struct ThawTag {};
    TfidfScorer(ThawTag, const InvertedIndex& index, util::ByteReader& r,
                const util::SlabView& slabs);

    /// Flat index of posting j of term t inside doc_weights_.
    [[nodiscard]] std::size_t weight_at(TermId t, std::size_t j) const noexcept {
        return weight_begin_[t] + j;
    }
    void build_weight_begin();

    const InvertedIndex& index_;
    util::F64Table doc_norms_;   ///< L2 norm of each doc's tf-idf vector
    util::F64Table idf_;         ///< log(n/df) per term (0 for empty postings)
    util::F64Table doc_weights_; ///< flat per-posting weights, term-major, posting order
    std::vector<std::uint64_t> weight_begin_; ///< doc_weights_ offset per term (derived)
};

/// Jaccard similarity of two token sets.
[[nodiscard]] double jaccard(const std::vector<std::string>& a, const std::vector<std::string>& b);

} // namespace cybok::text
