// Vocabulary and inverted index over tokenized documents, plus the two
// ranking functions the search engine offers (BM25 and TF-IDF cosine).
//
// Thread-safety contract (build-then-freeze): an InvertedIndex has two
// phases. During *building* (add_document / add_term) it is single-writer
// and must not be read. After finalize() the index — including its
// Vocabulary — is logically immutable: every remaining operation is const
// and performs no hidden mutation, so any number of threads may query it
// concurrently with no synchronization, provided finalize() happens-before
// the first concurrent read (e.g. via the thread-creation ordering the
// parallel association pipeline uses). The scorers hold const references
// and inherit the same guarantee.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace cybok::text {

/// Dense id of an interned term within one Vocabulary.
using TermId = std::uint32_t;
/// Dense id of a document within one InvertedIndex.
using DocId = std::uint32_t;
/// Sentinel: term not present in the vocabulary.
inline constexpr TermId kNoTerm = UINT32_MAX;

/// Transparent string hash so string_view probes into the vocabulary map
/// need not materialize a std::string (the lookup hot path runs once per
/// query token).
struct StringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
        return std::hash<std::string_view>{}(s);
    }
};

/// Bidirectional term <-> dense id mapping. lookup() is const and
/// allocation-free (heterogeneous probe); safe for concurrent readers once
/// interning has stopped (see the file-level thread-safety contract).
class Vocabulary {
public:
    /// Id of `term`, interning it if new.
    TermId intern(std::string_view term);
    /// Id of `term` or kNoTerm when absent (no interning).
    [[nodiscard]] TermId lookup(std::string_view term) const noexcept;
    /// The interned spelling for `id`; throws NotFoundError on a bad id.
    [[nodiscard]] const std::string& term(TermId id) const;
    [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }

private:
    std::unordered_map<std::string, TermId, StringHash, std::equal_to<>> ids_;
    std::vector<std::string> terms_;
};

/// One posting: a document and the (weighted) term frequency inside it.
struct Posting {
    DocId doc;
    float weight;
};

/// Inverted index with document length normalization. Documents are added
/// as pre-analyzed token streams; each token may carry a field weight
/// (e.g. title tokens count 3x body tokens). finalize() freezes the index;
/// after that every operation is const and concurrent reads are safe (the
/// build-then-freeze contract at the top of this file).
class InvertedIndex {
public:
    /// Begin a new document; returns its id. Tokens are then accumulated
    /// via add_term until the next add_document call.
    DocId add_document();
    /// Accumulate one token into the current document (build phase only).
    void add_term(std::string_view token, float field_weight = 1.0f);

    /// Convenience: a whole token vector with one weight.
    void add_terms(const std::vector<std::string>& tokens, float field_weight = 1.0f);

    /// Finish building: sorts postings, computes statistics. Must be
    /// called once before any query; adding after finalize throws. This is
    /// the freeze point of the thread-safety contract: finalize() must
    /// happen-before any concurrent read of this index.
    void finalize();

    /// True once finalize() has run (reads are only legal then).
    [[nodiscard]] bool finalized() const noexcept { return finalized_; }
    /// Number of documents added so far.
    [[nodiscard]] std::size_t doc_count() const noexcept { return doc_lengths_.size(); }
    /// Number of distinct terms interned so far.
    [[nodiscard]] std::size_t term_count() const noexcept { return vocab_.size(); }
    /// Mean weighted document length (valid after finalize()).
    [[nodiscard]] double avg_doc_length() const noexcept { return avg_len_; }
    /// The term <-> id mapping backing this index.
    [[nodiscard]] const Vocabulary& vocabulary() const noexcept { return vocab_; }

    /// Number of documents containing the term (0 for unknown terms).
    [[nodiscard]] std::size_t doc_frequency(std::string_view term) const noexcept;
    /// Weighted length of a document.
    [[nodiscard]] double doc_length(DocId d) const;
    [[nodiscard]] const std::vector<Posting>& postings(TermId t) const;

private:
    friend class Bm25Scorer;
    friend class TfidfScorer;

    Vocabulary vocab_;
    std::vector<std::vector<Posting>> postings_; // indexed by TermId
    std::vector<double> doc_lengths_;
    double avg_len_ = 0.0;
    bool finalized_ = false;
    DocId current_doc_ = UINT32_MAX;
    // During building: per-document term accumulation buffer.
    std::unordered_map<TermId, float> accum_;
    void flush_accum();
};

/// A scored document hit, with the query terms that matched it (by term
/// id) — the search layer turns these into human-readable evidence.
struct Hit {
    DocId doc;
    double score;
    std::vector<TermId> matched_terms;
};

/// Okapi BM25 ranking over an InvertedIndex. Holds a const reference to a
/// finalized index; query() is const and safe for concurrent callers.
class Bm25Scorer {
public:
    /// Standard BM25 knobs: k1 = term-frequency saturation, b = length
    /// normalization strength.
    struct Params {
        double k1 = 1.2;
        double b = 0.75;
    };

    explicit Bm25Scorer(const InvertedIndex& index) : Bm25Scorer(index, Params{}) {}
    Bm25Scorer(const InvertedIndex& index, Params params);

    /// Rank all documents matching >= 1 query token. Results sorted by
    /// descending score (ties by ascending doc id).
    [[nodiscard]] std::vector<Hit> query(const std::vector<std::string>& tokens) const;

    /// IDF of one term (Robertson–Sparck Jones with +1 smoothing).
    [[nodiscard]] double idf(std::string_view term) const noexcept;

private:
    const InvertedIndex& index_;
    Params params_;
};

/// TF-IDF cosine-similarity ranking (the ablation baseline for BM25).
/// Same concurrency guarantee as Bm25Scorer: const queries over a
/// finalized index.
class TfidfScorer {
public:
    explicit TfidfScorer(const InvertedIndex& index);

    [[nodiscard]] std::vector<Hit> query(const std::vector<std::string>& tokens) const;

private:
    const InvertedIndex& index_;
    std::vector<double> doc_norms_; // L2 norm of each doc's tf-idf vector
};

/// Jaccard similarity of two token sets.
[[nodiscard]] double jaccard(const std::vector<std::string>& a, const std::vector<std::string>& b);

} // namespace cybok::text
