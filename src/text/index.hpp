// Vocabulary and inverted index over tokenized documents, plus the two
// ranking functions the search engine offers (BM25 and TF-IDF cosine).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace cybok::text {

using TermId = std::uint32_t;
using DocId = std::uint32_t;
inline constexpr TermId kNoTerm = UINT32_MAX;

/// Bidirectional term <-> dense id mapping.
class Vocabulary {
public:
    /// Id of `term`, interning it if new.
    TermId intern(std::string_view term);
    /// Id of `term` or kNoTerm when absent (no interning).
    [[nodiscard]] TermId lookup(std::string_view term) const noexcept;
    [[nodiscard]] const std::string& term(TermId id) const;
    [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }

private:
    std::unordered_map<std::string, TermId> ids_;
    std::vector<std::string> terms_;
};

/// One posting: a document and the (weighted) term frequency inside it.
struct Posting {
    DocId doc;
    float weight;
};

/// Inverted index with document length normalization. Documents are added
/// as pre-analyzed token streams; each token may carry a field weight
/// (e.g. title tokens count 3x body tokens).
class InvertedIndex {
public:
    /// Begin a new document; returns its id. Tokens are then accumulated
    /// via add_term until the next add_document call.
    DocId add_document();
    void add_term(std::string_view token, float field_weight = 1.0f);

    /// Convenience: a whole token vector with one weight.
    void add_terms(const std::vector<std::string>& tokens, float field_weight = 1.0f);

    /// Finish building: sorts postings, computes statistics. Must be
    /// called once before any query; adding after finalize throws.
    void finalize();

    [[nodiscard]] bool finalized() const noexcept { return finalized_; }
    [[nodiscard]] std::size_t doc_count() const noexcept { return doc_lengths_.size(); }
    [[nodiscard]] std::size_t term_count() const noexcept { return vocab_.size(); }
    [[nodiscard]] double avg_doc_length() const noexcept { return avg_len_; }
    [[nodiscard]] const Vocabulary& vocabulary() const noexcept { return vocab_; }

    /// Number of documents containing the term (0 for unknown terms).
    [[nodiscard]] std::size_t doc_frequency(std::string_view term) const noexcept;
    /// Weighted length of a document.
    [[nodiscard]] double doc_length(DocId d) const;
    [[nodiscard]] const std::vector<Posting>& postings(TermId t) const;

private:
    friend class Bm25Scorer;
    friend class TfidfScorer;

    Vocabulary vocab_;
    std::vector<std::vector<Posting>> postings_; // indexed by TermId
    std::vector<double> doc_lengths_;
    double avg_len_ = 0.0;
    bool finalized_ = false;
    DocId current_doc_ = UINT32_MAX;
    // During building: per-document term accumulation buffer.
    std::unordered_map<TermId, float> accum_;
    void flush_accum();
};

/// A scored document hit, with the query terms that matched it (by term
/// id) — the search layer turns these into human-readable evidence.
struct Hit {
    DocId doc;
    double score;
    std::vector<TermId> matched_terms;
};

/// Okapi BM25 ranking over an InvertedIndex.
class Bm25Scorer {
public:
    struct Params {
        double k1 = 1.2;
        double b = 0.75;
    };

    explicit Bm25Scorer(const InvertedIndex& index) : Bm25Scorer(index, Params{}) {}
    Bm25Scorer(const InvertedIndex& index, Params params);

    /// Rank all documents matching >= 1 query token. Results sorted by
    /// descending score (ties by ascending doc id).
    [[nodiscard]] std::vector<Hit> query(const std::vector<std::string>& tokens) const;

    /// IDF of one term (Robertson–Sparck Jones with +1 smoothing).
    [[nodiscard]] double idf(std::string_view term) const noexcept;

private:
    const InvertedIndex& index_;
    Params params_;
};

/// TF-IDF cosine-similarity ranking (the ablation baseline for BM25).
class TfidfScorer {
public:
    explicit TfidfScorer(const InvertedIndex& index);

    [[nodiscard]] std::vector<Hit> query(const std::vector<std::string>& tokens) const;

private:
    const InvertedIndex& index_;
    std::vector<double> doc_norms_; // L2 norm of each doc's tf-idf vector
};

/// Jaccard similarity of two token sets.
[[nodiscard]] double jaccard(const std::vector<std::string>& a, const std::vector<std::string>& b);

} // namespace cybok::text
