// Reusable per-thread scratch memory for the flat-accumulator scoring
// kernel (see the kernel section of docs/ARCHITECTURE.md).
//
// The kernel replaces the per-query hash-map accumulators of the reference
// scorers with dense arrays indexed by DocId. Allocating those arrays per
// query would dominate small queries, so a QueryScratch owns them and is
// reused across queries: begin() bumps an epoch stamp instead of clearing,
// so a query touching m documents costs O(m) regardless of corpus size,
// and steady-state queries allocate nothing once the arrays have grown to
// the largest doc_count seen.
//
// Thread-safety contract: a QueryScratch is single-threaded state — it must
// never be shared between concurrently running queries. Callers either own
// one per worker lane or use tls_query_scratch(), which hands every OS
// thread its own arena. The scorers only read the (immutable, finalized)
// index through it, so any number of threads may run kernel queries
// concurrently as long as each brings its own scratch — exactly the shape
// of the parallel Associator fan-out.

#pragma once

#include <cstdint>
#include <vector>

#include "text/postings.hpp"

namespace cybok::text {

/// Dense per-document accumulators plus the small per-query vectors the
/// kernel needs, all reused across queries (zero-allocation steady state).
class QueryScratch {
public:
    /// Start a new query over an index with `doc_count` documents: grows
    /// the dense arrays if needed and invalidates all previous per-doc
    /// state by bumping the epoch (O(1) amortized; O(doc_count) only on
    /// growth or epoch wrap-around).
    void begin(std::size_t doc_count);

    /// True when `doc` has been touched by the current query.
    [[nodiscard]] bool touched_this_query(std::uint32_t doc) const noexcept {
        return stamp[doc] == epoch;
    }

    // Dense, DocId-indexed; valid for the current query iff stamp[d] == epoch.
    std::vector<double> score;          ///< accumulated (unnormalized) score
    std::vector<double> evidence_idf;   ///< summed RSJ idf of matched query terms
    std::vector<std::uint64_t> term_bits; ///< bit i = matched i-th distinct query term
    std::vector<std::uint32_t> stamp;   ///< epoch stamp (== epoch → entry live)
    std::vector<std::uint32_t> heap_stamp; ///< epoch stamp: doc already in top-k heap

    // Per-query vectors (cleared by begin(), capacity retained).
    std::vector<std::uint32_t> touched; ///< docs with live accumulators, touch order
    std::vector<std::uint32_t> terms;   ///< distinct query TermIds, ascending
    std::vector<double> query_tf;       ///< parallel to terms: query-term frequency
    std::vector<double> bounds;         ///< suffix max-score bounds (pruning)
    std::vector<double> heap;           ///< top-k lower-bound min-heap storage
    std::vector<std::pair<double, std::uint32_t>> candidates; ///< (score, doc) collection

    // Block-Max WAND state (BM25 pruning kernel): one cursor per distinct
    // query term plus per-cursor decode buffers of kBlockDocs entries,
    // grown by ensure_bmw() and reused across queries like everything else
    // here. `order` is the cursor permutation sorted by current doc id.
    std::vector<PostingCursor> cursors;
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> block_docs;  ///< n_terms * kBlockDocs doc buffer
    std::vector<float> block_weights;       ///< n_terms * kBlockDocs weight buffer

    /// Size the BMW cursor arrays for a query with `n_terms` distinct
    /// terms (amortized O(1) once grown).
    void ensure_bmw(std::size_t n_terms) {
        if (cursors.size() < n_terms) cursors.resize(n_terms);
        const std::size_t need = n_terms * kBlockDocs;
        if (block_docs.size() < need) {
            block_docs.resize(need);
            block_weights.resize(need);
        }
        order.clear();
    }

    // Multi-segment kernel state (text/segments.hpp), reused the same way:
    // per-(term, segment) resolved TermIds and, on the pruned path, the
    // per-cursor segment/term/scale metadata parallel to `cursors`.
    std::vector<std::uint32_t> seg_tids;   ///< term-major [n_terms * n_segments]
    std::vector<std::uint32_t> cursor_seg;  ///< segment index per cursor
    std::vector<std::uint32_t> cursor_term; ///< canonical term index per cursor
    std::vector<double> cursor_scale;       ///< block-bound scale per cursor
    std::vector<double> cursor_bound;       ///< scaled term-level max contribution

    std::uint32_t epoch = 0;
};

/// This thread's scratch arena (one per OS thread, created on first use).
/// The parallel Associator's pool threads each get their own, so the
/// engine's query path stays allocation-free in steady state without any
/// locking or API threading of arenas through callers.
[[nodiscard]] QueryScratch& tls_query_scratch();

} // namespace cybok::text
