#include "text/postings.hpp"

#include <algorithm>
#include <cmath>

namespace cybok::text {

namespace {

constexpr std::size_t kBlockHeaderBytes = 2; // u8 count-1, u8 WeightTag

void write_varint(std::string& out, std::uint32_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

std::uint32_t read_varint(const char* data, std::size_t size, std::size_t& i,
                          std::size_t err_base) {
    std::uint32_t v = 0;
    int shift = 0;
    for (;;) {
        if (i >= size)
            throw ParseError("postings: truncated varint in block data", err_base + i);
        const auto byte = static_cast<std::uint8_t>(data[i++]);
        if (shift == 28 && (byte & 0xf0U) != 0)
            throw ParseError("postings: varint overflows 32 bits", err_base + i - 1);
        v |= static_cast<std::uint32_t>(byte & 0x7fU) << shift;
        if ((byte & 0x80U) == 0) return v;
        shift += 7;
    }
}

/// True when `w` is a non-negative integer <= limit that round-trips
/// exactly through the integer encoding (always true below 2^24).
bool integral_weight(float w, std::uint32_t limit) {
    if (!(w >= 0.0f) || w > static_cast<float>(limit)) return false;
    const auto i = static_cast<std::uint32_t>(w);
    return static_cast<float>(i) == w;
}

WeightTag choose_tag(const Posting* p, std::size_t n) {
    bool ones = true, u8 = true, u16 = true;
    for (std::size_t i = 0; i < n; ++i) {
        const float w = p[i].weight;
        ones = ones && w == 1.0f;
        u8 = u8 && integral_weight(w, 255);
        u16 = u16 && integral_weight(w, 65535);
    }
    if (ones) return WeightTag::AllOnes;
    if (u8) return WeightTag::U8;
    if (u16) return WeightTag::U16;
    return WeightTag::F32;
}

} // namespace

PostingStore PostingStore::encode(const std::vector<std::vector<Posting>>& lists,
                                  std::uint32_t n_docs) {
    std::vector<TermEntry> terms;
    std::vector<BlockMeta> blocks;
    std::string data;
    terms.reserve(lists.size());
    std::uint64_t posting_count = 0;

    for (const std::vector<Posting>& plist : lists) {
        TermEntry entry{data.size(), static_cast<std::uint32_t>(blocks.size()),
                        static_cast<std::uint32_t>(plist.size())};
        posting_count += plist.size();
        DocId prev_last = 0;
        for (std::size_t begin = 0; begin < plist.size(); begin += kBlockDocs) {
            const std::size_t n = std::min<std::size_t>(kBlockDocs, plist.size() - begin);
            const Posting* p = plist.data() + begin;
            blocks.push_back(BlockMeta{p[n - 1].doc,
                                       static_cast<std::uint32_t>(data.size() - entry.data_begin)});
            const WeightTag tag = choose_tag(p, n);
            data.push_back(static_cast<char>(n - 1));
            data.push_back(static_cast<char>(tag));
            DocId prev = prev_last;
            for (std::size_t i = 0; i < n; ++i) {
                const DocId doc = p[i].doc;
                if (doc >= n_docs || (doc <= prev && !(begin == 0 && i == 0 && doc == 0)))
                    throw ValidationError("postings: doc ids must be strictly increasing "
                                          "and < doc count");
                write_varint(data, doc - prev);
                prev = doc;
            }
            switch (tag) {
                case WeightTag::AllOnes: break;
                case WeightTag::U8:
                    for (std::size_t i = 0; i < n; ++i)
                        data.push_back(static_cast<char>(static_cast<std::uint32_t>(p[i].weight)));
                    break;
                case WeightTag::U16:
                    for (std::size_t i = 0; i < n; ++i) {
                        const auto w = static_cast<std::uint32_t>(p[i].weight);
                        data.push_back(static_cast<char>(w & 0xff));
                        data.push_back(static_cast<char>(w >> 8));
                    }
                    break;
                case WeightTag::F32:
                    for (std::size_t i = 0; i < n; ++i) {
                        std::uint32_t bits;
                        std::memcpy(&bits, &p[i].weight, sizeof bits);
                        for (int s = 0; s < 32; s += 8)
                            data.push_back(static_cast<char>(bits >> s));
                    }
                    break;
            }
            prev_last = p[n - 1].doc;
        }
        terms.push_back(entry);
    }

    PostingStore store;
    store.n_docs_ = n_docs;
    store.posting_count_ = posting_count;
    store.n_terms_ = terms.size();
    store.n_blocks_ = blocks.size();
    store.data_size_ = data.size();
    const std::size_t term_bytes = terms.size() * sizeof(TermEntry);
    const std::size_t block_bytes = blocks.size() * sizeof(BlockMeta);
    const std::size_t total = term_bytes + block_bytes + data.size();
    if (total == 0) return store;
    // Force the backing onto the heap (past any SSO capacity) so the raw
    // pointers below survive moves of the store.
    store.owned_.reserve(std::max<std::size_t>(total, 64));
    store.owned_.append(reinterpret_cast<const char*>(terms.data()), term_bytes);
    store.owned_.append(reinterpret_cast<const char*>(blocks.data()), block_bytes);
    store.owned_.append(data);
    store.terms_ = reinterpret_cast<const TermEntry*>(store.owned_.data());
    store.blocks_ = reinterpret_cast<const BlockMeta*>(store.owned_.data() + term_bytes);
    store.data_ = store.owned_.data() + term_bytes + block_bytes;
    return store;
}

PostingStore PostingStore::from_slabs(std::string_view terms, std::string_view blocks,
                                      std::string_view data, std::uint32_t n_docs) {
    if (terms.size() % sizeof(TermEntry) != 0)
        throw ParseError("postings: term table size is not a multiple of 16", 0);
    if (blocks.size() % sizeof(BlockMeta) != 0)
        throw ParseError("postings: block table size is not a multiple of 8", 0);
    if (reinterpret_cast<std::uintptr_t>(terms.data()) % alignof(TermEntry) != 0 ||
        reinterpret_cast<std::uintptr_t>(blocks.data()) % alignof(BlockMeta) != 0)
        throw ParseError("postings: slab is misaligned", 0);

    PostingStore store;
    store.n_docs_ = n_docs;
    store.n_terms_ = terms.size() / sizeof(TermEntry);
    store.n_blocks_ = blocks.size() / sizeof(BlockMeta);
    store.data_size_ = data.size();
    store.terms_ = reinterpret_cast<const TermEntry*>(terms.data());
    store.blocks_ = reinterpret_cast<const BlockMeta*>(blocks.data());
    store.data_ = data.data();

    // Structural validation: every derived range below must stay in
    // bounds before list()/decode_block ever dereference it. This is a
    // metadata-only scan — packed data pages are not touched, which is
    // what keeps the mmap cold start at O(page faults taken).
    if (store.n_terms_ == 0) {
        if (store.n_blocks_ != 0 || !data.empty())
            throw ParseError("postings: blocks/data present without terms", 0);
        return store;
    }
    std::uint64_t prev_data = 0;
    std::uint32_t prev_block = 0;
    std::uint64_t postings = 0;
    for (std::size_t t = 0; t < store.n_terms_; ++t) {
        const TermEntry& e = store.terms_[t];
        if (t == 0 && (e.data_begin != 0 || e.block_begin != 0))
            throw ParseError("postings: first term does not start at offset 0", 0);
        if (e.data_begin < prev_data || e.data_begin > data.size())
            throw ParseError("postings: term data offsets are not monotone", t);
        if (e.block_begin < prev_block || e.block_begin > store.n_blocks_)
            throw ParseError("postings: term block offsets are not monotone", t);
        const bool last = t + 1 == store.n_terms_;
        const std::uint32_t block_end =
            last ? static_cast<std::uint32_t>(store.n_blocks_) : store.terms_[t + 1].block_begin;
        const std::uint64_t data_end = last ? data.size() : store.terms_[t + 1].data_begin;
        if (block_end < e.block_begin || data_end < e.data_begin)
            throw ParseError("postings: term ranges overlap", t);
        const std::uint32_t n_blocks_t = block_end - e.block_begin;
        if (n_blocks_t != (e.doc_count + kBlockDocs - 1) / kBlockDocs)
            throw ParseError("postings: block count does not match doc count", t);
        const std::uint64_t region = data_end - e.data_begin;
        DocId prev_last = 0;
        for (std::uint32_t b = 0; b < n_blocks_t; ++b) {
            const BlockMeta& m = store.blocks_[e.block_begin + b];
            const std::uint32_t expect_off =
                b == 0 ? 0 : store.blocks_[e.block_begin + b - 1].data_off;
            if ((b == 0 && m.data_off != 0) || (b > 0 && m.data_off <= expect_off))
                throw ParseError("postings: block data offsets are not increasing", t);
            if (m.data_off + kBlockHeaderBytes > region)
                throw ParseError("postings: block data offset out of range", t);
            if (m.last_doc >= n_docs || (b > 0 && m.last_doc <= prev_last))
                throw ParseError("postings: block last-doc ids are not increasing", t);
            prev_last = m.last_doc;
        }
        postings += e.doc_count;
        prev_data = e.data_begin;
        prev_block = e.block_begin;
    }
    store.posting_count_ = postings;
    return store;
}

ListView PostingStore::list(TermId t) const noexcept {
    if (t >= n_terms_) return {};
    const TermEntry& e = terms_[t];
    const bool last = t + 1 == n_terms_;
    const std::uint32_t block_end =
        last ? static_cast<std::uint32_t>(n_blocks_) : terms_[t + 1].block_begin;
    const std::uint64_t data_end = last ? data_size_ : terms_[t + 1].data_begin;
    ListView lv;
    lv.blocks = blocks_ + e.block_begin;
    lv.n_blocks = block_end - e.block_begin;
    lv.doc_count = e.doc_count;
    lv.block_base = e.block_begin;
    lv.data = data_ + e.data_begin;
    lv.data_size = static_cast<std::size_t>(data_end - e.data_begin);
    return lv;
}

std::size_t decode_block(const ListView& lv, std::uint32_t b, std::uint32_t* docs,
                         float* weights, PostingStats* stats) {
    const std::size_t begin = lv.blocks[b].data_off;
    const std::size_t end = b + 1 < lv.n_blocks ? lv.blocks[b + 1].data_off : lv.data_size;
    if (begin + kBlockHeaderBytes > end || end > lv.data_size)
        throw ParseError("postings: block data range out of bounds", begin);
    const char* p = lv.data;
    std::size_t i = begin;
    const std::size_t n = static_cast<std::uint8_t>(p[i]) + std::size_t{1};
    const auto tag = static_cast<WeightTag>(static_cast<std::uint8_t>(p[i + 1]));
    i += kBlockHeaderBytes;
    const std::size_t expect =
        b + 1 < lv.n_blocks
            ? kBlockDocs
            : lv.doc_count - static_cast<std::size_t>(lv.n_blocks - 1) * kBlockDocs;
    if (n != expect) throw ParseError("postings: block count does not match header", begin);
    if (tag > WeightTag::F32) throw ParseError("postings: unknown weight encoding", begin + 1);

    DocId prev = b == 0 ? 0 : lv.blocks[b - 1].last_doc;
    const bool first_of_list = b == 0;
    for (std::size_t j = 0; j < n; ++j) {
        const std::uint32_t delta = read_varint(p, end, i, 0);
        const DocId doc = prev + delta;
        if (doc < prev || (delta == 0 && !(first_of_list && j == 0)))
            throw ParseError("postings: non-monotone doc delta", i);
        docs[j] = doc;
        prev = doc;
    }
    if (prev != lv.blocks[b].last_doc)
        throw ParseError("postings: decoded last doc does not match block metadata", i);

    switch (tag) {
        case WeightTag::AllOnes:
            std::fill_n(weights, n, 1.0f);
            break;
        case WeightTag::U8:
            if (i + n > end) throw ParseError("postings: truncated u8 weights", end);
            for (std::size_t j = 0; j < n; ++j)
                weights[j] = static_cast<float>(static_cast<std::uint8_t>(p[i + j]));
            i += n;
            break;
        case WeightTag::U16:
            if (i + 2 * n > end) throw ParseError("postings: truncated u16 weights", end);
            for (std::size_t j = 0; j < n; ++j) {
                const auto lo = static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i + 2 * j]));
                const auto hi =
                    static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i + 2 * j + 1]));
                weights[j] = static_cast<float>(lo | (hi << 8));
            }
            i += 2 * n;
            break;
        case WeightTag::F32:
            if (i + 4 * n > end) throw ParseError("postings: truncated f32 weights", end);
            for (std::size_t j = 0; j < n; ++j) {
                std::uint32_t bits = 0;
                for (int s = 0; s < 4; ++s)
                    bits |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i + 4 * j + s]))
                            << (8 * s);
                std::memcpy(&weights[j], &bits, sizeof(float));
            }
            i += 4 * n;
            break;
    }
    if (i != end) throw ParseError("postings: trailing bytes after block", i);
    if (stats != nullptr) {
        ++stats->blocks_decoded;
        stats->postings_decoded += n;
    }
    return n;
}

std::vector<Posting> decode_postings(const ListView& lv) {
    std::vector<Posting> out;
    out.reserve(lv.doc_count);
    for_each_posting(lv, [&out](DocId doc, float w) { out.push_back(Posting{doc, w}); });
    return out;
}

void PostingCursor::reset(const ListView& lv, std::uint32_t* docs, float* weights,
                          PostingStats* stats) {
    lv_ = lv;
    docs_ = docs;
    weights_ = weights;
    stats_ = stats;
    block_ = 0;
    count_ = 0;
    pos_ = 0;
    decoded_ = false;
    doc_ = kNoDocId;
    if (lv_.n_blocks > 0) land_on(0, 0);
}

std::uint32_t PostingCursor::find_block(DocId target) const noexcept {
    std::uint32_t b = block_;
    while (b < lv_.n_blocks && lv_.blocks[b].last_doc < target) ++b;
    return b;
}

void PostingCursor::land_on(std::uint32_t b, DocId target) {
    block_ = b;
    count_ = static_cast<std::uint32_t>(decode_block(lv_, b, docs_, weights_, stats_));
    decoded_ = true;
    pos_ = 0;
    while (docs_[pos_] < target) ++pos_; // last_doc >= target, so in bounds
    doc_ = docs_[pos_];
}

void PostingCursor::seek(DocId target) {
    if (exhausted()) return;
    if (decoded_ && target <= docs_[count_ - 1]) {
        while (docs_[pos_] < target) ++pos_;
        doc_ = docs_[pos_];
        return;
    }
    const std::uint32_t b = find_block(target);
    const std::uint32_t passed = b - block_ - (decoded_ ? 1 : 0);
    if (stats_ != nullptr && b > block_) stats_->blocks_skipped += passed;
    if (b >= lv_.n_blocks) {
        block_ = lv_.n_blocks;
        decoded_ = false;
        doc_ = kNoDocId;
        return;
    }
    land_on(b, target);
}

} // namespace cybok::text
