// Internals shared by the single-index kernel (index.cpp) and the
// multi-segment kernel (segments.cpp): the candidate ordering and the
// gate/top-k/materialize collection pass. One definition, included by
// both, so the two kernels cannot drift in tie-break or gate semantics —
// the segmented path's bit-identity oracle depends on them matching.

#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "text/index.hpp"
#include "text/scratch.hpp"

namespace cybok::text::detail {

/// (score desc, doc asc) — the total order every result list uses.
struct BetterCandidate {
    bool operator()(const std::pair<double, DocId>& a,
                    const std::pair<double, DocId>& b) const noexcept {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
    }
};

/// Gate, top-k-select, and materialize hits from the scratch accumulators.
/// `final_score(doc)` maps an accumulated score to the reported one (BM25:
/// identity; TF-IDF: cosine normalization). Hits carry whatever the caller
/// staged in scratch.terms — TermIds for the single-index kernel,
/// canonical query-term indices for the segmented kernel.
template <typename FinalScore>
std::vector<Hit> collect_hits(QueryScratch& s, const KernelOptions& opts, KernelStats* stats,
                              FinalScore&& final_score) {
    auto& cand = s.candidates;
    std::uint64_t gated = 0;
    for (DocId d : s.touched) {
        if (s.evidence_idf[d] < opts.min_evidence_idf) {
            ++gated;
            continue;
        }
        cand.emplace_back(final_score(d), d);
    }
    if (opts.top_k > 0 && cand.size() > opts.top_k) {
        std::nth_element(cand.begin(),
                         cand.begin() + static_cast<std::ptrdiff_t>(opts.top_k), cand.end(),
                         BetterCandidate{});
        cand.resize(opts.top_k);
    }
    std::sort(cand.begin(), cand.end(), BetterCandidate{});
    std::vector<Hit> hits;
    hits.reserve(cand.size());
    for (const auto& [score, d] : cand) {
        Hit h{d, score, {}};
        std::uint64_t bits = s.term_bits[d];
        h.matched_terms.reserve(static_cast<std::size_t>(std::popcount(bits)));
        while (bits != 0) {
            h.matched_terms.push_back(s.terms[static_cast<std::size_t>(std::countr_zero(bits))]);
            bits &= bits - 1;
        }
        hits.push_back(std::move(h));
    }
    if (stats != nullptr) stats->hits_gated += gated;
    return hits;
}

} // namespace cybok::text::detail
