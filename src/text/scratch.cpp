#include "text/scratch.hpp"

#include <algorithm>

namespace cybok::text {

void QueryScratch::begin(std::size_t doc_count) {
    if (stamp.size() < doc_count) {
        stamp.resize(doc_count, 0);
        heap_stamp.resize(doc_count, 0);
        score.resize(doc_count);
        evidence_idf.resize(doc_count);
        term_bits.resize(doc_count);
    }
    if (++epoch == 0) {
        // Epoch wrapped: stamps surviving from 2^32 queries ago could alias
        // the new epoch. Reset them once and restart from epoch 1.
        std::fill(stamp.begin(), stamp.end(), 0u);
        std::fill(heap_stamp.begin(), heap_stamp.end(), 0u);
        epoch = 1;
    }
    touched.clear();
    terms.clear();
    query_tf.clear();
    bounds.clear();
    heap.clear();
    candidates.clear();
}

QueryScratch& tls_query_scratch() {
    thread_local QueryScratch scratch;
    return scratch;
}

} // namespace cybok::text
