// Tokenization and normalization for the natural-language matching core.
//
// The paper's prototype associates attack vectors to model attributes via
// natural-language matching over MITRE record text; this file provides the
// shared token pipeline: ASCII-fold + lowercase, alphanumeric word
// extraction (model/part numbers like "9063" are kept as tokens — they are
// exactly what distinguishes "NI cRIO 9063" from "NI cRIO 9064"), stopword
// removal, and optional Porter stemming.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cybok::text {

/// Split into lowercase alphanumeric tokens. Characters outside [a-zA-Z0-9]
/// are separators; tokens of length 1 are kept (single letters can be
/// meaningful in product codes).
[[nodiscard]] std::vector<std::string> tokenize(std::string_view s);

/// True for words too common to carry signal (standard English stoplist
/// plus corpus boilerplate like "allows", "via", "could").
[[nodiscard]] bool is_stopword(std::string_view token) noexcept;

/// Remove stopwords in place, preserving order.
void remove_stopwords(std::vector<std::string>& tokens);

/// Porter stemming algorithm (Porter 1980), ASCII-only.
[[nodiscard]] std::string stem(std::string_view word);

/// The full pipeline: tokenize, drop stopwords, stem each survivor.
[[nodiscard]] std::vector<std::string> analyze(std::string_view s, bool use_stemming = true);

/// Contiguous n-grams joined with '_' (n >= 1). Used for phrase features
/// like "command_injection".
[[nodiscard]] std::vector<std::string> ngrams(const std::vector<std::string>& tokens,
                                              std::size_t n);

} // namespace cybok::text
