#include "text/tokenize.hpp"

#include <algorithm>
#include <array>
#include <unordered_set>

namespace cybok::text {

std::vector<std::string> tokenize(std::string_view s) {
    std::vector<std::string> out;
    std::string current;
    for (char c : s) {
        if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
            current.push_back(c);
        } else if (c >= 'A' && c <= 'Z') {
            current.push_back(static_cast<char>(c - 'A' + 'a'));
        } else {
            if (!current.empty()) out.push_back(std::move(current));
            current.clear();
        }
    }
    if (!current.empty()) out.push_back(std::move(current));
    return out;
}

namespace {
const std::unordered_set<std::string_view>& stoplist() {
    static const std::unordered_set<std::string_view> words{
        // Standard English function words.
        "a", "an", "and", "are", "as", "at", "be", "been", "but", "by", "can",
        "do", "does", "for", "from", "had", "has", "have", "if", "in", "into",
        "is", "it", "its", "may", "more", "most", "no", "not", "of", "on",
        "or", "our", "so", "some", "such", "than", "that", "the", "their",
        "then", "there", "these", "they", "this", "those", "through", "to",
        "under", "up", "was", "we", "were", "what", "when", "where", "which",
        "while", "who", "will", "with", "within", "would", "you", "your",
        // Vulnerability-corpus boilerplate that appears in nearly every
        // record and therefore carries no discriminating signal.
        "allows", "allow", "via", "could", "before", "after", "versions",
        "version", "prior", "earlier", "issue", "vulnerability", "attacker",
        "attackers", "remote", "crafted", "certain",
    };
    return words;
}
} // namespace

bool is_stopword(std::string_view token) noexcept {
    return stoplist().contains(token);
}

void remove_stopwords(std::vector<std::string>& tokens) {
    tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                                [](const std::string& t) { return is_stopword(t); }),
                 tokens.end());
}

// ------------------------------------------------------- Porter stemmer

namespace {

bool is_vowel(const std::string& w, std::size_t i) {
    switch (w[i]) {
        case 'a': case 'e': case 'i': case 'o': case 'u': return true;
        case 'y': return i > 0 && !is_vowel(w, i - 1);
        default: return false;
    }
}

// Measure m: number of VC sequences in w[0..end).
int measure(const std::string& w, std::size_t end) {
    int m = 0;
    bool in_vowel = false;
    for (std::size_t i = 0; i < end; ++i) {
        bool v = is_vowel(w, i);
        if (in_vowel && !v) ++m;
        in_vowel = v;
    }
    return m;
}

bool has_vowel(const std::string& w, std::size_t end) {
    for (std::size_t i = 0; i < end; ++i)
        if (is_vowel(w, i)) return true;
    return false;
}

bool ends_double_consonant(const std::string& w) {
    std::size_t n = w.size();
    return n >= 2 && w[n - 1] == w[n - 2] && !is_vowel(w, n - 1);
}

// *o: stem ends cvc where second c is not w, x, or y.
bool ends_cvc(const std::string& w) {
    std::size_t n = w.size();
    if (n < 3) return false;
    if (is_vowel(w, n - 1) || !is_vowel(w, n - 2) || is_vowel(w, n - 3)) return false;
    char c = w[n - 1];
    return c != 'w' && c != 'x' && c != 'y';
}

bool ends_with(const std::string& w, std::string_view suffix) {
    return w.size() >= suffix.size() &&
           std::string_view(w).substr(w.size() - suffix.size()) == suffix;
}

/// If w ends with `suffix` and measure(stem) > m_min, replace suffix.
bool replace_if(std::string& w, std::string_view suffix, std::string_view repl, int m_min) {
    if (!ends_with(w, suffix)) return false;
    std::size_t stem_len = w.size() - suffix.size();
    if (measure(w, stem_len) > m_min) {
        w.resize(stem_len);
        w.append(repl);
    }
    return true; // suffix matched (even if condition failed) — stop scanning
}

} // namespace

std::string stem(std::string_view word) {
    std::string w(word);
    if (w.size() <= 2) return w;

    // Step 1a.
    if (ends_with(w, "sses")) w.resize(w.size() - 2);
    else if (ends_with(w, "ies")) w.resize(w.size() - 2);
    else if (!ends_with(w, "ss") && ends_with(w, "s")) w.resize(w.size() - 1);

    // Step 1b.
    bool step1b_fixup = false;
    if (ends_with(w, "eed")) {
        if (measure(w, w.size() - 3) > 0) w.resize(w.size() - 1);
    } else if (ends_with(w, "ed") && has_vowel(w, w.size() - 2)) {
        w.resize(w.size() - 2);
        step1b_fixup = true;
    } else if (ends_with(w, "ing") && has_vowel(w, w.size() - 3)) {
        w.resize(w.size() - 3);
        step1b_fixup = true;
    }
    if (step1b_fixup) {
        if (ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz")) {
            w.push_back('e');
        } else if (ends_double_consonant(w) && !ends_with(w, "l") && !ends_with(w, "s") &&
                   !ends_with(w, "z")) {
            w.resize(w.size() - 1);
        } else if (measure(w, w.size()) == 1 && ends_cvc(w)) {
            w.push_back('e');
        }
    }

    // Step 1c.
    if (ends_with(w, "y") && has_vowel(w, w.size() - 1)) w[w.size() - 1] = 'i';

    // Step 2.
    static constexpr std::array<std::pair<std::string_view, std::string_view>, 20> step2{{
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
        {"izer", "ize"},    {"abli", "able"},   {"alli", "al"},   {"entli", "ent"},
        {"eli", "e"},       {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"}, {"fulness", "ful"},
        {"ousness", "ous"}, {"aliti", "al"},    {"iviti", "ive"},  {"biliti", "ble"},
    }};
    for (const auto& [suf, rep] : step2)
        if (replace_if(w, suf, rep, 0)) break;

    // Step 3.
    static constexpr std::array<std::pair<std::string_view, std::string_view>, 7> step3{{
        {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},   {"ness", ""},
    }};
    for (const auto& [suf, rep] : step3)
        if (replace_if(w, suf, rep, 0)) break;

    // Step 4.
    static constexpr std::array<std::string_view, 18> step4{
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize"};
    // Longest-match-first: scan explicit ordering of overlapping suffixes.
    static constexpr std::array<std::string_view, 19> step4_ordered{
        "ement", "ance", "ence", "able", "ible", "ment", "ant", "ent", "ism",
        "ate", "iti", "ous", "ive", "ize", "ion", "al", "er", "ic", "ou"};
    (void)step4;
    for (std::string_view suf : step4_ordered) {
        if (!ends_with(w, suf)) continue;
        std::size_t stem_len = w.size() - suf.size();
        if (suf == "ion") {
            if (stem_len > 0 && (w[stem_len - 1] == 's' || w[stem_len - 1] == 't') &&
                measure(w, stem_len) > 1)
                w.resize(stem_len);
        } else if (measure(w, stem_len) > 1) {
            w.resize(stem_len);
        }
        break;
    }

    // Step 5a.
    if (ends_with(w, "e")) {
        std::size_t stem_len = w.size() - 1;
        int m = measure(w, stem_len);
        if (m > 1 || (m == 1 && !ends_cvc(std::string(w.substr(0, stem_len)))))
            w.resize(stem_len);
    }
    // Step 5b.
    if (ends_with(w, "ll") && measure(w, w.size()) > 1) w.resize(w.size() - 1);

    return w;
}

std::vector<std::string> analyze(std::string_view s, bool use_stemming) {
    std::vector<std::string> tokens = tokenize(s);
    remove_stopwords(tokens);
    if (use_stemming)
        for (std::string& t : tokens) t = stem(t);
    return tokens;
}

std::vector<std::string> ngrams(const std::vector<std::string>& tokens, std::size_t n) {
    std::vector<std::string> out;
    if (n == 0 || tokens.size() < n) return out;
    for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
        std::string gram = tokens[i];
        for (std::size_t j = 1; j < n; ++j) {
            gram.push_back('_');
            gram += tokens[i + j];
        }
        out.push_back(std::move(gram));
    }
    return out;
}

} // namespace cybok::text
