#include "text/index.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <limits>

#include "text/kernel_util.hpp"

namespace cybok::text {

TermId Vocabulary::intern(std::string_view term) {
    // Heterogeneous find: no std::string materialized for the probe.
    auto it = ids_.find(term);
    if (it != ids_.end()) return it->second;
    TermId id = static_cast<TermId>(terms_.size());
    terms_.emplace_back(term);
    ids_.emplace(terms_.back(), id);
    return id;
}

TermId Vocabulary::lookup(std::string_view term) const noexcept {
    auto it = ids_.find(term);
    return it == ids_.end() ? kNoTerm : it->second;
}

const std::string& Vocabulary::term(TermId id) const {
    if (id >= terms_.size()) throw NotFoundError("vocabulary: bad term id");
    return terms_[id];
}

namespace detail {

void check_doc_capacity(std::size_t doc_count) {
    // DocId UINT32_MAX is the "no current document" sentinel, so the last
    // usable id is UINT32_MAX - 1. Admitting the 2^32-1-th document would
    // make current_doc_ collide with the sentinel and surface later as a
    // misleading "add_document must be called first" from add_term.
    if (doc_count >= static_cast<std::size_t>(UINT32_MAX))
        throw ValidationError("index full: document count " + std::to_string(doc_count) +
                              " would overflow the 32-bit doc-id space (max " +
                              std::to_string(UINT32_MAX - 1) + " documents)");
}

} // namespace detail

DocId InvertedIndex::add_document() {
    if (finalized_) throw ValidationError("index already finalized");
    detail::check_doc_capacity(build_lengths_.size());
    flush_accum();
    current_doc_ = static_cast<DocId>(build_lengths_.size());
    build_lengths_.push_back(0.0);
    return current_doc_;
}

void InvertedIndex::add_term(std::string_view token, float field_weight) {
    if (finalized_) throw ValidationError("index already finalized");
    if (current_doc_ == UINT32_MAX) throw ValidationError("add_document must be called first");
    TermId t = vocab_.intern(token);
    accum_[t] += field_weight;
    build_lengths_[current_doc_] += field_weight;
}

void InvertedIndex::add_terms(const std::vector<std::string>& tokens, float field_weight) {
    for (const std::string& t : tokens) add_term(t, field_weight);
}

void InvertedIndex::flush_accum() {
    if (current_doc_ == UINT32_MAX || accum_.empty()) {
        accum_.clear();
        return;
    }
    if (build_postings_.size() < vocab_.size()) build_postings_.resize(vocab_.size());
    for (const auto& [term, weight] : accum_)
        build_postings_[term].push_back(Posting{current_doc_, weight});
    accum_.clear();
}

void InvertedIndex::finalize() {
    if (finalized_) throw ValidationError("index already finalized");
    flush_accum();
    if (build_postings_.size() < vocab_.size()) build_postings_.resize(vocab_.size());
    for (auto& plist : build_postings_)
        std::sort(plist.begin(), plist.end(),
                  [](const Posting& a, const Posting& b) { return a.doc < b.doc; });
    double total = 0.0;
    for (double len : build_lengths_) total += len;
    avg_len_ = build_lengths_.empty() ? 0.0 : total / static_cast<double>(build_lengths_.size());
    // One IDF table for BM25 scoring and the evidence gate: computed here
    // so no query ever recomputes a log or resolves a term string again.
    const double n = static_cast<double>(build_lengths_.size());
    std::vector<double> idf(build_postings_.size());
    for (TermId t = 0; t < build_postings_.size(); ++t)
        idf[t] = rsj_idf(n, static_cast<double>(build_postings_[t].size()));
    store_ = PostingStore::encode(build_postings_, static_cast<std::uint32_t>(n));
    doc_lengths_ = util::F64Table::own(std::move(build_lengths_));
    idf_ = util::F64Table::own(std::move(idf));
    build_postings_.clear();
    build_postings_.shrink_to_fit();
    build_lengths_ = {};
    finalized_ = true;
}

std::size_t InvertedIndex::doc_frequency(std::string_view term) const noexcept {
    TermId t = vocab_.lookup(term);
    if (t == kNoTerm) return 0;
    if (finalized_) return store_.list(t).doc_count;
    return t < build_postings_.size() ? build_postings_[t].size() : 0;
}

double InvertedIndex::doc_length(DocId d) const {
    if (d >= doc_count()) throw NotFoundError("index: bad doc id");
    return finalized_ ? doc_lengths_[d] : build_lengths_[d];
}

IndexStats InvertedIndex::stats() const noexcept {
    IndexStats s;
    s.docs = doc_count();
    s.terms = term_count();
    s.postings = store_.posting_count();
    s.blocks = store_.block_count();
    s.postings_bytes = store_.byte_size();
    s.table_bytes = (doc_lengths_.size() + idf_.size()) * sizeof(double);
    s.uncompressed_postings_bytes =
        8 * store_.posting_count() + 24 * static_cast<std::uint64_t>(store_.term_count());
    s.mapped = !store_.owning();
    return s;
}

// ------------------------------------------------------------ freeze/thaw

void Vocabulary::freeze(util::ByteWriter& w) const {
    w.u32(static_cast<std::uint32_t>(terms_.size()));
    for (const std::string& t : terms_) w.str(t);
}

Vocabulary Vocabulary::thaw(util::ByteReader& r) {
    Vocabulary v;
    const std::uint32_t n = r.u32();
    v.terms_.reserve(n);
    v.ids_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        v.terms_.push_back(r.str());
        v.ids_.emplace(v.terms_.back(), static_cast<TermId>(i));
    }
    return v;
}

void InvertedIndex::freeze(util::ByteWriter& w, util::SlabWriter& slabs) const {
    if (!finalized_) throw ValidationError("freeze requires a finalized index");
    vocab_.freeze(w);
    w.u32(static_cast<std::uint32_t>(doc_count()));
    w.f64(avg_len_);
    // The big tables go out as aligned slabs, byte-identical to the
    // resident representation, so thaw can view them in place.
    util::write_slab_ref(w, slabs.add(doc_lengths_.bytes()));
    util::write_slab_ref(w, slabs.add(idf_.bytes()));
    util::write_slab_ref(w, slabs.add(store_.term_bytes()));
    util::write_slab_ref(w, slabs.add(store_.block_bytes()));
    util::write_slab_ref(w, slabs.add(store_.data_bytes()));
}

InvertedIndex InvertedIndex::thaw(util::ByteReader& r, const util::SlabView& slabs) {
    InvertedIndex index;
    index.vocab_ = Vocabulary::thaw(r);
    const std::uint32_t n_docs = r.u32();
    index.avg_len_ = r.f64();
    index.doc_lengths_ = util::F64Table::view(slabs.slice(util::read_slab_ref(r)));
    index.idf_ = util::F64Table::view(slabs.slice(util::read_slab_ref(r)));
    const std::string_view terms = slabs.slice(util::read_slab_ref(r));
    const std::string_view blocks = slabs.slice(util::read_slab_ref(r));
    const std::string_view data = slabs.slice(util::read_slab_ref(r));
    if (index.doc_lengths_.size() != n_docs || index.idf_.size() != index.vocab_.size())
        throw ValidationError("index snapshot: table sizes do not match vocabulary");
    index.store_ = PostingStore::from_slabs(terms, blocks, data, n_docs);
    if (index.store_.term_count() != index.vocab_.size())
        throw ValidationError("index snapshot: posting store does not match vocabulary");
    index.finalized_ = true;
    return index;
}

// ---------------------------------------------------------------- kernel

namespace {

/// Resolve tokens to distinct TermIds with query-term frequencies, into
/// the scratch arena, in ascending term-*string* order. The order is the
/// canonical accumulation order: reference scorers, both kernels, and the
/// multi-segment path (text/segments.hpp) all add per-document
/// contributions in it, which is what makes their sums bitwise identical.
/// Term strings — not TermIds — because ids depend on corpus interning
/// order, while the string order is corpus-independent: an engine built
/// from scratch over a merged corpus and a segmented engine over
/// base + deltas agree on it, so their floating-point sums agree too.
void collect_query_terms(const InvertedIndex& index, const std::vector<std::string>& tokens,
                         QueryScratch& s) {
    for (const std::string& tok : tokens) {
        TermId t = index.vocabulary().lookup(tok);
        if (t != kNoTerm) s.terms.push_back(t);
    }
    const Vocabulary& vocab = index.vocabulary();
    std::sort(s.terms.begin(), s.terms.end(),
              [&vocab](TermId a, TermId b) { return vocab.term(a) < vocab.term(b); });
    std::size_t out = 0;
    for (std::size_t i = 0; i < s.terms.size();) {
        std::size_t j = i;
        while (j < s.terms.size() && s.terms[j] == s.terms[i]) ++j;
        s.terms[out++] = s.terms[i];
        s.query_tf.push_back(static_cast<double>(j - i));
        i = j;
    }
    s.terms.resize(out);
}

using detail::collect_hits;

/// Fallback for queries with more than 64 distinct terms (the per-doc
/// matched-term bitset is a single word): run the reference scorer, then
/// apply the same gate / dedup / top-k semantics the kernel fuses in.
std::vector<Hit> apply_kernel_semantics(std::vector<Hit> hits, const InvertedIndex& index,
                                        const KernelOptions& opts, KernelStats* stats) {
    if (stats != nullptr) ++stats->fallback_queries;
    std::vector<Hit> out;
    out.reserve(hits.size());
    const Vocabulary& vocab = index.vocabulary();
    for (Hit& h : hits) {
        // Canonical ascending-string order (see collect_query_terms).
        std::sort(h.matched_terms.begin(), h.matched_terms.end(),
                  [&vocab](TermId a, TermId b) { return vocab.term(a) < vocab.term(b); });
        h.matched_terms.erase(std::unique(h.matched_terms.begin(), h.matched_terms.end()),
                              h.matched_terms.end());
        double evidence = 0.0;
        for (TermId t : h.matched_terms) evidence += index.idf(t);
        if (evidence < opts.min_evidence_idf) {
            if (stats != nullptr) ++stats->hits_gated;
            continue;
        }
        out.push_back(std::move(h));
    }
    // Reference hits are already (score desc, doc asc)-sorted.
    if (opts.top_k > 0 && out.size() > opts.top_k) out.resize(opts.top_k);
    return out;
}

} // namespace

// ----------------------------------------------------------------- BM25

Bm25Scorer::Bm25Scorer(const InvertedIndex& index, Params params)
    : index_(index), params_(params) {
    if (!index.finalized()) throw ValidationError("BM25 requires a finalized index");
    // Per-doc length norms plus per-term and per-block max impact scores,
    // precomputed once so query_kernel's inner loop is a multiply-add over
    // flat arrays and Block-Max WAND can bound whole blocks.
    const double avg = std::max(index.avg_doc_length(), 1e-9);
    std::vector<double> norms(index.doc_count());
    for (DocId d = 0; d < norms.size(); ++d)
        norms[d] = params_.k1 * (1.0 - params_.b +
                                 params_.b * index.doc_length(d) / avg);
    std::vector<double> max_contrib(index.term_count(), 0.0);
    std::vector<double> block_max(index.store().block_count(), 0.0);
    std::uint32_t docs[kBlockDocs];
    float weights[kBlockDocs];
    for (TermId t = 0; t < index.term_count(); ++t) {
        const double idf_t = index.idf(t);
        const ListView lv = index.list(t);
        for (std::uint32_t b = 0; b < lv.n_blocks; ++b) {
            const std::size_t n = decode_block(lv, b, docs, weights);
            double m = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const double tf = weights[i];
                const double contrib =
                    idf_t * (tf * (params_.k1 + 1.0)) / (tf + norms[docs[i]]);
                m = std::max(m, contrib);
            }
            block_max[lv.block_base + b] = m;
            max_contrib[t] = std::max(max_contrib[t], m);
        }
    }
    norms_ = util::F64Table::own(std::move(norms));
    max_contrib_ = util::F64Table::own(std::move(max_contrib));
    block_max_ = util::F64Table::own(std::move(block_max));
}

Bm25Scorer::Bm25Scorer(ThawTag, const InvertedIndex& index, util::ByteReader& r,
                       const util::SlabView& slabs)
    : index_(index) {
    params_.k1 = r.f64();
    params_.b = r.f64();
    norms_ = util::F64Table::view(slabs.slice(util::read_slab_ref(r)));
    max_contrib_ = util::F64Table::view(slabs.slice(util::read_slab_ref(r)));
    block_max_ = util::F64Table::view(slabs.slice(util::read_slab_ref(r)));
    if (norms_.size() != index.doc_count() || max_contrib_.size() != index.term_count() ||
        block_max_.size() != index.store().block_count())
        throw ValidationError("BM25 snapshot: table sizes do not match index");
}

void Bm25Scorer::freeze(util::ByteWriter& w, util::SlabWriter& slabs) const {
    w.f64(params_.k1);
    w.f64(params_.b);
    util::write_slab_ref(w, slabs.add(norms_.bytes()));
    util::write_slab_ref(w, slabs.add(max_contrib_.bytes()));
    util::write_slab_ref(w, slabs.add(block_max_.bytes()));
}

Bm25Scorer Bm25Scorer::thaw(const InvertedIndex& index, util::ByteReader& r,
                            const util::SlabView& slabs) {
    return Bm25Scorer(ThawTag{}, index, r, slabs);
}

double Bm25Scorer::idf(std::string_view term) const noexcept {
    TermId t = index_.vocabulary().lookup(term);
    if (t == kNoTerm) return rsj_idf(static_cast<double>(index_.doc_count()), 0.0);
    return index_.idf(t);
}

std::vector<Hit> Bm25Scorer::query(const std::vector<std::string>& tokens) const {
    // Deduplicate query terms; repeated query terms in short attribute
    // strings should not double-count. Iterated in the canonical ascending
    // term-string order so per-document sums are bit-identical to the
    // kernel (see collect_query_terms).
    std::vector<TermId> terms;
    for (const std::string& tok : tokens) {
        TermId t = index_.vocab_.lookup(tok);
        if (t != kNoTerm) terms.push_back(t);
    }
    std::sort(terms.begin(), terms.end(), [this](TermId a, TermId b) {
        return index_.vocab_.term(a) < index_.vocab_.term(b);
    });
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    std::unordered_map<DocId, Hit> acc;
    for (TermId t : terms) {
        const double idf_t = index_.idf(t);
        for_each_posting(index_.list(t), [&](DocId d, float w) {
            const double tf = w;
            const double contrib = idf_t * (tf * (params_.k1 + 1.0)) / (tf + norms_[d]);
            Hit& h = acc.try_emplace(d, Hit{d, 0.0, {}}).first->second;
            h.score += contrib;
            h.matched_terms.push_back(t);
        });
    }
    std::vector<Hit> hits;
    hits.reserve(acc.size());
    for (auto& [_, h] : acc) hits.push_back(std::move(h));
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.doc < b.doc;
    });
    return hits;
}

std::vector<Hit> Bm25Scorer::query_kernel(const std::vector<std::string>& tokens,
                                          QueryScratch& scratch, const KernelOptions& opts,
                                          KernelStats* stats) const {
    scratch.begin(index_.doc_count());
    collect_query_terms(index_, tokens, scratch);
    const auto& terms = scratch.terms;
    if (terms.empty()) return {};
    if (terms.size() > 64) return apply_kernel_semantics(query(tokens), index_, opts, stats);
    if (opts.prune && opts.top_k > 0) return query_kernel_bmw(scratch, opts, stats);

    // Unpruned path: term-at-a-time over every block, in the reference
    // accumulation order (ascending term, ascending doc) — bit-identical
    // sums by construction.
    const double k1 = params_.k1;
    PostingStats pstats;
    std::uint32_t docs[kBlockDocs];
    float weights[kBlockDocs];
    for (std::size_t i = 0; i < terms.size(); ++i) {
        const TermId t = terms[i];
        const double idf_t = index_.idf(t);
        const std::uint64_t bit = std::uint64_t{1} << i;
        const ListView lv = index_.list(t);
        for (std::uint32_t b = 0; b < lv.n_blocks; ++b) {
            const std::size_t n = decode_block(lv, b, docs, weights, &pstats);
            for (std::size_t j = 0; j < n; ++j) {
                const DocId d = docs[j];
                const double tf = weights[j];
                const double contrib = idf_t * (tf * (k1 + 1.0)) / (tf + norms_[d]);
                if (scratch.stamp[d] == scratch.epoch) {
                    scratch.score[d] += contrib;
                    scratch.evidence_idf[d] += idf_t;
                    scratch.term_bits[d] |= bit;
                } else {
                    scratch.stamp[d] = scratch.epoch;
                    scratch.score[d] = contrib;
                    scratch.evidence_idf[d] = idf_t;
                    scratch.term_bits[d] = bit;
                    scratch.touched.push_back(d);
                }
            }
        }
    }
    if (stats != nullptr) {
        stats->postings_scanned += pstats.postings_decoded;
        stats->blocks_decoded += pstats.blocks_decoded;
        stats->blocks_skipped += pstats.blocks_skipped;
    }
    return collect_hits(scratch, opts, stats,
                        [&scratch](DocId d) { return scratch.score[d]; });
}

std::vector<Hit> Bm25Scorer::query_kernel_bmw(QueryScratch& scratch, const KernelOptions& opts,
                                              KernelStats* stats) const {
    // Block-Max WAND: document-at-a-time with two-level pruning. The
    // term-level max scores pick a pivot document (no prefix of cursors
    // whose summed bound is strictly below the top-k floor can contain a
    // top-k document — strict, so ties can never be wrongly skipped); the
    // per-block max scores then either confirm the pivot is worth decoding
    // or certify a whole doc-id range — and the compressed blocks covering
    // it — as skippable. Every evaluated document's score is accumulated
    // in ascending-term order starting from 0.0, which reproduces the
    // reference sums bit-for-bit (contributions are positive, 0 + x == x),
    // and the surviving candidates flow through the same gate/top-k
    // collection as the unpruned path, so the result is exactly the
    // unpruned top-k.
    const auto& terms = scratch.terms;
    const std::size_t n_terms = terms.size();
    const std::size_t k = opts.top_k;
    const double k1 = params_.k1;
    scratch.ensure_bmw(n_terms);
    PostingStats pstats;
    auto& cursors = scratch.cursors;
    auto& order = scratch.order;
    for (std::size_t i = 0; i < n_terms; ++i) {
        cursors[i].reset(index_.list(terms[i]), scratch.block_docs.data() + i * kBlockDocs,
                         scratch.block_weights.data() + i * kBlockDocs, &pstats);
        if (!cursors[i].exhausted()) order.push_back(static_cast<std::uint32_t>(i));
    }

    auto& heap = scratch.heap; // min-heap of top-k gate-passing scores
    double theta = -std::numeric_limits<double>::infinity();
    std::uint64_t pruned = 0;
    while (!order.empty()) {
        std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
            const DocId da = cursors[a].doc(), db = cursors[b].doc();
            if (da != db) return da < db;
            return a < b;
        });
        // Pivot: shortest prefix whose term-level bound can reach theta.
        double ub = 0.0;
        std::size_t p = 0;
        bool found = false;
        for (; p < order.size(); ++p) {
            ub += max_contrib_[terms[order[p]]];
            if (ub >= theta) {
                found = true;
                break;
            }
        }
        if (!found) break; // no remaining document can reach the floor
        const DocId pivot = cursors[order[p]].doc();
        while (p + 1 < order.size() && cursors[order[p + 1]].doc() == pivot) ++p;

        // Block-level refinement: bound the pivot by the max scores of the
        // blocks that would actually supply its contributions (metadata
        // only — nothing is decompressed here).
        double block_ub = 0.0;
        DocId min_boundary = kNoDocId;
        for (std::size_t i = 0; i <= p; ++i) {
            const PostingCursor& c = cursors[order[i]];
            const std::uint32_t b = c.find_block(pivot);
            if (b >= c.n_blocks()) continue; // list ends before the pivot
            block_ub += block_max_[c.block_base() + b];
            min_boundary = std::min(min_boundary, c.last_doc_of(b));
        }

        if (block_ub >= theta) {
            // Evaluate the pivot exactly.
            for (std::size_t i = 0; i <= p; ++i) cursors[order[i]].seek(pivot);
            double score = 0.0, evidence = 0.0;
            std::uint64_t bits = 0;
            for (std::size_t i = 0; i < n_terms; ++i) {
                const PostingCursor& c = cursors[i];
                if (c.exhausted() || c.doc() != pivot) continue;
                const double tf = c.weight();
                const double idf_t = index_.idf(terms[i]);
                score += idf_t * (tf * (k1 + 1.0)) / (tf + norms_[pivot]);
                evidence += idf_t;
                bits |= std::uint64_t{1} << i;
            }
            scratch.stamp[pivot] = scratch.epoch;
            scratch.score[pivot] = score;
            scratch.evidence_idf[pivot] = evidence;
            scratch.term_bits[pivot] = bits;
            scratch.touched.push_back(pivot);
            if (evidence >= opts.min_evidence_idf) {
                // Exact scores (not partial lower bounds) feed the floor,
                // so theta is the true k-th best gate-passing score so far.
                heap.push_back(score);
                std::push_heap(heap.begin(), heap.end(), std::greater<>{});
                if (heap.size() > k) {
                    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
                    heap.pop_back();
                }
                if (heap.size() == k) theta = heap.front();
            }
            for (std::size_t i = 0; i <= p; ++i) {
                PostingCursor& c = cursors[order[i]];
                if (!c.exhausted() && c.doc() == pivot) c.seek(pivot + 1);
            }
        } else {
            // Every document in [pivot, min_boundary] draws its possible
            // contributions from exactly the blocks bounded above (earlier
            // blocks end before the pivot), so the whole range is below
            // theta. Jump past it, but never past the first cursor outside
            // the pivot prefix.
            ++pruned;
            DocId target = min_boundary == kNoDocId ? kNoDocId : min_boundary + 1;
            if (p + 1 < order.size()) target = std::min(target, cursors[order[p + 1]].doc());
            for (std::size_t i = 0; i <= p; ++i) cursors[order[i]].seek(target);
        }
        order.erase(std::remove_if(order.begin(), order.end(),
                                   [&](std::uint32_t i) { return cursors[i].exhausted(); }),
                    order.end());
    }
    // Cursors left standing when the loop exits were abandoned by the
    // term-level bound: no document they still cover can reach theta, so
    // their undecoded tails are blocks skipped without decompression.
    for (std::size_t i = 0; i < n_terms; ++i) pstats.blocks_skipped += cursors[i].undecoded_tail();
    if (stats != nullptr) {
        stats->postings_scanned += pstats.postings_decoded;
        stats->blocks_decoded += pstats.blocks_decoded;
        stats->blocks_skipped += pstats.blocks_skipped;
        stats->docs_pruned += pruned; // pivot documents proven below the floor
    }
    return collect_hits(scratch, opts, stats,
                        [&scratch](DocId d) { return scratch.score[d]; });
}

// --------------------------------------------------------------- TF-IDF

void TfidfScorer::build_weight_begin() {
    weight_begin_.resize(index_.term_count());
    std::uint64_t at = 0;
    for (TermId t = 0; t < weight_begin_.size(); ++t) {
        weight_begin_[t] = at;
        at += index_.list(t).doc_count;
    }
}

TfidfScorer::TfidfScorer(const InvertedIndex& index) : index_(index) {
    if (!index.finalized()) throw ValidationError("TF-IDF requires a finalized index");
    const double n = static_cast<double>(index.doc_count());
    std::vector<double> doc_norms(index.doc_count(), 0.0);
    std::vector<double> idf(index.term_count(), 0.0);
    std::vector<double> weights;
    weights.reserve(index.store().posting_count());
    for (TermId t = 0; t < index.term_count(); ++t) {
        const ListView lv = index.list(t);
        if (lv.empty()) continue;
        const double idf_t = std::log(n / static_cast<double>(lv.doc_count));
        idf[t] = idf_t;
        for_each_posting(lv, [&](DocId d, float tf) {
            const double w = (1.0 + std::log(std::max<double>(tf, 1e-9))) * idf_t;
            weights.push_back(w);
            doc_norms[d] += w * w;
        });
    }
    for (double& norm : doc_norms) norm = std::sqrt(norm);
    doc_norms_ = util::F64Table::own(std::move(doc_norms));
    idf_ = util::F64Table::own(std::move(idf));
    doc_weights_ = util::F64Table::own(std::move(weights));
    build_weight_begin();
}

TfidfScorer::TfidfScorer(ThawTag, const InvertedIndex& index, util::ByteReader& r,
                         const util::SlabView& slabs)
    : index_(index) {
    doc_norms_ = util::F64Table::view(slabs.slice(util::read_slab_ref(r)));
    idf_ = util::F64Table::view(slabs.slice(util::read_slab_ref(r)));
    doc_weights_ = util::F64Table::view(slabs.slice(util::read_slab_ref(r)));
    if (doc_norms_.size() != index.doc_count() || idf_.size() != index.term_count() ||
        doc_weights_.size() != index.store().posting_count())
        throw ValidationError("TF-IDF snapshot: table sizes do not match index");
    build_weight_begin();
}

void TfidfScorer::freeze(util::ByteWriter& w, util::SlabWriter& slabs) const {
    util::write_slab_ref(w, slabs.add(doc_norms_.bytes()));
    util::write_slab_ref(w, slabs.add(idf_.bytes()));
    util::write_slab_ref(w, slabs.add(doc_weights_.bytes()));
}

TfidfScorer TfidfScorer::thaw(const InvertedIndex& index, util::ByteReader& r,
                              const util::SlabView& slabs) {
    return TfidfScorer(ThawTag{}, index, r, slabs);
}

std::vector<Hit> TfidfScorer::query(const std::vector<std::string>& tokens) const {
    // Query-term frequencies in canonical ascending term-string order —
    // deterministic, and the same accumulation order as the kernel.
    std::vector<std::pair<TermId, double>> qtf;
    {
        std::vector<TermId> ids;
        for (const std::string& tok : tokens) {
            TermId t = index_.vocab_.lookup(tok);
            if (t != kNoTerm) ids.push_back(t);
        }
        std::sort(ids.begin(), ids.end(), [this](TermId a, TermId b) {
            return index_.vocab_.term(a) < index_.vocab_.term(b);
        });
        for (std::size_t i = 0; i < ids.size();) {
            std::size_t j = i;
            while (j < ids.size() && ids[j] == ids[i]) ++j;
            qtf.emplace_back(ids[i], static_cast<double>(j - i));
            i = j;
        }
    }
    double qnorm = 0.0;
    std::unordered_map<DocId, Hit> acc;
    for (const auto& [t, tf] : qtf) {
        const ListView lv = index_.list(t);
        if (lv.empty()) continue;
        const double qw = (1.0 + std::log(tf)) * idf_[t];
        qnorm += qw * qw;
        std::size_t j = weight_begin_[t];
        for_each_posting(lv, [&](DocId d, float) {
            Hit& h = acc.try_emplace(d, Hit{d, 0.0, {}}).first->second;
            h.score += qw * doc_weights_[j++];
            h.matched_terms.push_back(t);
        });
    }
    qnorm = std::sqrt(qnorm);
    std::vector<Hit> hits;
    hits.reserve(acc.size());
    for (auto& [doc, h] : acc) {
        const double denom = qnorm * doc_norms_[doc];
        h.score = denom > 0.0 ? h.score / denom : 0.0;
        hits.push_back(std::move(h));
    }
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.doc < b.doc;
    });
    return hits;
}

std::vector<Hit> TfidfScorer::query_kernel(const std::vector<std::string>& tokens,
                                           QueryScratch& scratch, const KernelOptions& opts,
                                           KernelStats* stats) const {
    scratch.begin(index_.doc_count());
    collect_query_terms(index_, tokens, scratch);
    const auto& terms = scratch.terms;
    if (terms.empty()) return {};
    if (terms.size() > 64) return apply_kernel_semantics(query(tokens), index_, opts, stats);

    double qnorm = 0.0;
    PostingStats pstats;
    std::uint32_t docs[kBlockDocs];
    float weights[kBlockDocs];
    for (std::size_t i = 0; i < terms.size(); ++i) {
        const TermId t = terms[i];
        const ListView lv = index_.list(t);
        if (lv.empty()) continue;
        const double qw = (1.0 + std::log(scratch.query_tf[i])) * idf_[t];
        qnorm += qw * qw;
        const double gate_idf = index_.idf(t); // evidence gate uses rsj_idf
        const std::uint64_t bit = std::uint64_t{1} << i;
        std::size_t w_at = weight_begin_[t];
        for (std::uint32_t b = 0; b < lv.n_blocks; ++b) {
            const std::size_t n = decode_block(lv, b, docs, weights, &pstats);
            for (std::size_t j = 0; j < n; ++j) {
                const DocId d = docs[j];
                const double contrib = qw * doc_weights_[w_at++];
                if (scratch.stamp[d] == scratch.epoch) {
                    scratch.score[d] += contrib;
                    scratch.evidence_idf[d] += gate_idf;
                    scratch.term_bits[d] |= bit;
                } else {
                    scratch.stamp[d] = scratch.epoch;
                    scratch.score[d] = contrib;
                    scratch.evidence_idf[d] = gate_idf;
                    scratch.term_bits[d] = bit;
                    scratch.touched.push_back(d);
                }
            }
        }
    }
    if (stats != nullptr) {
        stats->postings_scanned += pstats.postings_decoded;
        stats->blocks_decoded += pstats.blocks_decoded;
        stats->blocks_skipped += pstats.blocks_skipped;
    }
    qnorm = std::sqrt(qnorm);
    return collect_hits(scratch, opts, stats, [&](DocId d) {
        const double denom = qnorm * doc_norms_[d];
        return denom > 0.0 ? scratch.score[d] / denom : 0.0;
    });
}

double jaccard(const std::vector<std::string>& a, const std::vector<std::string>& b) {
    // Sorted-vector set intersection: the token vectors are small and the
    // old std::set version paid one node allocation per distinct token.
    std::vector<std::string_view> sa(a.begin(), a.end());
    std::vector<std::string_view> sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
    std::sort(sb.begin(), sb.end());
    sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
    if (sa.empty() && sb.empty()) return 1.0;
    std::size_t inter = 0;
    for (std::size_t i = 0, j = 0; i < sa.size() && j < sb.size();) {
        if (sa[i] < sb[j]) {
            ++i;
        } else if (sb[j] < sa[i]) {
            ++j;
        } else {
            ++inter;
            ++i;
            ++j;
        }
    }
    const std::size_t uni = sa.size() + sb.size() - inter;
    return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

} // namespace cybok::text
