#include "text/index.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <limits>
#include <set>

namespace cybok::text {

TermId Vocabulary::intern(std::string_view term) {
    // Heterogeneous find: no std::string materialized for the probe.
    auto it = ids_.find(term);
    if (it != ids_.end()) return it->second;
    TermId id = static_cast<TermId>(terms_.size());
    terms_.emplace_back(term);
    ids_.emplace(terms_.back(), id);
    return id;
}

TermId Vocabulary::lookup(std::string_view term) const noexcept {
    auto it = ids_.find(term);
    return it == ids_.end() ? kNoTerm : it->second;
}

const std::string& Vocabulary::term(TermId id) const {
    if (id >= terms_.size()) throw NotFoundError("vocabulary: bad term id");
    return terms_[id];
}

DocId InvertedIndex::add_document() {
    if (finalized_) throw ValidationError("index already finalized");
    flush_accum();
    current_doc_ = static_cast<DocId>(doc_lengths_.size());
    doc_lengths_.push_back(0.0);
    return current_doc_;
}

void InvertedIndex::add_term(std::string_view token, float field_weight) {
    if (finalized_) throw ValidationError("index already finalized");
    if (current_doc_ == UINT32_MAX) throw ValidationError("add_document must be called first");
    TermId t = vocab_.intern(token);
    accum_[t] += field_weight;
    doc_lengths_[current_doc_] += field_weight;
}

void InvertedIndex::add_terms(const std::vector<std::string>& tokens, float field_weight) {
    for (const std::string& t : tokens) add_term(t, field_weight);
}

void InvertedIndex::flush_accum() {
    if (current_doc_ == UINT32_MAX || accum_.empty()) {
        accum_.clear();
        return;
    }
    if (postings_.size() < vocab_.size()) postings_.resize(vocab_.size());
    for (const auto& [term, weight] : accum_)
        postings_[term].push_back(Posting{current_doc_, weight});
    accum_.clear();
}

void InvertedIndex::finalize() {
    if (finalized_) throw ValidationError("index already finalized");
    flush_accum();
    if (postings_.size() < vocab_.size()) postings_.resize(vocab_.size());
    for (auto& plist : postings_)
        std::sort(plist.begin(), plist.end(),
                  [](const Posting& a, const Posting& b) { return a.doc < b.doc; });
    double total = 0.0;
    for (double len : doc_lengths_) total += len;
    avg_len_ = doc_lengths_.empty() ? 0.0 : total / static_cast<double>(doc_lengths_.size());
    // One IDF table for BM25 scoring and the evidence gate: computed here
    // so no query ever recomputes a log or resolves a term string again.
    const double n = static_cast<double>(doc_lengths_.size());
    idf_.resize(postings_.size());
    for (TermId t = 0; t < postings_.size(); ++t)
        idf_[t] = rsj_idf(n, static_cast<double>(postings_[t].size()));
    finalized_ = true;
}

std::size_t InvertedIndex::doc_frequency(std::string_view term) const noexcept {
    TermId t = vocab_.lookup(term);
    if (t == kNoTerm || t >= postings_.size()) return 0;
    return postings_[t].size();
}

double InvertedIndex::doc_length(DocId d) const {
    if (d >= doc_lengths_.size()) throw NotFoundError("index: bad doc id");
    return doc_lengths_[d];
}

const std::vector<Posting>& InvertedIndex::postings(TermId t) const {
    static const std::vector<Posting> empty;
    if (t >= postings_.size()) return empty;
    return postings_[t];
}

// ------------------------------------------------------------ freeze/thaw

namespace {

void freeze_f64s(util::ByteWriter& w, const std::vector<double>& v) {
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (double d : v) w.f64(d);
}

std::vector<double> thaw_f64s(util::ByteReader& r) {
    const std::uint32_t n = r.u32();
    std::vector<double> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.f64());
    return out;
}

} // namespace

void Vocabulary::freeze(util::ByteWriter& w) const {
    w.u32(static_cast<std::uint32_t>(terms_.size()));
    for (const std::string& t : terms_) w.str(t);
}

Vocabulary Vocabulary::thaw(util::ByteReader& r) {
    Vocabulary v;
    const std::uint32_t n = r.u32();
    v.terms_.reserve(n);
    v.ids_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        v.terms_.push_back(r.str());
        v.ids_.emplace(v.terms_.back(), static_cast<TermId>(i));
    }
    return v;
}

void InvertedIndex::freeze(util::ByteWriter& w) const {
    if (!finalized_) throw ValidationError("freeze requires a finalized index");
    vocab_.freeze(w);
    freeze_f64s(w, doc_lengths_);
    w.f64(avg_len_);
    freeze_f64s(w, idf_);
    w.u32(static_cast<std::uint32_t>(postings_.size()));
    for (const std::vector<Posting>& plist : postings_) {
        w.u32(static_cast<std::uint32_t>(plist.size()));
        for (const Posting& p : plist) {
            w.u32(p.doc);
            w.f32(p.weight);
        }
    }
}

InvertedIndex InvertedIndex::thaw(util::ByteReader& r) {
    InvertedIndex index;
    index.vocab_ = Vocabulary::thaw(r);
    index.doc_lengths_ = thaw_f64s(r);
    index.avg_len_ = r.f64();
    index.idf_ = thaw_f64s(r);
    const std::uint32_t n_terms = r.u32();
    if (n_terms != index.vocab_.size() || index.idf_.size() != index.vocab_.size())
        throw ValidationError("index snapshot: table sizes do not match vocabulary");
    index.postings_.resize(n_terms);
    const auto n_docs = static_cast<std::uint32_t>(index.doc_lengths_.size());
    for (std::uint32_t t = 0; t < n_terms; ++t) {
        const std::uint32_t n = r.u32();
        index.postings_[t].reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            const DocId doc = r.u32();
            const float weight = r.f32();
            if (doc >= n_docs) throw ValidationError("index snapshot: posting doc out of range");
            index.postings_[t].push_back(Posting{doc, weight});
        }
    }
    index.finalized_ = true;
    return index;
}

// ---------------------------------------------------------------- kernel

namespace {

/// Resolve tokens to distinct TermIds (ascending) with query-term
/// frequencies, into the scratch arena. Ascending order matters: both
/// reference scorers and the kernel accumulate per-document contributions
/// in this order, which is what makes their sums bitwise identical.
void collect_query_terms(const InvertedIndex& index, const std::vector<std::string>& tokens,
                         QueryScratch& s) {
    for (const std::string& tok : tokens) {
        TermId t = index.vocabulary().lookup(tok);
        if (t != kNoTerm) s.terms.push_back(t);
    }
    std::sort(s.terms.begin(), s.terms.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < s.terms.size();) {
        std::size_t j = i;
        while (j < s.terms.size() && s.terms[j] == s.terms[i]) ++j;
        s.terms[out++] = s.terms[i];
        s.query_tf.push_back(static_cast<double>(j - i));
        i = j;
    }
    s.terms.resize(out);
}

/// (score desc, doc asc) — the total order every result list uses.
struct BetterCandidate {
    bool operator()(const std::pair<double, DocId>& a,
                    const std::pair<double, DocId>& b) const noexcept {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
    }
};

/// Gate, top-k-select, and materialize hits from the scratch accumulators.
/// `final_score(doc)` maps an accumulated score to the reported one (BM25:
/// identity; TF-IDF: cosine normalization).
template <typename FinalScore>
std::vector<Hit> collect_hits(QueryScratch& s, const KernelOptions& opts, KernelStats* stats,
                              FinalScore&& final_score) {
    auto& cand = s.candidates;
    std::uint64_t gated = 0;
    for (DocId d : s.touched) {
        if (s.evidence_idf[d] < opts.min_evidence_idf) {
            ++gated;
            continue;
        }
        cand.emplace_back(final_score(d), d);
    }
    if (opts.top_k > 0 && cand.size() > opts.top_k) {
        std::nth_element(cand.begin(),
                         cand.begin() + static_cast<std::ptrdiff_t>(opts.top_k), cand.end(),
                         BetterCandidate{});
        cand.resize(opts.top_k);
    }
    std::sort(cand.begin(), cand.end(), BetterCandidate{});
    std::vector<Hit> hits;
    hits.reserve(cand.size());
    for (const auto& [score, d] : cand) {
        Hit h{d, score, {}};
        std::uint64_t bits = s.term_bits[d];
        h.matched_terms.reserve(static_cast<std::size_t>(std::popcount(bits)));
        while (bits != 0) {
            h.matched_terms.push_back(s.terms[static_cast<std::size_t>(std::countr_zero(bits))]);
            bits &= bits - 1;
        }
        hits.push_back(std::move(h));
    }
    if (stats != nullptr) stats->hits_gated += gated;
    return hits;
}

/// Fallback for queries with more than 64 distinct terms (the per-doc
/// matched-term bitset is a single word): run the reference scorer, then
/// apply the same gate / dedup / top-k semantics the kernel fuses in.
std::vector<Hit> apply_kernel_semantics(std::vector<Hit> hits, const InvertedIndex& index,
                                        const KernelOptions& opts, KernelStats* stats) {
    if (stats != nullptr) ++stats->fallback_queries;
    std::vector<Hit> out;
    out.reserve(hits.size());
    for (Hit& h : hits) {
        std::sort(h.matched_terms.begin(), h.matched_terms.end());
        h.matched_terms.erase(std::unique(h.matched_terms.begin(), h.matched_terms.end()),
                              h.matched_terms.end());
        double evidence = 0.0;
        for (TermId t : h.matched_terms) evidence += index.idf(t);
        if (evidence < opts.min_evidence_idf) {
            if (stats != nullptr) ++stats->hits_gated;
            continue;
        }
        out.push_back(std::move(h));
    }
    // Reference hits are already (score desc, doc asc)-sorted.
    if (opts.top_k > 0 && out.size() > opts.top_k) out.resize(opts.top_k);
    return out;
}

} // namespace

// ----------------------------------------------------------------- BM25

Bm25Scorer::Bm25Scorer(const InvertedIndex& index, Params params)
    : index_(index), params_(params) {
    if (!index.finalized()) throw ValidationError("BM25 requires a finalized index");
    // Per-doc length norms and per-term max-score bounds, precomputed once
    // so query_kernel's inner loop is a multiply-add over flat arrays.
    const double avg = std::max(index.avg_doc_length(), 1e-9);
    norms_.resize(index.doc_count());
    for (DocId d = 0; d < norms_.size(); ++d)
        norms_[d] = params_.k1 * (1.0 - params_.b +
                                  params_.b * index.doc_length(d) / avg);
    max_contrib_.assign(index.term_count(), 0.0);
    for (TermId t = 0; t < index.term_count(); ++t) {
        const double idf_t = index.idf(t);
        for (const Posting& p : index.postings(t)) {
            const double tf = p.weight;
            const double contrib =
                idf_t * (tf * (params_.k1 + 1.0)) / (tf + norms_[p.doc]);
            max_contrib_[t] = std::max(max_contrib_[t], contrib);
        }
    }
}

Bm25Scorer::Bm25Scorer(ThawTag, const InvertedIndex& index, util::ByteReader& r)
    : index_(index) {
    params_.k1 = r.f64();
    params_.b = r.f64();
    norms_ = thaw_f64s(r);
    max_contrib_ = thaw_f64s(r);
    if (norms_.size() != index.doc_count() || max_contrib_.size() != index.term_count())
        throw ValidationError("BM25 snapshot: table sizes do not match index");
}

void Bm25Scorer::freeze(util::ByteWriter& w) const {
    w.f64(params_.k1);
    w.f64(params_.b);
    freeze_f64s(w, norms_);
    freeze_f64s(w, max_contrib_);
}

Bm25Scorer Bm25Scorer::thaw(const InvertedIndex& index, util::ByteReader& r) {
    return Bm25Scorer(ThawTag{}, index, r);
}

double Bm25Scorer::idf(std::string_view term) const noexcept {
    TermId t = index_.vocabulary().lookup(term);
    if (t == kNoTerm) return rsj_idf(static_cast<double>(index_.doc_count()), 0.0);
    return index_.idf(t);
}

std::vector<Hit> Bm25Scorer::query(const std::vector<std::string>& tokens) const {
    // Deduplicate query terms; repeated query terms in short attribute
    // strings should not double-count.
    std::set<TermId> terms;
    for (const std::string& tok : tokens) {
        TermId t = index_.vocab_.lookup(tok);
        if (t != kNoTerm) terms.insert(t);
    }
    std::unordered_map<DocId, Hit> acc;
    for (TermId t : terms) {
        const double idf_t = index_.idf(t);
        for (const Posting& p : index_.postings(t)) {
            const double tf = p.weight;
            const double contrib = idf_t * (tf * (params_.k1 + 1.0)) / (tf + norms_[p.doc]);
            Hit& h = acc.try_emplace(p.doc, Hit{p.doc, 0.0, {}}).first->second;
            h.score += contrib;
            h.matched_terms.push_back(t);
        }
    }
    std::vector<Hit> hits;
    hits.reserve(acc.size());
    for (auto& [_, h] : acc) hits.push_back(std::move(h));
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.doc < b.doc;
    });
    return hits;
}

std::vector<Hit> Bm25Scorer::query_kernel(const std::vector<std::string>& tokens,
                                          QueryScratch& scratch, const KernelOptions& opts,
                                          KernelStats* stats) const {
    scratch.begin(index_.doc_count());
    collect_query_terms(index_, tokens, scratch);
    const auto& terms = scratch.terms;
    if (terms.empty()) return {};
    if (terms.size() > 64) return apply_kernel_semantics(query(tokens), index_, opts, stats);

    const std::size_t k = opts.top_k;
    const bool prune = opts.prune && k > 0;
    if (prune) {
        // bounds[i] = max possible total score of a document first seen at
        // term i (postings are grouped per term, so such a doc can only
        // collect contributions from terms i..end).
        scratch.bounds.assign(terms.size() + 1, 0.0);
        for (std::size_t i = terms.size(); i-- > 0;)
            scratch.bounds[i] = scratch.bounds[i + 1] + max_contrib_[terms[i]];
    }

    const double k1 = params_.k1;
    auto& heap = scratch.heap; // min-heap of top-k score lower bounds
    double theta = -std::numeric_limits<double>::infinity();
    std::uint64_t postings_scanned = 0;
    std::uint64_t docs_pruned = 0;
    for (std::size_t i = 0; i < terms.size(); ++i) {
        const TermId t = terms[i];
        const double idf_t = index_.idf(t);
        const std::uint64_t bit = std::uint64_t{1} << i;
        // theta only rises during the posting loop, so deciding admission
        // per term (not per posting) can only admit extra docs — never
        // wrongly skip one. Skipping requires a strictly losing bound.
        const bool admit_new = !prune || heap.size() < k || scratch.bounds[i] >= theta;
        const std::vector<Posting>& plist = index_.postings(t);
        postings_scanned += plist.size();
        for (const Posting& p : plist) {
            const double tf = p.weight;
            const double contrib = idf_t * (tf * (k1 + 1.0)) / (tf + norms_[p.doc]);
            if (scratch.stamp[p.doc] == scratch.epoch) {
                scratch.score[p.doc] += contrib;
                scratch.evidence_idf[p.doc] += idf_t;
                scratch.term_bits[p.doc] |= bit;
            } else if (admit_new) {
                scratch.stamp[p.doc] = scratch.epoch;
                scratch.score[p.doc] = contrib;
                scratch.evidence_idf[p.doc] = idf_t;
                scratch.term_bits[p.doc] = bit;
                scratch.touched.push_back(p.doc);
            } else {
                ++docs_pruned;
                continue;
            }
            if (prune && scratch.heap_stamp[p.doc] != scratch.epoch &&
                scratch.evidence_idf[p.doc] >= opts.min_evidence_idf) {
                // First time this doc both exists and passes the gate: its
                // current partial score is a valid lower bound on its final
                // score (and the gate only accumulates, so it stays passed).
                scratch.heap_stamp[p.doc] = scratch.epoch;
                heap.push_back(scratch.score[p.doc]);
                std::push_heap(heap.begin(), heap.end(), std::greater<>{});
                if (heap.size() > k) {
                    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
                    heap.pop_back();
                }
                if (heap.size() == k) theta = heap.front();
            }
        }
    }
    if (stats != nullptr) {
        stats->postings_scanned += postings_scanned;
        stats->docs_pruned += docs_pruned;
    }
    return collect_hits(scratch, opts, stats,
                        [&scratch](DocId d) { return scratch.score[d]; });
}

// --------------------------------------------------------------- TF-IDF

TfidfScorer::TfidfScorer(const InvertedIndex& index) : index_(index) {
    if (!index.finalized()) throw ValidationError("TF-IDF requires a finalized index");
    const double n = static_cast<double>(index.doc_count());
    doc_norms_.assign(index.doc_count(), 0.0);
    idf_.assign(index.term_count(), 0.0);
    doc_weights_.resize(index.term_count());
    for (TermId t = 0; t < index.term_count(); ++t) {
        const auto& plist = index.postings(t);
        if (plist.empty()) continue;
        const double idf = std::log(n / static_cast<double>(plist.size()));
        idf_[t] = idf;
        doc_weights_[t].reserve(plist.size());
        for (const Posting& p : plist) {
            const double w = (1.0 + std::log(std::max<double>(p.weight, 1e-9))) * idf;
            doc_weights_[t].push_back(w);
            doc_norms_[p.doc] += w * w;
        }
    }
    for (double& norm : doc_norms_) norm = std::sqrt(norm);
}

TfidfScorer::TfidfScorer(ThawTag, const InvertedIndex& index, util::ByteReader& r)
    : index_(index) {
    doc_norms_ = thaw_f64s(r);
    idf_ = thaw_f64s(r);
    const std::uint32_t n_terms = r.u32();
    if (doc_norms_.size() != index.doc_count() || idf_.size() != index.term_count() ||
        n_terms != index.term_count())
        throw ValidationError("TF-IDF snapshot: table sizes do not match index");
    doc_weights_.resize(n_terms);
    for (std::uint32_t t = 0; t < n_terms; ++t) {
        doc_weights_[t] = thaw_f64s(r);
        if (doc_weights_[t].size() != index.postings(t).size())
            throw ValidationError("TF-IDF snapshot: doc weights do not match postings");
    }
}

void TfidfScorer::freeze(util::ByteWriter& w) const {
    freeze_f64s(w, doc_norms_);
    freeze_f64s(w, idf_);
    w.u32(static_cast<std::uint32_t>(doc_weights_.size()));
    for (const std::vector<double>& dw : doc_weights_) freeze_f64s(w, dw);
}

TfidfScorer TfidfScorer::thaw(const InvertedIndex& index, util::ByteReader& r) {
    return TfidfScorer(ThawTag{}, index, r);
}

std::vector<Hit> TfidfScorer::query(const std::vector<std::string>& tokens) const {
    // Query-term frequencies in ascending TermId order — deterministic,
    // and the same accumulation order as the kernel.
    std::vector<std::pair<TermId, double>> qtf;
    {
        std::vector<TermId> ids;
        for (const std::string& tok : tokens) {
            TermId t = index_.vocab_.lookup(tok);
            if (t != kNoTerm) ids.push_back(t);
        }
        std::sort(ids.begin(), ids.end());
        for (std::size_t i = 0; i < ids.size();) {
            std::size_t j = i;
            while (j < ids.size() && ids[j] == ids[i]) ++j;
            qtf.emplace_back(ids[i], static_cast<double>(j - i));
            i = j;
        }
    }
    double qnorm = 0.0;
    std::unordered_map<DocId, Hit> acc;
    for (const auto& [t, tf] : qtf) {
        const auto& plist = index_.postings(t);
        if (plist.empty()) continue;
        const double qw = (1.0 + std::log(tf)) * idf_[t];
        qnorm += qw * qw;
        for (std::size_t j = 0; j < plist.size(); ++j) {
            Hit& h = acc.try_emplace(plist[j].doc, Hit{plist[j].doc, 0.0, {}}).first->second;
            h.score += qw * doc_weights_[t][j];
            h.matched_terms.push_back(t);
        }
    }
    qnorm = std::sqrt(qnorm);
    std::vector<Hit> hits;
    hits.reserve(acc.size());
    for (auto& [doc, h] : acc) {
        const double denom = qnorm * doc_norms_[doc];
        h.score = denom > 0.0 ? h.score / denom : 0.0;
        hits.push_back(std::move(h));
    }
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.doc < b.doc;
    });
    return hits;
}

std::vector<Hit> TfidfScorer::query_kernel(const std::vector<std::string>& tokens,
                                           QueryScratch& scratch, const KernelOptions& opts,
                                           KernelStats* stats) const {
    scratch.begin(index_.doc_count());
    collect_query_terms(index_, tokens, scratch);
    const auto& terms = scratch.terms;
    if (terms.empty()) return {};
    if (terms.size() > 64) return apply_kernel_semantics(query(tokens), index_, opts, stats);

    double qnorm = 0.0;
    std::uint64_t postings_scanned = 0;
    for (std::size_t i = 0; i < terms.size(); ++i) {
        const TermId t = terms[i];
        const std::vector<Posting>& plist = index_.postings(t);
        if (plist.empty()) continue;
        const double qw = (1.0 + std::log(scratch.query_tf[i])) * idf_[t];
        qnorm += qw * qw;
        const double gate_idf = index_.idf(t); // evidence gate uses rsj_idf
        const std::uint64_t bit = std::uint64_t{1} << i;
        const std::vector<double>& dw = doc_weights_[t];
        postings_scanned += plist.size();
        for (std::size_t j = 0; j < plist.size(); ++j) {
            const DocId d = plist[j].doc;
            const double contrib = qw * dw[j];
            if (scratch.stamp[d] == scratch.epoch) {
                scratch.score[d] += contrib;
                scratch.evidence_idf[d] += gate_idf;
                scratch.term_bits[d] |= bit;
            } else {
                scratch.stamp[d] = scratch.epoch;
                scratch.score[d] = contrib;
                scratch.evidence_idf[d] = gate_idf;
                scratch.term_bits[d] = bit;
                scratch.touched.push_back(d);
            }
        }
    }
    if (stats != nullptr) stats->postings_scanned += postings_scanned;
    qnorm = std::sqrt(qnorm);
    return collect_hits(scratch, opts, stats, [&](DocId d) {
        const double denom = qnorm * doc_norms_[d];
        return denom > 0.0 ? scratch.score[d] / denom : 0.0;
    });
}

double jaccard(const std::vector<std::string>& a, const std::vector<std::string>& b) {
    // Sorted-vector set intersection: the token vectors are small and the
    // old std::set version paid one node allocation per distinct token.
    std::vector<std::string_view> sa(a.begin(), a.end());
    std::vector<std::string_view> sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
    std::sort(sb.begin(), sb.end());
    sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
    if (sa.empty() && sb.empty()) return 1.0;
    std::size_t inter = 0;
    for (std::size_t i = 0, j = 0; i < sa.size() && j < sb.size();) {
        if (sa[i] < sb[j]) {
            ++i;
        } else if (sb[j] < sa[i]) {
            ++j;
        } else {
            ++inter;
            ++i;
            ++j;
        }
    }
    const std::size_t uni = sa.size() + sb.size() - inter;
    return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

} // namespace cybok::text
