#include "text/index.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace cybok::text {

TermId Vocabulary::intern(std::string_view term) {
    // Heterogeneous find: no std::string materialized for the probe.
    auto it = ids_.find(term);
    if (it != ids_.end()) return it->second;
    TermId id = static_cast<TermId>(terms_.size());
    terms_.emplace_back(term);
    ids_.emplace(terms_.back(), id);
    return id;
}

TermId Vocabulary::lookup(std::string_view term) const noexcept {
    auto it = ids_.find(term);
    return it == ids_.end() ? kNoTerm : it->second;
}

const std::string& Vocabulary::term(TermId id) const {
    if (id >= terms_.size()) throw NotFoundError("vocabulary: bad term id");
    return terms_[id];
}

DocId InvertedIndex::add_document() {
    if (finalized_) throw ValidationError("index already finalized");
    flush_accum();
    current_doc_ = static_cast<DocId>(doc_lengths_.size());
    doc_lengths_.push_back(0.0);
    return current_doc_;
}

void InvertedIndex::add_term(std::string_view token, float field_weight) {
    if (finalized_) throw ValidationError("index already finalized");
    if (current_doc_ == UINT32_MAX) throw ValidationError("add_document must be called first");
    TermId t = vocab_.intern(token);
    accum_[t] += field_weight;
    doc_lengths_[current_doc_] += field_weight;
}

void InvertedIndex::add_terms(const std::vector<std::string>& tokens, float field_weight) {
    for (const std::string& t : tokens) add_term(t, field_weight);
}

void InvertedIndex::flush_accum() {
    if (current_doc_ == UINT32_MAX || accum_.empty()) {
        accum_.clear();
        return;
    }
    if (postings_.size() < vocab_.size()) postings_.resize(vocab_.size());
    for (const auto& [term, weight] : accum_)
        postings_[term].push_back(Posting{current_doc_, weight});
    accum_.clear();
}

void InvertedIndex::finalize() {
    if (finalized_) throw ValidationError("index already finalized");
    flush_accum();
    if (postings_.size() < vocab_.size()) postings_.resize(vocab_.size());
    for (auto& plist : postings_)
        std::sort(plist.begin(), plist.end(),
                  [](const Posting& a, const Posting& b) { return a.doc < b.doc; });
    double total = 0.0;
    for (double len : doc_lengths_) total += len;
    avg_len_ = doc_lengths_.empty() ? 0.0 : total / static_cast<double>(doc_lengths_.size());
    finalized_ = true;
}

std::size_t InvertedIndex::doc_frequency(std::string_view term) const noexcept {
    TermId t = vocab_.lookup(term);
    if (t == kNoTerm || t >= postings_.size()) return 0;
    return postings_[t].size();
}

double InvertedIndex::doc_length(DocId d) const {
    if (d >= doc_lengths_.size()) throw NotFoundError("index: bad doc id");
    return doc_lengths_[d];
}

const std::vector<Posting>& InvertedIndex::postings(TermId t) const {
    static const std::vector<Posting> empty;
    if (t >= postings_.size()) return empty;
    return postings_[t];
}

// ----------------------------------------------------------------- BM25

Bm25Scorer::Bm25Scorer(const InvertedIndex& index, Params params)
    : index_(index), params_(params) {
    if (!index.finalized()) throw ValidationError("BM25 requires a finalized index");
}

double Bm25Scorer::idf(std::string_view term) const noexcept {
    const double n = static_cast<double>(index_.doc_count());
    const double df = static_cast<double>(index_.doc_frequency(term));
    return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

std::vector<Hit> Bm25Scorer::query(const std::vector<std::string>& tokens) const {
    // Deduplicate query terms; repeated query terms in short attribute
    // strings should not double-count.
    std::set<TermId> terms;
    for (const std::string& tok : tokens) {
        TermId t = index_.vocab_.lookup(tok);
        if (t != kNoTerm) terms.insert(t);
    }
    std::unordered_map<DocId, Hit> acc;
    const double avg = std::max(index_.avg_doc_length(), 1e-9);
    for (TermId t : terms) {
        const double idf_t = idf(index_.vocab_.term(t));
        for (const Posting& p : index_.postings(t)) {
            const double tf = p.weight;
            const double norm = params_.k1 * (1.0 - params_.b +
                                              params_.b * index_.doc_length(p.doc) / avg);
            const double contrib = idf_t * (tf * (params_.k1 + 1.0)) / (tf + norm);
            Hit& h = acc.try_emplace(p.doc, Hit{p.doc, 0.0, {}}).first->second;
            h.score += contrib;
            h.matched_terms.push_back(t);
        }
    }
    std::vector<Hit> hits;
    hits.reserve(acc.size());
    for (auto& [_, h] : acc) hits.push_back(std::move(h));
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.doc < b.doc;
    });
    return hits;
}

// --------------------------------------------------------------- TF-IDF

TfidfScorer::TfidfScorer(const InvertedIndex& index) : index_(index) {
    if (!index.finalized()) throw ValidationError("TF-IDF requires a finalized index");
    const double n = static_cast<double>(index.doc_count());
    doc_norms_.assign(index.doc_count(), 0.0);
    for (TermId t = 0; t < index.term_count(); ++t) {
        const auto& plist = index.postings(t);
        if (plist.empty()) continue;
        const double idf = std::log(n / static_cast<double>(plist.size()));
        for (const Posting& p : plist) {
            const double w = (1.0 + std::log(std::max<double>(p.weight, 1e-9))) * idf;
            doc_norms_[p.doc] += w * w;
        }
    }
    for (double& norm : doc_norms_) norm = std::sqrt(norm);
}

std::vector<Hit> TfidfScorer::query(const std::vector<std::string>& tokens) const {
    std::unordered_map<TermId, double> qtf;
    for (const std::string& tok : tokens) {
        TermId t = index_.vocab_.lookup(tok);
        if (t != kNoTerm) qtf[t] += 1.0;
    }
    const double n = static_cast<double>(index_.doc_count());
    double qnorm = 0.0;
    std::unordered_map<DocId, Hit> acc;
    for (const auto& [t, tf] : qtf) {
        const auto& plist = index_.postings(t);
        if (plist.empty()) continue;
        const double idf = std::log(n / static_cast<double>(plist.size()));
        const double qw = (1.0 + std::log(tf)) * idf;
        qnorm += qw * qw;
        for (const Posting& p : plist) {
            const double dw = (1.0 + std::log(std::max<double>(p.weight, 1e-9))) * idf;
            Hit& h = acc.try_emplace(p.doc, Hit{p.doc, 0.0, {}}).first->second;
            h.score += qw * dw;
            h.matched_terms.push_back(t);
        }
    }
    qnorm = std::sqrt(qnorm);
    std::vector<Hit> hits;
    hits.reserve(acc.size());
    for (auto& [doc, h] : acc) {
        const double denom = qnorm * doc_norms_[doc];
        h.score = denom > 0.0 ? h.score / denom : 0.0;
        hits.push_back(std::move(h));
    }
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.doc < b.doc;
    });
    return hits;
}

double jaccard(const std::vector<std::string>& a, const std::vector<std::string>& b) {
    std::set<std::string> sa(a.begin(), a.end());
    std::set<std::string> sb(b.begin(), b.end());
    if (sa.empty() && sb.empty()) return 1.0;
    std::size_t inter = 0;
    for (const std::string& t : sa)
        if (sb.contains(t)) ++inter;
    const std::size_t uni = sa.size() + sb.size() - inter;
    return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

} // namespace cybok::text
