// Block-compressed posting lists — the storage format behind
// InvertedIndex and the unit the Block-Max WAND kernel skips over.
//
// A posting list is split into blocks of up to kBlockDocs documents. Doc
// ids are delta-encoded LEB128 varints within a block (the first delta of
// a block is taken against the previous block's last doc id, so blocks
// decode independently given the block metadata); weights are stored
// per-block under the cheapest lossless encoding (see WeightTag). Each
// block's *metadata* — last doc id and data offset — lives in a separate
// fixed-width array, so the kernel can skip whole blocks (compare
// last_doc, never touch the packed bytes) and the BM25 scorer can attach
// a per-block maximum impact score by global block index.
//
// The store is three flat byte ranges (term table, block metadata, packed
// data), laid out so a frozen snapshot can serve them in place: a thawed
// store *views* 64-byte-aligned slabs — an owned copy or an mmap — and
// only ever decodes the blocks a query actually visits. An encoded store
// (fresh build) owns one contiguous buffer with the same three ranges.
//
// Layout invariants (validated by from_slabs before anything dereferences
// them): term entries' data_begin/block_begin are non-decreasing; a
// term's block count equals ceil(doc_count / kBlockDocs); block data
// offsets are strictly increasing within a term; block last-doc ids are
// strictly increasing within a term and < n_docs. Packed data is
// validated at decode time (count/tag header, delta monotonicity, final
// doc must equal the block's last_doc), so a corrupt byte inside an
// mmap'ed block that the open-time structural checks cannot see still
// dies on a typed error instead of producing wrong postings.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace cybok::text {

/// Dense id of an interned term within one Vocabulary.
using TermId = std::uint32_t;
/// Dense id of a document within one InvertedIndex.
using DocId = std::uint32_t;
/// Sentinel: term not present in the vocabulary.
inline constexpr TermId kNoTerm = UINT32_MAX;
/// Sentinel: an exhausted posting cursor.
inline constexpr DocId kNoDocId = UINT32_MAX;

/// One posting: a document and the (weighted) term frequency inside it.
struct Posting {
    DocId doc;
    float weight;
};

/// Documents per block. 128 keeps block metadata ~1% of posting data
/// while giving the skip loop big enough strides to matter.
inline constexpr std::uint32_t kBlockDocs = 128;

/// Per-term entry in the term table. Block count and data size are not
/// stored: they are derived from the next term's entry (the ranges are
/// contiguous), which keeps the table at 16 bytes/term.
struct TermEntry {
    std::uint64_t data_begin;  ///< first packed byte, absolute in the data range
    std::uint32_t block_begin; ///< first block, absolute in the block metadata array
    std::uint32_t doc_count;   ///< postings in this term's list
};
static_assert(sizeof(TermEntry) == 16 && alignof(TermEntry) == 8);

/// Per-block skip entry. The packed bytes of block b of a term span
/// [data_off, next block's data_off) relative to the term's data_begin.
struct BlockMeta {
    std::uint32_t last_doc; ///< largest doc id in the block (the skip key)
    std::uint32_t data_off; ///< first packed byte, relative to TermEntry::data_begin
};
static_assert(sizeof(BlockMeta) == 8 && alignof(BlockMeta) == 4);

/// How a block's weights are packed (chosen per block at encode time; all
/// encodings are lossless, which is what lets Block-Max WAND stay
/// bit-identical to the reference scorer).
enum class WeightTag : std::uint8_t {
    AllOnes = 0, ///< every weight is exactly 1.0f; nothing stored
    U8 = 1,      ///< integer-valued weights in [0, 255]; one byte each
    U16 = 2,     ///< integer-valued weights in [0, 65535]; two bytes each
    F32 = 3,     ///< raw little-endian IEEE floats; four bytes each
};

/// A borrowed view of one term's compressed posting list.
struct ListView {
    const BlockMeta* blocks = nullptr;
    std::uint32_t n_blocks = 0;
    std::uint32_t doc_count = 0;
    std::uint32_t block_base = 0; ///< global index of blocks[0] (block-max lookup)
    const char* data = nullptr;   ///< this term's packed bytes
    std::size_t data_size = 0;

    [[nodiscard]] bool empty() const noexcept { return doc_count == 0; }
};

/// Decode/skip instrumentation, accumulated by decode_block and
/// PostingCursor (feeds KernelStats / AssocMetrics).
struct PostingStats {
    std::uint64_t blocks_decoded = 0;
    std::uint64_t blocks_skipped = 0;   ///< blocks passed over without decompression
    std::uint64_t postings_decoded = 0; ///< postings materialized by block decodes
};

/// Decode block `b` of `lv` into caller-provided arrays of at least
/// kBlockDocs elements; returns the posting count. Throws ParseError on
/// any malformed packed byte (bad header, non-monotone deltas, last doc
/// mismatch, truncation).
std::size_t decode_block(const ListView& lv, std::uint32_t b, std::uint32_t* docs,
                         float* weights, PostingStats* stats = nullptr);

/// Decode a whole list into a Posting vector (tests, reference paths).
[[nodiscard]] std::vector<Posting> decode_postings(const ListView& lv);

/// Visit every posting of `lv` in doc order without a heap allocation.
template <typename F>
void for_each_posting(const ListView& lv, F&& f) {
    std::uint32_t docs[kBlockDocs];
    float weights[kBlockDocs];
    for (std::uint32_t b = 0; b < lv.n_blocks; ++b) {
        const std::size_t n = decode_block(lv, b, docs, weights);
        for (std::size_t i = 0; i < n; ++i) f(docs[i], weights[i]);
    }
}

/// The compressed posting storage for one index: term table + block
/// metadata + packed data. Encoded stores own their bytes; thawed stores
/// view snapshot slabs in place (see file comment).
class PostingStore {
public:
    PostingStore() = default;

    /// Compress `lists` (indexed by TermId, postings sorted by doc).
    /// Deterministic: equal inputs produce byte-identical stores.
    [[nodiscard]] static PostingStore encode(const std::vector<std::vector<Posting>>& lists,
                                             std::uint32_t n_docs);

    /// Adopt serialized slabs in place (zero copy, zero per-posting work).
    /// Validates the structural invariants in the file comment; throws
    /// ParseError on any violation. `terms`/`blocks` must be 8-byte
    /// aligned (64-byte-aligned slabs always are).
    [[nodiscard]] static PostingStore from_slabs(std::string_view terms, std::string_view blocks,
                                                 std::string_view data, std::uint32_t n_docs);

    [[nodiscard]] std::size_t term_count() const noexcept { return n_terms_; }
    [[nodiscard]] std::size_t block_count() const noexcept { return n_blocks_; }
    [[nodiscard]] std::uint64_t posting_count() const noexcept { return posting_count_; }
    [[nodiscard]] std::uint32_t doc_limit() const noexcept { return n_docs_; }
    /// True when this store owns its bytes (fresh build / encode), false
    /// when it views external slabs (snapshot thaw).
    [[nodiscard]] bool owning() const noexcept { return terms_ == nullptr || !owned_.empty(); }

    /// View of term `t`'s list; an empty view for t >= term_count().
    [[nodiscard]] ListView list(TermId t) const noexcept;

    // The three serialized ranges, for freezing into snapshot slabs. The
    // bytes are identical whether the store was encoded or thawed, so
    // freeze(thaw(freeze(x))) is bit-exact.
    [[nodiscard]] std::string_view term_bytes() const noexcept {
        return {reinterpret_cast<const char*>(terms_), n_terms_ * sizeof(TermEntry)};
    }
    [[nodiscard]] std::string_view block_bytes() const noexcept {
        return {reinterpret_cast<const char*>(blocks_), n_blocks_ * sizeof(BlockMeta)};
    }
    [[nodiscard]] std::string_view data_bytes() const noexcept { return {data_, data_size_}; }

    /// Bytes of the compressed representation (the three ranges).
    [[nodiscard]] std::size_t byte_size() const noexcept {
        return n_terms_ * sizeof(TermEntry) + n_blocks_ * sizeof(BlockMeta) + data_size_;
    }

private:
    const TermEntry* terms_ = nullptr;
    std::size_t n_terms_ = 0;
    const BlockMeta* blocks_ = nullptr;
    std::size_t n_blocks_ = 0;
    const char* data_ = nullptr;
    std::size_t data_size_ = 0;
    std::uint32_t n_docs_ = 0;
    std::uint64_t posting_count_ = 0;
    std::string owned_; ///< backing when encoded; empty when viewing slabs
};

/// A forward cursor over one compressed list with block-granular skipping
/// — the unit Block-Max WAND drives. seek() (NextGEQ) jumps whole blocks
/// by comparing block metadata and decompresses only the landing block
/// into the caller-provided buffers; blocks passed over are counted but
/// never touched.
class PostingCursor {
public:
    PostingCursor() = default;

    /// Bind to a list and per-cursor decode buffers (>= kBlockDocs each);
    /// positions at the first posting (decoding block 0).
    void reset(const ListView& lv, std::uint32_t* docs, float* weights, PostingStats* stats);

    [[nodiscard]] DocId doc() const noexcept { return doc_; }
    [[nodiscard]] float weight() const noexcept { return weights_[pos_]; }
    [[nodiscard]] bool exhausted() const noexcept { return doc_ == kNoDocId; }
    [[nodiscard]] std::uint32_t block_base() const noexcept { return lv_.block_base; }
    [[nodiscard]] std::uint32_t n_blocks() const noexcept { return lv_.n_blocks; }

    /// First block at or after the current one whose last_doc >= target;
    /// n_blocks() when no remaining block can contain target. Pure
    /// metadata scan — never decompresses.
    [[nodiscard]] std::uint32_t find_block(DocId target) const noexcept;
    [[nodiscard]] DocId last_doc_of(std::uint32_t b) const noexcept {
        return lv_.blocks[b].last_doc;
    }

    /// Advance to the first posting with doc id >= target (NextGEQ).
    /// Skips intermediate blocks without decoding; exhausts the cursor
    /// when no such posting exists.
    void seek(DocId target);

    /// Blocks after the current one, none of which have been decoded.
    /// A kernel that abandons the cursor early (its bound proves no
    /// remaining document can matter) charges these to blocks_skipped.
    [[nodiscard]] std::uint32_t undecoded_tail() const noexcept {
        return exhausted() ? 0 : lv_.n_blocks - block_ - 1;
    }

private:
    void land_on(std::uint32_t b, DocId target);

    ListView lv_;
    std::uint32_t block_ = 0;
    std::uint32_t count_ = 0; ///< postings decoded in the current block
    std::uint32_t pos_ = 0;
    DocId doc_ = kNoDocId;
    bool decoded_ = false;
    std::uint32_t* docs_ = nullptr;
    float* weights_ = nullptr;
    PostingStats* stats_ = nullptr;
};

} // namespace cybok::text
