// Importer for the NVD JSON 1.1 data-feed schema — the actual file format
// the paper's prototype ingests for vulnerability data. The importer reads
// the subset of the schema that the association pipeline uses (CVE id,
// English description, CWE problem types, CPE applicability, CVSS v3/v2
// vector strings) and tolerates records with missing optional parts, which
// real feeds are full of.
//
// A matching exporter produces feed-shaped JSON from a corpus so round-trip
// tests and offline fixtures don't need real feed files.

#pragma once

#include <string>
#include <vector>

#include "kb/corpus.hpp"
#include "util/json.hpp"

namespace cybok::kb {

/// Import statistics (what a real feed makes you care about).
struct NvdImportStats {
    std::size_t records = 0;            ///< CVE_Items seen
    std::size_t imported = 0;           ///< vulnerabilities produced
    std::size_t skipped_rejected = 0;   ///< "** REJECT **" records dropped
    std::size_t without_cwe = 0;        ///< no usable problemtype
    std::size_t without_platforms = 0;  ///< no CPE applicability
    std::size_t without_cvss = 0;       ///< unscored
};

/// Parse an NVD 1.1 feed document. Throws ParseError / ValidationError on
/// structurally invalid documents; per-record omissions are tolerated and
/// counted in `stats` (pass nullptr to discard).
[[nodiscard]] std::vector<Vulnerability> import_nvd_feed(const json::Value& feed,
                                                         NvdImportStats* stats = nullptr);

/// Convenience: parse text, then import.
[[nodiscard]] std::vector<Vulnerability> import_nvd_feed_text(std::string_view text,
                                                              NvdImportStats* stats = nullptr);

/// Render vulnerabilities as an NVD 1.1-shaped feed document.
[[nodiscard]] json::Value export_nvd_feed(const std::vector<Vulnerability>& vulnerabilities);

/// Parse a "CVE-2019-10953" style id. Throws ParseError.
[[nodiscard]] VulnerabilityId parse_cve_id(std::string_view text);

} // namespace cybok::kb
