#include "kb/delta.hpp"

#include <set>
#include <string_view>
#include <utility>

#include "kb/snapshot.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace cybok::kb {

namespace {

// Eager-section submagic distinguishing a delta blob from a full
// snapshot: both use the same v2 frame, so magic alone cannot tell them
// apart and a full snapshot fed to thaw_corpus_delta must die with a
// typed error, not a garbage decode.
constexpr std::string_view kDeltaMagic = "CYBOKDLT"; // 8 bytes

template <typename Record, typename Id>
void validate_family(const Corpus& corpus, const std::vector<Record>& upserts,
                     const std::vector<Id>& withdrawals, const char* family) {
    std::set<Id> seen;
    for (const Record& r : upserts) {
        if (!seen.insert(r.id).second)
            throw ValidationError(std::string("delta: duplicate ") + family + " upsert id " +
                                  r.id.to_string());
    }
    std::set<Id> gone;
    for (Id id : withdrawals) {
        if (!gone.insert(id).second)
            throw ValidationError(std::string("delta: duplicate ") + family + " withdrawal id " +
                                  id.to_string());
        if (corpus.find(id) == nullptr)
            throw ValidationError(std::string("delta: withdrawal of unknown ") + family + " id " +
                                  id.to_string());
    }
}

template <typename Record, typename Id>
void apply_family(Corpus& corpus, const std::vector<Record>& upserts,
                  const std::vector<Id>& withdrawals, DeltaApplyReport::Family& out) {
    for (Id id : withdrawals) {
        corpus.erase(id);
        ++out.withdrawn;
    }
    for (const Record& r : upserts) {
        // replace() fails for an id withdrawn above, so a withdraw+upsert
        // of the same id re-enters as an append, per the header contract.
        if (corpus.replace(r)) {
            ++out.modified;
        } else {
            corpus.add(r);
            ++out.added;
        }
    }
}

template <typename Id>
void freeze_ids(util::ByteWriter& w, const std::vector<Id>& ids) {
    w.u32(static_cast<std::uint32_t>(ids.size()));
    for (Id id : ids) w.u32(id.value);
}

} // namespace

DeltaApplyReport apply_corpus_delta(Corpus& corpus, const CorpusDelta& delta) {
    CYBOK_FAULT_POINT("kb.delta.apply", ValidationError("injected: delta rejected"));
    if (!corpus.indexed())
        throw ValidationError("delta: corpus must be reindexed before apply");

    // Validate everything against the pre-delta corpus before touching it:
    // a throw below this block would leave the corpus half-edited.
    validate_family(corpus, delta.patterns, delta.withdraw_patterns, "attack pattern");
    validate_family(corpus, delta.weaknesses, delta.withdraw_weaknesses, "weakness");
    validate_family(corpus, delta.vulnerabilities, delta.withdraw_vulnerabilities,
                    "vulnerability");

    DeltaApplyReport report;
    apply_family(corpus, delta.patterns, delta.withdraw_patterns, report.patterns);
    apply_family(corpus, delta.weaknesses, delta.withdraw_weaknesses, report.weaknesses);
    apply_family(corpus, delta.vulnerabilities, delta.withdraw_vulnerabilities,
                 report.vulnerabilities);
    corpus.reindex();
    return report;
}

std::string freeze_corpus_delta(const CorpusDelta& delta) {
    util::ByteWriter w;
    w.str(kDeltaMagic);

    w.u32(static_cast<std::uint32_t>(delta.patterns.size()));
    for (const AttackPattern& p : delta.patterns) freeze_record(w, p);
    w.u32(static_cast<std::uint32_t>(delta.weaknesses.size()));
    for (const Weakness& wk : delta.weaknesses) freeze_record(w, wk);
    w.u32(static_cast<std::uint32_t>(delta.vulnerabilities.size()));
    for (const Vulnerability& v : delta.vulnerabilities) freeze_record(w, v);

    freeze_ids(w, delta.withdraw_patterns);
    freeze_ids(w, delta.withdraw_weaknesses);
    w.u32(static_cast<std::uint32_t>(delta.withdraw_vulnerabilities.size()));
    for (VulnerabilityId id : delta.withdraw_vulnerabilities) {
        w.u32(id.year);
        w.u32(id.number);
    }

    return seal_snapshot(w.bytes(), {});
}

CorpusDelta thaw_corpus_delta(std::string_view blob, std::string_view source) {
    const SnapshotSections sections = open_snapshot(blob, source);
    util::ByteReader r(sections.eager);
    if (sections.eager.empty() || r.str() != kDeltaMagic)
        throw SnapshotError("delta: bad submagic (not a corpus delta)", std::string(source),
                            kSnapshotHeaderSize);

    CorpusDelta delta;
    const std::uint32_t n_patterns = r.u32();
    delta.patterns.reserve(n_patterns);
    for (std::uint32_t i = 0; i < n_patterns; ++i) delta.patterns.push_back(thaw_pattern(r));
    const std::uint32_t n_weaknesses = r.u32();
    delta.weaknesses.reserve(n_weaknesses);
    for (std::uint32_t i = 0; i < n_weaknesses; ++i)
        delta.weaknesses.push_back(thaw_weakness(r));
    const std::uint32_t n_vulns = r.u32();
    delta.vulnerabilities.reserve(n_vulns);
    for (std::uint32_t i = 0; i < n_vulns; ++i)
        delta.vulnerabilities.push_back(thaw_vulnerability(r));

    const std::uint32_t n_wp = r.u32();
    delta.withdraw_patterns.reserve(n_wp);
    for (std::uint32_t i = 0; i < n_wp; ++i) delta.withdraw_patterns.push_back({r.u32()});
    const std::uint32_t n_ww = r.u32();
    delta.withdraw_weaknesses.reserve(n_ww);
    for (std::uint32_t i = 0; i < n_ww; ++i) delta.withdraw_weaknesses.push_back({r.u32()});
    const std::uint32_t n_wv = r.u32();
    delta.withdraw_vulnerabilities.reserve(n_wv);
    for (std::uint32_t i = 0; i < n_wv; ++i) {
        const std::uint32_t year = r.u32();
        const std::uint32_t number = r.u32();
        delta.withdraw_vulnerabilities.push_back({year, number});
    }
    if (r.remaining() != 0)
        throw SnapshotError("delta: trailing bytes after payload", std::string(source),
                            kSnapshotHeaderSize + sections.eager.size() - r.remaining());
    return delta;
}

} // namespace cybok::kb
