#include "kb/corpus.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace cybok::kb {

std::string_view rating_name(Rating r) noexcept {
    switch (r) {
        case Rating::VeryLow: return "Very Low";
        case Rating::Low: return "Low";
        case Rating::Medium: return "Medium";
        case Rating::High: return "High";
        case Rating::VeryHigh: return "Very High";
    }
    return "?";
}

void Corpus::add(AttackPattern pattern) {
    patterns_.push_back(std::move(pattern));
    indexed_ = false;
}

void Corpus::add(Weakness weakness) {
    weaknesses_.push_back(std::move(weakness));
    indexed_ = false;
}

void Corpus::add(Vulnerability vulnerability) {
    vulnerabilities_.push_back(std::move(vulnerability));
    indexed_ = false;
}

namespace {

// Mutation helpers scan linearly rather than consult the by-id maps: the
// maps are stale mid-edit (apply_corpus_delta batches several mutations
// before the single closing reindex()).
template <typename Record>
typename std::vector<Record>::iterator find_by_id(std::vector<Record>& records,
                                                  decltype(Record::id) id) {
    return std::find_if(records.begin(), records.end(),
                        [&](const Record& r) { return r.id == id; });
}

template <typename Record>
bool replace_record(std::vector<Record>& records, Record&& record) {
    auto it = find_by_id(records, record.id);
    if (it == records.end()) return false;
    *it = std::move(record);
    return true;
}

template <typename Record>
bool erase_record(std::vector<Record>& records, decltype(Record::id) id) {
    auto it = find_by_id(records, id);
    if (it == records.end()) return false;
    records.erase(it);
    return true;
}

} // namespace

bool Corpus::replace(AttackPattern pattern) {
    if (!replace_record(patterns_, std::move(pattern))) return false;
    indexed_ = false;
    return true;
}

bool Corpus::replace(Weakness weakness) {
    if (!replace_record(weaknesses_, std::move(weakness))) return false;
    indexed_ = false;
    return true;
}

bool Corpus::replace(Vulnerability vulnerability) {
    if (!replace_record(vulnerabilities_, std::move(vulnerability))) return false;
    indexed_ = false;
    return true;
}

bool Corpus::erase(AttackPatternId id) {
    if (!erase_record(patterns_, id)) return false;
    indexed_ = false;
    return true;
}

bool Corpus::erase(WeaknessId id) {
    if (!erase_record(weaknesses_, id)) return false;
    indexed_ = false;
    return true;
}

bool Corpus::erase(VulnerabilityId id) {
    if (!erase_record(vulnerabilities_, id)) return false;
    indexed_ = false;
    return true;
}

void Corpus::reindex() {
    pattern_by_id_.clear();
    weakness_by_id_.clear();
    vulnerability_by_id_.clear();
    vulns_by_product_.clear();
    vulns_by_weakness_.clear();

    for (std::size_t i = 0; i < patterns_.size(); ++i) {
        if (!pattern_by_id_.emplace(patterns_[i].id, i).second)
            throw ValidationError("duplicate attack pattern id: " + patterns_[i].id.to_string());
    }
    for (std::size_t i = 0; i < weaknesses_.size(); ++i) {
        if (!weakness_by_id_.emplace(weaknesses_[i].id, i).second)
            throw ValidationError("duplicate weakness id: " + weaknesses_[i].id.to_string());
    }
    for (std::size_t i = 0; i < vulnerabilities_.size(); ++i) {
        if (!vulnerability_by_id_.emplace(vulnerabilities_[i].id, i).second)
            throw ValidationError("duplicate vulnerability id: " +
                                  vulnerabilities_[i].id.to_string());
    }

    // Derive weakness.related_patterns from pattern.related_weaknesses.
    for (Weakness& w : weaknesses_) w.related_patterns.clear();
    for (const AttackPattern& p : patterns_) {
        for (WeaknessId wid : p.related_weaknesses) {
            auto it = weakness_by_id_.find(wid);
            if (it != weakness_by_id_.end())
                weaknesses_[it->second].related_patterns.push_back(p.id);
        }
    }
    for (Weakness& w : weaknesses_) {
        std::sort(w.related_patterns.begin(), w.related_patterns.end());
        w.related_patterns.erase(
            std::unique(w.related_patterns.begin(), w.related_patterns.end()),
            w.related_patterns.end());
    }

    // Platform and weakness lookup tables for vulnerabilities.
    for (std::size_t i = 0; i < vulnerabilities_.size(); ++i) {
        for (const Platform& p : vulnerabilities_[i].platforms)
            vulns_by_product_[{p.vendor, p.product}].push_back(i);
        for (WeaknessId w : vulnerabilities_[i].weaknesses)
            vulns_by_weakness_[w].push_back(i);
    }
    for (auto& [_, v] : vulns_by_product_) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    for (auto& [_, v] : vulns_by_weakness_) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    indexed_ = true;
}

void Corpus::require_indexed() const {
    if (!indexed_) throw ValidationError("corpus: reindex() required before cross-reference use");
}

const AttackPattern* Corpus::find(AttackPatternId id) const noexcept {
    auto it = pattern_by_id_.find(id);
    return it == pattern_by_id_.end() ? nullptr : &patterns_[it->second];
}

const Weakness* Corpus::find(WeaknessId id) const noexcept {
    auto it = weakness_by_id_.find(id);
    return it == weakness_by_id_.end() ? nullptr : &weaknesses_[it->second];
}

const Vulnerability* Corpus::find(VulnerabilityId id) const noexcept {
    auto it = vulnerability_by_id_.find(id);
    return it == vulnerability_by_id_.end() ? nullptr : &vulnerabilities_[it->second];
}

std::vector<VulnerabilityId> Corpus::vulnerabilities_for(const Platform& platform) const {
    require_indexed();
    std::vector<VulnerabilityId> out;
    auto it = vulns_by_product_.find({platform.vendor, platform.product});
    if (it == vulns_by_product_.end()) return out;
    for (std::size_t i : it->second) {
        const Vulnerability& v = vulnerabilities_[i];
        bool hit = std::any_of(v.platforms.begin(), v.platforms.end(), [&](const Platform& p) {
            return platform_matches(platform, p);
        });
        if (hit) out.push_back(v.id);
    }
    return out;
}

std::vector<VulnerabilityId> Corpus::vulnerabilities_for(WeaknessId weakness) const {
    require_indexed();
    std::vector<VulnerabilityId> out;
    auto it = vulns_by_weakness_.find(weakness);
    if (it == vulns_by_weakness_.end()) return out;
    out.reserve(it->second.size());
    for (std::size_t i : it->second) out.push_back(vulnerabilities_[i].id);
    return out;
}

std::vector<AttackPatternId> Corpus::patterns_for(WeaknessId weakness) const {
    require_indexed();
    const Weakness* w = find(weakness);
    return w == nullptr ? std::vector<AttackPatternId>{} : w->related_patterns;
}

std::vector<Platform> Corpus::known_platforms() const {
    require_indexed();
    std::vector<Platform> out;
    out.reserve(vulns_by_product_.size());
    for (const auto& [key, indices] : vulns_by_product_) {
        // Representative platform: take part from the first binding.
        const Vulnerability& v = vulnerabilities_[indices.front()];
        for (const Platform& p : v.platforms) {
            if (p.vendor == key.first && p.product == key.second) {
                out.push_back(Platform{p.part, p.vendor, p.product, ""});
                break;
            }
        }
    }
    return out;
}

Corpus::Stats Corpus::stats() const noexcept {
    Stats s;
    s.patterns = patterns_.size();
    s.weaknesses = weaknesses_.size();
    s.vulnerabilities = vulnerabilities_.size();
    for (const AttackPattern& p : patterns_)
        s.pattern_weakness_links += p.related_weaknesses.size();
    for (const Vulnerability& v : vulnerabilities_) {
        s.platform_bindings += v.platforms.size();
        s.vulnerability_weakness_links += v.weaknesses.size();
    }
    return s;
}

} // namespace cybok::kb
