#include "kb/serialize.hpp"

#include "util/bytes.hpp"
#include "util/fault.hpp"

namespace cybok::kb {

namespace {

json::Array strings_to_json(const std::vector<std::string>& items) {
    json::Array a;
    a.reserve(items.size());
    for (const std::string& s : items) a.emplace_back(s);
    return a;
}

std::vector<std::string> strings_from_json(const json::Value& v) {
    std::vector<std::string> out;
    for (const json::Value& e : v.as_array()) out.push_back(e.as_string());
    return out;
}

Rating rating_from_int(std::int64_t i) {
    if (i < 0 || i > 4) throw ValidationError("rating out of range");
    return static_cast<Rating>(i);
}

/// Decode every record of one section. Each record decodes into a local
/// before corpus.add, so a throwing record leaves no partial state. In
/// strict mode (no sink) the first typed error propagates; in lenient
/// mode the record is skipped and described in `diagnostics`.
template <typename Fn>
void decode_records(const json::Value& doc, std::string_view section,
                    std::vector<RecordDiagnostic>* diagnostics, Fn&& decode_one) {
    const json::Array& arr = doc.at(section).as_array();
    for (std::size_t i = 0; i < arr.size(); ++i) {
        try {
            CYBOK_FAULT_POINT("kb.serialize.record",
                              ValidationError("injected: corrupt corpus record"));
            decode_one(arr[i]);
        } catch (const Error& err) {
            if (diagnostics == nullptr) throw;
            diagnostics->push_back({std::string(section), i, err.what()});
        }
    }
}

} // namespace

json::Value to_json(const Corpus& corpus) {
    json::Object root;
    root["format"] = json::Value("cybok-corpus-v1");

    json::Array patterns;
    for (const AttackPattern& p : corpus.patterns()) {
        json::Object o;
        o["id"] = json::Value(static_cast<std::int64_t>(p.id.value));
        o["name"] = json::Value(p.name);
        o["summary"] = json::Value(p.summary);
        o["prerequisites"] = json::Value(strings_to_json(p.prerequisites));
        o["likelihood"] = json::Value(static_cast<std::int64_t>(p.likelihood));
        o["severity"] = json::Value(static_cast<std::int64_t>(p.typical_severity));
        json::Array rel;
        for (WeaknessId w : p.related_weaknesses)
            rel.emplace_back(static_cast<std::int64_t>(w.value));
        o["related_weaknesses"] = json::Value(std::move(rel));
        o["parent"] = json::Value(static_cast<std::int64_t>(p.parent.value));
        o["domains"] = json::Value(strings_to_json(p.domains));
        patterns.emplace_back(std::move(o));
    }
    root["attack_patterns"] = json::Value(std::move(patterns));

    json::Array weaknesses;
    for (const Weakness& w : corpus.weaknesses()) {
        json::Object o;
        o["id"] = json::Value(static_cast<std::int64_t>(w.id.value));
        o["name"] = json::Value(w.name);
        o["description"] = json::Value(w.description);
        o["modes_of_introduction"] = json::Value(strings_to_json(w.modes_of_introduction));
        o["consequences"] = json::Value(strings_to_json(w.consequences));
        o["parent"] = json::Value(static_cast<std::int64_t>(w.parent.value));
        o["applicable_platforms"] = json::Value(strings_to_json(w.applicable_platforms));
        weaknesses.emplace_back(std::move(o));
    }
    root["weaknesses"] = json::Value(std::move(weaknesses));

    json::Array vulns;
    for (const Vulnerability& v : corpus.vulnerabilities()) {
        json::Object o;
        o["year"] = json::Value(static_cast<std::int64_t>(v.id.year));
        o["number"] = json::Value(static_cast<std::int64_t>(v.id.number));
        o["description"] = json::Value(v.description);
        json::Array plats;
        for (const Platform& p : v.platforms) plats.emplace_back(p.uri());
        o["platforms"] = json::Value(std::move(plats));
        json::Array cwes;
        for (WeaknessId w : v.weaknesses) cwes.emplace_back(static_cast<std::int64_t>(w.value));
        o["weaknesses"] = json::Value(std::move(cwes));
        if (!v.cvss_vector.empty()) o["cvss"] = json::Value(v.cvss_vector);
        vulns.emplace_back(std::move(o));
    }
    root["vulnerabilities"] = json::Value(std::move(vulns));
    return json::Value(std::move(root));
}

Corpus corpus_from_json(const json::Value& doc, std::vector<RecordDiagnostic>* diagnostics) {
    if (doc.get_string("format") != "cybok-corpus-v1")
        throw ValidationError("unknown corpus format: " + doc.get_string("format"));
    Corpus corpus;

    decode_records(doc, "attack_patterns", diagnostics, [&](const json::Value& e) {
        AttackPattern p;
        p.id.value = static_cast<std::uint32_t>(e.get_int("id"));
        p.name = e.get_string("name");
        p.summary = e.get_string("summary");
        p.prerequisites = strings_from_json(e.at("prerequisites"));
        p.likelihood = rating_from_int(e.get_int("likelihood", 2));
        p.typical_severity = rating_from_int(e.get_int("severity", 2));
        for (const json::Value& w : e.at("related_weaknesses").as_array())
            p.related_weaknesses.push_back(WeaknessId{static_cast<std::uint32_t>(w.as_int())});
        p.parent.value = static_cast<std::uint32_t>(e.get_int("parent"));
        p.domains = strings_from_json(e.at("domains"));
        corpus.add(std::move(p));
    });

    decode_records(doc, "weaknesses", diagnostics, [&](const json::Value& e) {
        Weakness w;
        w.id.value = static_cast<std::uint32_t>(e.get_int("id"));
        w.name = e.get_string("name");
        w.description = e.get_string("description");
        w.modes_of_introduction = strings_from_json(e.at("modes_of_introduction"));
        w.consequences = strings_from_json(e.at("consequences"));
        w.parent.value = static_cast<std::uint32_t>(e.get_int("parent"));
        w.applicable_platforms = strings_from_json(e.at("applicable_platforms"));
        corpus.add(std::move(w));
    });

    decode_records(doc, "vulnerabilities", diagnostics, [&](const json::Value& e) {
        Vulnerability v;
        v.id.year = static_cast<std::uint32_t>(e.get_int("year"));
        v.id.number = static_cast<std::uint32_t>(e.get_int("number"));
        v.description = e.get_string("description");
        for (const json::Value& p : e.at("platforms").as_array())
            v.platforms.push_back(Platform::parse(p.as_string()));
        for (const json::Value& w : e.at("weaknesses").as_array())
            v.weaknesses.push_back(WeaknessId{static_cast<std::uint32_t>(w.as_int())});
        v.cvss_vector = e.get_string("cvss");
        corpus.add(std::move(v));
    });

    corpus.reindex();
    return corpus;
}

void save_corpus(const std::string& path, const Corpus& corpus) {
    json::save_file(path, to_json(corpus), 0);
}

Corpus load_corpus(const std::string& path, std::vector<RecordDiagnostic>* diagnostics) {
    // read_file pulls the whole corpus into a pre-sized buffer with one
    // read; the parser then works over the view without re-copying.
    return corpus_from_json(json::parse(util::read_file(path)), diagnostics);
}

} // namespace cybok::kb
