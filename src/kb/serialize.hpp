// JSON (de)serialization of the attack-vector corpus — the on-disk form
// corresponding to the downloadable MITRE snapshots the paper's tools
// consume. The format is stable and diff-friendly (ordered keys).

#pragma once

#include <string>
#include <vector>

#include "kb/corpus.hpp"
#include "util/json.hpp"

namespace cybok::kb {

/// Corpus -> JSON document (records only; indexes are rebuilt on load).
[[nodiscard]] json::Value to_json(const Corpus& corpus);

/// One skipped record from a lenient corpus load: which array it came
/// from, its index there, and the typed error's message.
struct RecordDiagnostic {
    std::string section; ///< "attack_patterns" | "weaknesses" | "vulnerabilities"
    std::size_t index = 0;
    std::string error;
};

/// JSON document -> Corpus (reindexed and ready to query).
/// Throws ParseError / ValidationError on schema violations.
///
/// When `diagnostics` is non-null the load is *lenient*: a record whose
/// decode throws a typed error is skipped and described in `diagnostics`
/// (a feed with a handful of mangled entries degrades to a slightly
/// smaller corpus instead of an all-or-nothing failure). Document-level
/// violations (wrong format tag, missing arrays) still propagate.
[[nodiscard]] Corpus corpus_from_json(const json::Value& doc,
                                      std::vector<RecordDiagnostic>* diagnostics = nullptr);

/// File helpers.
void save_corpus(const std::string& path, const Corpus& corpus);
[[nodiscard]] Corpus load_corpus(const std::string& path,
                                 std::vector<RecordDiagnostic>* diagnostics = nullptr);

} // namespace cybok::kb
