// JSON (de)serialization of the attack-vector corpus — the on-disk form
// corresponding to the downloadable MITRE snapshots the paper's tools
// consume. The format is stable and diff-friendly (ordered keys).

#pragma once

#include <string>

#include "kb/corpus.hpp"
#include "util/json.hpp"

namespace cybok::kb {

/// Corpus -> JSON document (records only; indexes are rebuilt on load).
[[nodiscard]] json::Value to_json(const Corpus& corpus);

/// JSON document -> Corpus (reindexed and ready to query).
/// Throws ParseError / ValidationError on schema violations.
[[nodiscard]] Corpus corpus_from_json(const json::Value& doc);

/// File helpers.
void save_corpus(const std::string& path, const Corpus& corpus);
[[nodiscard]] Corpus load_corpus(const std::string& path);

} // namespace cybok::kb
