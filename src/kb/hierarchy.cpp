#include "kb/hierarchy.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace cybok::kb {

Hierarchy::Hierarchy(const Corpus& corpus) : corpus_(corpus) {
    for (const Weakness& w : corpus.weaknesses())
        if (w.parent.value != 0) weakness_children_[w.parent].push_back(w.id);
    for (const AttackPattern& p : corpus.patterns())
        if (p.parent.value != 0) pattern_children_[p.parent].push_back(p.id);
    for (auto& [_, v] : weakness_children_) std::sort(v.begin(), v.end());
    for (auto& [_, v] : pattern_children_) std::sort(v.begin(), v.end());
}

namespace {

template <typename Id, typename Lookup>
std::vector<Id> walk_ancestors(Id id, Lookup&& parent_of) {
    std::vector<Id> chain;
    std::set<Id> seen{id};
    for (Id p = parent_of(id); p.value != 0; p = parent_of(p)) {
        if (!seen.insert(p).second)
            throw ValidationError("hierarchy: parent cycle at id " + std::to_string(p.value));
        chain.push_back(p);
    }
    return chain;
}

} // namespace

std::vector<WeaknessId> Hierarchy::ancestors(WeaknessId id) const {
    return walk_ancestors(id, [this](WeaknessId w) {
        const Weakness* rec = corpus_.find(w);
        return rec == nullptr ? WeaknessId{0} : rec->parent;
    });
}

std::vector<AttackPatternId> Hierarchy::ancestors(AttackPatternId id) const {
    return walk_ancestors(id, [this](AttackPatternId p) {
        const AttackPattern* rec = corpus_.find(p);
        return rec == nullptr ? AttackPatternId{0} : rec->parent;
    });
}

WeaknessId Hierarchy::root(WeaknessId id) const {
    std::vector<WeaknessId> chain = ancestors(id);
    return chain.empty() ? id : chain.back();
}

AttackPatternId Hierarchy::root(AttackPatternId id) const {
    std::vector<AttackPatternId> chain = ancestors(id);
    return chain.empty() ? id : chain.back();
}

std::vector<WeaknessId> Hierarchy::children(WeaknessId id) const {
    auto it = weakness_children_.find(id);
    return it == weakness_children_.end() ? std::vector<WeaknessId>{} : it->second;
}

std::vector<AttackPatternId> Hierarchy::children(AttackPatternId id) const {
    auto it = pattern_children_.find(id);
    return it == pattern_children_.end() ? std::vector<AttackPatternId>{} : it->second;
}

std::vector<WeaknessId> Hierarchy::descendants(WeaknessId id) const {
    std::vector<WeaknessId> out;
    std::vector<WeaknessId> frontier = children(id);
    std::set<WeaknessId> seen;
    while (!frontier.empty()) {
        WeaknessId w = frontier.back();
        frontier.pop_back();
        if (!seen.insert(w).second) continue;
        out.push_back(w);
        for (WeaknessId c : children(w)) frontier.push_back(c);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t Hierarchy::depth(WeaknessId id) const { return ancestors(id).size(); }

std::vector<WeaknessId> Hierarchy::weakness_roots() const {
    std::vector<WeaknessId> out;
    for (const Weakness& w : corpus_.weaknesses())
        if (w.parent.value == 0) out.push_back(w.id);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace cybok::kb
