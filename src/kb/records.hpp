// The three attack-vector record families the paper's pipeline consumes
// ("databases containing vulnerability, weakness, and attack pattern data,
// such as the ones published by MITRE"), mirrored on CAPEC, CWE, and
// CVE/NVD schemas respectively, restricted to the fields the design-phase
// association actually uses.
//
// The cross-reference structure matters as much as the records themselves:
// attack patterns cite the weaknesses they exploit (attacker perspective),
// vulnerabilities cite the weakness class they instantiate and the
// platforms they bind to (system-owner perspective). The paper argues a
// security posture is incomplete without all three views.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kb/platform.hpp"

namespace cybok::kb {

/// Identifier newtypes; values mirror MITRE numbering ("CAPEC-88",
/// "CWE-78", "CVE-2020-12345" keep only the numeric core).
struct AttackPatternId {
    std::uint32_t value = 0;
    [[nodiscard]] std::string to_string() const { return "CAPEC-" + std::to_string(value); }
    friend auto operator<=>(const AttackPatternId&, const AttackPatternId&) = default;
};

struct WeaknessId {
    std::uint32_t value = 0;
    [[nodiscard]] std::string to_string() const { return "CWE-" + std::to_string(value); }
    friend auto operator<=>(const WeaknessId&, const WeaknessId&) = default;
};

struct VulnerabilityId {
    std::uint32_t year = 0;
    std::uint32_t number = 0;
    [[nodiscard]] std::string to_string() const {
        return "CVE-" + std::to_string(year) + "-" + std::to_string(number);
    }
    friend auto operator<=>(const VulnerabilityId&, const VulnerabilityId&) = default;
};

/// Qualitative likelihood / severity scale used by CAPEC records.
enum class Rating { VeryLow, Low, Medium, High, VeryHigh };
[[nodiscard]] std::string_view rating_name(Rating r) noexcept;

/// CAPEC-like attack pattern: the attacker's perspective. High-level,
/// described in terms of techniques and preconditions rather than specific
/// products — which is why high-level model attributes match patterns.
struct AttackPattern {
    AttackPatternId id;
    std::string name;
    std::string summary;
    std::vector<std::string> prerequisites;
    Rating likelihood = Rating::Medium;
    Rating typical_severity = Rating::Medium;
    /// Weaknesses this pattern exploits (CWE references).
    std::vector<WeaknessId> related_weaknesses;
    /// Parent pattern in the CAPEC hierarchy (0 = none).
    AttackPatternId parent;
    /// Domains of attack ("software", "hardware", "communications"...).
    std::vector<std::string> domains;
};

/// CWE-like weakness: a class of flaw. Sits between the attacker's and the
/// owner's perspective; cites both patterns that exploit it and is cited by
/// vulnerabilities that instantiate it.
struct Weakness {
    WeaknessId id;
    std::string name;
    std::string description;
    /// Lifecycle phases where the flaw is introduced ("Design",
    /// "Implementation"...). Design-phase weaknesses are the ones the
    /// paper's early-lifecycle analysis can still prevent cheaply.
    std::vector<std::string> modes_of_introduction;
    /// Typical consequences ("integrity: modify application data", ...).
    std::vector<std::string> consequences;
    /// Patterns known to exploit this weakness (reverse of
    /// AttackPattern::related_weaknesses; maintained by the corpus index).
    std::vector<AttackPatternId> related_patterns;
    /// Parent weakness in the CWE hierarchy (0 = none).
    WeaknessId parent;
    /// Platform classes where the weakness commonly occurs ("linux",
    /// "windows", "ics"...). Empty = language/platform independent.
    std::vector<std::string> applicable_platforms;
};

/// CVE-like vulnerability: a concrete flaw in a concrete product version.
/// Matches only low-level (implementation-fidelity) model attributes.
struct Vulnerability {
    VulnerabilityId id;
    std::string description;
    /// Platforms (CPE-style) the flaw applies to.
    std::vector<Platform> platforms;
    /// Weakness classification (CWE references), possibly empty (NVD's
    /// "NVD-CWE-noinfo" case).
    std::vector<WeaknessId> weaknesses;
    /// CVSS v3.1 vector string; empty when unscored.
    std::string cvss_vector;
};

} // namespace cybok::kb
