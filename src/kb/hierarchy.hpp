// Hierarchy utilities over CWE/CAPEC parent links. Both taxonomies are
// trees (pillar -> class -> base -> variant); the paper's proposed
// mitigation for early-lifecycle noise — "abstract away vulnerabilities at
// the earlier stages" — needs exactly this machinery: walk a concrete
// finding up to the abstraction level that matches the model's fidelity.

#pragma once

#include <map>
#include <vector>

#include "kb/corpus.hpp"

namespace cybok::kb {

/// Parent-link traversal for weaknesses (CWE) and attack patterns (CAPEC)
/// over one corpus. Construction is O(records); queries are O(depth).
class Hierarchy {
public:
    explicit Hierarchy(const Corpus& corpus);

    /// Chain of ancestors from the record's parent up to its root.
    /// Unknown ids or records without parents yield an empty chain.
    /// Malformed corpora with parent cycles throw ValidationError.
    [[nodiscard]] std::vector<WeaknessId> ancestors(WeaknessId id) const;
    [[nodiscard]] std::vector<AttackPatternId> ancestors(AttackPatternId id) const;

    /// Topmost ancestor (the record itself when it has no parent).
    [[nodiscard]] WeaknessId root(WeaknessId id) const;
    [[nodiscard]] AttackPatternId root(AttackPatternId id) const;

    /// Direct children.
    [[nodiscard]] std::vector<WeaknessId> children(WeaknessId id) const;
    [[nodiscard]] std::vector<AttackPatternId> children(AttackPatternId id) const;

    /// All records in the subtree rooted at `id` (excluding `id`).
    [[nodiscard]] std::vector<WeaknessId> descendants(WeaknessId id) const;

    /// Distance from the root (root = 0).
    [[nodiscard]] std::size_t depth(WeaknessId id) const;

    /// Every weakness with no parent, ascending by id.
    [[nodiscard]] std::vector<WeaknessId> weakness_roots() const;

private:
    const Corpus& corpus_;
    std::map<WeaknessId, std::vector<WeaknessId>> weakness_children_;
    std::map<AttackPatternId, std::vector<AttackPatternId>> pattern_children_;
};

} // namespace cybok::kb
