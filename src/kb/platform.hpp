// CPE-style structured platform naming and matching.
//
// Vulnerability records bind to platforms ("cpe:2.3:o:ni:rt_linux:*:..."),
// and low-fidelity model attributes name platforms loosely ("NI RT Linux
// OS"). This file gives both a canonical structured form and the matching
// rules the search engine uses for the exact-platform association path.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cybok::kb {

/// The CPE "part" field: application, operating system, or hardware.
enum class PlatformPart { Application, OperatingSystem, Hardware };

[[nodiscard]] char platform_part_code(PlatformPart p) noexcept;
[[nodiscard]] std::string_view platform_part_name(PlatformPart p) noexcept;

/// A structured platform name, modeled on CPE 2.3 with the fields that
/// matter for design-phase matching. "*" (ANY) is expressed as an empty
/// version string.
struct Platform {
    PlatformPart part = PlatformPart::Application;
    std::string vendor;   // lowercase, '_' for spaces: "ni", "cisco"
    std::string product;  // "rt_linux", "asa", "labview"
    std::string version;  // "" = ANY, otherwise e.g. "7", "9063"

    /// Canonical "cpe:2.3:<part>:<vendor>:<product>:<version>" string
    /// (trailing ANY fields rendered as '*').
    [[nodiscard]] std::string uri() const;

    /// Parse the canonical form produced by uri(). Accepts full 13-field
    /// CPE 2.3 names; fields past version are ignored. Throws ParseError.
    [[nodiscard]] static Platform parse(std::string_view uri);

    friend bool operator==(const Platform&, const Platform&) = default;
    friend auto operator<=>(const Platform&, const Platform&) = default;
};

/// CPE-style matching: `pattern` matches `target` when vendor and product
/// are equal and pattern.version is ANY or equal to target.version.
/// Part must agree.
[[nodiscard]] bool platform_matches(const Platform& pattern, const Platform& target) noexcept;

/// Normalize a free-form product phrase to CPE token form:
/// "NI RT Linux OS" -> "ni_rt_linux_os" (lowercase, runs of
/// non-alphanumerics collapsed to single underscores).
[[nodiscard]] std::string normalize_product_token(std::string_view phrase);

} // namespace cybok::kb
