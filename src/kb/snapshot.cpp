#include "kb/snapshot.hpp"

#include "util/fault.hpp"

namespace cybok::kb {

namespace {

constexpr std::string_view kMagic = "CYBOKSNP"; // 8 bytes
constexpr std::size_t kHeaderSize = kSnapshotHeaderSize;

void freeze_strings(util::ByteWriter& w, const std::vector<std::string>& items) {
    w.u32(static_cast<std::uint32_t>(items.size()));
    for (const std::string& s : items) w.str(s);
}

std::vector<std::string> thaw_strings(util::ByteReader& r) {
    const std::uint32_t n = r.u32();
    std::vector<std::string> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.str());
    return out;
}

void freeze_platform(util::ByteWriter& w, const Platform& p) {
    w.u8(static_cast<std::uint8_t>(p.part));
    w.str(p.vendor);
    w.str(p.product);
    w.str(p.version);
}

Platform thaw_platform(util::ByteReader& r) {
    Platform p;
    const std::uint8_t part = r.u8();
    if (part > static_cast<std::uint8_t>(PlatformPart::Hardware))
        throw SnapshotError("snapshot: platform part out of range");
    p.part = static_cast<PlatformPart>(part);
    p.vendor = r.str();
    p.product = r.str();
    p.version = r.str();
    return p;
}

Rating thaw_rating(util::ByteReader& r) {
    const std::uint8_t v = r.u8();
    if (v > static_cast<std::uint8_t>(Rating::VeryHigh))
        throw SnapshotError("snapshot: rating out of range");
    return static_cast<Rating>(v);
}

} // namespace

std::string seal_snapshot(std::string_view eager, std::string_view slabs) {
    CYBOK_FAULT_POINT("kb.snapshot.seal", SnapshotError("injected: snapshot seal failed"));
    const std::size_t slab_begin = snapshot_slab_offset(eager.size());
    std::string out;
    out.reserve(slab_begin + slabs.size());
    out.append(kMagic);
    util::ByteWriter fields;
    fields.u32(kSnapshotVersion);
    fields.u64(eager.size());
    fields.u64(slabs.size());
    fields.u64(util::fnv1a64(eager));
    fields.u64(util::fnv1a64(slabs));
    out.append(fields.bytes());
    out.resize(kHeaderSize, '\0'); // reserved header tail, deterministic zeros
    out.append(eager);
    out.resize(slab_begin, '\0'); // alignment padding, deterministic zeros
    out.append(slabs);
    return out;
}

SnapshotSections open_snapshot(std::string_view blob, std::string_view source,
                               bool verify_slab_checksum) {
    const std::string path(source);
    CYBOK_FAULT_POINT("kb.snapshot.open",
                      SnapshotError("injected: snapshot rejected", path, 0));
    if (blob.size() < kHeaderSize || blob.substr(0, kMagic.size()) != kMagic)
        throw SnapshotError("snapshot: bad magic (not a CYBOK snapshot)", path, 0);
    util::ByteReader r(blob.substr(kMagic.size()));
    const std::uint32_t version = r.u32();
    if (version != kSnapshotVersion)
        throw SnapshotError("snapshot: version mismatch (blob v" + std::to_string(version) +
                                ", expected v" + std::to_string(kSnapshotVersion) + ")",
                            path, kMagic.size());
    const std::uint64_t eager_size = r.u64();
    const std::uint64_t slab_size = r.u64();
    const std::uint64_t eager_checksum = r.u64();
    const std::uint64_t slab_checksum = r.u64();
    // Reject absurd sizes before computing offsets, so the arithmetic
    // below cannot overflow on a hostile header.
    if (eager_size > blob.size() || slab_size > blob.size())
        throw SnapshotError("snapshot: truncated payload", path, blob.size());
    const std::size_t slab_begin = snapshot_slab_offset(static_cast<std::size_t>(eager_size));
    const std::size_t total = slab_begin + static_cast<std::size_t>(slab_size);
    if (blob.size() < total)
        throw SnapshotError("snapshot: truncated payload", path, blob.size());
    if (blob.size() > total)
        throw SnapshotError("snapshot: trailing bytes after payload", path, total);
    SnapshotSections sections;
    sections.eager = blob.substr(kHeaderSize, static_cast<std::size_t>(eager_size));
    sections.slabs = blob.substr(slab_begin);
    if (util::fnv1a64(sections.eager) != eager_checksum)
        throw SnapshotError("snapshot: checksum mismatch", path, kMagic.size() + 4 + 16);
    if (verify_slab_checksum && util::fnv1a64(sections.slabs) != slab_checksum)
        throw SnapshotError("snapshot: slab checksum mismatch", path, kMagic.size() + 4 + 24);
    return sections;
}

void freeze_record(util::ByteWriter& w, const AttackPattern& p) {
    w.u32(p.id.value);
    w.str(p.name);
    w.str(p.summary);
    freeze_strings(w, p.prerequisites);
    w.u8(static_cast<std::uint8_t>(p.likelihood));
    w.u8(static_cast<std::uint8_t>(p.typical_severity));
    w.u32(static_cast<std::uint32_t>(p.related_weaknesses.size()));
    for (WeaknessId wid : p.related_weaknesses) w.u32(wid.value);
    w.u32(p.parent.value);
    freeze_strings(w, p.domains);
}

void freeze_record(util::ByteWriter& w, const Weakness& wk) {
    w.u32(wk.id.value);
    w.str(wk.name);
    w.str(wk.description);
    freeze_strings(w, wk.modes_of_introduction);
    freeze_strings(w, wk.consequences);
    // related_patterns is derived (rebuilt by reindex), not serialized.
    w.u32(wk.parent.value);
    freeze_strings(w, wk.applicable_platforms);
}

void freeze_record(util::ByteWriter& w, const Vulnerability& v) {
    w.u32(v.id.year);
    w.u32(v.id.number);
    w.str(v.description);
    w.u32(static_cast<std::uint32_t>(v.platforms.size()));
    for (const Platform& p : v.platforms) freeze_platform(w, p);
    w.u32(static_cast<std::uint32_t>(v.weaknesses.size()));
    for (WeaknessId wid : v.weaknesses) w.u32(wid.value);
    w.str(v.cvss_vector);
}

AttackPattern thaw_pattern(util::ByteReader& r) {
    AttackPattern p;
    p.id.value = r.u32();
    p.name = r.str();
    p.summary = r.str();
    p.prerequisites = thaw_strings(r);
    p.likelihood = thaw_rating(r);
    p.typical_severity = thaw_rating(r);
    const std::uint32_t n_rel = r.u32();
    p.related_weaknesses.reserve(n_rel);
    for (std::uint32_t j = 0; j < n_rel; ++j) p.related_weaknesses.push_back({r.u32()});
    p.parent.value = r.u32();
    p.domains = thaw_strings(r);
    return p;
}

Weakness thaw_weakness(util::ByteReader& r) {
    Weakness wk;
    wk.id.value = r.u32();
    wk.name = r.str();
    wk.description = r.str();
    wk.modes_of_introduction = thaw_strings(r);
    wk.consequences = thaw_strings(r);
    wk.parent.value = r.u32();
    wk.applicable_platforms = thaw_strings(r);
    return wk;
}

Vulnerability thaw_vulnerability(util::ByteReader& r) {
    Vulnerability v;
    v.id.year = r.u32();
    v.id.number = r.u32();
    v.description = r.str();
    const std::uint32_t n_plat = r.u32();
    v.platforms.reserve(n_plat);
    for (std::uint32_t j = 0; j < n_plat; ++j) v.platforms.push_back(thaw_platform(r));
    const std::uint32_t n_cwe = r.u32();
    v.weaknesses.reserve(n_cwe);
    for (std::uint32_t j = 0; j < n_cwe; ++j) v.weaknesses.push_back({r.u32()});
    v.cvss_vector = r.str();
    return v;
}

void freeze_corpus(util::ByteWriter& w, const Corpus& corpus) {
    w.u32(static_cast<std::uint32_t>(corpus.patterns().size()));
    for (const AttackPattern& p : corpus.patterns()) freeze_record(w, p);

    w.u32(static_cast<std::uint32_t>(corpus.weaknesses().size()));
    for (const Weakness& wk : corpus.weaknesses()) freeze_record(w, wk);

    w.u32(static_cast<std::uint32_t>(corpus.vulnerabilities().size()));
    for (const Vulnerability& v : corpus.vulnerabilities()) freeze_record(w, v);
}

Corpus thaw_corpus(util::ByteReader& r) {
    Corpus corpus;

    const std::uint32_t n_patterns = r.u32();
    for (std::uint32_t i = 0; i < n_patterns; ++i) corpus.add(thaw_pattern(r));

    const std::uint32_t n_weaknesses = r.u32();
    for (std::uint32_t i = 0; i < n_weaknesses; ++i) corpus.add(thaw_weakness(r));

    const std::uint32_t n_vulns = r.u32();
    for (std::uint32_t i = 0; i < n_vulns; ++i) corpus.add(thaw_vulnerability(r));

    corpus.reindex();
    return corpus;
}

} // namespace cybok::kb
