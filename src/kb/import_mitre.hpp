// Importers for the MITRE catalog XML formats — the distribution formats
// of CWE (cwec_v4.x.xml) and CAPEC (capec_v3.x.xml) that the paper's
// prototype ingests for weakness and attack-pattern data. The subset read
// is what the association pipeline uses: ids, names, prose, parent
// (ChildOf) links, pattern->weakness references, likelihood/severity, and
// applicable platforms. Matching exporters produce catalog-shaped XML
// from a corpus for round-trip tests and offline fixtures.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "kb/corpus.hpp"
#include "util/xml.hpp"

namespace cybok::kb {

struct MitreImportStats {
    std::size_t records = 0;
    std::size_t imported = 0;
    std::size_t deprecated_skipped = 0; ///< Status="Deprecated" records
};

/// Parse a CWE weakness catalog document ("Weakness_Catalog" root).
/// Throws ParseError / ValidationError on structurally invalid documents;
/// deprecated entries are skipped and counted.
[[nodiscard]] std::vector<Weakness> import_cwe_catalog(const xml::Node& root,
                                                       MitreImportStats* stats = nullptr);
[[nodiscard]] std::vector<Weakness> import_cwe_catalog_text(std::string_view text,
                                                            MitreImportStats* stats = nullptr);

/// Parse a CAPEC attack-pattern catalog ("Attack_Pattern_Catalog" root).
[[nodiscard]] std::vector<AttackPattern> import_capec_catalog(const xml::Node& root,
                                                              MitreImportStats* stats = nullptr);
[[nodiscard]] std::vector<AttackPattern> import_capec_catalog_text(
    std::string_view text, MitreImportStats* stats = nullptr);

/// Render corpus records as catalog-shaped XML.
[[nodiscard]] std::string export_cwe_catalog(const std::vector<Weakness>& weaknesses);
[[nodiscard]] std::string export_capec_catalog(const std::vector<AttackPattern>& patterns);

/// Assemble a full corpus from the three MITRE-format documents (CWE XML,
/// CAPEC XML, NVD JSON text). Reindexed and ready to query.
[[nodiscard]] Corpus corpus_from_mitre(std::string_view cwe_xml, std::string_view capec_xml,
                                       std::string_view nvd_json);

} // namespace cybok::kb
