// Incremental corpus updates — the feed-tick unit of the segmented
// indexing path. A CorpusDelta names records to withdraw and records to
// upsert; apply_corpus_delta edits a Corpus in place, transactionally:
// the whole delta is validated against the pre-delta corpus before any
// mutation, so a rejected delta (or an injected "kb.delta.apply" fault)
// leaves the corpus byte-identical to its prior state.
//
// Semantics, per record family:
//   1. Withdrawals apply first. Every withdrawn id must exist in the
//      pre-delta corpus (delta-only records included once a previous
//      delta added them — "pre-delta" means before THIS delta).
//   2. Upserts apply second. An upsert whose id survives step 1 replaces
//      that record in place (corpus position preserved — a *modify*); any
//      other id appends (an *add*). A record withdrawn and re-upserted in
//      the same delta therefore re-enters as a fresh append.
//
// Rejected with ValidationError, corpus untouched: duplicate upsert ids
// within the delta, duplicate withdrawal ids, withdrawal of an unknown
// id, an id both withdrawn and... (withdraw+upsert of the same id is
// legal — see above), and applying to a corpus that was never reindexed.
//
// The wire form (freeze/thaw) reuses the v2 snapshot frame from
// kb/snapshot.hpp — header + checksummed eager section, empty slab
// section — with a delta submagic, so the serve layer ships deltas with
// the same integrity guarantees as full snapshots.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "kb/corpus.hpp"

namespace cybok::kb {

/// One batch of corpus edits. Order within each vector is preserved on
/// apply (appends land in upsert order).
struct CorpusDelta {
    // Upserts: replace-in-place when the id already exists, append otherwise.
    std::vector<AttackPattern> patterns;
    std::vector<Weakness> weaknesses;
    std::vector<Vulnerability> vulnerabilities;

    // Withdrawals: ids that must exist in the pre-delta corpus.
    std::vector<AttackPatternId> withdraw_patterns;
    std::vector<WeaknessId> withdraw_weaknesses;
    std::vector<VulnerabilityId> withdraw_vulnerabilities;

    [[nodiscard]] bool empty() const noexcept {
        return patterns.empty() && weaknesses.empty() && vulnerabilities.empty() &&
               withdraw_patterns.empty() && withdraw_weaknesses.empty() &&
               withdraw_vulnerabilities.empty();
    }

    /// Records named by this delta (upserts + withdrawals, all families).
    [[nodiscard]] std::size_t size() const noexcept {
        return patterns.size() + weaknesses.size() + vulnerabilities.size() +
               withdraw_patterns.size() + withdraw_weaknesses.size() +
               withdraw_vulnerabilities.size();
    }
};

/// What apply_corpus_delta did, by family. An upsert counts as *modified*
/// when it replaced a surviving record in place and *added* when it
/// appended (new id, or an id withdrawn earlier in the same delta).
struct DeltaApplyReport {
    struct Family {
        std::size_t added = 0;
        std::size_t modified = 0;
        std::size_t withdrawn = 0;
    };
    Family patterns;
    Family weaknesses;
    Family vulnerabilities;

    [[nodiscard]] std::size_t total() const noexcept {
        return patterns.added + patterns.modified + patterns.withdrawn + weaknesses.added +
               weaknesses.modified + weaknesses.withdrawn + vulnerabilities.added +
               vulnerabilities.modified + vulnerabilities.withdrawn;
    }
};

/// Apply `delta` to `corpus` (which must be indexed), validate-before-
/// mutate; reindexes on success. Cost is O(delta records + corpus ids):
/// no text analysis happens here. Fault site "kb.delta.apply" fires
/// before validation, so an injected failure observes the transactional
/// contract: the corpus is unchanged.
DeltaApplyReport apply_corpus_delta(Corpus& corpus, const CorpusDelta& delta);

/// Wire codec: a self-framed blob (v2 snapshot frame, delta submagic,
/// empty slab section). thaw rejects malformed frames with SnapshotError
/// and malformed payloads with SnapshotError/ValidationError; `source`
/// (originating file path, if any) is threaded into frame errors.
[[nodiscard]] std::string freeze_corpus_delta(const CorpusDelta& delta);
[[nodiscard]] CorpusDelta thaw_corpus_delta(std::string_view blob, std::string_view source = {});

} // namespace cybok::kb
