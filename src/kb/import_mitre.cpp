#include "kb/import_mitre.hpp"

#include <sstream>

#include "kb/import_nvd.hpp"
#include "util/strings.hpp"

namespace cybok::kb {

namespace {

std::uint32_t parse_id_attr(const xml::Node& node) {
    const std::string id = node.attr("ID");
    if (id.empty()) throw ParseError("catalog entry without ID attribute");
    try {
        return static_cast<std::uint32_t>(std::stoul(id));
    } catch (const std::exception&) {
        throw ParseError("malformed catalog ID: " + id);
    }
}

/// First ChildOf reference id in a Related_Weaknesses/Related_Attack_
/// Patterns block (the catalogs allow several; the primary parent is the
/// one the hierarchy uses).
std::uint32_t parent_from_related(const xml::Node& entry, std::string_view block_name,
                                  std::string_view child_name,
                                  std::string_view id_attr) {
    const xml::Node* block = entry.child(block_name);
    if (block == nullptr) return 0;
    for (const xml::Node* rel : block->children_named(child_name)) {
        if (rel->attr("Nature") != "ChildOf") continue;
        try {
            return static_cast<std::uint32_t>(std::stoul(rel->attr(id_attr)));
        } catch (const std::exception&) {
            continue;
        }
    }
    return 0;
}

Rating rating_from_text(std::string_view text) {
    if (strings::iequals(text, "Very Low")) return Rating::VeryLow;
    if (strings::iequals(text, "Low")) return Rating::Low;
    if (strings::iequals(text, "High")) return Rating::High;
    if (strings::iequals(text, "Very High")) return Rating::VeryHigh;
    return Rating::Medium;
}

std::string_view rating_text(Rating r) { return rating_name(r); }

std::string squeeze(std::string_view s) { return std::string(strings::trim(s)); }

} // namespace

// -------------------------------------------------------------------- CWE

std::vector<Weakness> import_cwe_catalog(const xml::Node& root, MitreImportStats* stats) {
    if (root.name != "Weakness_Catalog")
        throw ValidationError("not a CWE catalog: root is <" + root.name + ">");
    const xml::Node* list = root.child("Weaknesses");
    if (list == nullptr) throw ValidationError("CWE catalog without <Weaknesses>");

    MitreImportStats local;
    std::vector<Weakness> out;
    for (const xml::Node* entry : list->children_named("Weakness")) {
        ++local.records;
        if (entry->attr("Status") == "Deprecated") {
            ++local.deprecated_skipped;
            continue;
        }
        Weakness w;
        w.id = WeaknessId{parse_id_attr(*entry)};
        w.name = entry->attr("Name");
        w.description = squeeze(entry->child_text("Description"));
        w.parent = WeaknessId{parent_from_related(*entry, "Related_Weaknesses",
                                                  "Related_Weakness", "CWE_ID")};

        if (const xml::Node* modes = entry->child("Modes_Of_Introduction")) {
            for (const xml::Node* intro : modes->children_named("Introduction"))
                w.modes_of_introduction.push_back(squeeze(intro->child_text("Phase")));
        }
        if (const xml::Node* consequences = entry->child("Common_Consequences")) {
            for (const xml::Node* cons : consequences->children_named("Consequence")) {
                std::string scope = squeeze(cons->child_text("Scope"));
                std::string impact = squeeze(cons->child_text("Impact"));
                if (!scope.empty() || !impact.empty())
                    w.consequences.push_back(scope + ": " + impact);
            }
        }
        if (const xml::Node* platforms = entry->child("Applicable_Platforms")) {
            for (const xml::Node& p : platforms->children) {
                std::string name = p.attr("Name", p.attr("Class"));
                if (!name.empty()) w.applicable_platforms.push_back(strings::to_lower(name));
            }
        }
        out.push_back(std::move(w));
        ++local.imported;
    }
    if (stats != nullptr) *stats = local;
    return out;
}

std::vector<Weakness> import_cwe_catalog_text(std::string_view text, MitreImportStats* stats) {
    return import_cwe_catalog(xml::parse(text), stats);
}

// ------------------------------------------------------------------ CAPEC

std::vector<AttackPattern> import_capec_catalog(const xml::Node& root,
                                                MitreImportStats* stats) {
    if (root.name != "Attack_Pattern_Catalog")
        throw ValidationError("not a CAPEC catalog: root is <" + root.name + ">");
    const xml::Node* list = root.child("Attack_Patterns");
    if (list == nullptr) throw ValidationError("CAPEC catalog without <Attack_Patterns>");

    MitreImportStats local;
    std::vector<AttackPattern> out;
    for (const xml::Node* entry : list->children_named("Attack_Pattern")) {
        ++local.records;
        if (entry->attr("Status") == "Deprecated") {
            ++local.deprecated_skipped;
            continue;
        }
        AttackPattern p;
        p.id = AttackPatternId{parse_id_attr(*entry)};
        p.name = entry->attr("Name");
        p.summary = squeeze(entry->child_text("Description"));
        p.parent = AttackPatternId{parent_from_related(*entry, "Related_Attack_Patterns",
                                                       "Related_Attack_Pattern",
                                                       "CAPEC_ID")};
        p.likelihood = rating_from_text(squeeze(entry->child_text("Likelihood_Of_Attack")));
        p.typical_severity = rating_from_text(squeeze(entry->child_text("Typical_Severity")));

        if (const xml::Node* prereqs = entry->child("Prerequisites")) {
            for (const xml::Node* pre : prereqs->children_named("Prerequisite"))
                p.prerequisites.push_back(squeeze(pre->text));
        }
        if (const xml::Node* related = entry->child("Related_Weaknesses")) {
            for (const xml::Node* rel : related->children_named("Related_Weakness")) {
                try {
                    p.related_weaknesses.push_back(WeaknessId{
                        static_cast<std::uint32_t>(std::stoul(rel->attr("CWE_ID")))});
                } catch (const std::exception&) {
                    // Tolerate malformed references as real catalogs do.
                }
            }
        }
        if (const xml::Node* domains = entry->child("Domains_Of_Attack")) {
            for (const xml::Node* d : domains->children_named("Domain"))
                p.domains.push_back(strings::to_lower(squeeze(d->text)));
        }
        out.push_back(std::move(p));
        ++local.imported;
    }
    if (stats != nullptr) *stats = local;
    return out;
}

std::vector<AttackPattern> import_capec_catalog_text(std::string_view text,
                                                     MitreImportStats* stats) {
    return import_capec_catalog(xml::parse(text), stats);
}

// --------------------------------------------------------------- exporters

std::string export_cwe_catalog(const std::vector<Weakness>& weaknesses) {
    std::ostringstream out;
    out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
        << "<Weakness_Catalog Name=\"CWE\" Version=\"4.x\">\n  <Weaknesses>\n";
    for (const Weakness& w : weaknesses) {
        out << "    <Weakness ID=\"" << w.id.value << "\" Name=\"" << xml::escape(w.name)
            << "\" Status=\"Stable\">\n";
        out << "      <Description>" << xml::escape(w.description) << "</Description>\n";
        if (w.parent.value != 0) {
            out << "      <Related_Weaknesses>\n"
                << "        <Related_Weakness Nature=\"ChildOf\" CWE_ID=\"" << w.parent.value
                << "\"/>\n      </Related_Weaknesses>\n";
        }
        if (!w.modes_of_introduction.empty()) {
            out << "      <Modes_Of_Introduction>\n";
            for (const std::string& phase : w.modes_of_introduction)
                out << "        <Introduction><Phase>" << xml::escape(phase)
                    << "</Phase></Introduction>\n";
            out << "      </Modes_Of_Introduction>\n";
        }
        if (!w.consequences.empty()) {
            out << "      <Common_Consequences>\n";
            for (const std::string& c : w.consequences) {
                std::size_t colon = c.find(':');
                std::string scope = colon == std::string::npos ? c : c.substr(0, colon);
                std::string impact =
                    colon == std::string::npos
                        ? std::string()
                        : std::string(strings::trim(std::string_view(c).substr(colon + 1)));
                out << "        <Consequence><Scope>" << xml::escape(scope)
                    << "</Scope><Impact>" << xml::escape(impact)
                    << "</Impact></Consequence>\n";
            }
            out << "      </Common_Consequences>\n";
        }
        if (!w.applicable_platforms.empty()) {
            out << "      <Applicable_Platforms>\n";
            for (const std::string& p : w.applicable_platforms)
                out << "        <Platform Name=\"" << xml::escape(p) << "\"/>\n";
            out << "      </Applicable_Platforms>\n";
        }
        out << "    </Weakness>\n";
    }
    out << "  </Weaknesses>\n</Weakness_Catalog>\n";
    return out.str();
}

std::string export_capec_catalog(const std::vector<AttackPattern>& patterns) {
    std::ostringstream out;
    out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
        << "<Attack_Pattern_Catalog Name=\"CAPEC\" Version=\"3.x\">\n  <Attack_Patterns>\n";
    for (const AttackPattern& p : patterns) {
        out << "    <Attack_Pattern ID=\"" << p.id.value << "\" Name=\""
            << xml::escape(p.name) << "\" Status=\"Stable\">\n";
        out << "      <Description>" << xml::escape(p.summary) << "</Description>\n";
        out << "      <Likelihood_Of_Attack>" << rating_text(p.likelihood)
            << "</Likelihood_Of_Attack>\n";
        out << "      <Typical_Severity>" << rating_text(p.typical_severity)
            << "</Typical_Severity>\n";
        if (p.parent.value != 0) {
            out << "      <Related_Attack_Patterns>\n"
                << "        <Related_Attack_Pattern Nature=\"ChildOf\" CAPEC_ID=\""
                << p.parent.value << "\"/>\n      </Related_Attack_Patterns>\n";
        }
        if (!p.prerequisites.empty()) {
            out << "      <Prerequisites>\n";
            for (const std::string& pre : p.prerequisites)
                out << "        <Prerequisite>" << xml::escape(pre) << "</Prerequisite>\n";
            out << "      </Prerequisites>\n";
        }
        if (!p.related_weaknesses.empty()) {
            out << "      <Related_Weaknesses>\n";
            for (WeaknessId w : p.related_weaknesses)
                out << "        <Related_Weakness CWE_ID=\"" << w.value << "\"/>\n";
            out << "      </Related_Weaknesses>\n";
        }
        if (!p.domains.empty()) {
            out << "      <Domains_Of_Attack>\n";
            for (const std::string& d : p.domains)
                out << "        <Domain>" << xml::escape(d) << "</Domain>\n";
            out << "      </Domains_Of_Attack>\n";
        }
        out << "    </Attack_Pattern>\n";
    }
    out << "  </Attack_Patterns>\n</Attack_Pattern_Catalog>\n";
    return out.str();
}

Corpus corpus_from_mitre(std::string_view cwe_xml, std::string_view capec_xml,
                         std::string_view nvd_json) {
    Corpus corpus;
    for (Weakness& w : import_cwe_catalog_text(cwe_xml)) corpus.add(std::move(w));
    for (AttackPattern& p : import_capec_catalog_text(capec_xml)) corpus.add(std::move(p));
    for (Vulnerability& v : import_nvd_feed_text(nvd_json)) corpus.add(std::move(v));
    corpus.reindex();
    return corpus;
}

} // namespace cybok::kb
