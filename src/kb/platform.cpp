#include "kb/platform.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace cybok::kb {

char platform_part_code(PlatformPart p) noexcept {
    switch (p) {
        case PlatformPart::Application: return 'a';
        case PlatformPart::OperatingSystem: return 'o';
        case PlatformPart::Hardware: return 'h';
    }
    return '?';
}

std::string_view platform_part_name(PlatformPart p) noexcept {
    switch (p) {
        case PlatformPart::Application: return "application";
        case PlatformPart::OperatingSystem: return "operating-system";
        case PlatformPart::Hardware: return "hardware";
    }
    return "?";
}

std::string Platform::uri() const {
    std::string out = "cpe:2.3:";
    out.push_back(platform_part_code(part));
    out.push_back(':');
    out += vendor.empty() ? "*" : vendor;
    out.push_back(':');
    out += product.empty() ? "*" : product;
    out.push_back(':');
    out += version.empty() ? "*" : version;
    return out;
}

Platform Platform::parse(std::string_view uri) {
    std::vector<std::string_view> fields = strings::split(uri, ':');
    if (fields.size() < 5 || fields[0] != "cpe" || fields[1] != "2.3")
        throw ParseError("not a cpe:2.3 name: " + std::string(uri));
    Platform p;
    if (fields[2].size() != 1) throw ParseError("bad CPE part field");
    switch (fields[2][0]) {
        case 'a': p.part = PlatformPart::Application; break;
        case 'o': p.part = PlatformPart::OperatingSystem; break;
        case 'h': p.part = PlatformPart::Hardware; break;
        default: throw ParseError("unknown CPE part: " + std::string(fields[2]));
    }
    auto field = [](std::string_view f) {
        return (f == "*" || f == "-") ? std::string() : std::string(f);
    };
    p.vendor = field(fields[3]);
    p.product = field(fields[4]);
    if (fields.size() > 5) p.version = field(fields[5]);
    return p;
}

bool platform_matches(const Platform& pattern, const Platform& target) noexcept {
    if (pattern.part != target.part) return false;
    if (!pattern.vendor.empty() && pattern.vendor != target.vendor) return false;
    if (!pattern.product.empty() && pattern.product != target.product) return false;
    if (!pattern.version.empty() && !target.version.empty() &&
        pattern.version != target.version)
        return false;
    return true;
}

std::string normalize_product_token(std::string_view phrase) {
    std::string out;
    bool pending_sep = false;
    for (char c : phrase) {
        bool alnum = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
        if (c >= 'A' && c <= 'Z') {
            c = static_cast<char>(c - 'A' + 'a');
            alnum = true;
        }
        if (alnum) {
            if (pending_sep && !out.empty()) out.push_back('_');
            pending_sep = false;
            out.push_back(c);
        } else {
            pending_sep = true;
        }
    }
    return out;
}

} // namespace cybok::kb
