// The versioned binary snapshot format — the build-once/serve-many half
// of the ingest path. A v2 snapshot blob is a fixed 64-byte header
// followed by two sections:
//
//   [ 0] magic "CYBOKSNP" (8)
//   [ 8] version u32            (must stay at offset 8 across versions)
//   [12] eager section size u64
//   [20] slab section size u64
//   [28] fnv1a64(eager) u64
//   [36] fnv1a64(slabs) u64
//   [44] reserved, zero (20)
//   [64] eager section ...
//   [64 + align64(eager size)] slab section ...
//
// The *eager* section is small structured state — corpus records,
// options, vocabularies, counts, SlabRefs — produced/consumed with
// util::ByteWriter/ByteReader and always decoded on thaw. The *slab*
// section holds the big flat tables (compressed postings, f64 score
// tables) built with util::SlabWriter: every slab is 64-byte aligned
// relative to the section start, and the section itself sits at a
// 64-byte-aligned blob offset, so a page-aligned mmap of the file can
// serve the tables in place — no decode, no copy, cold start is
// O(page faults actually taken). This file owns the framing (seal /
// open) and the corpus record codec; the engine-level content is frozen
// by text::InvertedIndex / search::SearchEngine on top of it (layering:
// kb cannot see search).
//
// Integrity: the eager checksum is always verified (it is small and it
// frames everything else). The slab checksum is verified on the owning
// read_file path, but callers serving straight from an mmap skip it —
// hashing every slab byte would fault in the whole file and defeat the
// zero-copy start. Slabs are instead validated structurally at thaw
// (PostingStore::from_slabs, F64Table::view) and packed posting bytes
// carry per-block self-checks at decode time, so a flipped bit in a
// mapped file still dies on a typed error, just lazily.
// Every malformed frame — wrong magic, unknown version, truncation,
// checksum mismatch — is rejected with a typed SnapshotError before any
// section byte is interpreted.

#pragma once

#include <string>
#include <string_view>

#include "kb/corpus.hpp"
#include "util/bytes.hpp"

namespace cybok::kb {

/// A snapshot blob was rejected: bad magic, version mismatch, truncation,
/// checksum failure, or trailing bytes. The message names which, and —
/// when the blob came from a file — carries the source path and the byte
/// offset of the violation so fault-matrix failures are diagnosable from
/// the message alone ("snapshot: checksum mismatch [/tmp/x.snap @ byte 20]").
class SnapshotError : public Error {
public:
    explicit SnapshotError(const std::string& what) : Error(what) {}
    SnapshotError(const std::string& what, std::string path, std::size_t offset)
        : Error(what + " [" + (path.empty() ? std::string("<memory>") : path) + " @ byte " +
                std::to_string(offset) + "]"),
          path_(std::move(path)),
          offset_(offset) {}

    /// Source file, empty for in-memory blobs.
    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    /// Byte offset (into the framed blob) where validation failed.
    [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

private:
    std::string path_;
    std::size_t offset_ = 0;
};

/// Current snapshot format version. Bump on any layout change;
/// open_snapshot rejects every other version (snapshots are rebuild-cheap
/// caches, not archival data — no migration machinery). v1 was a single
/// eagerly-decoded payload; v2 split out the aligned slab section.
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Fixed frame-header size (see the layout at the top of this file).
/// Eager byte i sits at blob offset kSnapshotHeaderSize + i, which is how
/// eager decode errors are rebased into whole-blob offsets. 64 bytes also
/// makes the eager section start 64-byte aligned.
inline constexpr std::size_t kSnapshotHeaderSize = 64;

/// The two sections of an opened snapshot, viewing the caller's blob.
/// `slabs` starts at a 64-byte-aligned blob offset, so when the blob
/// itself is 64-byte aligned (an mmap or an AlignedBuffer) every SlabRef
/// inside it resolves to 64-byte-aligned memory.
struct SnapshotSections {
    std::string_view eager;
    std::string_view slabs;
};

/// Byte offset of the slab section inside a blob with `eager_size` eager
/// bytes (the gap is deterministic zero padding).
[[nodiscard]] constexpr std::size_t snapshot_slab_offset(std::size_t eager_size) noexcept {
    return kSnapshotHeaderSize + util::align_up(eager_size, 64);
}

/// Frame the two sections: header + eager + padding + slabs.
[[nodiscard]] std::string seal_snapshot(std::string_view eager, std::string_view slabs);

/// Validate the frame and return views of both sections inside `blob`.
/// Throws SnapshotError on any header or integrity violation; `source`
/// (the originating file path, empty for in-memory blobs) is threaded
/// into the error for diagnosability. `verify_slab_checksum` is disabled
/// by the mmap serve path only (see the integrity note above); the eager
/// checksum is unconditional.
[[nodiscard]] SnapshotSections open_snapshot(std::string_view blob, std::string_view source = {},
                                             bool verify_slab_checksum = true);

/// Corpus record codec (records only; thaw_corpus reindexes, which is
/// cheap — id maps and platform bindings, no text analysis).
void freeze_corpus(util::ByteWriter& w, const Corpus& corpus);
[[nodiscard]] Corpus thaw_corpus(util::ByteReader& r);

/// Single-record codecs — the unit the corpus codec above loops over,
/// exposed so the delta blob (kb/delta.hpp) serializes records in the
/// exact same byte layout. Weakness.related_patterns is derived state and
/// is never serialized (reindex() rebuilds it).
void freeze_record(util::ByteWriter& w, const AttackPattern& p);
void freeze_record(util::ByteWriter& w, const Weakness& wk);
void freeze_record(util::ByteWriter& w, const Vulnerability& v);
[[nodiscard]] AttackPattern thaw_pattern(util::ByteReader& r);
[[nodiscard]] Weakness thaw_weakness(util::ByteReader& r);
[[nodiscard]] Vulnerability thaw_vulnerability(util::ByteReader& r);

} // namespace cybok::kb
