// The versioned binary snapshot format — the build-once/serve-many half
// of the ingest path. A snapshot blob is
//
//   [magic "CYBOKSNP" (8)] [version u32] [payload size u64]
//   [fnv1a64(payload) u64] [payload ...]
//
// where the payload is produced/consumed with util::ByteWriter/ByteReader
// (little-endian, length-prefixed). This file owns the framing (seal /
// open) and the corpus record codec; the engine-level payload — finalized
// inverted indexes, IDF tables, BM25 norms, scorer weights — is frozen by
// text::InvertedIndex / search::SearchEngine on top of it (layering: kb
// cannot see search).
//
// Unlike the JSON corpus form (kb/serialize.hpp), a snapshot also carries
// *derived* state, so thawing skips tokenization, stemming, interning and
// finalize entirely: cold start becomes a sequential read + table fill.
// Every malformed input — wrong magic, unknown version, truncation,
// checksum mismatch — is rejected with a typed SnapshotError before any
// payload byte is interpreted.

#pragma once

#include <string>
#include <string_view>

#include "kb/corpus.hpp"
#include "util/bytes.hpp"

namespace cybok::kb {

/// A snapshot blob was rejected: bad magic, version mismatch, truncation,
/// checksum failure, or trailing bytes. The message names which, and —
/// when the blob came from a file — carries the source path and the byte
/// offset of the violation so fault-matrix failures are diagnosable from
/// the message alone ("snapshot: checksum mismatch [/tmp/x.snap @ byte 20]").
class SnapshotError : public Error {
public:
    explicit SnapshotError(const std::string& what) : Error(what) {}
    SnapshotError(const std::string& what, std::string path, std::size_t offset)
        : Error(what + " [" + (path.empty() ? std::string("<memory>") : path) + " @ byte " +
                std::to_string(offset) + "]"),
          path_(std::move(path)),
          offset_(offset) {}

    /// Source file, empty for in-memory blobs.
    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    /// Byte offset (into the framed blob) where validation failed.
    [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

private:
    std::string path_;
    std::size_t offset_ = 0;
};

/// Current snapshot format version. Bump on any payload layout change;
/// open_snapshot rejects every other version (snapshots are rebuild-cheap
/// caches, not archival data — no migration machinery).
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Framed-header size: magic + version + payload size + checksum. Payload
/// byte i sits at blob offset kSnapshotHeaderSize + i, which is how
/// payload decode errors are rebased into whole-blob offsets.
inline constexpr std::size_t kSnapshotHeaderSize = 8 + 4 + 8 + 8;

/// Frame a payload: prepend magic, version, size, and checksum.
[[nodiscard]] std::string seal_snapshot(std::string payload);

/// Validate the frame and return a view of the payload inside `blob`.
/// Throws SnapshotError on any header or integrity violation; `source`
/// (the originating file path, empty for in-memory blobs) is threaded
/// into the error for diagnosability.
[[nodiscard]] std::string_view open_snapshot(std::string_view blob,
                                             std::string_view source = {});

/// Corpus record codec (records only; thaw_corpus reindexes, which is
/// cheap — id maps and platform bindings, no text analysis).
void freeze_corpus(util::ByteWriter& w, const Corpus& corpus);
[[nodiscard]] Corpus thaw_corpus(util::ByteReader& r);

} // namespace cybok::kb
