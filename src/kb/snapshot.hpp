// The versioned binary snapshot format — the build-once/serve-many half
// of the ingest path. A snapshot blob is
//
//   [magic "CYBOKSNP" (8)] [version u32] [payload size u64]
//   [fnv1a64(payload) u64] [payload ...]
//
// where the payload is produced/consumed with util::ByteWriter/ByteReader
// (little-endian, length-prefixed). This file owns the framing (seal /
// open) and the corpus record codec; the engine-level payload — finalized
// inverted indexes, IDF tables, BM25 norms, scorer weights — is frozen by
// text::InvertedIndex / search::SearchEngine on top of it (layering: kb
// cannot see search).
//
// Unlike the JSON corpus form (kb/serialize.hpp), a snapshot also carries
// *derived* state, so thawing skips tokenization, stemming, interning and
// finalize entirely: cold start becomes a sequential read + table fill.
// Every malformed input — wrong magic, unknown version, truncation,
// checksum mismatch — is rejected with a typed SnapshotError before any
// payload byte is interpreted.

#pragma once

#include <string>
#include <string_view>

#include "kb/corpus.hpp"
#include "util/bytes.hpp"

namespace cybok::kb {

/// A snapshot blob was rejected: bad magic, version mismatch, truncation,
/// checksum failure, or trailing bytes. The message names which.
class SnapshotError : public Error {
public:
    using Error::Error;
};

/// Current snapshot format version. Bump on any payload layout change;
/// open_snapshot rejects every other version (snapshots are rebuild-cheap
/// caches, not archival data — no migration machinery).
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Frame a payload: prepend magic, version, size, and checksum.
[[nodiscard]] std::string seal_snapshot(std::string payload);

/// Validate the frame and return a view of the payload inside `blob`.
/// Throws SnapshotError on any header or integrity violation.
[[nodiscard]] std::string_view open_snapshot(std::string_view blob);

/// Corpus record codec (records only; thaw_corpus reindexes, which is
/// cheap — id maps and platform bindings, no text analysis).
void freeze_corpus(util::ByteWriter& w, const Corpus& corpus);
[[nodiscard]] Corpus thaw_corpus(util::ByteReader& r);

} // namespace cybok::kb
