#include "kb/import_nvd.hpp"

#include "util/strings.hpp"

namespace cybok::kb {

VulnerabilityId parse_cve_id(std::string_view text) {
    std::vector<std::string_view> parts = strings::split(text, '-');
    if (parts.size() != 3 || parts[0] != "CVE")
        throw ParseError("not a CVE id: " + std::string(text));
    try {
        VulnerabilityId id;
        id.year = static_cast<std::uint32_t>(std::stoul(std::string(parts[1])));
        id.number = static_cast<std::uint32_t>(std::stoul(std::string(parts[2])));
        return id;
    } catch (const std::exception&) {
        throw ParseError("malformed CVE id: " + std::string(text));
    }
}

namespace {

std::optional<WeaknessId> parse_cwe_ref(std::string_view value) {
    // NVD writes "CWE-78" or placeholder strings like "NVD-CWE-noinfo".
    if (!value.starts_with("CWE-")) return std::nullopt;
    try {
        return WeaknessId{static_cast<std::uint32_t>(std::stoul(std::string(value.substr(4))))};
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

std::string english_description(const json::Value& cve) {
    if (!cve.contains("description")) return {};
    const json::Value& desc = cve.at("description");
    if (!desc.contains("description_data")) return {};
    for (const json::Value& d : desc.at("description_data").as_array()) {
        if (d.get_string("lang", "en") == "en") return d.get_string("value");
    }
    return {};
}

void collect_cpes(const json::Value& node, std::vector<Platform>& out) {
    if (node.contains("cpe_match")) {
        for (const json::Value& match : node.at("cpe_match").as_array()) {
            if (!match.get_bool("vulnerable", true)) continue;
            std::string uri = match.get_string("cpe23Uri");
            if (uri.empty()) continue;
            try {
                out.push_back(Platform::parse(uri));
            } catch (const ParseError&) {
                // Malformed CPE in a feed record: skip the binding, keep
                // the record.
            }
        }
    }
    if (node.contains("children")) {
        for (const json::Value& child : node.at("children").as_array())
            collect_cpes(child, out);
    }
}

} // namespace

std::vector<Vulnerability> import_nvd_feed(const json::Value& feed, NvdImportStats* stats) {
    NvdImportStats local;
    if (!feed.contains("CVE_Items"))
        throw ValidationError("not an NVD feed: missing CVE_Items");

    std::vector<Vulnerability> out;
    for (const json::Value& item : feed.at("CVE_Items").as_array()) {
        ++local.records;
        const json::Value& cve = item.at("cve");
        const std::string id_text = cve.at("CVE_data_meta").get_string("ID");
        Vulnerability v;
        v.id = parse_cve_id(id_text);
        v.description = english_description(cve);
        if (v.description.starts_with("** REJECT **")) {
            ++local.skipped_rejected;
            continue;
        }

        // Problem types -> CWE references.
        if (cve.contains("problemtype") &&
            cve.at("problemtype").contains("problemtype_data")) {
            for (const json::Value& pt : cve.at("problemtype").at("problemtype_data")
                                             .as_array()) {
                if (!pt.contains("description")) continue;
                for (const json::Value& d : pt.at("description").as_array()) {
                    if (auto wid = parse_cwe_ref(d.get_string("value")))
                        v.weaknesses.push_back(*wid);
                }
            }
        }
        if (v.weaknesses.empty()) ++local.without_cwe;

        // Configurations -> CPE platform bindings.
        if (item.contains("configurations") &&
            item.at("configurations").contains("nodes")) {
            for (const json::Value& node : item.at("configurations").at("nodes").as_array())
                collect_cpes(node, v.platforms);
        }
        if (v.platforms.empty()) ++local.without_platforms;

        // Impact -> newest available CVSS vector string.
        if (item.contains("impact")) {
            const json::Value& impact = item.at("impact");
            if (impact.contains("baseMetricV3")) {
                v.cvss_vector =
                    impact.at("baseMetricV3").at("cvssV3").get_string("vectorString");
            } else if (impact.contains("baseMetricV2")) {
                v.cvss_vector =
                    impact.at("baseMetricV2").at("cvssV2").get_string("vectorString");
            }
        }
        if (v.cvss_vector.empty()) ++local.without_cvss;

        out.push_back(std::move(v));
        ++local.imported;
    }
    if (stats != nullptr) *stats = local;
    return out;
}

std::vector<Vulnerability> import_nvd_feed_text(std::string_view text, NvdImportStats* stats) {
    return import_nvd_feed(json::parse(text), stats);
}

json::Value export_nvd_feed(const std::vector<Vulnerability>& vulnerabilities) {
    json::Array items;
    for (const Vulnerability& v : vulnerabilities) {
        json::Object item;

        json::Object meta;
        meta["ID"] = json::Value(v.id.to_string());
        json::Object cve;
        cve["CVE_data_meta"] = json::Value(std::move(meta));

        json::Array cwe_descs;
        for (WeaknessId w : v.weaknesses) {
            json::Object d;
            d["value"] = json::Value(w.to_string());
            cwe_descs.emplace_back(std::move(d));
        }
        json::Object pt_entry;
        pt_entry["description"] = json::Value(std::move(cwe_descs));
        json::Array pt_data;
        pt_data.emplace_back(std::move(pt_entry));
        json::Object problemtype;
        problemtype["problemtype_data"] = json::Value(std::move(pt_data));
        cve["problemtype"] = json::Value(std::move(problemtype));

        json::Object desc_entry;
        desc_entry["lang"] = json::Value("en");
        desc_entry["value"] = json::Value(v.description);
        json::Array desc_data;
        desc_data.emplace_back(std::move(desc_entry));
        json::Object description;
        description["description_data"] = json::Value(std::move(desc_data));
        cve["description"] = json::Value(std::move(description));
        item["cve"] = json::Value(std::move(cve));

        json::Array cpe_matches;
        for (const Platform& p : v.platforms) {
            json::Object match;
            match["vulnerable"] = json::Value(true);
            match["cpe23Uri"] = json::Value(p.uri());
            cpe_matches.emplace_back(std::move(match));
        }
        json::Object node;
        node["operator"] = json::Value("OR");
        node["cpe_match"] = json::Value(std::move(cpe_matches));
        json::Array nodes;
        nodes.emplace_back(std::move(node));
        json::Object configurations;
        configurations["nodes"] = json::Value(std::move(nodes));
        item["configurations"] = json::Value(std::move(configurations));

        if (!v.cvss_vector.empty()) {
            json::Object cvss;
            cvss["vectorString"] = json::Value(v.cvss_vector);
            json::Object metric;
            const bool v3 = v.cvss_vector.starts_with("CVSS:3");
            metric[v3 ? "cvssV3" : "cvssV2"] = json::Value(std::move(cvss));
            json::Object impact;
            impact[v3 ? "baseMetricV3" : "baseMetricV2"] = json::Value(std::move(metric));
            item["impact"] = json::Value(std::move(impact));
        }
        items.emplace_back(std::move(item));
    }
    json::Object feed;
    feed["CVE_data_type"] = json::Value("CVE");
    feed["CVE_data_format"] = json::Value("MITRE");
    feed["CVE_data_version"] = json::Value("4.0");
    feed["CVE_Items"] = json::Value(std::move(items));
    return json::Value(std::move(feed));
}

} // namespace cybok::kb
