// The attack-vector corpus: the in-memory form of the MITRE-style
// databases, with id lookups and the cross-reference index that lets the
// analysis layer walk pattern <-> weakness <-> vulnerability chains.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kb/records.hpp"

namespace cybok::kb {

/// Container for the three record families plus derived indexes.
/// Records are added individually; `reindex()` (re)builds cross-references
/// and must be called before the cross-reference accessors are used.
/// Mutating accessors invalidate the index until the next reindex().
class Corpus {
public:
    // -- population --------------------------------------------------------

    void add(AttackPattern pattern);
    void add(Weakness weakness);
    void add(Vulnerability vulnerability);

    /// Replace the record carrying the same id in place — the record's
    /// position (and therefore corpus order) is preserved. Returns false
    /// when no record with that id exists; nothing is changed then.
    /// Invalidates the index.
    bool replace(AttackPattern pattern);
    bool replace(Weakness weakness);
    bool replace(Vulnerability vulnerability);

    /// Remove the record with `id`, shifting later records down (the
    /// relative order of survivors is preserved). Returns false when
    /// absent. Invalidates the index.
    bool erase(AttackPatternId id);
    bool erase(WeaknessId id);
    bool erase(VulnerabilityId id);

    /// Rebuild derived indexes: weakness.related_patterns (from pattern
    /// references), platform -> vulnerability lists, weakness ->
    /// vulnerability lists. Throws ValidationError on duplicate ids.
    void reindex();
    [[nodiscard]] bool indexed() const noexcept { return indexed_; }

    // -- record access ------------------------------------------------------

    [[nodiscard]] const std::vector<AttackPattern>& patterns() const noexcept { return patterns_; }
    [[nodiscard]] const std::vector<Weakness>& weaknesses() const noexcept { return weaknesses_; }
    [[nodiscard]] const std::vector<Vulnerability>& vulnerabilities() const noexcept {
        return vulnerabilities_;
    }

    [[nodiscard]] const AttackPattern* find(AttackPatternId id) const noexcept;
    [[nodiscard]] const Weakness* find(WeaknessId id) const noexcept;
    [[nodiscard]] const Vulnerability* find(VulnerabilityId id) const noexcept;

    // -- cross references (require indexed()) -------------------------------

    /// Vulnerabilities whose platform list matches `platform` under CPE
    /// matching rules (pattern = the query).
    [[nodiscard]] std::vector<VulnerabilityId> vulnerabilities_for(const Platform& platform) const;

    /// Vulnerabilities classified under the weakness.
    [[nodiscard]] std::vector<VulnerabilityId> vulnerabilities_for(WeaknessId weakness) const;

    /// Patterns that exploit the weakness.
    [[nodiscard]] std::vector<AttackPatternId> patterns_for(WeaknessId weakness) const;

    /// All distinct vendor/product pairs seen in vulnerability platforms.
    [[nodiscard]] std::vector<Platform> known_platforms() const;

    // -- stats --------------------------------------------------------------

    struct Stats {
        std::size_t patterns = 0;
        std::size_t weaknesses = 0;
        std::size_t vulnerabilities = 0;
        std::size_t platform_bindings = 0;
        std::size_t pattern_weakness_links = 0;
        std::size_t vulnerability_weakness_links = 0;
    };
    [[nodiscard]] Stats stats() const noexcept;

private:
    void require_indexed() const;

    std::vector<AttackPattern> patterns_;
    std::vector<Weakness> weaknesses_;
    std::vector<Vulnerability> vulnerabilities_;

    bool indexed_ = false;
    std::map<AttackPatternId, std::size_t> pattern_by_id_;
    std::map<WeaknessId, std::size_t> weakness_by_id_;
    std::map<VulnerabilityId, std::size_t> vulnerability_by_id_;
    /// (vendor, product) -> vulnerability indices; version filtering is
    /// applied at query time.
    std::map<std::pair<std::string, std::string>, std::vector<std::size_t>> vulns_by_product_;
    std::map<WeaknessId, std::vector<std::size_t>> vulns_by_weakness_;
};

} // namespace cybok::kb
