#include "analysis/whatif.hpp"

namespace cybok::analysis {

WhatIfResult what_if(const model::SystemModel& before,
                     const search::AssociationMap& before_associations,
                     const model::SystemModel& after, const search::QueryEngine& engine,
                     const search::FilterChain* chain) {
    WhatIfResult out;
    out.diff = model::diff(before, after);
    out.after_associations =
        search::reassociate(before_associations, out.diff, after, engine, chain);
    out.after_posture = compute_posture(after, out.after_associations);
    out.comparison = compare(compute_posture(before, before_associations), out.after_posture);
    return out;
}

WhatIfResult what_if(const model::SystemModel& before,
                     const search::AssociationMap& before_associations,
                     const model::SystemModel& after, search::Associator& associator,
                     const search::FilterChain* chain) {
    WhatIfResult out;
    out.diff = model::diff(before, after);
    out.after_associations =
        associator.reassociate(before_associations, out.diff, after, chain);
    out.after_posture = compute_posture(after, out.after_associations);
    out.comparison = compare(compute_posture(before, before_associations), out.after_posture);
    return out;
}

} // namespace cybok::analysis
