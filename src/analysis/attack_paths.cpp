#include "analysis/attack_paths.hpp"

#include <algorithm>
#include <map>

#include "graph/algorithms.hpp"
#include "model/export.hpp"

namespace cybok::analysis {

std::vector<AttackPath> attack_paths(const model::SystemModel& m,
                                     const search::AssociationMap& associations,
                                     std::string_view target,
                                     const AttackPathOptions& options) {
    std::vector<AttackPath> out;
    if (options.min_vectors_per_hop == 0)
        throw ValidationError("attack paths: min_vectors_per_hop must be >= 1");

    graph::PropertyGraph g = model::to_graph(m);
    auto target_node = g.find_node(target);
    if (!target_node.has_value())
        throw NotFoundError("attack paths: unknown target component: " + std::string(target));

    std::map<std::string, std::size_t> vectors;
    for (const search::ComponentAssociation& ca : associations.components)
        vectors[ca.component] = ca.total();

    auto traversable = [&](const std::string& name) {
        auto it = vectors.find(name);
        return it != vectors.end() && it->second >= options.min_vectors_per_hop;
    };
    if (!traversable(std::string(target))) return out;

    // Remove non-traversable nodes (except none — entry predicate equals
    // traversal predicate) by building the induced subgraph.
    std::vector<graph::NodeId> keep;
    for (graph::NodeId n : g.nodes())
        if (traversable(g.node(n).label)) keep.push_back(n);
    graph::Subgraph sub = graph::induced_subgraph(g, keep);

    auto sub_target = sub.graph.find_node(target);
    if (!sub_target.has_value()) return out;

    for (const model::Component& c : m.components()) {
        if (!c.id.valid() || !c.external_facing) continue;
        if (!traversable(c.name)) continue;
        auto entry = sub.graph.find_node(c.name);
        if (!entry.has_value()) continue;

        std::vector<std::vector<graph::NodeId>> paths;
        if (*entry == *sub_target) {
            paths.push_back({*entry});
        } else {
            paths = graph::all_simple_paths(sub.graph, *entry, *sub_target, options.max_hops,
                                            options.max_paths);
        }
        for (const std::vector<graph::NodeId>& p : paths) {
            AttackPath ap;
            ap.weakest_link = SIZE_MAX;
            for (graph::NodeId n : p) {
                const std::string& name = sub.graph.node(n).label;
                ap.components.push_back(name);
                std::size_t v = vectors.at(name);
                ap.total_vectors += v;
                ap.weakest_link = std::min(ap.weakest_link, v);
            }
            out.push_back(std::move(ap));
            if (out.size() >= options.max_paths) break;
        }
        if (out.size() >= options.max_paths) break;
    }

    std::stable_sort(out.begin(), out.end(), [](const AttackPath& a, const AttackPath& b) {
        return a.components.size() < b.components.size();
    });
    return out;
}

} // namespace cybok::analysis
