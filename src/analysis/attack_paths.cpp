#include "analysis/attack_paths.hpp"

#include <algorithm>
#include <map>

#include "flow/flow.hpp"
#include "graph/algorithms.hpp"
#include "model/export.hpp"

namespace cybok::analysis {

AttackPathsResult attack_paths(const model::SystemModel& m,
                               const search::AssociationMap& associations,
                               std::string_view target,
                               const AttackPathOptions& options) {
    AttackPathsResult out;
    if (options.min_vectors_per_hop == 0)
        throw ValidationError("attack paths: min_vectors_per_hop must be >= 1");

    graph::PropertyGraph g = model::to_graph(m);
    auto target_node = g.find_node(target);
    if (!target_node.has_value())
        throw NotFoundError("attack paths: unknown target component: " + std::string(target));

    // Vector count and worst CVSS per component — the same facts the flow
    // pass derives, so exposure here and taint there agree by definition.
    struct Evidence {
        std::size_t vectors = 0;
        double max_cvss = -1.0;
    };
    std::map<std::string, Evidence> evidence;
    for (const search::ComponentAssociation& ca : associations.components) {
        Evidence& e = evidence[ca.component];
        e.vectors = ca.total();
        for (const search::AttributeAssociation& aa : ca.attributes)
            for (const search::Match& match : aa.matches)
                e.max_cvss = std::max(e.max_cvss, match.severity);
    }

    flow::FlowOptions flow_options;
    flow_options.min_vectors_per_hop = options.min_vectors_per_hop;
    auto permeability_of = [&](const std::string& name) {
        auto it = evidence.find(name);
        if (it == evidence.end()) return 0.0;
        return flow::permeability(it->second.vectors, it->second.max_cvss, flow_options);
    };
    auto traversable = [&](const std::string& name) {
        auto it = evidence.find(name);
        return it != evidence.end() && it->second.vectors >= options.min_vectors_per_hop;
    };
    if (!traversable(std::string(target))) return out;

    // Remove non-traversable nodes (except none — entry predicate equals
    // traversal predicate) by building the induced subgraph.
    std::vector<graph::NodeId> keep;
    for (graph::NodeId n : g.nodes())
        if (traversable(g.node(n).label)) keep.push_back(n);
    graph::Subgraph sub = graph::induced_subgraph(g, keep);

    auto sub_target = sub.graph.find_node(target);
    if (!sub_target.has_value()) return out;

    for (const model::Component& c : m.components()) {
        if (!c.id.valid() || !c.external_facing) continue;
        if (!traversable(c.name)) continue;
        auto entry = sub.graph.find_node(c.name);
        if (!entry.has_value()) continue;

        graph::SimplePaths paths;
        if (*entry == *sub_target) {
            paths.paths.push_back({*entry});
        } else {
            paths = graph::all_simple_paths_bounded(sub.graph, *entry, *sub_target,
                                                    options.max_hops, options.max_paths);
            if (paths.truncated) out.truncated = true;
        }
        for (const std::vector<graph::NodeId>& p : paths.paths) {
            AttackPath ap;
            ap.weakest_link = SIZE_MAX;
            ap.exposure = 1.0;
            for (graph::NodeId n : p) {
                const std::string& name = sub.graph.node(n).label;
                ap.components.push_back(name);
                const Evidence& e = evidence.at(name);
                ap.total_vectors += e.vectors;
                ap.weakest_link = std::min(ap.weakest_link, e.vectors);
                ap.exposure *= permeability_of(name);
            }
            if (out.paths.size() >= options.max_paths) {
                out.truncated = true;
                break;
            }
            out.paths.push_back(std::move(ap));
        }
        if (out.truncated && out.paths.size() >= options.max_paths) break;
    }

    std::stable_sort(out.paths.begin(), out.paths.end(),
                     [](const AttackPath& a, const AttackPath& b) {
                         if (a.components.size() != b.components.size())
                             return a.components.size() < b.components.size();
                         return a.exposure > b.exposure;
                     });
    return out;
}

} // namespace cybok::analysis
