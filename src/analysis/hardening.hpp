// Hardening prioritization: which component should the architect fix
// first? The paper's dashboard supports exactly this decision ("different
// architectures are evaluated by experts iteratively"); this module ranks
// candidate hardening targets by how much attacker opportunity their
// remediation removes — qualitatively, by counting cut attack paths and
// blocked consequence traces, never by a synthetic risk number.

#pragma once

#include <string>
#include <vector>

#include "analysis/attack_paths.hpp"
#include "safety/trace.hpp"

namespace cybok::analysis {

/// Effect of hardening (removing all attack vectors from) one component.
struct HardeningCandidate {
    std::string component;
    std::size_t vectors_removed = 0;      ///< matches on the component itself
    std::size_t paths_cut = 0;            ///< attack paths to targets broken
    std::size_t traces_blocked = 0;       ///< consequence traces eliminated
    bool articulation_point = false;      ///< removal disconnects the graph
};

struct HardeningOptions {
    /// Targets attack paths are counted against. Empty = every controller
    /// plus every physical process / actuator in the model.
    std::vector<std::string> targets;
    AttackPathOptions path_options;
};

/// Evaluate every component carrying at least one vector as a hardening
/// candidate. Sorted by (traces blocked, paths cut, vectors removed),
/// descending — the top entry is the recommended first fix. `hazards` may
/// be nullptr (trace counting skipped).
[[nodiscard]] std::vector<HardeningCandidate> rank_hardening_candidates(
    const model::SystemModel& m, const search::AssociationMap& associations,
    const safety::HazardModel* hazards, const HardeningOptions& options = {});

} // namespace cybok::analysis
