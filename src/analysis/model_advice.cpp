#include "analysis/model_advice.hpp"

#include <algorithm>

namespace cybok::analysis {

std::string_view advice_kind_name(AdviceKind k) noexcept {
    switch (k) {
        case AdviceKind::MissingPlatformRef: return "missing-platform-ref";
        case AdviceKind::UnresolvedPlatform: return "unresolved-platform";
        case AdviceKind::NoisyDescriptor: return "noisy-descriptor";
        case AdviceKind::SilentDescriptor: return "silent-descriptor";
        case AdviceKind::MissingEntryPoint: return "missing-entry-point";
        case AdviceKind::UntypedComponent: return "untyped-component";
    }
    return "?";
}

std::vector<Advice> advise(const model::SystemModel& m,
                           const search::AssociationMap& associations,
                           const AdviceOptions& options) {
    std::vector<Advice> out;

    bool any_external = false;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        any_external = any_external || c.external_facing;

        if (c.type == model::ComponentType::Other) {
            out.push_back(Advice{AdviceKind::UntypedComponent, c.name, "",
                                 "give \"" + c.name +
                                     "\" an architectural type (controller, sensor, "
                                     "network...); exposure and consequence analysis "
                                     "depend on it"});
        }

        bool has_platform_ref = false;
        for (const model::Attribute& a : c.attributes) {
            if (a.kind == model::AttributeKind::PlatformRef) {
                has_platform_ref = true;
                if (!a.platform.has_value()) {
                    out.push_back(Advice{AdviceKind::UnresolvedPlatform, c.name, a.name,
                                         "resolve \"" + a.value +
                                             "\" to a structured platform name (CPE); "
                                             "without it no vulnerability binding is "
                                             "possible"});
                }
            }
        }
        // Hardware/software-bearing components should eventually name a
        // product; sensors and physical processes are exempt.
        const bool product_bearing =
            c.type == model::ComponentType::Compute ||
            c.type == model::ComponentType::Controller ||
            c.type == model::ComponentType::Network ||
            c.type == model::ComponentType::Software;
        if (product_bearing && !has_platform_ref) {
            out.push_back(Advice{AdviceKind::MissingPlatformRef, c.name, "",
                                 "\"" + c.name +
                                     "\" names no concrete product; at implementation "
                                     "fidelity add a platform attribute so vulnerability "
                                     "data can bind"});
        }
    }

    if (!any_external && m.component_count() > 0) {
        out.push_back(Advice{AdviceKind::MissingEntryPoint, "", "",
                             "no component is marked external-facing; exposure and "
                             "attack-path analysis have no attacker entry point"});
    }

    // Attribute result-space quality.
    for (const search::ComponentAssociation& ca : associations.components) {
        for (const search::AttributeAssociation& aa : ca.attributes) {
            // Only judge descriptors: platform bindings are expected to be
            // huge (that is the corpus, not the model's fault), parameters
            // are expected silent.
            auto comp = m.find_component(ca.component);
            if (!comp.has_value()) continue;
            const model::Attribute* attr = m.find_attribute(*comp, aa.attribute_name);
            if (attr == nullptr || attr->kind != model::AttributeKind::Descriptor) continue;

            std::size_t lexical = 0;
            for (const search::Match& match : aa.matches)
                if (match.via == search::MatchVia::Lexical) ++lexical;
            if (lexical > options.noisy_threshold) {
                out.push_back(Advice{
                    AdviceKind::NoisyDescriptor, ca.component, aa.attribute_name,
                    "descriptor \"" + aa.attribute_value + "\" matched " +
                        std::to_string(lexical) +
                        " vectors; replace generic security words with the component's "
                        "specific technology"});
            } else if (lexical == 0) {
                out.push_back(Advice{
                    AdviceKind::SilentDescriptor, ca.component, aa.attribute_name,
                    "descriptor \"" + aa.attribute_value +
                        "\" matched nothing; add the component's protocol or technology "
                        "vocabulary so patterns and weaknesses can relate"});
            }
        }
    }

    std::sort(out.begin(), out.end(), [](const Advice& a, const Advice& b) {
        if (a.component != b.component) return a.component < b.component;
        return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    });
    return out;
}

} // namespace cybok::analysis
