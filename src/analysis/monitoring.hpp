// Deployed-system re-evaluation: the paper's second use of the pipeline —
// "the documentation and reevaluation of already deployed CPS in terms of
// their security posture". The model is frozen (the plant is built); the
// *corpus* moves (new advisories land every week). Re-running the
// association against a corpus snapshot and diffing against the stored
// baseline yields exactly the new exposure.

#pragma once

#include <string>
#include <vector>

#include "search/association.hpp"

namespace cybok::analysis {

/// Records present in `after` but not in `before`.
struct CorpusDelta {
    std::vector<std::string> new_patterns;        ///< "CAPEC-..." ids
    std::vector<std::string> new_weaknesses;      ///< "CWE-..." ids
    std::vector<std::string> new_vulnerabilities; ///< "CVE-..." ids

    [[nodiscard]] bool empty() const noexcept {
        return new_patterns.empty() && new_weaknesses.empty() &&
               new_vulnerabilities.empty();
    }
};

/// Id-level diff of two corpus snapshots.
[[nodiscard]] CorpusDelta corpus_delta(const kb::Corpus& before, const kb::Corpus& after);

/// One newly-appearing finding on the deployed system.
struct NewExposure {
    std::string component;
    std::string attribute;
    search::Match match; ///< the match absent from the baseline association
};

/// Result of re-evaluating a deployed model against a fresh corpus.
struct ReevaluationResult {
    CorpusDelta delta;
    std::vector<NewExposure> new_exposures;
    /// Components with at least one new exposure, deduplicated, sorted.
    [[nodiscard]] std::vector<std::string> affected_components() const;
};

/// Compare the stored baseline association (computed against the old
/// corpus) with a fresh association against `fresh_engine`'s corpus.
/// Matches are identified by record id, so the comparison is stable across
/// corpus reindexing.
[[nodiscard]] ReevaluationResult reevaluate(const model::SystemModel& deployed,
                                            const search::AssociationMap& baseline,
                                            const kb::Corpus& baseline_corpus,
                                            const search::QueryEngine& fresh_engine,
                                            const search::FilterChain* chain = nullptr);

} // namespace cybok::analysis
