// Fleet analysis: batch-analyze N generated systems against one shared
// engine and rank them comparatively. The paper argues posture judgments
// are *comparative* ("architecture A relates to fewer / less exposed
// attack vectors than architecture B"); the fleet layer is that judgment
// at scale — association + flow + CVSS-weighted attack-path scoring per
// system, fanned across the ThreadPool, folded into a byte-deterministic
// ranking with per-system AssocMetrics/FlowCounts aggregation.
//
// Determinism contract: analyze_fleet() output (including fingerprint())
// is byte-identical for equal inputs at any thread count. Each system's
// task writes a pre-sized slot and uses the sequential reference
// association path, so no cross-task state can leak into results.
//
// Degradation contract: a per-system failure (fault site
// `analysis.fleet.task`, or `synth.zoo.gen` inside generation) is recorded
// on that system's report (`failed` + `error`) and ranks last; the fleet
// run always completes.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/attack_paths.hpp"
#include "flow/flow.hpp"
#include "search/engine.hpp"
#include "search/metrics.hpp"
#include "synth/zoo.hpp"
#include "util/json.hpp"

namespace cybok::analysis {

struct FleetOptions {
    /// Systems to generate (generating overload only).
    std::size_t systems = 16;
    /// Domains to cycle through (system i gets domains[i % size]); empty =
    /// all four zoo domains in enum order.
    std::vector<synth::ZooDomain> domains;
    /// System i is generated with seed base_seed + i.
    std::uint64_t base_seed = 11;
    /// Component count per generated system.
    std::size_t components = 50;
    double platform_ref_prob = 0.6;
    double parameter_prob = 0.5;
    /// Analysis lanes (0 = hardware concurrency). Never affects output.
    std::size_t threads = 0;
    flow::FlowOptions flow;
    AttackPathOptions paths;
    /// Attack paths kept per system (highest exposure first).
    std::size_t top_paths = 3;
};

/// Everything the ranking needs about one analyzed system.
struct FleetSystemReport {
    std::string name;
    std::string domain;
    std::uint64_t seed = 0;
    std::size_t components = 0;
    std::size_t connectors = 0;

    /// Degradation record: the task absorbed a typed failure; every
    /// analysis field below is zero/empty and the system ranks last.
    bool failed = false;
    std::string error;

    // -- posture -------------------------------------------------------------
    std::size_t attack_patterns = 0;
    std::size_t weaknesses = 0;
    std::size_t vulnerabilities = 0;
    double max_severity = -1.0; ///< worst CVSS base score fleet-wide; -1 none

    // -- flow ----------------------------------------------------------------
    std::size_t tainted = 0;     ///< components with taint > 0
    std::size_t chokepoints = 0; ///< ranked chokepoint candidates
    std::size_t min_cut_size = 0;
    double max_taint = 0.0; ///< worst exposure taint on a hazard-linked component
    std::size_t tainted_hazards = 0; ///< hazard slices with exploitable reach
    std::size_t hazards_total = 0;

    // -- attack paths --------------------------------------------------------
    std::size_t paths_found = 0; ///< across all hazard-linked targets
    double top_exposure = 0.0;   ///< best path exposure (0 = no feasible path)
    /// Up to FleetOptions::top_paths worst paths, exposure desc.
    std::vector<AttackPath> top_paths;

    /// The comparative risk score the ranking sorts by, in [0, 100]:
    /// 40 * top_exposure + 30 * tainted-hazard fraction + 20 * tainted
    /// fraction + 10 * max_severity / 10. A pure function of the fields
    /// above — higher = worse posture.
    double risk = 0.0;
    /// 1-based position in FleetResult::ranking (1 = riskiest).
    std::size_t rank = 0;

    search::FlowCounts flow_counts; ///< this system's fixpoint counters

    [[nodiscard]] std::size_t total_vectors() const noexcept {
        return attack_patterns + weaknesses + vulnerabilities;
    }
    [[nodiscard]] json::Value to_json() const;
};

struct FleetResult {
    /// Reports sorted riskiest-first (risk desc, name asc; failed systems
    /// last, name asc). rank fields are 1-based positions in this order.
    std::vector<FleetSystemReport> ranking;
    std::size_t systems = 0; ///< total analyzed (incl. failed)
    std::size_t failed = 0;
    std::size_t threads = 1; ///< lanes the batch fanned out across

    // -- fleet-wide aggregation ----------------------------------------------
    std::size_t total_components = 0;
    std::size_t total_connectors = 0;
    std::size_t total_vectors = 0;
    std::size_t total_tainted = 0;
    std::size_t total_chokepoints = 0;
    /// Per-system AssocMetrics merged (queries, candidates, components).
    search::AssocMetrics metrics;
    /// Per-system FlowCounts *summed* field-wise (FlowCounts::merge adopts
    /// rather than sums, so the fleet does its own arithmetic).
    search::FlowCounts flow_totals;

    [[nodiscard]] const FleetSystemReport* find(std::string_view name) const noexcept;
    /// Canonical byte rendering of the ranking (every analysis value in
    /// hexfloat) — the cross-thread-count determinism oracle key.
    [[nodiscard]] std::string fingerprint() const;
    /// "16 systems (0 failed), riskiest zoo-water-s14-n50 risk 61.2" —
    /// deterministic.
    [[nodiscard]] std::string summary() const;
    [[nodiscard]] json::Value to_json() const;
};

/// Generate `options.systems` zoo systems (seed base_seed + i, domain
/// cycling) and analyze them. Generation happens inside the per-system
/// task, so a `synth.zoo.gen` fault degrades to a recorded failure.
[[nodiscard]] FleetResult analyze_fleet(const search::QueryEngine& engine,
                                        const FleetOptions& options = {});

/// Analyze caller-supplied systems (the metamorphic harness path: mutate
/// one system, re-rank). Generation-related options are ignored.
[[nodiscard]] FleetResult analyze_fleet(const search::QueryEngine& engine,
                                        const std::vector<synth::ZooSystem>& fleet,
                                        const FleetOptions& options = {});

} // namespace cybok::analysis
