#include "analysis/fidelity.hpp"

namespace cybok::analysis {

std::vector<FidelityPoint> fidelity_sweep(const model::SystemModel& m,
                                          const search::QueryEngine& engine,
                                          const search::FilterChain* chain) {
    std::vector<FidelityPoint> out;
    const model::Fidelity max = m.max_fidelity();
    for (int level = 0; level <= static_cast<int>(max); ++level) {
        const model::Fidelity f = static_cast<model::Fidelity>(level);
        model::SystemModel projected = m.at_fidelity(f);

        FidelityPoint point;
        point.level = f;
        for (const model::Component& c : projected.components()) {
            if (!c.id.valid()) continue;
            point.attributes += c.attributes.size();
        }

        search::AssociationMap assoc = search::associate(projected, engine, chain);
        point.attack_patterns = assoc.total(search::VectorClass::AttackPattern);
        point.weaknesses = assoc.total(search::VectorClass::Weakness);
        point.vulnerabilities = assoc.total(search::VectorClass::Vulnerability);

        std::size_t bindings = 0;
        std::size_t total = 0;
        for (const search::ComponentAssociation& ca : assoc.components) {
            for (const search::AttributeAssociation& aa : ca.attributes) {
                for (const search::Match& match : aa.matches) {
                    ++total;
                    if (match.via == search::MatchVia::PlatformBinding) ++bindings;
                }
            }
        }
        point.specificity = total == 0 ? 0.0
                                       : static_cast<double>(bindings) /
                                             static_cast<double>(total);
        out.push_back(point);
    }
    return out;
}

} // namespace cybok::analysis
