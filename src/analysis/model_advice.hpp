// Model-improvement advice — the paper's proposed mitigation for the NLP
// sensitivity of attribute matching: "A more sophisticated modeling tool
// that enables and encourages systems engineers to add specific,
// security-related properties to the model without needing extensive
// domain-specific knowledge about security could mitigate this
// limitation." This module is that encouragement: it inspects the model
// and its association results and emits concrete, actionable suggestions.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "search/association.hpp"

namespace cybok::analysis {

enum class AdviceKind : std::uint8_t {
    MissingPlatformRef,   ///< component has no product reference at all
    UnresolvedPlatform,   ///< PlatformRef attribute without a CPE
    NoisyDescriptor,      ///< descriptor matched suspiciously many vectors
    SilentDescriptor,     ///< descriptor matched nothing — likely too vague
    MissingEntryPoint,    ///< no component is marked external-facing
    UntypedComponent,     ///< ComponentType::Other tells analysis nothing
};
[[nodiscard]] std::string_view advice_kind_name(AdviceKind k) noexcept;

struct Advice {
    AdviceKind kind = AdviceKind::MissingPlatformRef;
    std::string component; ///< empty for whole-model advice
    std::string attribute; ///< empty unless attribute-specific
    std::string text;      ///< human-readable suggestion
};

struct AdviceOptions {
    /// A descriptor matching more lexical vectors than this is "noisy".
    std::size_t noisy_threshold = 100;
};

/// Inspect model + association results and emit suggestions, ordered by
/// component name then kind. Deterministic.
[[nodiscard]] std::vector<Advice> advise(const model::SystemModel& m,
                                         const search::AssociationMap& associations,
                                         const AdviceOptions& options = {});

} // namespace cybok::analysis
