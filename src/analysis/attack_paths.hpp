// Attack-path enumeration over the architectural graph. "Attackers think
// in graphs" (Lambert, cited by the paper): a path is feasible when every
// component along it carries at least one associated attack vector — each
// hop needs something to exploit.

#pragma once

#include <string>
#include <vector>

#include "model/system_model.hpp"
#include "search/association.hpp"

namespace cybok::analysis {

/// One feasible attacker path from an entry point to a target.
struct AttackPath {
    std::vector<std::string> components; ///< entry ... target (inclusive)
    /// Sum of associated vectors across the path's components — a rough
    /// measure of attacker option mass.
    std::size_t total_vectors = 0;
    /// Minimum per-component vector count along the path — the weakest
    /// link an architect would reinforce first.
    std::size_t weakest_link = 0;
    /// Product of flow::permeability over the path's components — the
    /// same per-hop attenuation model the flow pass uses, so a path's
    /// exposure is exactly the taint it would deliver to the target.
    double exposure = 0.0;

    [[nodiscard]] std::size_t hops() const noexcept {
        return components.empty() ? 0 : components.size() - 1;
    }
};

struct AttackPathOptions {
    std::size_t max_hops = 8;
    std::size_t max_paths = 256;
    /// Minimum number of associated vectors a component must carry to be
    /// traversable (>= 1; raising it models a better-resourced defender).
    std::size_t min_vectors_per_hop = 1;
};

/// Attack-path enumeration outcome. `truncated` is the honesty bit: true
/// when a bound (max_paths, or max_hops pruning a live branch) cut the
/// enumeration short, so "N paths" means "at least N", not "exactly N".
/// Container shims keep existing call sites (`r.size()`, `r[0]`,
/// range-for) working unchanged.
struct AttackPathsResult {
    std::vector<AttackPath> paths; ///< shortest first
    bool truncated = false;

    [[nodiscard]] auto begin() const noexcept { return paths.begin(); }
    [[nodiscard]] auto end() const noexcept { return paths.end(); }
    [[nodiscard]] std::size_t size() const noexcept { return paths.size(); }
    [[nodiscard]] bool empty() const noexcept { return paths.empty(); }
    [[nodiscard]] const AttackPath& operator[](std::size_t i) const noexcept { return paths[i]; }
};

/// All feasible paths from external-facing components to `target`,
/// shortest first (ties broken by exposure, most exposed first). Entry
/// points themselves must satisfy the traversal predicate. The target
/// must also carry vectors.
[[nodiscard]] AttackPathsResult attack_paths(const model::SystemModel& m,
                                             const search::AssociationMap& associations,
                                             std::string_view target,
                                             const AttackPathOptions& options = {});

} // namespace cybok::analysis
