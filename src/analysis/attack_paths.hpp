// Attack-path enumeration over the architectural graph. "Attackers think
// in graphs" (Lambert, cited by the paper): a path is feasible when every
// component along it carries at least one associated attack vector — each
// hop needs something to exploit.

#pragma once

#include <string>
#include <vector>

#include "model/system_model.hpp"
#include "search/association.hpp"

namespace cybok::analysis {

/// One feasible attacker path from an entry point to a target.
struct AttackPath {
    std::vector<std::string> components; ///< entry ... target (inclusive)
    /// Sum of associated vectors across the path's components — a rough
    /// measure of attacker option mass.
    std::size_t total_vectors = 0;
    /// Minimum per-component vector count along the path — the weakest
    /// link an architect would reinforce first.
    std::size_t weakest_link = 0;

    [[nodiscard]] std::size_t hops() const noexcept {
        return components.empty() ? 0 : components.size() - 1;
    }
};

struct AttackPathOptions {
    std::size_t max_hops = 8;
    std::size_t max_paths = 256;
    /// Minimum number of associated vectors a component must carry to be
    /// traversable (>= 1; raising it models a better-resourced defender).
    std::size_t min_vectors_per_hop = 1;
};

/// All feasible paths from external-facing components to `target`,
/// shortest first. Entry points themselves must satisfy the traversal
/// predicate. The target must also carry vectors.
[[nodiscard]] std::vector<AttackPath> attack_paths(const model::SystemModel& m,
                                                   const search::AssociationMap& associations,
                                                   std::string_view target,
                                                   const AttackPathOptions& options = {});

} // namespace cybok::analysis
