// Fidelity sensitivity: quantifies the paper's lesson that "the result
// space is highly sensitive to the fidelity of the model" — the same
// architecture projected to earlier lifecycle stages associates with a
// differently sized and differently *shaped* result space (high-level
// models match patterns/weaknesses, implementation models add thousands
// of platform-bound vulnerabilities).

#pragma once

#include <vector>

#include "model/system_model.hpp"
#include "search/association.hpp"

namespace cybok::analysis {

/// Result-space measurements at one fidelity level.
struct FidelityPoint {
    model::Fidelity level = model::Fidelity::Conceptual;
    std::size_t attributes = 0; ///< attributes visible at this level
    std::size_t attack_patterns = 0;
    std::size_t weaknesses = 0;
    std::size_t vulnerabilities = 0;
    /// Fraction of matches established via exact platform binding — a
    /// proxy for how *specific* (vs generic) the result space is.
    double specificity = 0.0;

    [[nodiscard]] std::size_t total() const noexcept {
        return attack_patterns + weaknesses + vulnerabilities;
    }
};

/// Associate the model at every fidelity level from Conceptual to its own
/// maximum and measure each result space.
[[nodiscard]] std::vector<FidelityPoint> fidelity_sweep(const model::SystemModel& m,
                                                        const search::QueryEngine& engine,
                                                        const search::FilterChain* chain =
                                                            nullptr);

} // namespace cybok::analysis
