// What-if analysis: apply an architectural refinement, re-associate only
// what changed, and compare postures — the dashboard loop where "different
// architectures are evaluated by experts iteratively to lead to an
// acceptably secured system".

#pragma once

#include "analysis/posture.hpp"
#include "model/diff.hpp"
#include "search/association.hpp"

namespace cybok::analysis {

/// Everything an analyst needs after one refinement step.
struct WhatIfResult {
    model::ModelDiff diff;
    search::AssociationMap after_associations;
    SecurityPosture after_posture;
    PostureComparison comparison;
};

/// Evaluate a candidate architecture `after` against the current state
/// (`before` + its association map). Association is incremental: only
/// components the diff touches are re-queried.
[[nodiscard]] WhatIfResult what_if(const model::SystemModel& before,
                                   const search::AssociationMap& before_associations,
                                   const model::SystemModel& after,
                                   const search::QueryEngine& engine,
                                   const search::FilterChain* chain = nullptr);

/// Same, but re-association runs through the parallel, cached Associator:
/// unchanged attributes of touched components hit the query cache, and the
/// refined components' superseded cache entries are invalidated (see
/// Associator::reassociate). This is the interactive-dashboard path — the
/// paper's loop "evaluates different architectures iteratively", so each
/// refinement pays only for what actually changed.
[[nodiscard]] WhatIfResult what_if(const model::SystemModel& before,
                                   const search::AssociationMap& before_associations,
                                   const model::SystemModel& after,
                                   search::Associator& associator,
                                   const search::FilterChain* chain = nullptr);

} // namespace cybok::analysis
