// Mission impact: fold the association map through the mission layer to
// answer the question the counts alone cannot — *which missions does the
// current attack surface threaten, and through which components?*

#pragma once

#include "model/mission.hpp"
#include "search/association.hpp"

namespace cybok::analysis {

/// Threat summary for one mission.
struct MissionImpact {
    std::string mission_id;
    std::string mission_text;
    /// Components carrying >= 1 vector that a required function is
    /// allocated to (sorted).
    std::vector<std::string> threatened_via;
    std::size_t vectors = 0; ///< summed over threatened_via

    [[nodiscard]] bool threatened() const noexcept { return !threatened_via.empty(); }
};

/// Per-mission impact, every mission listed (threatened or not), ordered
/// by descending vector count then mission id.
[[nodiscard]] std::vector<MissionImpact> mission_impacts(
    const model::MissionModel& missions, const search::AssociationMap& associations);

/// The centrifuge demo's mission model (separation mission + safety
/// oversight mission), aligned with the synth::centrifuge_model fixture.
[[nodiscard]] model::MissionModel centrifuge_missions();

} // namespace cybok::analysis
