#include "analysis/posture.hpp"

#include <algorithm>
#include <map>

#include "graph/algorithms.hpp"
#include "model/export.hpp"

namespace cybok::analysis {

std::size_t SecurityPosture::total_vectors() const noexcept {
    std::size_t n = 0;
    for (const ComponentPosture& c : components) n += c.total_vectors();
    return n;
}

const ComponentPosture* SecurityPosture::find(std::string_view component) const noexcept {
    for (const ComponentPosture& c : components)
        if (c.component == component) return &c;
    return nullptr;
}

SecurityPosture compute_posture(const model::SystemModel& m,
                                const search::AssociationMap& associations) {
    SecurityPosture posture;

    graph::PropertyGraph g = model::to_graph(m);
    std::map<graph::NodeId, double> centrality = graph::betweenness_centrality(g);

    // Exposure: BFS distance from the set of external-facing components.
    std::vector<graph::NodeId> external;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid() || !c.external_facing) continue;
        if (auto n = g.find_node(c.name)) external.push_back(*n);
    }
    std::map<std::string, std::uint32_t> exposure;
    {
        // Multi-source BFS: order returned by reachable_from is by level.
        // Recompute distances per source for exactness (architectures are
        // small).
        for (graph::NodeId s : external) {
            std::vector<std::uint32_t> dist = graph::bfs_distances(g, s);
            for (graph::NodeId n : g.nodes()) {
                std::uint32_t d = n.value < dist.size() ? dist[n.value] : UINT32_MAX;
                const std::string& name = g.node(n).label;
                auto it = exposure.find(name);
                if (it == exposure.end()) exposure.emplace(name, d);
                else it->second = std::min(it->second, d);
            }
        }
    }

    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        ComponentPosture cp;
        cp.component = c.name;
        if (const search::ComponentAssociation* ca = associations.find(c.name)) {
            cp.attack_patterns = ca->count(search::VectorClass::AttackPattern);
            cp.weaknesses = ca->count(search::VectorClass::Weakness);
            cp.vulnerabilities = ca->count(search::VectorClass::Vulnerability);
            for (const search::AttributeAssociation& aa : ca->attributes)
                for (const search::Match& match : aa.matches)
                    cp.max_severity = std::max(cp.max_severity, match.severity);
        }
        if (auto n = g.find_node(c.name)) cp.centrality = centrality[*n];
        auto it = exposure.find(c.name);
        if (it != exposure.end()) cp.exposure_hops = it->second;
        posture.components.push_back(std::move(cp));
    }
    return posture;
}

std::string_view verdict_name(Verdict v) noexcept {
    switch (v) {
        case Verdict::Improved: return "improved";
        case Verdict::Unchanged: return "unchanged";
        case Verdict::Mixed: return "mixed";
        case Verdict::Worsened: return "worsened";
    }
    return "?";
}

PostureComparison compare(const SecurityPosture& before, const SecurityPosture& after) {
    PostureComparison out;
    std::map<std::string, const ComponentPosture*> b;
    for (const ComponentPosture& c : before.components) b.emplace(c.component, &c);
    std::map<std::string, const ComponentPosture*> a;
    for (const ComponentPosture& c : after.components) a.emplace(c.component, &c);

    std::map<std::string, std::nullptr_t> names;
    for (const auto& [n, _] : b) names.emplace(n, nullptr);
    for (const auto& [n, _] : a) names.emplace(n, nullptr);

    bool any_up = false;
    bool any_down = false;
    for (const auto& [name, _] : names) {
        const ComponentPosture* pb = b.contains(name) ? b.at(name) : nullptr;
        const ComponentPosture* pa = a.contains(name) ? a.at(name) : nullptr;
        PostureComparison::Row row;
        row.component = name;
        auto delta = [](std::size_t x_before, std::size_t x_after) {
            return static_cast<std::int64_t>(x_after) - static_cast<std::int64_t>(x_before);
        };
        row.delta_patterns = delta(pb ? pb->attack_patterns : 0, pa ? pa->attack_patterns : 0);
        row.delta_weaknesses = delta(pb ? pb->weaknesses : 0, pa ? pa->weaknesses : 0);
        row.delta_vulnerabilities =
            delta(pb ? pb->vulnerabilities : 0, pa ? pa->vulnerabilities : 0);
        if (row.delta_total() > 0) any_up = true;
        if (row.delta_total() < 0) any_down = true;
        out.delta_total += row.delta_total();
        if (row.delta_total() != 0) out.rows.push_back(std::move(row));
    }

    if (!any_up && !any_down) out.verdict = Verdict::Unchanged;
    else if (any_up && any_down) out.verdict = Verdict::Mixed;
    else if (any_down) out.verdict = Verdict::Improved;
    else out.verdict = Verdict::Worsened;
    return out;
}

} // namespace cybok::analysis
