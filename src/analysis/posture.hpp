// Security-posture metrics. Deliberately *qualitative and comparative*:
// the paper argues quantitative cyber risk is not currently measurable
// (CVSS measures severity, not risk; attacker behavior is
// non-probabilistic), so the unit of judgment here is "architecture A
// relates to fewer / less exposed attack vectors than functionally
// equivalent architecture B".

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/system_model.hpp"
#include "search/association.hpp"

namespace cybok::analysis {

/// Per-component posture facts.
struct ComponentPosture {
    std::string component;
    std::size_t attack_patterns = 0;
    std::size_t weaknesses = 0;
    std::size_t vulnerabilities = 0;
    /// Worst CVSS base score among matched vulnerabilities (-1 if none).
    double max_severity = -1.0;
    /// Betweenness centrality in the architectural graph — how much of the
    /// system's communication pivots through this component.
    double centrality = 0.0;
    /// Minimum hop distance from any external-facing component
    /// (0 = is external-facing; UINT32_MAX = unreachable from outside).
    std::uint32_t exposure_hops = UINT32_MAX;

    [[nodiscard]] std::size_t total_vectors() const noexcept {
        return attack_patterns + weaknesses + vulnerabilities;
    }
};

/// Whole-model posture.
struct SecurityPosture {
    std::vector<ComponentPosture> components;

    [[nodiscard]] std::size_t total_vectors() const noexcept;
    [[nodiscard]] const ComponentPosture* find(std::string_view component) const noexcept;
};

/// Compute posture facts from a model and its association map.
[[nodiscard]] SecurityPosture compute_posture(const model::SystemModel& m,
                                              const search::AssociationMap& associations);

/// Outcome of comparing two postures (before -> after).
enum class Verdict { Improved, Unchanged, Mixed, Worsened };
[[nodiscard]] std::string_view verdict_name(Verdict v) noexcept;

/// Component-by-component comparison of two postures. Components are
/// matched by name; appearing/disappearing components count as changes in
/// the direction of their vector mass.
struct PostureComparison {
    struct Row {
        std::string component;
        std::int64_t delta_patterns = 0;
        std::int64_t delta_weaknesses = 0;
        std::int64_t delta_vulnerabilities = 0;
        [[nodiscard]] std::int64_t delta_total() const noexcept {
            return delta_patterns + delta_weaknesses + delta_vulnerabilities;
        }
    };
    std::vector<Row> rows;
    std::int64_t delta_total = 0;
    Verdict verdict = Verdict::Unchanged;
};

[[nodiscard]] PostureComparison compare(const SecurityPosture& before,
                                        const SecurityPosture& after);

} // namespace cybok::analysis
