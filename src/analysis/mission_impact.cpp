#include "analysis/mission_impact.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace cybok::analysis {

std::vector<MissionImpact> mission_impacts(const model::MissionModel& missions,
                                           const search::AssociationMap& associations) {
    std::map<std::string, std::size_t> vectors;
    for (const search::ComponentAssociation& ca : associations.components)
        vectors[ca.component] = ca.total();

    std::vector<MissionImpact> out;
    for (const model::Mission& mission : missions.missions()) {
        MissionImpact impact;
        impact.mission_id = mission.id;
        impact.mission_text = mission.text;
        std::set<std::string> via;
        for (const std::string& fid : mission.requires_functions) {
            const model::Function* f = missions.find_function(fid);
            if (f == nullptr) continue;
            for (const std::string& component : f->allocated_to) {
                auto it = vectors.find(component);
                if (it != vectors.end() && it->second > 0) via.insert(component);
            }
        }
        for (const std::string& component : via) {
            impact.threatened_via.push_back(component);
            impact.vectors += vectors.at(component);
        }
        out.push_back(std::move(impact));
    }
    std::sort(out.begin(), out.end(), [](const MissionImpact& a, const MissionImpact& b) {
        if (a.vectors != b.vectors) return a.vectors > b.vectors;
        return a.mission_id < b.mission_id;
    });
    return out;
}

model::MissionModel centrifuge_missions() {
    model::MissionModel mm;
    mm.add(model::Function{"F-1", "separate particulate from solution",
                           {"BPCS platform", "Centrifuge"}});
    mm.add(model::Function{"F-2", "regulate solution temperature",
                           {"BPCS platform", "Temperature sensor"}});
    mm.add(model::Function{"F-3", "supervise and reprogram the control logic",
                           {"Programming WS", "Control firewall"}});
    mm.add(model::Function{"F-4", "trip the centrifuge on unsafe state",
                           {"SIS platform", "Temperature sensor"}});
    mm.add(model::Mission{"M-1", "produce an in-specification product batch",
                          {"F-1", "F-2"}});
    mm.add(model::Mission{"M-2", "operate without harm to people or equipment",
                          {"F-2", "F-4"}});
    mm.add(model::Mission{"M-3", "adapt the process to new recipes", {"F-3"}});
    return mm;
}

} // namespace cybok::analysis
