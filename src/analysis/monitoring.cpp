#include "analysis/monitoring.hpp"

#include <algorithm>
#include <set>

namespace cybok::analysis {

CorpusDelta corpus_delta(const kb::Corpus& before, const kb::Corpus& after) {
    CorpusDelta delta;
    std::set<std::uint32_t> old_patterns;
    for (const kb::AttackPattern& p : before.patterns()) old_patterns.insert(p.id.value);
    for (const kb::AttackPattern& p : after.patterns())
        if (!old_patterns.contains(p.id.value)) delta.new_patterns.push_back(p.id.to_string());

    std::set<std::uint32_t> old_weaknesses;
    for (const kb::Weakness& w : before.weaknesses()) old_weaknesses.insert(w.id.value);
    for (const kb::Weakness& w : after.weaknesses())
        if (!old_weaknesses.contains(w.id.value))
            delta.new_weaknesses.push_back(w.id.to_string());

    std::set<std::pair<std::uint32_t, std::uint32_t>> old_vulns;
    for (const kb::Vulnerability& v : before.vulnerabilities())
        old_vulns.emplace(v.id.year, v.id.number);
    for (const kb::Vulnerability& v : after.vulnerabilities())
        if (!old_vulns.contains({v.id.year, v.id.number}))
            delta.new_vulnerabilities.push_back(v.id.to_string());
    return delta;
}

std::vector<std::string> ReevaluationResult::affected_components() const {
    std::set<std::string> names;
    for (const NewExposure& e : new_exposures) names.insert(e.component);
    return {names.begin(), names.end()};
}

ReevaluationResult reevaluate(const model::SystemModel& deployed,
                              const search::AssociationMap& baseline,
                              const kb::Corpus& baseline_corpus,
                              const search::QueryEngine& fresh_engine,
                              const search::FilterChain* chain) {
    ReevaluationResult out;
    out.delta = corpus_delta(baseline_corpus, fresh_engine.corpus());

    // Baseline match-id sets per (component, attribute).
    std::map<std::pair<std::string, std::string>, std::set<std::string>> known;
    for (const search::ComponentAssociation& ca : baseline.components)
        for (const search::AttributeAssociation& aa : ca.attributes)
            for (const search::Match& m : aa.matches)
                known[{ca.component, aa.attribute_name}].insert(m.id);

    search::AssociationMap fresh = search::associate(deployed, fresh_engine, chain);
    for (const search::ComponentAssociation& ca : fresh.components) {
        for (const search::AttributeAssociation& aa : ca.attributes) {
            auto it = known.find({ca.component, aa.attribute_name});
            for (const search::Match& m : aa.matches) {
                if (it != known.end() && it->second.contains(m.id)) continue;
                out.new_exposures.push_back(NewExposure{ca.component, aa.attribute_name, m});
            }
        }
    }
    return out;
}

} // namespace cybok::analysis
