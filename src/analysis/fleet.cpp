#include "analysis/fleet.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>

#include "analysis/posture.hpp"
#include "search/association.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace cybok::analysis {

namespace {

/// %a rendering — same exact-bits convention as flow::FlowResult::
/// fingerprint(), so two rankings fingerprint equal iff every score is
/// bit-identical.
std::string hex_double(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

std::string round1(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return buf;
}

/// Analyze one already-generated system into its report slot. Everything
/// here is a pure function of (engine, system, options) — the sequential
/// reference association path keeps the result independent of sibling
/// tasks and thread count.
void analyze_system(const search::QueryEngine& engine, const synth::ZooSystem& sys,
                    const FleetOptions& options, FleetSystemReport& report,
                    search::AssocMetrics& metrics) {
    const model::SystemModel& m = sys.model;
    report.components = m.component_count();
    report.connectors = m.connectors().size();

    const search::AssociationMap assoc = search::associate(m, engine);
    metrics.components += assoc.components.size();
    for (const search::ComponentAssociation& ca : assoc.components) {
        metrics.attributes += ca.attributes.size();
        metrics.queries_run += ca.attributes.size();
    }
    metrics.pattern_candidates += assoc.total(search::VectorClass::AttackPattern);
    metrics.weakness_candidates += assoc.total(search::VectorClass::Weakness);
    metrics.vulnerability_candidates += assoc.total(search::VectorClass::Vulnerability);

    report.attack_patterns = assoc.total(search::VectorClass::AttackPattern);
    report.weaknesses = assoc.total(search::VectorClass::Weakness);
    report.vulnerabilities = assoc.total(search::VectorClass::Vulnerability);

    const SecurityPosture posture = compute_posture(m, assoc);
    for (const ComponentPosture& cp : posture.components)
        report.max_severity = std::max(report.max_severity, cp.max_severity);

    const flow::FlowResult fr = flow::analyze(m, assoc, &sys.hazards, options.flow);
    report.flow_counts = fr.counts;
    report.tainted = fr.counts.tainted;
    report.chokepoints = fr.chokepoints.size();
    report.min_cut_size = fr.min_cut_size;
    report.hazards_total = fr.slices.size();
    for (const flow::HazardSlice& s : fr.slices)
        if (s.tainted_reach) ++report.tainted_hazards;
    for (const flow::ComponentFlow& cf : fr.components)
        if (cf.hazard_linked) report.max_taint = std::max(report.max_taint, cf.taint);

    // CVSS-weighted attack paths to every hazard-linked component; keep the
    // worst few (exposure desc, then path bytes for a total order).
    std::vector<AttackPath> all_paths;
    for (const flow::ComponentFlow& cf : fr.components) {
        if (!cf.hazard_linked) continue;
        AttackPathsResult r = attack_paths(m, assoc, cf.component, options.paths);
        report.paths_found += r.size();
        for (AttackPath& p : r.paths) all_paths.push_back(std::move(p));
    }
    std::sort(all_paths.begin(), all_paths.end(), [](const AttackPath& a, const AttackPath& b) {
        if (a.exposure != b.exposure) return a.exposure > b.exposure;
        return a.components < b.components;
    });
    if (all_paths.size() > options.top_paths) all_paths.resize(options.top_paths);
    if (!all_paths.empty()) report.top_exposure = all_paths.front().exposure;
    report.top_paths = std::move(all_paths);

    const double hazard_frac =
        report.hazards_total == 0
            ? 0.0
            : static_cast<double>(report.tainted_hazards) /
                  static_cast<double>(report.hazards_total);
    const double taint_frac =
        report.components == 0
            ? 0.0
            : static_cast<double>(report.tainted) / static_cast<double>(report.components);
    report.risk = 40.0 * report.top_exposure + 30.0 * hazard_frac + 20.0 * taint_frac +
                  10.0 * std::max(0.0, report.max_severity) / 10.0;
}

/// The shared batch driver: one task per system, each writing its own
/// pre-sized slot, then a deterministic sort + aggregation pass.
FleetResult run_fleet(const FleetOptions& options, std::size_t count,
                      const std::function<void(std::size_t, FleetSystemReport&)>& describe,
                      const std::function<void(std::size_t, FleetSystemReport&,
                                               search::AssocMetrics&)>& task) {
    FleetResult result;
    result.systems = count;

    std::vector<FleetSystemReport> reports(count);
    std::vector<search::AssocMetrics> metrics(count);
    util::ThreadPool pool(options.threads);
    result.threads = pool.thread_count();
    pool.parallel_for(count, [&](std::size_t i) {
        // Identity first, so a failed report still names its system...
        describe(i, reports[i]);
        // ...then the degradation contract: any typed failure inside one
        // system's generate/analyze becomes a recorded per-system failure —
        // never an exception out of the batch (ThreadPool would rethrow it
        // and abort the sibling results' delivery).
        try {
            CYBOK_FAULT_POINT("analysis.fleet.task",
                              Error("injected: fleet task failed for " + reports[i].name));
            task(i, reports[i], metrics[i]);
        } catch (const std::exception& e) {
            reports[i].failed = true;
            reports[i].error = e.what();
        }
    });

    std::sort(reports.begin(), reports.end(),
              [](const FleetSystemReport& a, const FleetSystemReport& b) {
                  if (a.failed != b.failed) return b.failed;
                  if (a.risk != b.risk) return a.risk > b.risk;
                  return a.name < b.name;
              });
    for (std::size_t i = 0; i < reports.size(); ++i) reports[i].rank = i + 1;

    for (const FleetSystemReport& r : reports) {
        if (r.failed) ++result.failed;
        result.total_components += r.components;
        result.total_connectors += r.connectors;
        result.total_vectors += r.total_vectors();
        result.total_tainted += r.tainted;
        result.total_chokepoints += r.chokepoints;
        // FlowCounts::merge adopts the later run; fleet totals must sum.
        result.flow_totals.nodes += r.flow_counts.nodes;
        result.flow_totals.edges += r.flow_counts.edges;
        result.flow_totals.taint_iterations += r.flow_counts.taint_iterations;
        result.flow_totals.slice_iterations += r.flow_counts.slice_iterations;
        result.flow_totals.edges_traversed += r.flow_counts.edges_traversed;
        result.flow_totals.tainted += r.flow_counts.tainted;
        result.flow_totals.chokepoints += r.flow_counts.chokepoints;
        result.flow_totals.analyses += r.flow_counts.analyses;
        result.flow_totals.incremental_analyses += r.flow_counts.incremental_analyses;
        result.flow_totals.reused_components += r.flow_counts.reused_components;
    }
    for (const search::AssocMetrics& m : metrics) result.metrics.merge(m);
    result.metrics.threads = result.threads;
    result.ranking = std::move(reports);
    return result;
}

} // namespace

json::Value FleetSystemReport::to_json() const {
    json::Object o;
    o["name"] = name;
    o["domain"] = domain;
    o["seed"] = seed;
    o["rank"] = rank;
    o["components"] = components;
    o["connectors"] = connectors;
    if (failed) {
        o["failed"] = true;
        o["error"] = error;
        return json::Value(std::move(o));
    }
    o["attack_patterns"] = attack_patterns;
    o["weaknesses"] = weaknesses;
    o["vulnerabilities"] = vulnerabilities;
    o["max_severity"] = max_severity;
    o["tainted"] = tainted;
    o["chokepoints"] = chokepoints;
    o["min_cut_size"] = min_cut_size;
    o["max_taint"] = max_taint;
    o["tainted_hazards"] = tainted_hazards;
    o["hazards_total"] = hazards_total;
    o["paths_found"] = paths_found;
    o["top_exposure"] = top_exposure;
    o["risk"] = risk;
    json::Array paths;
    for (const AttackPath& p : top_paths) {
        json::Object po;
        json::Array comps;
        for (const std::string& c : p.components) comps.emplace_back(c);
        po["components"] = json::Value(std::move(comps));
        po["exposure"] = p.exposure;
        po["total_vectors"] = p.total_vectors;
        po["weakest_link"] = p.weakest_link;
        paths.emplace_back(std::move(po));
    }
    o["top_paths"] = json::Value(std::move(paths));
    return json::Value(std::move(o));
}

const FleetSystemReport* FleetResult::find(std::string_view name) const noexcept {
    for (const FleetSystemReport& r : ranking)
        if (r.name == name) return &r;
    return nullptr;
}

std::string FleetResult::fingerprint() const {
    std::ostringstream out;
    out << "fleet|" << systems << '|' << failed << '\n';
    for (const FleetSystemReport& r : ranking) {
        out << r.rank << '|' << r.name << '|' << r.domain << '|' << r.seed << '|'
            << r.components << '|' << r.connectors << '|' << r.failed << '|' << r.error << '|'
            << r.attack_patterns << '|' << r.weaknesses << '|' << r.vulnerabilities << '|'
            << hex_double(r.max_severity) << '|' << r.tainted << '|' << r.chokepoints << '|'
            << r.min_cut_size << '|' << hex_double(r.max_taint) << '|' << r.tainted_hazards
            << '|' << r.hazards_total << '|' << r.paths_found << '|'
            << hex_double(r.top_exposure) << '|' << hex_double(r.risk) << '|';
        for (const AttackPath& p : r.top_paths) {
            for (const std::string& c : p.components) out << c << ',';
            out << '=' << hex_double(p.exposure) << ';';
        }
        out << '\n';
    }
    return std::move(out).str();
}

std::string FleetResult::summary() const {
    std::ostringstream out;
    out << systems << " systems (" << failed << " failed)";
    for (const FleetSystemReport& r : ranking) {
        if (r.failed) continue;
        out << ", riskiest " << r.name << " risk " << round1(r.risk);
        break;
    }
    return std::move(out).str();
}

json::Value FleetResult::to_json() const {
    json::Object o;
    o["systems"] = systems;
    o["failed"] = failed;
    o["threads"] = threads;
    o["total_components"] = total_components;
    o["total_connectors"] = total_connectors;
    o["total_vectors"] = total_vectors;
    o["total_tainted"] = total_tainted;
    o["total_chokepoints"] = total_chokepoints;
    json::Array rows;
    for (const FleetSystemReport& r : ranking) rows.push_back(r.to_json());
    o["ranking"] = json::Value(std::move(rows));
    o["metrics"] = metrics.to_json();
    o["flow_totals"] = flow_totals.to_json();
    return json::Value(std::move(o));
}

FleetResult analyze_fleet(const search::QueryEngine& engine, const FleetOptions& options) {
    const std::vector<synth::ZooDomain>& domains =
        options.domains.empty() ? synth::all_zoo_domains() : options.domains;
    std::vector<synth::ZooConfig> configs(options.systems);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        configs[i].domain = domains[i % domains.size()];
        configs[i].seed = options.base_seed + i;
        configs[i].components = options.components;
        configs[i].platform_ref_prob = options.platform_ref_prob;
        configs[i].parameter_prob = options.parameter_prob;
    }
    return run_fleet(options, configs.size(),
                     [&](std::size_t i, FleetSystemReport& report) {
                         report.name = synth::zoo_system_name(configs[i]);
                         report.domain = std::string(synth::zoo_domain_name(configs[i].domain));
                         report.seed = configs[i].seed;
                     },
                     [&](std::size_t i, FleetSystemReport& report,
                         search::AssocMetrics& metrics) {
                         const synth::ZooSystem sys = synth::generate_zoo_system(configs[i]);
                         analyze_system(engine, sys, options, report, metrics);
                     });
}

FleetResult analyze_fleet(const search::QueryEngine& engine,
                          const std::vector<synth::ZooSystem>& fleet,
                          const FleetOptions& options) {
    return run_fleet(options, fleet.size(),
                     [&](std::size_t i, FleetSystemReport& report) {
                         report.name = fleet[i].model.name();
                     },
                     [&](std::size_t i, FleetSystemReport& report,
                         search::AssocMetrics& metrics) {
                         analyze_system(engine, fleet[i], options, report, metrics);
                     });
}

} // namespace cybok::analysis
