#include "analysis/hardening.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "graph/algorithms.hpp"
#include "model/export.hpp"

namespace cybok::analysis {

namespace {

/// Association map with one component's matches removed — the post-
/// hardening hypothetical.
search::AssociationMap without_component(const search::AssociationMap& assoc,
                                         const std::string& component) {
    search::AssociationMap out = assoc;
    for (search::ComponentAssociation& ca : out.components) {
        if (ca.component != component) continue;
        for (search::AttributeAssociation& aa : ca.attributes) aa.matches.clear();
    }
    return out;
}

std::size_t count_paths(const model::SystemModel& m, const search::AssociationMap& assoc,
                        const std::vector<std::string>& targets,
                        const AttackPathOptions& opts) {
    std::size_t n = 0;
    for (const std::string& target : targets) {
        if (!m.find_component(target).has_value()) continue;
        n += attack_paths(m, assoc, target, opts).size();
    }
    return n;
}

} // namespace

std::vector<HardeningCandidate> rank_hardening_candidates(
    const model::SystemModel& m, const search::AssociationMap& associations,
    const safety::HazardModel* hazards, const HardeningOptions& options) {
    // Resolve targets.
    std::vector<std::string> targets = options.targets;
    if (targets.empty()) {
        for (const model::Component& c : m.components()) {
            if (!c.id.valid()) continue;
            if (c.type == model::ComponentType::Controller ||
                c.type == model::ComponentType::Actuator ||
                c.type == model::ComponentType::PhysicalProcess)
                targets.push_back(c.name);
        }
    }

    const std::size_t baseline_paths = count_paths(m, associations, targets,
                                                   options.path_options);
    std::size_t baseline_traces = 0;
    if (hazards != nullptr) {
        safety::ConsequenceAnalyzer analyzer(m, *hazards);
        baseline_traces = analyzer.trace(associations).size();
    }

    // Articulation points of the architecture graph (structural choke
    // points; flagged because hardening them pays twice).
    graph::PropertyGraph g = model::to_graph(m);
    std::set<std::string> cut_vertices;
    for (graph::NodeId n : graph::articulation_points(g))
        cut_vertices.insert(g.node(n).label);

    std::vector<HardeningCandidate> out;
    for (const search::ComponentAssociation& ca : associations.components) {
        if (ca.total() == 0) continue;
        HardeningCandidate cand;
        cand.component = ca.component;
        cand.vectors_removed = ca.total();
        cand.articulation_point = cut_vertices.contains(ca.component);

        search::AssociationMap hardened = without_component(associations, ca.component);
        std::size_t paths_after = count_paths(m, hardened, targets, options.path_options);
        cand.paths_cut = baseline_paths > paths_after ? baseline_paths - paths_after : 0;
        if (hazards != nullptr) {
            safety::ConsequenceAnalyzer analyzer(m, *hazards);
            std::size_t traces_after = analyzer.trace(hardened).size();
            cand.traces_blocked =
                baseline_traces > traces_after ? baseline_traces - traces_after : 0;
        }
        out.push_back(std::move(cand));
    }

    std::sort(out.begin(), out.end(), [](const HardeningCandidate& a,
                                         const HardeningCandidate& b) {
        if (a.traces_blocked != b.traces_blocked) return a.traces_blocked > b.traces_blocked;
        if (a.paths_cut != b.paths_cut) return a.paths_cut > b.paths_cut;
        if (a.vectors_removed != b.vectors_removed)
            return a.vectors_removed > b.vectors_removed;
        return a.component < b.component;
    });
    return out;
}

} // namespace cybok::analysis
