#include "baseline/comparison.hpp"

#include <set>

namespace cybok::baseline {

MethodologyComparison compare_methodologies(const model::SystemModel& m,
                                            const search::AssociationMap& associations,
                                            const safety::HazardModel& hazards,
                                            std::string_view tree_target) {
    MethodologyComparison out;

    // Baseline side.
    std::vector<StrideThreat> stride = stride_per_element(m);
    out.stride_findings = stride.size();
    for (const model::Component& c : m.components())
        if (c.id.valid() && !baseline_models(c)) ++out.unmodeled_components;
    AttackTree tree = build_attack_tree(m, associations, tree_target);
    out.attack_tree_leaves = tree.leaf_count();
    out.minimal_attack_sets = tree.minimal_attack_sets().size();
    // A STRIDE finding carries no hazard/loss reference: count any that do
    // (there is no field to carry one — the count stays zero because the
    // representation has nowhere to put it).
    out.baseline_consequence_links = 0;

    // CPS side.
    safety::ConsequenceAnalyzer analyzer(m, hazards);
    std::vector<safety::ConsequenceTrace> traces = analyzer.trace(associations);
    out.consequence_traces = traces.size();
    std::set<std::string> losses;
    for (const safety::ConsequenceTrace& t : traces)
        losses.insert(t.loss_ids.begin(), t.loss_ids.end());
    out.distinct_losses_reached = losses.size();

    for (const safety::CausalScenario& s :
         safety::generate_scenarios(m, hazards, associations))
        if (s.supported()) ++out.supported_scenarios;

    return out;
}

} // namespace cybok::baseline
