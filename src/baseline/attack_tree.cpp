#include "baseline/attack_tree.hpp"

#include <functional>
#include <sstream>

namespace cybok::baseline {

AttackTree::AttackTree(std::string goal) {
    AttackTreeNode root;
    root.kind = AttackTreeNode::Kind::Goal;
    root.label = std::move(goal);
    nodes_.push_back(std::move(root));
}

std::size_t AttackTree::add_node(AttackTreeNode::Kind kind, std::string label,
                                 std::size_t parent) {
    if (parent >= nodes_.size()) throw ValidationError("attack tree: bad parent index");
    AttackTreeNode node;
    node.kind = kind;
    node.label = std::move(label);
    nodes_.push_back(std::move(node));
    std::size_t index = nodes_.size() - 1;
    nodes_[parent].children.push_back(index);
    return index;
}

std::size_t AttackTree::leaf_count() const noexcept {
    std::size_t n = 0;
    for (const AttackTreeNode& node : nodes_)
        if (node.kind == AttackTreeNode::Kind::Leaf) ++n;
    return n;
}

std::vector<std::vector<std::string>> AttackTree::minimal_attack_sets(
    std::size_t max_sets) const {
    // Bottom-up set algebra with a cap to bound the cross products.
    std::function<std::vector<std::vector<std::string>>(std::size_t)> solve =
        [&](std::size_t index) -> std::vector<std::vector<std::string>> {
        const AttackTreeNode& node = nodes_[index];
        if (node.kind == AttackTreeNode::Kind::Leaf) return {{node.label}};
        if (node.children.empty()) return {};

        if (node.kind == AttackTreeNode::Kind::And) {
            std::vector<std::vector<std::string>> acc{{}};
            for (std::size_t child : node.children) {
                std::vector<std::vector<std::string>> rhs = solve(child);
                std::vector<std::vector<std::string>> next;
                for (const auto& a : acc) {
                    for (const auto& b : rhs) {
                        std::vector<std::string> merged = a;
                        merged.insert(merged.end(), b.begin(), b.end());
                        next.push_back(std::move(merged));
                        if (next.size() >= max_sets) break;
                    }
                    if (next.size() >= max_sets) break;
                }
                acc = std::move(next);
            }
            return acc;
        }
        // Goal and Or: union of children's sets.
        std::vector<std::vector<std::string>> acc;
        for (std::size_t child : node.children) {
            for (auto& set : solve(child)) {
                acc.push_back(std::move(set));
                if (acc.size() >= max_sets) return acc;
            }
        }
        return acc;
    };
    return solve(0);
}

std::string AttackTree::render() const {
    std::ostringstream out;
    std::function<void(std::size_t, int)> walk = [&](std::size_t index, int depth) {
        const AttackTreeNode& node = nodes_[index];
        for (int i = 0; i < depth; ++i) out << "  ";
        switch (node.kind) {
            case AttackTreeNode::Kind::Goal: out << "GOAL: "; break;
            case AttackTreeNode::Kind::Or: out << "OR: "; break;
            case AttackTreeNode::Kind::And: out << "AND: "; break;
            case AttackTreeNode::Kind::Leaf: out << "- "; break;
        }
        out << node.label << '\n';
        for (std::size_t child : node.children) walk(child, depth + 1);
    };
    walk(0, 0);
    return out.str();
}

AttackTree build_attack_tree(const model::SystemModel& m,
                             const search::AssociationMap& associations,
                             std::string_view target,
                             const analysis::AttackPathOptions& options) {
    AttackTree tree("compromise " + std::string(target));
    const analysis::AttackPathsResult paths =
        analysis::attack_paths(m, associations, target, options);
    if (paths.empty()) return tree;

    for (const analysis::AttackPath& path : paths) {
        std::string branch_label = "via";
        for (const std::string& c : path.components) branch_label += " / " + c;
        std::size_t branch =
            tree.add_node(AttackTreeNode::Kind::And, std::move(branch_label), 0);
        for (const std::string& component : path.components) {
            std::size_t vectors = 0;
            if (const search::ComponentAssociation* ca = associations.find(component))
                vectors = ca->total();
            tree.add_node(AttackTreeNode::Kind::Leaf,
                          "exploit " + component + " (" + std::to_string(vectors) +
                              " candidate vectors)",
                          branch);
        }
    }
    return tree;
}

} // namespace cybok::baseline
