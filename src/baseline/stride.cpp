#include "baseline/stride.hpp"

namespace cybok::baseline {

std::string_view stride_name(Stride s) noexcept {
    switch (s) {
        case Stride::Spoofing: return "spoofing";
        case Stride::Tampering: return "tampering";
        case Stride::Repudiation: return "repudiation";
        case Stride::InformationDisclosure: return "information-disclosure";
        case Stride::DenialOfService: return "denial-of-service";
        case Stride::ElevationOfPrivilege: return "elevation-of-privilege";
    }
    return "?";
}

std::string_view element_class_name(ElementClass c) noexcept {
    switch (c) {
        case ElementClass::ExternalEntity: return "external-entity";
        case ElementClass::Process: return "process";
        case ElementClass::DataFlow: return "data-flow";
        case ElementClass::DataStore: return "data-store";
    }
    return "?";
}

ElementClass classify_component(const model::Component& c) noexcept {
    using model::ComponentType;
    if (c.external_facing &&
        (c.type == ComponentType::HumanInterface || c.type == ComponentType::Compute))
        return ElementClass::ExternalEntity;
    if (c.type == ComponentType::Sensor) return ElementClass::DataStore;
    return ElementClass::Process;
}

bool baseline_models(const model::Component& c) noexcept {
    using model::ComponentType;
    // The IT baseline has no vocabulary for physical elements.
    return c.type != ComponentType::Actuator && c.type != ComponentType::PhysicalProcess;
}

std::vector<Stride> applicable_categories(ElementClass c) {
    switch (c) {
        case ElementClass::ExternalEntity:
            return {Stride::Spoofing, Stride::Repudiation};
        case ElementClass::Process:
            return {Stride::Spoofing, Stride::Tampering, Stride::Repudiation,
                    Stride::InformationDisclosure, Stride::DenialOfService,
                    Stride::ElevationOfPrivilege};
        case ElementClass::DataFlow:
            return {Stride::Tampering, Stride::InformationDisclosure,
                    Stride::DenialOfService};
        case ElementClass::DataStore:
            return {Stride::Tampering, Stride::Repudiation,
                    Stride::InformationDisclosure, Stride::DenialOfService};
    }
    return {};
}

namespace {

std::string template_text(Stride s, const std::string& element) {
    switch (s) {
        case Stride::Spoofing:
            return "An attacker may impersonate " + element + " or an identity it trusts.";
        case Stride::Tampering:
            return "Data handled by " + element + " may be modified without detection.";
        case Stride::Repudiation:
            return element + " may perform actions that cannot be attributed afterwards.";
        case Stride::InformationDisclosure:
            return "Information processed by " + element + " may be exposed to "
                   "unauthorized parties.";
        case Stride::DenialOfService:
            return element + " may be made unavailable to legitimate users.";
        case Stride::ElevationOfPrivilege:
            return "An attacker may gain capabilities on " + element +
                   " beyond those granted.";
    }
    return {};
}

} // namespace

std::vector<StrideThreat> stride_per_element(const model::SystemModel& m) {
    std::vector<StrideThreat> out;

    for (const model::Component& c : m.components()) {
        if (!c.id.valid() || !baseline_models(c)) continue;
        ElementClass cls = classify_component(c);
        for (Stride s : applicable_categories(cls)) {
            StrideThreat t;
            t.element = c.name;
            t.element_class = cls;
            t.category = s;
            t.description = template_text(s, c.name);
            out.push_back(std::move(t));
        }
    }

    for (const model::Connector& k : m.connectors()) {
        if (!m.contains(k.from) || !m.contains(k.to)) continue;
        // Flows touching unmodeled (physical) endpoints are skipped, as in
        // IT tools where the diagram simply ends at the last server.
        if (!baseline_models(m.component(k.from)) || !baseline_models(m.component(k.to)))
            continue;
        std::string name = m.component(k.from).name + " -> " + m.component(k.to).name +
                           " (" + k.name + ")";
        for (Stride s : applicable_categories(ElementClass::DataFlow)) {
            StrideThreat t;
            t.element = name;
            t.element_class = ElementClass::DataFlow;
            t.category = s;
            t.description = template_text(s, name);
            out.push_back(std::move(t));
        }
    }
    return out;
}

} // namespace cybok::baseline
