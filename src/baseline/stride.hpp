// Baseline comparator #1: STRIDE-per-element threat modeling — the
// IT-centric methodology (Microsoft threat modeling tool style) the paper
// holds up as insufficient for CPS: "they are primarily focused on the IT
// infrastructure … This narrow focus does not allow for the modeling of
// the physical interactions … and, therefore, cannot map threats to
// environmental consequences."
//
// The implementation is a faithful STRIDE-per-element: each model element
// is classified as external entity / process / data flow / data store and
// receives the standard threat categories for its class. Crucially — and
// this is the point of having the baseline — the findings are generic
// template text with NO linkage to hazards, losses, or control actions.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/system_model.hpp"

namespace cybok::baseline {

enum class Stride : std::uint8_t {
    Spoofing,
    Tampering,
    Repudiation,
    InformationDisclosure,
    DenialOfService,
    ElevationOfPrivilege,
};
[[nodiscard]] std::string_view stride_name(Stride s) noexcept;

/// STRIDE-per-element's element taxonomy.
enum class ElementClass : std::uint8_t { ExternalEntity, Process, DataFlow, DataStore };
[[nodiscard]] std::string_view element_class_name(ElementClass c) noexcept;

/// Classification of a model element for the baseline:
///  * external-facing HumanInterface/Compute components -> ExternalEntity
///  * Controller/Compute/Software/Network components    -> Process
///  * Sensor components (measurement producers)         -> DataStore
///  * Actuator/PhysicalProcess components               -> (out of scope
///    for the IT baseline — exactly the gap)
///  * every connector                                   -> DataFlow
[[nodiscard]] ElementClass classify_component(const model::Component& c) noexcept;

/// Whether the IT baseline models this component at all. Physical elements
/// (actuators, physical processes) have no STRIDE element class.
[[nodiscard]] bool baseline_models(const model::Component& c) noexcept;

/// One generic finding.
struct StrideThreat {
    std::string element;     ///< component name or "from -> to" for flows
    ElementClass element_class = ElementClass::Process;
    Stride category = Stride::Spoofing;
    std::string description; ///< generic template text
};

/// Run STRIDE-per-element over the model. Deterministic; ordered by
/// element then category.
[[nodiscard]] std::vector<StrideThreat> stride_per_element(const model::SystemModel& m);

/// Which STRIDE categories apply to an element class (the standard chart:
/// external entity SR, process STRIDE, data flow TID, data store TRID).
[[nodiscard]] std::vector<Stride> applicable_categories(ElementClass c);

} // namespace cybok::baseline
