// Baseline comparator #2: attack trees — "Tools based on attack trees are
// often used to augment results from such threat modeling. Therefore, they
// are also focused on the risk to the IT infrastructure and not the risk
// of causing undesirable physical behaviors."
//
// The tree is built from the same architectural facts the CPS pipeline
// uses (feasible attack paths toward a target), so the comparison is
// apples-to-apples: what the representation *can* express, not what data
// it saw. Goal node = compromise of the target; one OR branch per path;
// each branch an AND of per-hop exploitation leaves.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/attack_paths.hpp"

namespace cybok::baseline {

/// One node in an attack tree (index-linked, root is node 0).
struct AttackTreeNode {
    enum class Kind : std::uint8_t { Goal, Or, And, Leaf };
    Kind kind = Kind::Leaf;
    std::string label;
    std::vector<std::size_t> children;
};

class AttackTree {
public:
    /// Root label becomes the goal node.
    explicit AttackTree(std::string goal);

    std::size_t add_node(AttackTreeNode::Kind kind, std::string label,
                         std::size_t parent);

    [[nodiscard]] const std::vector<AttackTreeNode>& nodes() const noexcept { return nodes_; }
    [[nodiscard]] const AttackTreeNode& root() const { return nodes_.front(); }
    [[nodiscard]] std::size_t leaf_count() const noexcept;

    /// Minimal attack sets: every minimal set of leaves whose success
    /// satisfies the root (OR = union of children's sets, AND = cross
    /// product). Capped at `max_sets`.
    [[nodiscard]] std::vector<std::vector<std::string>> minimal_attack_sets(
        std::size_t max_sets = 1024) const;

    /// ASCII rendering (indented, AND/OR annotated).
    [[nodiscard]] std::string render() const;

private:
    std::vector<AttackTreeNode> nodes_;
};

/// Build the attack tree for one target from the feasible attack paths.
/// Returns a tree with a bare goal node when no path exists.
[[nodiscard]] AttackTree build_attack_tree(const model::SystemModel& m,
                                           const search::AssociationMap& associations,
                                           std::string_view target,
                                           const analysis::AttackPathOptions& options = {});

} // namespace cybok::baseline
