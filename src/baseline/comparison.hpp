// The quantitative form of the paper's core argument: IT-centric threat
// modeling produces findings, but *zero* of them connect to physical
// consequences, because the representation cannot express them. The CPS
// pipeline, on the same model and the same attack-vector data, produces
// consequence-linked traces and scenarios.

#pragma once

#include "baseline/attack_tree.hpp"
#include "baseline/stride.hpp"
#include "safety/scenarios.hpp"
#include "safety/trace.hpp"

namespace cybok::baseline {

struct MethodologyComparison {
    // -- the IT baseline ---------------------------------------------------
    std::size_t stride_findings = 0;
    /// Model components the baseline could not represent at all
    /// (actuators, physical processes).
    std::size_t unmodeled_components = 0;
    std::size_t attack_tree_leaves = 0;
    std::size_t minimal_attack_sets = 0;
    /// Baseline findings linked to a hazard or loss. Structurally zero —
    /// kept as a field (not a constant) so the comparison is computed,
    /// not asserted.
    std::size_t baseline_consequence_links = 0;

    // -- the CPS pipeline ----------------------------------------------------
    std::size_t consequence_traces = 0;
    std::size_t supported_scenarios = 0;
    std::size_t distinct_losses_reached = 0;
};

/// Run both methodologies over the same model/associations/hazards.
/// `tree_target` names the component the attack tree is built against
/// (typically the primary controller).
[[nodiscard]] MethodologyComparison compare_methodologies(
    const model::SystemModel& m, const search::AssociationMap& associations,
    const safety::HazardModel& hazards, std::string_view tree_target);

} // namespace cybok::baseline
