// AnalysisSession: the top-level facade implementing the paper's three
// capabilities as one object —
//
//   1. export the system model to a general architectural model
//      (architecture(), architecture_graphml()),
//   2. associate attack-vector data to the general model
//      (associations(), lazily computed, incrementally maintained),
//   3. present merged views for analysis and decision making
//      (report(), posture(), consequence_traces(), export_bundle()),
//
// plus the iterative refinement loop (propose() / commit()) that the
// analyst dashboard exposes as "change the model on the fly and
// immediately see the new results".

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "analysis/hardening.hpp"
#include "analysis/mission_impact.hpp"
#include "analysis/model_advice.hpp"
#include "analysis/whatif.hpp"
#include "dashboard/export_bundle.hpp"
#include "dashboard/vector_graph.hpp"
#include "lint/lint.hpp"
#include "safety/scenarios.hpp"
#include "safety/trace.hpp"
#include "search/engine.hpp"
#include "search/filters.hpp"

namespace cybok::core {

struct SessionOptions {
    search::EngineOptions engine;
    /// Parallel/caching knobs for the association engine (threads, query
    /// cache); defaults fan out across all cores with the cache on.
    search::AssocOptions assoc;
    /// Filter chain applied to every attribute's matches (empty = keep
    /// everything; the Table 1 reproduction runs unfiltered).
    search::FilterChain filters;
    dashboard::ReportOptions report;
    /// Rule configuration for the static lint pass (lint()); thread count,
    /// disabled rules, per-rule severity overrides.
    lint::LintOptions lint;
    /// When set, the first associations() computation runs the lint pass
    /// first and throws ValidationError if any error-severity diagnostic
    /// fires — the "don't compute Table 1 from a known-broken model" gate.
    bool fail_on_lint_error = false;
    /// When non-empty, the engine cold-start cache: if the file holds a
    /// valid snapshot whose engine options and corpus shape match, the
    /// session thaws corpus + engine from it (skipping all tokenization
    /// and index construction); otherwise it builds fresh and writes the
    /// snapshot for the next start. Missing, stale, or corrupt files are
    /// never fatal — the session falls back to a fresh build.
    std::string snapshot_path;
};

/// One analysis session over (model, corpus). The corpus must outlive the
/// session; the model is owned and evolves through commit().
class AnalysisSession {
public:
    AnalysisSession(model::SystemModel m, const kb::Corpus& corpus)
        : AnalysisSession(std::move(m), corpus, SessionOptions{}) {}
    AnalysisSession(model::SystemModel m, const kb::Corpus& corpus, SessionOptions options);

    AnalysisSession(const AnalysisSession&) = delete;
    AnalysisSession& operator=(const AnalysisSession&) = delete;

    [[nodiscard]] const model::SystemModel& model() const noexcept { return model_; }
    /// The corpus the engine indexes: the caller's when built fresh, the
    /// session-owned thawed copy when restored from a snapshot.
    [[nodiscard]] const kb::Corpus& corpus() const noexcept { return *corpus_; }
    [[nodiscard]] const search::SearchEngine& engine() const noexcept { return *engine_; }
    /// True when this session's engine was thawed from options.snapshot_path
    /// instead of built from record text.
    [[nodiscard]] bool from_snapshot() const noexcept {
        return engine_->build_metrics().from_snapshot;
    }
    /// The parallel/cached association engine every association in this
    /// session runs through (associations(), propose(), commit()).
    [[nodiscard]] search::Associator& associator() noexcept { return associator_; }
    /// Cumulative association metrics (queries, cache hit rate, stage
    /// timings, lint counts, degradation events) for this session; also a
    /// report section.
    [[nodiscard]] search::AssocMetrics assoc_metrics() const;
    /// Cold-start degradations recorded by make_engine (snapshot fallback
    /// or failed snapshot write); also folded into assoc_metrics().
    [[nodiscard]] const search::DegradeCounts& cold_start_degrade() const noexcept {
        return degrade_;
    }

    /// Run the static lint pipeline over the session's current state
    /// (model, corpus, hazard model if attached, associations if already
    /// computed — the consequence pass deepens once associations exist).
    /// Deterministic and side-effect-free apart from recording the counts
    /// surfaced through assoc_metrics()/report().
    [[nodiscard]] lint::LintResult lint();

    /// Attach physical-consequence knowledge (losses/hazards/UCAs). Resets
    /// cached traces.
    void set_hazards(safety::HazardModel hazards);
    [[nodiscard]] bool has_hazards() const noexcept { return hazards_.has_value(); }

    /// Attach mission traceability (missions/functions/allocations).
    void set_missions(model::MissionModel missions);
    [[nodiscard]] bool has_missions() const noexcept { return missions_.has_value(); }

    // -- capability 1: export ------------------------------------------------

    [[nodiscard]] graph::PropertyGraph architecture() const;
    [[nodiscard]] std::string architecture_graphml() const;

    // -- capability 2: associate ---------------------------------------------

    /// The association map for the current model (computed on first use,
    /// maintained incrementally across commits).
    [[nodiscard]] const search::AssociationMap& associations();

    // -- capability 3: analyze / present -------------------------------------

    [[nodiscard]] const analysis::SecurityPosture& posture();
    [[nodiscard]] const std::vector<safety::ConsequenceTrace>& consequence_traces();
    /// STPA-style causal scenarios per UCA (empty without a hazard model).
    [[nodiscard]] const std::vector<safety::CausalScenario>& causal_scenarios();
    /// Hardening candidates ranked by blocked traces / cut paths.
    [[nodiscard]] std::vector<analysis::HardeningCandidate> hardening_candidates();
    /// The merged component/attack-vector graph (dashboard graph view).
    [[nodiscard]] graph::PropertyGraph vector_graph(
        const dashboard::VectorGraphOptions& options = {});
    /// Per-mission threat summary (empty without a mission model).
    [[nodiscard]] std::vector<analysis::MissionImpact> mission_impacts();
    /// Model-improvement suggestions for the current model + results.
    [[nodiscard]] std::vector<analysis::Advice> model_advice();
    [[nodiscard]] dashboard::Report report();
    /// Write the full dashboard bundle into an existing directory.
    std::vector<std::string> export_bundle(const std::string& directory);

    // -- refinement loop ------------------------------------------------------

    /// Evaluate a candidate architecture without changing session state.
    [[nodiscard]] analysis::WhatIfResult propose(const model::SystemModel& candidate);

    /// Adopt a candidate architecture; associations are updated
    /// incrementally from the diff. Returns the diff that was applied.
    model::ModelDiff commit(model::SystemModel candidate);

private:
    void invalidate_views() noexcept;
    const search::FilterChain* chain() const noexcept {
        return options_.filters.stage_count() > 0 ? &options_.filters : nullptr;
    }

    /// Load-or-build per SessionOptions::snapshot_path; fills `thawed` with
    /// the snapshot-owned corpus when the engine came from a snapshot, and
    /// `degrade` with any cold-start fallbacks taken (snapshot rejected ->
    /// fresh build, snapshot write failed -> proceed uncached).
    static std::unique_ptr<search::SearchEngine> make_engine(
        const kb::Corpus& corpus, const SessionOptions& options,
        std::unique_ptr<kb::Corpus>& thawed, search::DegradeCounts& degrade);

    model::SystemModel model_;
    SessionOptions options_;
    std::unique_ptr<kb::Corpus> thawed_corpus_; ///< owns the corpus when thawed
    search::DegradeCounts degrade_; ///< cold-start fallbacks (filled by make_engine)
    std::unique_ptr<search::SearchEngine> engine_;
    const kb::Corpus* corpus_; ///< == &engine_->corpus()
    search::Associator associator_;
    std::optional<safety::HazardModel> hazards_;
    std::optional<model::MissionModel> missions_;

    search::LintCounts lint_counts_; ///< most recent lint() run's counts

    std::optional<search::AssociationMap> associations_;
    std::optional<analysis::SecurityPosture> posture_;
    std::optional<std::vector<safety::ConsequenceTrace>> traces_;
    std::optional<std::vector<safety::CausalScenario>> scenarios_;
};

/// Library version string.
[[nodiscard]] std::string_view version() noexcept;

} // namespace cybok::core
