// AnalysisSession: the top-level facade implementing the paper's three
// capabilities as one object —
//
//   1. export the system model to a general architectural model
//      (architecture(), architecture_graphml()),
//   2. associate attack-vector data to the general model
//      (associations(), lazily computed, incrementally maintained),
//   3. present merged views for analysis and decision making
//      (report(), posture(), consequence_traces(), export_bundle()),
//
// plus the iterative refinement loop (propose() / commit()) that the
// analyst dashboard exposes as "change the model on the fly and
// immediately see the new results".

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "analysis/hardening.hpp"
#include "analysis/mission_impact.hpp"
#include "analysis/model_advice.hpp"
#include "analysis/whatif.hpp"
#include "dashboard/export_bundle.hpp"
#include "dashboard/vector_graph.hpp"
#include "flow/flow.hpp"
#include "lint/lint.hpp"
#include "safety/scenarios.hpp"
#include "safety/trace.hpp"
#include "search/engine.hpp"
#include "search/filters.hpp"
#include "search/generation.hpp"

namespace cybok::core {

struct SessionOptions {
    search::EngineOptions engine;
    /// Parallel/caching knobs for the association engine (threads, query
    /// cache); defaults fan out across all cores with the cache on.
    search::AssocOptions assoc;
    /// Filter chain applied to every attribute's matches (empty = keep
    /// everything; the Table 1 reproduction runs unfiltered).
    search::FilterChain filters;
    dashboard::ReportOptions report;
    /// Rule configuration for the static lint pass (lint()); thread count,
    /// disabled rules, per-rule severity overrides.
    lint::LintOptions lint;
    /// Permeability / fixpoint knobs for the flow pass (flow()).
    flow::FlowOptions flow;
    /// When set, the first associations() computation runs the lint pass
    /// first and throws ValidationError if any error-severity diagnostic
    /// fires — the "don't compute Table 1 from a known-broken model" gate.
    bool fail_on_lint_error = false;
    /// When non-empty, the engine cold-start cache: if the file holds a
    /// valid snapshot whose engine options and corpus shape match, the
    /// session thaws corpus + engine from it (skipping all tokenization
    /// and index construction); otherwise it builds fresh and writes the
    /// snapshot for the next start. Missing, stale, or corrupt files are
    /// never fatal — the session falls back to a fresh build.
    std::string snapshot_path;
};

/// One engine and the corpus it indexes, built (or thawed from a
/// snapshot) exactly once and then shared immutably by any number of
/// sessions. This is the serve layer's generation object: the registry
/// thaws one SharedEngine and hangs thousands of session overlays off it,
/// so the snapshot file is opened and its signature/shape staleness check
/// runs once per process, not once per session.
///
/// Thread-safety: after make_shared_engine returns, every member is
/// immutable; the SearchEngine's const-query contract (engine.hpp) makes
/// the whole handle safe to share across threads without synchronization.
struct SharedEngine {
    /// Owns the corpus when it was thawed out of the snapshot blob; null
    /// when the engine indexes a caller-owned corpus (which must then
    /// outlive every session holding this handle).
    std::unique_ptr<kb::Corpus> owned_corpus;
    /// The base (from-scratch) engine. Set on every handle produced by
    /// make_shared_engine / compact; null on a delta handle, whose engine
    /// is `segmented` and whose base lives in the `base` keepalive chain.
    std::unique_ptr<search::SearchEngine> engine;
    /// Set on handles produced by apply_corpus_delta: the base engine plus
    /// the delta-segment chain. Queries go through query(), which prefers
    /// this overlay when present.
    std::unique_ptr<search::SegmentedEngine> segmented;
    /// Keepalive for the *root base* handle a segmented overlay borrows
    /// its SearchEngine (and possibly mmap'd slabs) from. Always points at
    /// a handle with `engine` set, never at another segmented handle —
    /// intermediate delta generations are free to die (their segments are
    /// shared by refcount), so the chain never grows past depth one.
    std::shared_ptr<const SharedEngine> base;
    /// Storage behind the thawed engine's posting/table slabs — exactly one
    /// of these is set on a snapshot start. `mapping` is the zero-copy
    /// path: the engine reads the mmap'd snapshot file in place, so all
    /// sessions over this handle (and across handles mapping the same
    /// file) share one physical copy of the index. `slab_backing` is the
    /// owning fallback when mapping fails. Both empty when built fresh.
    util::AlignedBuffer slab_backing;
    std::shared_ptr<const util::MappedFile> mapping;
    /// Cold-start fallbacks taken while producing the engine (snapshot
    /// stale/corrupt -> fresh build, snapshot write failed -> uncached).
    /// Reported once by the owner of the handle — sessions constructed
    /// over a SharedEngine deliberately do NOT fold these into their own
    /// metrics, so N sessions never multiply one cold-start event.
    search::DegradeCounts cold_start;

    /// The engine this handle serves queries through: the segmented
    /// overlay when a delta has been applied, the base engine otherwise.
    [[nodiscard]] const search::QueryEngine& query() const noexcept {
        return segmented != nullptr ? static_cast<const search::QueryEngine&>(*segmented)
                                    : *engine;
    }

    /// The merged corpus (first call may materialize it — see
    /// search::QueryEngine::corpus()).
    [[nodiscard]] const kb::Corpus& corpus() const { return query().corpus(); }
};

/// The hoisted cold-start path: load-or-build an engine per
/// `options.snapshot_path` + `options.engine` (same semantics the
/// single-session constructor always had — stale/corrupt snapshots fall
/// back to a fresh build over `corpus`, never fatal) and wrap it for
/// sharing. The staleness check (engine-options signature + corpus shape)
/// runs here, once, instead of inside every session constructor.
[[nodiscard]] std::shared_ptr<const SharedEngine> make_shared_engine(
    const kb::Corpus& corpus, const SessionOptions& options);

/// O(delta) generation step: overlay `current` with one corpus delta and
/// return the next immutable generation. `current` is untouched and keeps
/// serving (callers flip to the returned handle when ready — the serve
/// registry's drain-gated swap); a failed apply throws and publishes
/// nothing. Cost is proportional to the delta's record text plus cheap
/// per-apply table refreshes — the base index is never rebuilt.
[[nodiscard]] std::shared_ptr<const SharedEngine> apply_corpus_delta(
    const std::shared_ptr<const SharedEngine>& current, const kb::CorpusDelta& delta);

/// Fold a segmented generation back into a from-scratch base engine over
/// its merged corpus (queries against the result are bit-identical by
/// construction — it *is* the rebuild the segmented engine mirrors).
/// Returns `current` unchanged when there is nothing to fold. Typically
/// run on a background lane (util::ThreadPool) while the segmented
/// generation keeps serving; the engine build itself fans out across the
/// build pool per `current`'s engine options.
[[nodiscard]] std::shared_ptr<const SharedEngine> compact(
    const std::shared_ptr<const SharedEngine>& current);

/// One analysis session over (model, corpus). The corpus must outlive the
/// session; the model is owned and evolves through commit().
class AnalysisSession {
public:
    AnalysisSession(model::SystemModel m, const kb::Corpus& corpus)
        : AnalysisSession(std::move(m), corpus, SessionOptions{}) {}
    AnalysisSession(model::SystemModel m, const kb::Corpus& corpus, SessionOptions options);
    /// Session over a prebuilt shared engine (the serve path): no corpus
    /// IO, no index build, no snapshot validation — construction cost is
    /// the associator + model only. `options.engine` and
    /// `options.snapshot_path` are ignored (the engine already exists);
    /// the handle's cold_start degradations stay with the handle.
    AnalysisSession(model::SystemModel m, std::shared_ptr<const SharedEngine> engine,
                    SessionOptions options = {});

    AnalysisSession(const AnalysisSession&) = delete;
    AnalysisSession& operator=(const AnalysisSession&) = delete;

    [[nodiscard]] const model::SystemModel& model() const noexcept { return model_; }
    /// The corpus the engine indexes: the caller's when built fresh, the
    /// session-owned thawed copy when restored from a snapshot.
    [[nodiscard]] const kb::Corpus& corpus() const noexcept { return *corpus_; }
    [[nodiscard]] const search::QueryEngine& engine() const noexcept {
        return engine_handle_->query();
    }
    /// The shared engine handle behind this session (refcount > 1 when the
    /// session is one of several overlays over one engine).
    [[nodiscard]] const std::shared_ptr<const SharedEngine>& engine_handle() const noexcept {
        return engine_handle_;
    }
    /// True when this session's engine was thawed from options.snapshot_path
    /// instead of built from record text.
    [[nodiscard]] bool from_snapshot() const noexcept {
        return engine_handle_->query().build_metrics().from_snapshot;
    }

    /// Re-point this session at a new engine generation (e.g. the handle
    /// returned by core::apply_corpus_delta or core::compact). The
    /// associator is rebound — its query cache needs no flush, keys embed
    /// the engine generation — and every cached view (associations,
    /// posture, traces) is invalidated so the next access recomputes
    /// against the new corpus.
    void adopt_engine(std::shared_ptr<const SharedEngine> engine);
    /// The parallel/cached association engine every association in this
    /// session runs through (associations(), propose(), commit()).
    [[nodiscard]] search::Associator& associator() noexcept { return associator_; }
    /// Cumulative association metrics (queries, cache hit rate, stage
    /// timings, lint counts, degradation events) for this session; also a
    /// report section.
    [[nodiscard]] search::AssocMetrics assoc_metrics() const;
    /// Cold-start degradations recorded by make_engine (snapshot fallback
    /// or failed snapshot write); also folded into assoc_metrics().
    [[nodiscard]] const search::DegradeCounts& cold_start_degrade() const noexcept {
        return degrade_;
    }

    /// The dataflow fixpoint view (exposure taint, hazard backward slices,
    /// chokepoint ranking) for the current model. Computed on first use;
    /// across commit() the session re-analyzes incrementally from the
    /// model diff (flow::reanalyze), which is analytically identical to a
    /// full recompute — fingerprint()-equal by contract.
    [[nodiscard]] const flow::FlowResult& flow();

    /// Run the static lint pipeline over the session's current state
    /// (model, corpus, hazard model if attached, associations if already
    /// computed — the consequence pass deepens once associations exist).
    /// Deterministic and side-effect-free apart from recording the counts
    /// surfaced through assoc_metrics()/report().
    [[nodiscard]] lint::LintResult lint();

    /// Attach physical-consequence knowledge (losses/hazards/UCAs). Resets
    /// cached traces.
    void set_hazards(safety::HazardModel hazards);
    [[nodiscard]] bool has_hazards() const noexcept { return hazards_.has_value(); }

    /// Attach mission traceability (missions/functions/allocations).
    void set_missions(model::MissionModel missions);
    [[nodiscard]] bool has_missions() const noexcept { return missions_.has_value(); }

    // -- capability 1: export ------------------------------------------------

    [[nodiscard]] graph::PropertyGraph architecture() const;
    [[nodiscard]] std::string architecture_graphml() const;

    // -- capability 2: associate ---------------------------------------------

    /// The association map for the current model (computed on first use,
    /// maintained incrementally across commits).
    [[nodiscard]] const search::AssociationMap& associations();

    // -- capability 3: analyze / present -------------------------------------

    [[nodiscard]] const analysis::SecurityPosture& posture();
    [[nodiscard]] const std::vector<safety::ConsequenceTrace>& consequence_traces();
    /// STPA-style causal scenarios per UCA (empty without a hazard model).
    [[nodiscard]] const std::vector<safety::CausalScenario>& causal_scenarios();
    /// Hardening candidates ranked by blocked traces / cut paths.
    [[nodiscard]] std::vector<analysis::HardeningCandidate> hardening_candidates();
    /// The merged component/attack-vector graph (dashboard graph view).
    [[nodiscard]] graph::PropertyGraph vector_graph(
        const dashboard::VectorGraphOptions& options = {});
    /// Per-mission threat summary (empty without a mission model).
    [[nodiscard]] std::vector<analysis::MissionImpact> mission_impacts();
    /// Model-improvement suggestions for the current model + results.
    [[nodiscard]] std::vector<analysis::Advice> model_advice();
    [[nodiscard]] dashboard::Report report();
    /// Write the full dashboard bundle into an existing directory.
    std::vector<std::string> export_bundle(const std::string& directory);

    // -- refinement loop ------------------------------------------------------

    /// Evaluate a candidate architecture without changing session state.
    [[nodiscard]] analysis::WhatIfResult propose(const model::SystemModel& candidate);

    /// Adopt a candidate architecture; associations are updated
    /// incrementally from the diff. Returns the diff that was applied.
    model::ModelDiff commit(model::SystemModel candidate);

private:
    void invalidate_views() noexcept;
    const search::FilterChain* chain() const noexcept {
        return options_.filters.stage_count() > 0 ? &options_.filters : nullptr;
    }

    model::SystemModel model_;
    SessionOptions options_;
    std::shared_ptr<const SharedEngine> engine_handle_; ///< never null
    search::DegradeCounts degrade_; ///< this session's cold-start fallbacks
    const kb::Corpus* corpus_;      ///< == &engine_handle_->corpus()
    search::Associator associator_;
    std::optional<safety::HazardModel> hazards_;
    std::optional<model::MissionModel> missions_;

    search::LintCounts lint_counts_; ///< most recent lint() run's counts
    search::FlowCounts flow_counts_; ///< cumulative flow-pass counters

    std::optional<search::AssociationMap> associations_;
    std::optional<analysis::SecurityPosture> posture_;
    std::optional<std::vector<safety::ConsequenceTrace>> traces_;
    std::optional<std::vector<safety::CausalScenario>> scenarios_;
    std::optional<flow::FlowResult> flow_;
    /// The last flow result and the model it was computed over — the
    /// incremental baseline flow() diffs against after a commit().
    /// Survives invalidate_views(); reset when the hazard model changes.
    std::optional<flow::FlowResult> flow_prev_;
    std::optional<model::SystemModel> flow_prev_model_;
};

/// Library version string.
[[nodiscard]] std::string_view version() noexcept;

} // namespace cybok::core
