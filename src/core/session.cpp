#include "core/session.hpp"

#include "graph/graphml.hpp"
#include "model/export.hpp"
#include "util/fault.hpp"

namespace cybok::core {

std::shared_ptr<const SharedEngine> make_shared_engine(const kb::Corpus& corpus,
                                                       const SessionOptions& options) {
    auto handle = std::make_shared<SharedEngine>();
    if (!options.snapshot_path.empty()) {
        try {
            CYBOK_FAULT_POINT("session.cold_start.load",
                              IoError("injected: snapshot load failed: " + options.snapshot_path));
            search::EngineSnapshot snap = search::load_engine_snapshot(options.snapshot_path);
            // Staleness guard: the snapshot must have been frozen under the
            // same engine options (signature) over a corpus of the same
            // shape as the one the caller handed in; anything else means
            // the cache predates a data or configuration change. Hoisted
            // out of the session constructor so N sessions sharing one
            // engine validate the file once, not N times.
            const bool fresh =
                snap.engine->options().signature() == options.engine.signature() &&
                snap.corpus->patterns().size() == corpus.patterns().size() &&
                snap.corpus->weaknesses().size() == corpus.weaknesses().size() &&
                snap.corpus->vulnerabilities().size() == corpus.vulnerabilities().size();
            if (fresh) {
                handle->owned_corpus = std::move(snap.corpus);
                handle->engine = std::move(snap.engine);
                handle->slab_backing = std::move(snap.slab_backing);
                handle->mapping = std::move(snap.mapping);
                if (!snap.mmap_fallback_reason.empty()) {
                    // The engine is fully functional on the owning-buffer
                    // path; record why the zero-copy start was not taken.
                    ++handle->cold_start.mmap_fallbacks;
                    handle->cold_start.last_reason = snap.mmap_fallback_reason;
                }
                return handle;
            }
            ++handle->cold_start.snapshot_fallbacks;
            handle->cold_start.last_reason =
                "snapshot stale: engine signature or corpus shape changed";
        } catch (const Error& e) {
            // Missing / truncated / corrupt / version-mismatched snapshot:
            // fall through to a fresh build, which rewrites the file. The
            // reason is recorded so the fallback is visible in metrics and
            // the report instead of a silent slow start.
            ++handle->cold_start.snapshot_fallbacks;
            handle->cold_start.last_reason = e.what();
        }
    }
    handle->engine = std::make_unique<search::SearchEngine>(corpus, options.engine);
    if (!options.snapshot_path.empty()) {
        try {
            CYBOK_FAULT_POINT("session.cold_start.save",
                              IoError("injected: snapshot save failed: " + options.snapshot_path));
            search::save_engine_snapshot(*handle->engine, options.snapshot_path);
        } catch (const Error& e) {
            // An unwritable cache location degrades cold-start speed, not
            // correctness; the engine is served from memory regardless.
            ++handle->cold_start.snapshot_save_failures;
            handle->cold_start.last_reason = e.what();
        }
    }
    return handle;
}

std::shared_ptr<const SharedEngine> apply_corpus_delta(
    const std::shared_ptr<const SharedEngine>& current, const kb::CorpusDelta& delta) {
    CYBOK_EXPECTS(current != nullptr &&
                  (current->engine != nullptr || current->segmented != nullptr));
    auto next = std::make_shared<SharedEngine>();
    // The overlay borrows the root base's SearchEngine (and, transitively,
    // its mmap'd slabs); the keepalive pins exactly that handle. The
    // previous *segmented* handle is not pinned — its segments are shared
    // into the new engine by refcount.
    next->base = current->base != nullptr ? current->base : current;
    if (current->segmented != nullptr)
        next->segmented =
            std::make_unique<search::SegmentedEngine>(*current->segmented, delta);
    else
        next->segmented = std::make_unique<search::SegmentedEngine>(*current->engine, delta);
    return next;
}

std::shared_ptr<const SharedEngine> compact(const std::shared_ptr<const SharedEngine>& current) {
    CYBOK_EXPECTS(current != nullptr &&
                  (current->engine != nullptr || current->segmented != nullptr));
    if (current->segmented == nullptr) return current; // already a base generation
    auto next = std::make_shared<SharedEngine>();
    next->owned_corpus = std::make_unique<kb::Corpus>(current->segmented->corpus());
    next->engine = std::make_unique<search::SearchEngine>(*next->owned_corpus,
                                                          current->segmented->options());
    return next;
}

AnalysisSession::AnalysisSession(model::SystemModel m, const kb::Corpus& corpus,
                                 SessionOptions options)
    : model_(std::move(m)), options_(std::move(options)),
      engine_handle_(make_shared_engine(corpus, options_)),
      degrade_(engine_handle_->cold_start), corpus_(&engine_handle_->corpus()),
      associator_(engine_handle_->query(), options_.assoc) {}

AnalysisSession::AnalysisSession(model::SystemModel m,
                                 std::shared_ptr<const SharedEngine> engine,
                                 SessionOptions options)
    : model_(std::move(m)), options_(std::move(options)),
      engine_handle_(std::move(engine)),
      // degrade_ deliberately left zero: the handle's cold_start belongs to
      // whoever built the handle (e.g. the serve registry reports it once
      // per generation); folding it into every overlay session would count
      // one fallback N times.
      corpus_(&engine_handle_->corpus()),
      associator_(engine_handle_->query(), options_.assoc) {
    CYBOK_EXPECTS(engine_handle_ != nullptr &&
                  (engine_handle_->engine != nullptr || engine_handle_->segmented != nullptr));
}

void AnalysisSession::adopt_engine(std::shared_ptr<const SharedEngine> engine) {
    CYBOK_EXPECTS(engine != nullptr &&
                  (engine->engine != nullptr || engine->segmented != nullptr));
    engine_handle_ = std::move(engine);
    corpus_ = &engine_handle_->corpus();
    associator_.rebind(engine_handle_->query());
    invalidate_views();
}

void AnalysisSession::set_hazards(safety::HazardModel hazards) {
    std::vector<std::string> issues = hazards.validate();
    if (!issues.empty())
        throw ValidationError("hazard model invalid: " + issues.front() + " (+" +
                              std::to_string(issues.size() - 1) + " more)");
    hazards_ = std::move(hazards);
    traces_.reset();
    scenarios_.reset();
    // The hazard universe defines the slice lattice: previous flow results
    // are no longer a valid incremental baseline.
    flow_.reset();
    flow_prev_.reset();
    flow_prev_model_.reset();
}

void AnalysisSession::set_missions(model::MissionModel missions) {
    std::vector<std::string> issues = missions.validate(model_);
    if (!issues.empty())
        throw ValidationError("mission model invalid: " + issues.front() + " (+" +
                              std::to_string(issues.size() - 1) + " more)");
    missions_ = std::move(missions);
}

std::vector<analysis::MissionImpact> AnalysisSession::mission_impacts() {
    if (!missions_.has_value()) return {};
    return analysis::mission_impacts(*missions_, associations());
}

std::vector<analysis::Advice> AnalysisSession::model_advice() {
    return analysis::advise(model_, associations());
}

graph::PropertyGraph AnalysisSession::architecture() const { return model::to_graph(model_); }

std::string AnalysisSession::architecture_graphml() const {
    return graph::to_graphml(architecture(), model_.name());
}

search::AssocMetrics AnalysisSession::assoc_metrics() const {
    search::AssocMetrics m = associator_.metrics();
    m.lint = lint_counts_;
    m.flow = flow_counts_;
    m.degrade.merge(degrade_);
    return m;
}

const flow::FlowResult& AnalysisSession::flow() {
    if (!flow_.has_value()) {
        const search::AssociationMap& assoc = associations();
        const safety::HazardModel* hz = hazards_.has_value() ? &*hazards_ : nullptr;
        if (flow_prev_.has_value()) {
            // Incremental path: re-run the fixpoints only on the region
            // the diff (plus any association drift) can influence.
            model::ModelDiff d = model::diff(*flow_prev_model_, model_);
            flow_ = flow::reanalyze(*flow_prev_, d, model_, assoc, hz, options_.flow);
        } else {
            flow_ = flow::analyze(model_, assoc, hz, options_.flow);
        }
        flow_counts_.merge(flow_->counts);
        flow_prev_ = flow_;
        flow_prev_model_ = model_;
    }
    return *flow_;
}

lint::LintResult AnalysisSession::lint() {
    lint::LintInput input;
    input.model = &model_;
    input.corpus = corpus_;
    input.hazards = hazards_.has_value() ? &*hazards_ : nullptr;
    input.associations = associations_.has_value() ? &*associations_ : nullptr;
    lint::LintResult result = lint::run_lint(input, options_.lint);
    lint_counts_.rules_run = result.rules_run;
    lint_counts_.errors = result.errors();
    lint_counts_.warnings = result.warnings();
    lint_counts_.notes = result.notes();
    lint_counts_.wall_ns = result.wall_ns;
    return result;
}

const search::AssociationMap& AnalysisSession::associations() {
    if (!associations_.has_value()) {
        if (options_.fail_on_lint_error) {
            lint::LintResult pre = lint();
            if (!pre.ok()) {
                std::string what = "lint failed with " + std::to_string(pre.errors()) +
                                   " error(s); first: ";
                for (const lint::Diagnostic& d : pre.diagnostics) {
                    if (d.severity != lint::Severity::Error) continue;
                    what += lint::to_string(d);
                    break;
                }
                throw ValidationError(what);
            }
        }
        associations_ = associator_.associate(model_, chain());
    }
    return *associations_;
}

const analysis::SecurityPosture& AnalysisSession::posture() {
    if (!posture_.has_value()) posture_ = analysis::compute_posture(model_, associations());
    return *posture_;
}

const std::vector<safety::ConsequenceTrace>& AnalysisSession::consequence_traces() {
    if (!traces_.has_value()) {
        if (!hazards_.has_value()) {
            traces_ = std::vector<safety::ConsequenceTrace>{};
        } else {
            safety::ConsequenceAnalyzer analyzer(model_, *hazards_);
            traces_ = analyzer.trace(associations());
        }
    }
    return *traces_;
}

const std::vector<safety::CausalScenario>& AnalysisSession::causal_scenarios() {
    if (!scenarios_.has_value()) {
        if (!hazards_.has_value()) {
            scenarios_ = std::vector<safety::CausalScenario>{};
        } else {
            scenarios_ = safety::generate_scenarios(model_, *hazards_, associations());
        }
    }
    return *scenarios_;
}

std::vector<analysis::HardeningCandidate> AnalysisSession::hardening_candidates() {
    return analysis::rank_hardening_candidates(
        model_, associations(), hazards_.has_value() ? &*hazards_ : nullptr);
}

graph::PropertyGraph AnalysisSession::vector_graph(
    const dashboard::VectorGraphOptions& options) {
    return dashboard::build_vector_graph(model_, associations(), *corpus_, options);
}

dashboard::Report AnalysisSession::report() {
    dashboard::ReportExtras extras;
    if (hazards_.has_value()) {
        extras.scenarios = causal_scenarios();
        extras.hardening = hardening_candidates();
    }
    (void)associations(); // compute before linting and snapshotting the metrics
    extras.lint = lint(); // post-association: the consequence pass sees the map
    extras.flow = flow();
    extras.assoc_metrics = assoc_metrics();
    return dashboard::build_report(model_, associations(), posture(), consequence_traces(),
                                   options_.report, &extras);
}

std::vector<std::string> AnalysisSession::export_bundle(const std::string& directory) {
    return dashboard::write_bundle(directory, model_, associations(), report());
}

analysis::WhatIfResult AnalysisSession::propose(const model::SystemModel& candidate) {
    return analysis::what_if(model_, associations(), candidate, associator_, chain());
}

model::ModelDiff AnalysisSession::commit(model::SystemModel candidate) {
    model::ModelDiff d = model::diff(model_, candidate);
    // reassociate drops the refined components' query-cache entries and
    // re-queries only those components; everything else is copied.
    search::AssociationMap updated =
        associator_.reassociate(associations(), d, candidate, chain());
    model_ = std::move(candidate);
    invalidate_views();
    associations_ = std::move(updated);
    return d;
}

void AnalysisSession::invalidate_views() noexcept {
    associations_.reset();
    posture_.reset();
    traces_.reset();
    scenarios_.reset();
    // flow_prev_ / flow_prev_model_ deliberately survive: they are the
    // incremental baseline the next flow() call diffs against.
    flow_.reset();
}

std::string_view version() noexcept { return "1.0.0"; }

} // namespace cybok::core
