#include "util/fault.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace cybok::util {

namespace detail {
std::atomic<bool> g_fault_enabled{false};
} // namespace detail

namespace {

/// splitmix64 finalizer: a strong bijective mixer, so the per-hit decision
/// u01(mix(seed, site, hit)) behaves like an independent uniform draw.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
double u01(std::uint64_t x) {
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Pure per-hit decision for Probability triggers: no shared RNG state, so
/// concurrent hits cannot perturb which hit indices fire.
bool probability_fires(std::uint64_t seed, std::string_view site, std::uint64_t hit_index,
                       double p) {
    const std::uint64_t h = mix64(mix64(seed ^ fnv1a64(site)) + hit_index);
    return u01(h) < p;
}

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size())
        throw ValidationError("fault spec: bad " + std::string(what) + ": '" +
                              std::string(text) + "'");
    return value;
}

double parse_probability(std::string_view text) {
    // std::from_chars<double> is still spotty across libstdc++ versions for
    // general formats; strtod on a bounded copy is fine here (specs are tiny).
    const std::string copy(text);
    char* end = nullptr;
    const double p = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size() || !std::isfinite(p))
        throw ValidationError("fault spec: bad probability: '" + copy + "'");
    return p;
}

FaultTrigger parse_trigger(std::string_view text) {
    if (text == "always") return FaultTrigger::always();
    if (text.rfind("nth:", 0) == 0) return FaultTrigger::on_nth_hit(parse_u64(text.substr(4), "hit index"));
    if (text.rfind("p:", 0) == 0) return FaultTrigger::with_probability(parse_probability(text.substr(2)));
    throw ValidationError("fault spec: unknown trigger '" + std::string(text) +
                          "' (expected always | nth:N | p:F)");
}

} // namespace

FaultTrigger FaultTrigger::on_nth_hit(std::uint64_t n) {
    FaultTrigger t;
    t.kind = Kind::Nth;
    t.nth = n;
    return t;
}

FaultTrigger FaultTrigger::with_probability(double p) {
    FaultTrigger t;
    t.kind = Kind::Probability;
    t.probability = p;
    return t;
}

FaultInjector& FaultInjector::instance() {
    static FaultInjector injector;
    return injector;
}

void FaultInjector::refresh_enabled_locked() {
    detail::g_fault_enabled.store(!sites_.empty(), std::memory_order_relaxed);
}

void FaultInjector::set_seed(std::uint64_t seed) {
    std::lock_guard<std::mutex> lk(mutex_);
    seed_ = seed;
    for (auto& [site, state] : sites_) {
        state.hits = 0;
        state.fires = 0;
    }
}

std::uint64_t FaultInjector::seed() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return seed_;
}

void FaultInjector::arm(std::string_view site, FaultTrigger trigger) {
    if (site.empty()) throw ValidationError("fault spec: empty site name");
    if (trigger.kind == FaultTrigger::Kind::Nth && trigger.nth == 0)
        throw ValidationError("fault spec: nth trigger is 1-based, got 0");
    if (trigger.kind == FaultTrigger::Kind::Probability &&
        !(trigger.probability >= 0.0 && trigger.probability <= 1.0))
        throw ValidationError("fault spec: probability must be in [0, 1]");
    std::lock_guard<std::mutex> lk(mutex_);
    const auto it = std::lower_bound(
        sites_.begin(), sites_.end(), site,
        [](const auto& entry, std::string_view key) { return entry.first < key; });
    if (it != sites_.end() && it->first == site) {
        it->second = SiteState{trigger, 0, 0};
    } else {
        sites_.insert(it, {std::string(site), SiteState{trigger, 0, 0}});
    }
    refresh_enabled_locked();
}

void FaultInjector::arm_spec(std::string_view spec) {
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(';', start);
        if (end == std::string_view::npos) end = spec.size();
        const std::string_view entry = spec.substr(start, end - start);
        start = end + 1;
        if (entry.empty()) continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string_view::npos) {
            arm(entry, FaultTrigger::always());
        } else {
            const std::string_view key = entry.substr(0, eq);
            const std::string_view value = entry.substr(eq + 1);
            if (key == "seed")
                set_seed(parse_u64(value, "seed"));
            else
                arm(key, parse_trigger(value));
        }
    }
}

void FaultInjector::disarm(std::string_view site) {
    std::lock_guard<std::mutex> lk(mutex_);
    std::erase_if(sites_, [&](const auto& entry) { return entry.first == site; });
    refresh_enabled_locked();
}

void FaultInjector::reset() {
    std::lock_guard<std::mutex> lk(mutex_);
    sites_.clear();
    seed_ = 0;
    refresh_enabled_locked();
}

bool FaultInjector::on_hit(std::string_view site) {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto it = std::lower_bound(
        sites_.begin(), sites_.end(), site,
        [](const auto& entry, std::string_view key) { return entry.first < key; });
    if (it == sites_.end() || it->first != site) return false;
    SiteState& state = it->second;
    const std::uint64_t hit_index = state.hits++;
    bool fire = false;
    switch (state.trigger.kind) {
    case FaultTrigger::Kind::Always: fire = true; break;
    case FaultTrigger::Kind::Nth: fire = (hit_index + 1 == state.trigger.nth); break;
    case FaultTrigger::Kind::Probability:
        fire = probability_fires(seed_, site, hit_index, state.trigger.probability);
        break;
    }
    if (fire) ++state.fires;
    return fire;
}

std::vector<FaultSiteReport> FaultInjector::report() const {
    std::lock_guard<std::mutex> lk(mutex_);
    std::vector<FaultSiteReport> out;
    out.reserve(sites_.size());
    for (const auto& [site, state] : sites_)
        out.push_back({site, state.trigger, state.hits, state.fires});
    return out;
}

bool fault_should_fire(std::string_view site) {
    if (!fault_enabled()) [[likely]]
        return false;
    return FaultInjector::instance().on_hit(site);
}

FaultScope::FaultScope(std::string_view spec) { FaultInjector::instance().arm_spec(spec); }
FaultScope::~FaultScope() { FaultInjector::instance().reset(); }

const std::vector<FaultSiteInfo>& known_fault_sites() {
    // One row per CYBOK_FAULT_POINT / fault_should_fire call in src/.
    // tests/test_fault.cpp forces every row to fire and asserts the
    // degradation column; ARCHITECTURE.md §6 renders the same table.
    static const std::vector<FaultSiteInfo> sites = {
        {"util.bytes.read_file.open", "IoError",
         "caller-specific: snapshot load falls back to a fresh build; corpus load propagates"},
        {"util.bytes.read_file.read", "IoError",
         "caller-specific: snapshot load falls back to a fresh build; corpus load propagates"},
        {"util.bytes.write_file.open", "IoError",
         "session proceeds without a snapshot cache; next start is a cold build"},
        {"util.bytes.write_file.write", "IoError",
         "truncated file left behind; framing checksum rejects it on the next load"},
        {"util.json.parse", "ParseError",
         "propagates to the caller; kb.serialize lenient mode is per-record, not per-document"},
        {"util.xml.parse", "ParseError", "propagates typed to the caller; no partial document"},
        {"kb.serialize.record", "ValidationError",
         "lenient mode skips the record and appends a diagnostic; strict mode propagates"},
        {"kb.snapshot.open", "SnapshotError",
         "session cold-start treats the snapshot as stale and rebuilds from the corpus"},
        {"kb.snapshot.seal", "SnapshotError",
         "snapshot save is abandoned; the session keeps its in-memory engine"},
        {"snapshot.map", "IoError",
         "zero-copy mmap start abandoned; owning-buffer thaw runs with the reason recorded"},
        {"search.build.shard", "Error",
         "parallel build aborts, indexes reset, sequential reference build runs instead"},
        {"search.cache.get", "Error",
         "treated as a cache miss: the attribute is recomputed and the failure counted"},
        {"search.cache.put", "Error",
         "result is returned uncached; a later identical query recomputes"},
        {"search.assoc.recompute", "Error",
         "retried once; a second failure propagates typed out of associate()"},
        {"session.cold_start.load", "IoError",
         "fresh engine build; fallback reason recorded in AssocMetrics"},
        {"session.cold_start.save", "IoError",
         "session continues uncached; failure recorded in AssocMetrics"},
        {"serve.accept", "IoError",
         "that connection is dropped; the listener keeps accepting"},
        {"serve.frame.decode", "ProtocolError",
         "bad_frame response written, decoder poisoned, connection closed"},
        {"serve.request.decode", "ProtocolError",
         "typed bad_request response; the connection stays usable"},
        {"serve.session.open", "Error",
         "typed internal response; registry state unchanged, no session leaked"},
        {"serve.swap.load", "SnapshotError",
         "typed swap_failed response; the old generation keeps serving"},
        {"serve.response.write", "IoError",
         "response abandoned and connection closed; the request already executed"},
        {"kb.delta.apply", "ValidationError",
         "delta rejected atomically before any mutation; the corpus is unchanged"},
        {"search.delta.segment", "Error",
         "segment build aborts; the previous generation stays authoritative"},
        {"serve.compact.fold", "Error",
         "typed compact_failed response; old generation keeps serving, failure counted"},
        {"synth.zoo.gen", "ValidationError",
         "fleet records the per-system failure (failed + error); the fleet run completes"},
        {"analysis.fleet.task", "Error",
         "per-system failure recorded (failed + error), system ranks last; ranking completes"},
    };
    return sites;
}

} // namespace cybok::util
