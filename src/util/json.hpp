// Minimal self-contained JSON value, parser, and writer.
//
// Used for (de)serializing knowledge-base corpora, analysis reports, and
// benchmark outputs. Supports the full JSON grammar (RFC 8259) with UTF-8
// pass-through; numbers are stored as double (with an integer fast path
// preserved on output when the value is integral).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace cybok::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps object keys ordered, which makes serialized corpora and
/// reports byte-stable across runs — important for golden-file tests.
using Object = std::map<std::string, Value, std::less<>>;

/// A JSON document node.
class Value {
public:
    Value() noexcept : data_(nullptr) {}
    Value(std::nullptr_t) noexcept : data_(nullptr) {}
    Value(bool b) noexcept : data_(b) {}
    Value(double d) noexcept : data_(d) {}
    Value(int i) noexcept : data_(static_cast<double>(i)) {}
    Value(unsigned i) noexcept : data_(static_cast<double>(i)) {}
    Value(std::int64_t i) noexcept : data_(static_cast<double>(i)) {}
    Value(std::uint64_t i) noexcept : data_(static_cast<double>(i)) {}
    Value(const char* s) : data_(std::string(s)) {}
    Value(std::string s) : data_(std::move(s)) {}
    Value(std::string_view s) : data_(std::string(s)) {}
    Value(Array a) : data_(std::move(a)) {}
    Value(Object o) : data_(std::move(o)) {}

    [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
    [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
    [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(data_); }
    [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
    [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(data_); }
    [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(data_); }

    /// Typed accessors; throw ValidationError on type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] std::int64_t as_int() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const Array& as_array() const;
    [[nodiscard]] Array& as_array();
    [[nodiscard]] const Object& as_object() const;
    [[nodiscard]] Object& as_object();

    /// Object member access. `at` throws NotFoundError for missing keys;
    /// `get` returns a fallback.
    [[nodiscard]] const Value& at(std::string_view key) const;
    [[nodiscard]] bool contains(std::string_view key) const noexcept;
    [[nodiscard]] std::string get_string(std::string_view key, std::string_view fallback = "") const;
    [[nodiscard]] double get_number(std::string_view key, double fallback = 0.0) const;
    [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const;
    [[nodiscard]] bool get_bool(std::string_view key, bool fallback = false) const;

    /// Object member assignment; converts a null value into an object first.
    Value& operator[](std::string_view key);

    friend bool operator==(const Value& a, const Value& b) noexcept { return a.data_ == b.data_; }

private:
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse a complete JSON document. Throws ParseError with a byte offset.
[[nodiscard]] Value parse(std::string_view text);

/// Serialize. `indent` = 0 produces a compact single line; otherwise
/// pretty-print with that many spaces per level.
[[nodiscard]] std::string dump(const Value& v, int indent = 0);

/// File helpers (throw IoError).
[[nodiscard]] Value load_file(const std::string& path);
void save_file(const std::string& path, const Value& v, int indent = 2);

} // namespace cybok::json
