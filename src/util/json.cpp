#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/bytes.hpp"
#include "util/fault.hpp"

namespace cybok::json {

namespace {
/// Containers may nest at most this deep. The recursive-descent parser
/// spends a stack frame per level, so an adversarial "[[[[..." document
/// would otherwise overflow the stack instead of raising a typed error.
constexpr int kMaxParseDepth = 192;
} // namespace

bool Value::as_bool() const {
    if (const bool* b = std::get_if<bool>(&data_)) return *b;
    throw ValidationError("JSON value is not a boolean");
}

double Value::as_number() const {
    if (const double* d = std::get_if<double>(&data_)) return *d;
    throw ValidationError("JSON value is not a number");
}

std::int64_t Value::as_int() const {
    return static_cast<std::int64_t>(as_number());
}

const std::string& Value::as_string() const {
    if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
    throw ValidationError("JSON value is not a string");
}

const Array& Value::as_array() const {
    if (const Array* a = std::get_if<Array>(&data_)) return *a;
    throw ValidationError("JSON value is not an array");
}

Array& Value::as_array() {
    if (Array* a = std::get_if<Array>(&data_)) return *a;
    throw ValidationError("JSON value is not an array");
}

const Object& Value::as_object() const {
    if (const Object* o = std::get_if<Object>(&data_)) return *o;
    throw ValidationError("JSON value is not an object");
}

Object& Value::as_object() {
    if (Object* o = std::get_if<Object>(&data_)) return *o;
    throw ValidationError("JSON value is not an object");
}

const Value& Value::at(std::string_view key) const {
    const Object& o = as_object();
    auto it = o.find(key);
    if (it == o.end()) throw NotFoundError("missing JSON key: " + std::string(key));
    return it->second;
}

bool Value::contains(std::string_view key) const noexcept {
    const Object* o = std::get_if<Object>(&data_);
    return o != nullptr && o->find(key) != o->end();
}

std::string Value::get_string(std::string_view key, std::string_view fallback) const {
    if (!contains(key)) return std::string(fallback);
    return at(key).as_string();
}

double Value::get_number(std::string_view key, double fallback) const {
    if (!contains(key)) return fallback;
    return at(key).as_number();
}

std::int64_t Value::get_int(std::string_view key, std::int64_t fallback) const {
    if (!contains(key)) return fallback;
    return at(key).as_int();
}

bool Value::get_bool(std::string_view key, bool fallback) const {
    if (!contains(key)) return fallback;
    return at(key).as_bool();
}

Value& Value::operator[](std::string_view key) {
    if (is_null()) data_ = Object{};
    Object& o = as_object();
    auto it = o.find(key);
    if (it == o.end()) it = o.emplace(std::string(key), Value()).first;
    return it->second;
}

// ---------------------------------------------------------------- parser

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parse_document() {
        skip_ws();
        Value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after JSON document");
        return v;
    }

private:
    [[noreturn]] void fail(std::string_view msg) const { throw ParseError(msg, pos_); }

    [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const {
        if (eof()) throw ParseError("unexpected end of input", pos_);
        return text_[pos_];
    }
    char take() {
        char c = peek();
        ++pos_;
        return c;
    }

    void skip_ws() noexcept {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
            else break;
        }
    }

    void expect(char c) {
        if (take() != c) {
            --pos_;
            fail(std::string("expected '") + c + "'");
        }
    }

    void expect_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) fail("invalid literal");
        pos_ += lit.size();
    }

    Value parse_value() {
        switch (peek()) {
            case '{': {
                if (depth_ >= kMaxParseDepth) fail("JSON nesting too deep");
                ++depth_;
                Value v = parse_object();
                --depth_;
                return v;
            }
            case '[': {
                if (depth_ >= kMaxParseDepth) fail("JSON nesting too deep");
                ++depth_;
                Value v = parse_array();
                --depth_;
                return v;
            }
            case '"': return Value(parse_string());
            case 't': expect_literal("true"); return Value(true);
            case 'f': expect_literal("false"); return Value(false);
            case 'n': expect_literal("null"); return Value(nullptr);
            default: return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Object o;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(o));
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            skip_ws();
            o.emplace(std::move(key), parse_value());
            skip_ws();
            char c = take();
            if (c == '}') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
        return Value(std::move(o));
    }

    Value parse_array() {
        expect('[');
        Array a;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(a));
        }
        // Non-empty: skip the first few doubling reallocations up front.
        // Corpus arrays (records, prerequisites, platforms) are rarely
        // tiny, and a Value is variant-sized, so early growth is the
        // expensive kind.
        a.reserve(8);
        while (true) {
            skip_ws();
            a.push_back(parse_value());
            skip_ws();
            char c = take();
            if (c == ']') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
        return Value(std::move(a));
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            // Bulk-scan to the next quote, escape, or control byte and
            // append the clean span in one shot. Corpus strings almost
            // never contain escapes, so the common case is a single
            // append of the whole string body instead of a push_back per
            // character.
            std::size_t span_end = pos_;
            while (span_end < text_.size()) {
                const unsigned char u = static_cast<unsigned char>(text_[span_end]);
                if (u == '"' || u == '\\' || u < 0x20) break;
                ++span_end;
            }
            if (span_end > pos_) {
                out.append(text_.data() + pos_, span_end - pos_);
                pos_ = span_end;
            }
            if (eof()) fail("unterminated string");
            char c = take();
            if (c == '"') break;
            if (c == '\\') {
                char esc = take();
                switch (esc) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    case 'n': out.push_back('\n'); break;
                    case 'r': out.push_back('\r'); break;
                    case 't': out.push_back('\t'); break;
                    case 'u': append_unicode_escape(out); break;
                    default: fail("invalid escape sequence");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    unsigned parse_hex4() {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            char c = take();
            v <<= 4;
            if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
            else fail("invalid \\u escape");
        }
        return v;
    }

    void append_unicode_escape(std::string& out) {
        unsigned cp = parse_hex4();
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair.
            if (take() != '\\' || take() != 'u') fail("unpaired surrogate");
            unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unexpected low surrogate");
        }
        // Encode as UTF-8.
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    Value parse_number() {
        std::size_t start = pos_;
        if (!eof() && peek() == '-') ++pos_;
        while (!eof() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
        if (!eof() && text_[pos_] == '.') {
            ++pos_;
            while (!eof() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
        }
        if (!eof() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (!eof() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
            while (!eof() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
            fail("invalid number");
        std::string num(text_.substr(start, pos_ - start));
        try {
            return Value(std::stod(num));
        } catch (const std::exception&) {
            throw ParseError("number out of range", start);
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

void write_escaped(std::string& out, std::string_view s) {
    out.push_back('"');
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void write_number(std::string& out, double d) {
    if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
        out += std::to_string(static_cast<std::int64_t>(d));
        return;
    }
    if (!std::isfinite(d)) {
        out += "null"; // JSON has no representation for NaN/Inf
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
}

void dump_impl(const Value& v, std::string& out, int indent, int depth) {
    auto newline = [&] {
        if (indent > 0) {
            out.push_back('\n');
            out.append(static_cast<std::size_t>(indent * depth), ' ');
        }
    };
    if (v.is_null()) {
        out += "null";
    } else if (v.is_bool()) {
        out += v.as_bool() ? "true" : "false";
    } else if (v.is_number()) {
        write_number(out, v.as_number());
    } else if (v.is_string()) {
        write_escaped(out, v.as_string());
    } else if (v.is_array()) {
        const Array& a = v.as_array();
        if (a.empty()) {
            out += "[]";
            return;
        }
        out.push_back('[');
        ++depth;
        bool first = true;
        for (const Value& e : a) {
            if (!first) out.push_back(',');
            first = false;
            newline();
            dump_impl(e, out, indent, depth);
        }
        --depth;
        newline();
        out.push_back(']');
    } else {
        const Object& o = v.as_object();
        if (o.empty()) {
            out += "{}";
            return;
        }
        out.push_back('{');
        ++depth;
        bool first = true;
        for (const auto& [k, e] : o) {
            if (!first) out.push_back(',');
            first = false;
            newline();
            write_escaped(out, k);
            out += indent > 0 ? ": " : ":";
            dump_impl(e, out, indent, depth);
        }
        --depth;
        newline();
        out.push_back('}');
    }
}

} // namespace

Value parse(std::string_view text) {
    CYBOK_FAULT_POINT("util.json.parse", ParseError("injected: json parse failure", 0));
    return Parser(text).parse_document();
}

std::string dump(const Value& v, int indent) {
    std::string out;
    dump_impl(v, out, indent, 0);
    return out;
}

Value load_file(const std::string& path) {
    // One pre-sized read (util::read_file) instead of rdbuf-to-
    // stringstream, which copies the content twice.
    return parse(util::read_file(path));
}

void save_file(const std::string& path, const Value& v, int indent) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open file for writing: " + path);
    out << dump(v, indent) << '\n';
    if (!out) throw IoError("write failed: " + path);
}

} // namespace cybok::json
