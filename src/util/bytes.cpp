#include "util/bytes.hpp"

#include <cstdio>
#include <cstring>

#include "util/fault.hpp"

namespace cybok::util {

std::string read_file(const std::string& path) {
    CYBOK_FAULT_POINT("util.bytes.read_file.open",
                      IoError("injected: cannot open file for reading: " + path));
    // fopen/fread, not ifstream: one syscall-sized read into a pre-sized
    // buffer, no stream-buffer indirection, no intermediate copy.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw IoError("cannot open file for reading: " + path);
    std::string out;
    if (std::fseek(f, 0, SEEK_END) == 0) {
        const long size = std::ftell(f);
        if (size > 0) out.resize(static_cast<std::size_t>(size));
        std::rewind(f);
    }
    std::size_t got = 0;
    if (!out.empty()) got = std::fread(out.data(), 1, out.size(), f);
    if (std::ferror(f) != 0) {
        std::fclose(f);
        throw IoError("read failed: " + path);
    }
    // Regular files deliver their full stat size in the single read above;
    // pipes/devices report size 0 and drain through the chunked appends.
    out.resize(got);
    char chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) out.append(chunk, n);
    if (std::ferror(f) != 0) {
        std::fclose(f);
        throw IoError("read failed: " + path);
    }
    std::fclose(f);
    CYBOK_FAULT_POINT("util.bytes.read_file.read", IoError("injected: read failed: " + path));
    return out;
}

void write_file(const std::string& path, std::string_view bytes) {
    CYBOK_FAULT_POINT("util.bytes.write_file.open",
                      IoError("injected: cannot open file for writing: " + path));
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) throw IoError("cannot open file for writing: " + path);
    if (fault_should_fire("util.bytes.write_file.write")) {
        // Model a device-full partial write: close with only a prefix on
        // disk, so downstream framing checks must reject the truncated file.
        if (!bytes.empty()) (void)std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
        std::fclose(f);
        throw IoError("injected: short write: " + path);
    }
    const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (wrote != bytes.size() || !flushed) throw IoError("short write: " + path);
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void ByteWriter::u32(std::uint32_t v) {
    char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8), static_cast<char>(v >> 16),
                 static_cast<char>(v >> 24)};
    buf_.append(b, sizeof b);
}

void ByteWriter::u64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
    buf_.append(b, sizeof b);
}

void ByteWriter::f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u32(bits);
}

void ByteWriter::f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void ByteWriter::str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
}

std::string_view ByteReader::take(std::size_t n) {
    if (n > remaining()) throw ParseError("unexpected end of binary input", pos_);
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
}

std::uint8_t ByteReader::u8() {
    return static_cast<std::uint8_t>(take(1)[0]);
}

std::uint32_t ByteReader::u32() {
    std::string_view b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i]))
                                     << (8 * i);
    return v;
}

std::uint64_t ByteReader::u64() {
    std::string_view b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
                                     << (8 * i);
    return v;
}

float ByteReader::f32() {
    std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

double ByteReader::f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string ByteReader::str() {
    const std::uint32_t n = u32();
    return std::string(take(n));
}

void write_slab_ref(ByteWriter& w, const SlabRef& ref) {
    w.u64(ref.offset);
    w.u64(ref.size);
}

SlabRef read_slab_ref(ByteReader& r) {
    SlabRef ref;
    ref.offset = r.u64();
    ref.size = r.u64();
    return ref;
}

SlabRef SlabWriter::add(std::string_view bytes, std::size_t align) {
    const std::size_t at = align_up(buf_.size(), align);
    buf_.resize(at, '\0'); // deterministic zero padding
    buf_.append(bytes);
    return SlabRef{at, bytes.size()};
}

std::string_view SlabView::slice(const SlabRef& ref) const {
    if (ref.offset > bytes_.size() || ref.size > bytes_.size() - ref.offset)
        throw ParseError("slab reference out of range", static_cast<std::size_t>(ref.offset));
    return bytes_.substr(ref.offset, ref.size);
}

AlignedBuffer::AlignedBuffer(std::string_view bytes) : size_(bytes.size()) {
    if (size_ == 0) return;
    buf_.reset(static_cast<char*>(::operator new(size_, std::align_val_t{64})));
    std::memcpy(buf_.get(), bytes.data(), size_);
}

F64Table F64Table::view(std::string_view bytes) {
    if (bytes.size() % sizeof(double) != 0)
        throw ParseError("f64 slab size is not a multiple of 8", 0);
    if (reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(double) != 0)
        throw ParseError("f64 slab is misaligned", 0);
    F64Table t;
    t.data_ = reinterpret_cast<const double*>(bytes.data());
    t.size_ = bytes.size() / sizeof(double);
    return t;
}

} // namespace cybok::util
