// Minimal non-validating XML reader shared by the GraphML codec and the
// MITRE catalog importers (CWE and CAPEC are distributed as XML).
//
// Supported: elements, attributes, character data, comments, the XML
// declaration, and the five predefined entities plus numeric character
// references (ASCII range). Not supported: DTDs, CDATA, processing
// instructions, namespaces beyond treating "ns:name" as a plain name.

#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace cybok::xml {

/// One parsed element.
struct Node {
    std::string name;
    std::map<std::string, std::string, std::less<>> attrs;
    std::vector<Node> children;
    std::string text; ///< concatenated character data of this element

    [[nodiscard]] std::string attr(std::string_view key, std::string_view fallback = "") const;

    /// First child with the given element name, or nullptr.
    [[nodiscard]] const Node* child(std::string_view tag) const noexcept;
    /// All children with the given element name.
    [[nodiscard]] std::vector<const Node*> children_named(std::string_view tag) const;
    /// Text of the named child, or fallback.
    [[nodiscard]] std::string child_text(std::string_view tag,
                                         std::string_view fallback = "") const;
};

/// Parse a complete document; returns the root element.
/// Throws ParseError with a byte offset on malformed input.
[[nodiscard]] Node parse(std::string_view text);

/// Escape the five XML specials in `s`.
[[nodiscard]] std::string escape(std::string_view s);

} // namespace cybok::xml
