#include "util/thread_pool.hpp"

#include <algorithm>

namespace cybok::util {

std::size_t ThreadPool::default_thread_count() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) threads = default_thread_count();
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_chunks(const std::function<void(std::size_t)>& fn, std::size_t n) {
    for (;;) {
        const std::size_t begin = next_.fetch_add(chunk_, std::memory_order_relaxed);
        if (begin >= n) break;
        const std::size_t end = std::min(n, begin + chunk_);
        for (std::size_t i = begin; i < end; ++i) {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(mutex_);
                if (!first_error_) first_error_ = std::current_exception();
            }
        }
    }
}

void ThreadPool::worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t n = 0;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            cv_work_.wait(lk, [&] { return stop_ || generation_ != seen_generation; });
            if (stop_) return;
            seen_generation = generation_;
            fn = job_fn_;
            n = job_n_;
        }
        run_chunks(*fn, n);
        {
            std::lock_guard<std::mutex> lk(mutex_);
            if (--active_workers_ == 0) cv_done_.notify_all();
        }
    }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    std::lock_guard<std::mutex> serial(serial_mutex_);
    {
        std::lock_guard<std::mutex> lk(mutex_);
        job_fn_ = &fn;
        job_n_ = n;
        // ~4 chunks per lane balances steal traffic against tail latency.
        chunk_ = std::max<std::size_t>(1, n / (thread_count() * 4));
        next_.store(0, std::memory_order_relaxed);
        active_workers_ = workers_.size();
        first_error_ = nullptr;
        ++generation_;
    }
    cv_work_.notify_all();
    run_chunks(fn, n);
    std::unique_lock<std::mutex> lk(mutex_);
    cv_done_.wait(lk, [&] { return active_workers_ == 0; });
    job_fn_ = nullptr;
    if (first_error_) {
        std::exception_ptr e = first_error_;
        first_error_ = nullptr;
        lk.unlock();
        std::rethrow_exception(e);
    }
}

} // namespace cybok::util
