// Locale-independent number formatting on top of std::to_chars.
//
// iostream float formatting honors the global C++ locale (e.g. "2,5" under
// de_DE), which silently poisons anything used as a cache key or stable
// signature. These helpers always produce the shortest round-trippable
// C-locale form.

#pragma once

#include <charconv>
#include <string>
#include <system_error>

namespace cybok::fmt {

/// Append the shortest round-trippable decimal form of `v` ("2.5", "1e-09")
/// to `out`, independent of the global locale.
inline void append_number(std::string& out, double v) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec == std::errc()) out.append(buf, ptr);
}

inline void append_number(std::string& out, long long v) {
    char buf[24];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec == std::errc()) out.append(buf, ptr);
}

inline void append_number(std::string& out, unsigned long long v) {
    char buf[24];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec == std::errc()) out.append(buf, ptr);
}

/// The shortest round-trippable decimal form of `v` as a fresh string.
template <typename T>
[[nodiscard]] std::string number(T v) {
    std::string out;
    append_number(out, v);
    return out;
}

} // namespace cybok::fmt
