#include "util/mmap.hpp"

#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define CYBOK_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CYBOK_HAVE_MMAP 0
#endif

namespace cybok::util {

MappedFile MappedFile::open(const std::string& path) {
#if CYBOK_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) throw IoError("cannot open file for mapping: " + path);
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        throw IoError("cannot map non-regular file: " + path);
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        // mmap of length 0 is EINVAL; an empty snapshot is invalid anyway,
        // so route it through the owning path's framing rejection.
        ::close(fd);
        throw IoError("cannot map empty file: " + path);
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping holds its own reference to the file
    if (addr == MAP_FAILED) throw IoError("mmap failed: " + path);
    // Snapshot reads are a sequential header scan followed by random
    // posting-block touches; the default kernel readahead handles both.
    return MappedFile(addr, size, path);
#else
    throw IoError("mmap unsupported on this platform: " + path);
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)), size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
    if (this != &other) {
        this->~MappedFile();
        addr_ = std::exchange(other.addr_, nullptr);
        size_ = std::exchange(other.size_, 0);
        path_ = std::move(other.path_);
    }
    return *this;
}

MappedFile::~MappedFile() {
#if CYBOK_HAVE_MMAP
    if (addr_ != nullptr) ::munmap(addr_, size_);
#endif
    addr_ = nullptr;
    size_ = 0;
}

} // namespace cybok::util
