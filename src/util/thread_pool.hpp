// A small fixed-size thread pool with a chunked dynamic parallel_for —
// the fan-out substrate for the parallel association engine. Workers pull
// index chunks from a shared atomic cursor (work-stealing in the "steal
// from a common bag" sense), so uneven per-item cost (one attribute
// matching 9k vulnerabilities next to one matching nothing) load-balances
// without any per-item queueing.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cybok::util {

/// Fixed-size worker pool. Construction spawns `threads - 1` workers (the
/// calling thread participates in every parallel_for, so `threads == 1`
/// means "no workers, run inline"). Safe to call parallel_for from many
/// threads concurrently: calls are serialized internally, each runs to
/// completion with the full pool.
class ThreadPool {
public:
    /// `threads == 0` selects hardware_concurrency (at least 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total execution lanes (workers + the calling thread).
    [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size() + 1; }

    /// Run `fn(i)` for every i in [0, n), blocking until all complete.
    /// Iterations are claimed in chunks from a shared cursor; the order of
    /// execution is unspecified but every index runs exactly once. If any
    /// invocation throws, the first exception is rethrown on the calling
    /// thread after the loop drains (remaining indices still run).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// hardware_concurrency with a floor of 1.
    [[nodiscard]] static std::size_t default_thread_count() noexcept;

private:
    void worker_loop();
    void run_chunks(const std::function<void(std::size_t)>& fn, std::size_t n);

    std::vector<std::thread> workers_;
    std::mutex serial_mutex_; // one parallel_for at a time

    std::mutex mutex_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    const std::function<void(std::size_t)>* job_fn_ = nullptr;
    std::size_t job_n_ = 0;
    std::size_t chunk_ = 1;
    std::atomic<std::size_t> next_{0};
    std::size_t active_workers_ = 0;
    std::uint64_t generation_ = 0;
    std::exception_ptr first_error_;
    bool stop_ = false;
};

/// One-shot convenience over a transient pool is intentionally absent:
/// thread spawn cost would dwarf most association workloads. Hold a
/// ThreadPool (or use search::Associator, which owns one).

} // namespace cybok::util
