#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>

namespace cybok::strings {

namespace {
bool is_space(char c) noexcept {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
char lower(char c) noexcept {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
} // namespace

std::string_view trim(std::string_view s) noexcept {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && is_space(s[b])) ++b;
    while (e > b && is_space(s[e - 1])) --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && is_space(s[i])) ++i;
        std::size_t start = i;
        while (i < s.size() && !is_space(s[i])) ++i;
        if (i > start) out.push_back(s.substr(start, i - start));
    }
    return out;
}

namespace {
template <typename Seq>
std::string join_impl(const Seq& parts, std::string_view sep) {
    std::string out;
    std::size_t total = 0;
    for (const auto& p : parts) total += p.size() + sep.size();
    out.reserve(total);
    bool first = true;
    for (const auto& p : parts) {
        if (!first) out.append(sep);
        out.append(p);
        first = false;
    }
    return out;
}
} // namespace

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    return join_impl(parts, sep);
}
std::string join(const std::vector<std::string_view>& parts, std::string_view sep) {
    return join_impl(parts, sep);
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](char c) { return lower(c); });
    return out;
}

std::string replace_all(std::string_view s, std::string_view from, std::string_view to) {
    if (from.empty()) return std::string(s);
    std::string out;
    out.reserve(s.size());
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t hit = s.find(from, pos);
        if (hit == std::string_view::npos) {
            out.append(s.substr(pos));
            break;
        }
        out.append(s.substr(pos, hit - pos));
        out.append(to);
        pos = hit + from.size();
    }
    return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (lower(a[i]) != lower(b[i])) return false;
    return true;
}

bool icontains(std::string_view s, std::string_view needle) noexcept {
    if (needle.empty()) return true;
    if (needle.size() > s.size()) return false;
    for (std::size_t i = 0; i + needle.size() <= s.size(); ++i) {
        bool ok = true;
        for (std::size_t j = 0; j < needle.size(); ++j) {
            if (lower(s[i + j]) != lower(needle[j])) {
                ok = false;
                break;
            }
        }
        if (ok) return true;
    }
    return false;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
    if (a.size() > b.size()) std::swap(a, b);
    std::vector<std::size_t> row(a.size() + 1);
    for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
        std::size_t prev_diag = row[0];
        row[0] = j;
        for (std::size_t i = 1; i <= a.size(); ++i) {
            std::size_t cur = row[i];
            std::size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
            row[i] = std::min({row[i] + 1, row[i - 1] + 1, prev_diag + cost});
            prev_diag = cur;
        }
    }
    return row[a.size()];
}

std::string truncate_utf8(std::string_view s, std::size_t max_len) {
    if (s.size() <= max_len) return std::string(s);
    std::size_t cut = max_len - 3;
    // A byte of the form 10xxxxxx continues a multi-byte sequence; cutting
    // in front of one would leave a dangling lead byte behind the cut.
    while (cut > 0 && (static_cast<unsigned char>(s[cut]) & 0xC0) == 0x80) --cut;
    return std::string(s.substr(0, cut)) + "...";
}

std::string with_commas(std::uint64_t n) {
    std::string digits = std::to_string(n);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    std::size_t lead = digits.size() % 3;
    if (lead == 0) lead = 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

} // namespace cybok::strings
