// Small string utilities used throughout the library. All functions are
// pure and allocation is kept to the minimum required by the return type.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cybok::strings {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split `s` on the single character `sep`. Empty fields are preserved,
/// so split(",a,", ',') yields {"", "a", ""}.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on any run of ASCII whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Join `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);
[[nodiscard]] std::string join(const std::vector<std::string_view>& parts, std::string_view sep);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Replace every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replace_all(std::string_view s, std::string_view from,
                                      std::string_view to);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// True when `s` contains `needle` case-insensitively.
[[nodiscard]] bool icontains(std::string_view s, std::string_view needle) noexcept;

/// Levenshtein edit distance (used for fuzzy product-name matching).
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b);

/// Format a non-negative integer with thousands separators ("9673" -> "9,673").
[[nodiscard]] std::string with_commas(std::uint64_t n);

/// Truncate `s` to at most `max_len` bytes, appending "..." when shortened.
/// Never splits a multi-byte UTF-8 sequence: the cut backs up over any
/// continuation bytes so the result stays valid UTF-8 (CVE descriptions
/// routinely contain vendor names like "Müller" or CJK product names).
/// Requires max_len >= 3.
[[nodiscard]] std::string truncate_utf8(std::string_view s, std::size_t max_len);

} // namespace cybok::strings
