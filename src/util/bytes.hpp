// Little-endian byte-level IO for the binary snapshot format (and any
// future compact codec): an appending ByteWriter over a growable buffer, a
// bounds-checked ByteReader over a view, an FNV-1a 64 checksum, and a
// one-shot pre-sized file reader.
//
// Every multi-byte value is written little-endian regardless of host
// endianness, so a snapshot produced on one machine thaws on any other.
// Strings and vectors are length-prefixed (u32 count), which lets the
// reader pre-size its allocations and reject truncated input before
// copying anything.

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace cybok::util {

// The slab layer (SlabWriter / SlabView / F64Table / the postings codec)
// serves fixed-width tables directly out of snapshot bytes — owned or
// mmap'ed — without a decode pass, which requires the in-memory and
// on-disk layouts to be the same. The build toolchain targets
// little-endian hosts only (x86-64 / AArch64); a big-endian port would
// need byte-swapping views here.
static_assert(std::endian::native == std::endian::little,
              "snapshot slabs are served in place and assume a little-endian host");

/// Read a whole file into a pre-sized buffer with one read() call —
/// replaces rdbuf-to-stringstream extraction, which copies the content
/// twice and reallocates along the way. Throws IoError.
[[nodiscard]] std::string read_file(const std::string& path);

/// Write `bytes` to `path`, replacing any existing file. Throws IoError
/// on open failure or short write.
void write_file(const std::string& path, std::string_view bytes);

/// FNV-1a 64-bit checksum (the snapshot integrity check: fast, simple,
/// and sensitive to any single-byte corruption).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Appends little-endian primitives to an owned buffer.
class ByteWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f32(float v);
    void f64(double v);
    /// u32 length prefix + raw bytes.
    void str(std::string_view s);

    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
    [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }
    [[nodiscard]] std::string take() && { return std::move(buf_); }

private:
    std::string buf_;
};

/// Bounds-checked little-endian reads over a borrowed view. Every read
/// past the end throws ParseError with the offending offset; the caller
/// (kb/snapshot.cpp) turns that into a typed SnapshotError.
class ByteReader {
public:
    explicit ByteReader(std::string_view data) noexcept : data_(data) {}

    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] float f32();
    [[nodiscard]] double f64();
    [[nodiscard]] std::string str();

    [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
    [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }

private:
    /// The next `n` raw bytes, advancing; throws ParseError when fewer remain.
    std::string_view take(std::size_t n);

    std::string_view data_;
    std::size_t pos_ = 0;
};

/// Round `n` up to a multiple of `align` (align must be a power of two).
[[nodiscard]] constexpr std::size_t align_up(std::size_t n, std::size_t align) noexcept {
    return (n + align - 1) & ~(align - 1);
}

/// Location of one slab inside a snapshot's slab section.
struct SlabRef {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
};

void write_slab_ref(ByteWriter& w, const SlabRef& ref);
[[nodiscard]] SlabRef read_slab_ref(ByteReader& r);

/// Appends aligned byte ranges ("slabs") to one buffer, zero-padding the
/// gaps so the output is byte-deterministic. Because the snapshot frame
/// places the slab section at a 64-byte-aligned offset (and an mmap base
/// is page-aligned), a slab added with the default alignment is 64-byte
/// aligned in the final mapping — safe to reinterpret as an array of
/// doubles or packed posting structs and use in place.
class SlabWriter {
public:
    /// Append `bytes` at the next `align`-aligned offset; returns where it
    /// landed. `align` must be a power of two <= 64.
    SlabRef add(std::string_view bytes, std::size_t align = 64);

    [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }
    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
    [[nodiscard]] std::string take() && { return std::move(buf_); }

private:
    std::string buf_;
};

/// Bounds-checked view over a snapshot's slab section. slice() validates a
/// SlabRef read from the eager section before anything dereferences it;
/// out-of-range refs throw ParseError (rebased to SnapshotError by the
/// engine thaw path, like every other payload decode failure).
class SlabView {
public:
    SlabView() = default;
    explicit SlabView(std::string_view bytes) noexcept : bytes_(bytes) {}

    [[nodiscard]] std::string_view slice(const SlabRef& ref) const;
    [[nodiscard]] const char* base() const noexcept { return bytes_.data(); }
    [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

private:
    std::string_view bytes_;
};

/// A 64-byte-aligned owning byte buffer — the backing for owning snapshot
/// thaws. std::string offers no alignment guarantee, and the slab tables
/// are reinterpreted in place, so the owning path copies the slab section
/// into one of these (a single memcpy) instead of keeping the whole blob.
class AlignedBuffer {
public:
    AlignedBuffer() = default;
    explicit AlignedBuffer(std::string_view bytes);

    [[nodiscard]] const char* data() const noexcept { return buf_.get(); }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::string_view view() const noexcept { return {buf_.get(), size_}; }

private:
    struct Free {
        void operator()(char* p) const noexcept { ::operator delete(p, std::align_val_t{64}); }
    };
    std::unique_ptr<char, Free> buf_;
    std::size_t size_ = 0;
};

/// A read-only array of doubles that either owns its storage (fresh build)
/// or views an 8-byte-aligned little-endian slab in place (snapshot thaw —
/// owned copy or mmap, no per-element decode either way).
class F64Table {
public:
    F64Table() = default;

    [[nodiscard]] static F64Table own(std::vector<double> v) {
        F64Table t;
        t.owned_ = std::move(v);
        t.data_ = t.owned_.data();
        t.size_ = t.owned_.size();
        return t;
    }
    /// View `bytes` as doubles in place. `bytes.data()` must be 8-byte
    /// aligned (slabs are 64-aligned) and `bytes.size()` a multiple of 8;
    /// violations throw ParseError.
    [[nodiscard]] static F64Table view(std::string_view bytes);

    [[nodiscard]] const double* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] double operator[](std::size_t i) const noexcept { return data_[i]; }
    /// True when this table owns its storage (vs viewing snapshot bytes).
    [[nodiscard]] bool owning() const noexcept { return data_ == nullptr || !owned_.empty(); }

    /// The table's bytes for freezing into a slab (identical whether the
    /// table owns or views — slab round-trips are bit-exact).
    [[nodiscard]] std::string_view bytes() const noexcept {
        return {reinterpret_cast<const char*>(data_), size_ * sizeof(double)};
    }

private:
    std::vector<double> owned_;
    const double* data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace cybok::util
