// Little-endian byte-level IO for the binary snapshot format (and any
// future compact codec): an appending ByteWriter over a growable buffer, a
// bounds-checked ByteReader over a view, an FNV-1a 64 checksum, and a
// one-shot pre-sized file reader.
//
// Every multi-byte value is written little-endian regardless of host
// endianness, so a snapshot produced on one machine thaws on any other.
// Strings and vectors are length-prefixed (u32 count), which lets the
// reader pre-size its allocations and reject truncated input before
// copying anything.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace cybok::util {

/// Read a whole file into a pre-sized buffer with one read() call —
/// replaces rdbuf-to-stringstream extraction, which copies the content
/// twice and reallocates along the way. Throws IoError.
[[nodiscard]] std::string read_file(const std::string& path);

/// Write `bytes` to `path`, replacing any existing file. Throws IoError
/// on open failure or short write.
void write_file(const std::string& path, std::string_view bytes);

/// FNV-1a 64-bit checksum (the snapshot integrity check: fast, simple,
/// and sensitive to any single-byte corruption).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Appends little-endian primitives to an owned buffer.
class ByteWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f32(float v);
    void f64(double v);
    /// u32 length prefix + raw bytes.
    void str(std::string_view s);

    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
    [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }
    [[nodiscard]] std::string take() && { return std::move(buf_); }

private:
    std::string buf_;
};

/// Bounds-checked little-endian reads over a borrowed view. Every read
/// past the end throws ParseError with the offending offset; the caller
/// (kb/snapshot.cpp) turns that into a typed SnapshotError.
class ByteReader {
public:
    explicit ByteReader(std::string_view data) noexcept : data_(data) {}

    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] float f32();
    [[nodiscard]] double f64();
    [[nodiscard]] std::string str();

    [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
    [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }

private:
    /// The next `n` raw bytes, advancing; throws ParseError when fewer remain.
    std::string_view take(std::size_t n);

    std::string_view data_;
    std::size_t pos_ = 0;
};

} // namespace cybok::util
