// Read-only memory-mapped files — the zero-copy half of the snapshot
// path. A MappedFile wraps one mmap(PROT_READ) of a whole file: the
// kernel pages bytes in on first touch and shares one physical copy
// across every process and thread holding the mapping, so a snapshot
// opened this way costs O(page faults actually taken) instead of
// O(bytes), and N serve sessions over one engine share a single resident
// copy of the postings.
//
// Lifetime contract: anything that views the mapping (slab tables, the
// posting store, F64Tables) must not outlive the MappedFile. The engine
// layer enforces this by carrying a shared_ptr<const MappedFile> in
// EngineSnapshot / core::SharedEngine, so the registry's generation swap
// keeps an old mapping alive until the last pinned session drops it.

#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace cybok::util {

/// RAII read-only file mapping. Move-only; the destructor unmaps.
class MappedFile {
public:
    /// Map `path` read-only. Throws IoError when the file cannot be
    /// opened, stat'ed, or mapped (including empty files and non-POSIX
    /// builds, where mapping is unsupported) — callers fall back to the
    /// owning read_file + thaw path.
    [[nodiscard]] static MappedFile open(const std::string& path);

    MappedFile(MappedFile&& other) noexcept;
    MappedFile& operator=(MappedFile&& other) noexcept;
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;
    ~MappedFile();

    [[nodiscard]] std::string_view view() const noexcept {
        return {static_cast<const char*>(addr_), size_};
    }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    /// True when `p` points into this mapping (test support: proves a
    /// table is served from the file, not a private copy).
    [[nodiscard]] bool contains(const void* p) const noexcept {
        const char* c = static_cast<const char*>(p);
        const char* base = static_cast<const char*>(addr_);
        return c >= base && c < base + size_;
    }

private:
    MappedFile(void* addr, std::size_t size, std::string path) noexcept
        : addr_(addr), size_(size), path_(std::move(path)) {}

    void* addr_ = nullptr;
    std::size_t size_ = 0;
    std::string path_;
};

} // namespace cybok::util
