// Error types shared across all CYBOK++ modules.
//
// The library follows the C++ Core Guidelines error-handling model (E.2):
// errors that a caller may reasonably want to handle are thrown as typed
// exceptions rooted at cybok::Error; programming errors (precondition
// violations) are guarded with CYBOK_EXPECTS which aborts in debug builds.

#pragma once

#include <cassert>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cybok {

/// Root of the CYBOK++ exception hierarchy.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input while parsing (JSON, GraphML, CVSS vectors, CPE names...).
class ParseError : public Error {
public:
    ParseError(std::string_view what, std::size_t offset)
        : Error(std::string(what) + " (at offset " + std::to_string(offset) + ")"),
          offset_(offset) {}
    explicit ParseError(std::string_view what) : Error(std::string(what)), offset_(0) {}

    /// Byte offset into the parsed input where the error was detected.
    [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

private:
    std::size_t offset_;
};

/// A semantic constraint on a model / corpus / configuration was violated.
class ValidationError : public Error {
public:
    using Error::Error;
};

/// A lookup by id or name found nothing.
class NotFoundError : public Error {
public:
    using Error::Error;
};

/// Filesystem / stream failure.
class IoError : public Error {
public:
    using Error::Error;
};

// Precondition / postcondition macros (GSL-style Expects/Ensures).
#define CYBOK_EXPECTS(cond) assert(cond)
#define CYBOK_ENSURES(cond) assert(cond)

} // namespace cybok
