// Deterministic pseudo-random generation.
//
// Everything in CYBOK++ that involves randomness (the synthetic corpus
// generator, the synthetic architecture generator, property-test drivers)
// goes through Rng so that a (seed, parameters) pair always produces the
// same artifacts — a requirement for reproducing the paper's Table 1 from
// a synthetic MITRE-style corpus.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace cybok {

/// xoshiro256** seeded via splitmix64. Satisfies UniformRandomBitGenerator.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    result_type operator()() noexcept { return next(); }
    std::uint64_t next() noexcept;

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

    /// Uniform double in [0, 1).
    double uniform01() noexcept;

    /// True with probability p (clamped to [0,1]).
    bool chance(double p) noexcept;

    /// Uniformly chosen element of a non-empty span.
    template <typename T>
    const T& pick(std::span<const T> items) noexcept {
        CYBOK_EXPECTS(!items.empty());
        return items[static_cast<std::size_t>(uniform(0, items.size() - 1))];
    }
    template <typename T>
    const T& pick(const std::vector<T>& items) noexcept {
        return pick(std::span<const T>(items));
    }

    /// Index drawn from the (unnormalized, non-negative) weight vector.
    /// Requires at least one strictly positive weight.
    std::size_t weighted(std::span<const double> weights) noexcept;

    /// Zipf-distributed rank in [0, n) with exponent `s` (s > 0). Heavier
    /// head for larger s. Used to give corpus term frequencies a realistic
    /// long tail.
    std::size_t zipf(std::size_t n, double s) noexcept;

    /// Poisson-distributed count with mean `lambda` (Knuth's algorithm for
    /// small lambda, normal approximation above 30).
    std::size_t poisson(double lambda) noexcept;

    /// Fisher–Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) noexcept {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(uniform(0, i - 1));
            using std::swap;
            swap(items[i - 1], items[j]);
        }
    }

    /// `k` distinct indices sampled uniformly from [0, n). Requires k <= n.
    std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

    /// Derive an independent child generator; `label` decorrelates children
    /// created from the same parent state.
    [[nodiscard]] Rng fork(std::uint64_t label) noexcept;

private:
    std::uint64_t state_[4];
};

/// FNV-1a hash of a string, for deriving stable seeds from names.
[[nodiscard]] std::uint64_t stable_hash(std::string_view s) noexcept;

} // namespace cybok
