// Deterministic, zero-overhead-when-disabled fault injection.
//
// Production failure surfaces (file IO, snapshot framing, parser entry
// points, the sharded engine build, query-cache access, session cold-start)
// register *named sites* via CYBOK_FAULT_POINT. In normal operation a site
// costs one relaxed atomic load and a never-taken branch; the injector is
// compiled in unconditionally so release binaries can be fault-tested
// without a rebuild (`cybok --fault-spec ...`).
//
// When armed, a site consults its trigger on every hit:
//
//   Always       — fire on every hit.
//   Nth          — fire on exactly the nth hit (1-based), once.
//   Probability  — fire on each hit with probability p. The decision is a
//                  pure function of (seed, site name, hit index): no RNG
//                  state is shared between hits, so the *set* of fired hit
//                  indices is reproducible even when hits race across
//                  threads (which hit a racing thread observes may vary,
//                  but re-running with the same seed explores the same
//                  fault surface).
//
// Firing throws whatever typed error the call site names — the same
// exception type the real failure would produce — so the recovery paths
// exercised by tests are the production ones. See ARCHITECTURE.md §6 for
// the site table and per-site degradation contract.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cybok::util {

/// How an armed site decides whether a given hit fires.
struct FaultTrigger {
    enum class Kind { Always, Nth, Probability };
    Kind kind = Kind::Always;
    std::uint64_t nth = 1;    ///< 1-based hit index (Kind::Nth)
    double probability = 0.0; ///< per-hit fire probability (Kind::Probability)

    [[nodiscard]] static FaultTrigger always() { return {}; }
    [[nodiscard]] static FaultTrigger on_nth_hit(std::uint64_t n);
    [[nodiscard]] static FaultTrigger with_probability(double p);
};

/// Per-site observation counters, as returned by FaultInjector::report().
struct FaultSiteReport {
    std::string site;
    FaultTrigger trigger;
    std::uint64_t hits = 0;  ///< times the site was evaluated while armed
    std::uint64_t fires = 0; ///< times it threw
};

namespace detail {
/// Global enable flag. True iff at least one site is armed. Read on every
/// CYBOK_FAULT_POINT with memory_order_relaxed; the disabled fast path is
/// exactly this load plus an [[unlikely]] branch.
extern std::atomic<bool> g_fault_enabled;
} // namespace detail

[[nodiscard]] inline bool fault_enabled() noexcept {
    return detail::g_fault_enabled.load(std::memory_order_relaxed);
}

/// Process-wide registry of armed fault sites. Thread-safe. Tests arm it
/// directly (or via FaultScope); the CLI arms it from --fault-spec.
class FaultInjector {
public:
    /// The singleton. Construction is thread-safe (Meyers).
    [[nodiscard]] static FaultInjector& instance();

    /// Seed for Probability triggers. Changing it resets hit counters so a
    /// sweep over seeds replays each site's hit sequence from index 0.
    void set_seed(std::uint64_t seed);
    [[nodiscard]] std::uint64_t seed() const;

    /// Arm `site` with `trigger`. Replaces any existing trigger and resets
    /// that site's counters. Throws ValidationError on a bad trigger
    /// (nth == 0, probability outside [0, 1]).
    void arm(std::string_view site, FaultTrigger trigger);

    /// Arm from a spec string, the --fault-spec grammar:
    ///
    ///   spec    := entry (';' entry)*
    ///   entry   := 'seed=' UINT | site | site '=' trigger
    ///   trigger := 'always' | 'nth:' UINT | 'p:' FLOAT
    ///
    /// A bare site arms Always. Example:
    ///   "seed=7;kb.snapshot.open;search.cache.get=p:0.25;util.json.parse=nth:3"
    /// Throws ValidationError on malformed input.
    void arm_spec(std::string_view spec);

    /// Disarm one site (keeps its counters in the report until reset()).
    void disarm(std::string_view site);

    /// Disarm everything, clear counters, restore the default seed.
    void reset();

    /// Called by CYBOK_FAULT_POINT when the injector is enabled. Counts
    /// the hit and returns true when the armed trigger fires. Unarmed
    /// sites return false (and are not tracked: counters exist only for
    /// armed sites, so the disabled path stays free of bookkeeping).
    [[nodiscard]] bool on_hit(std::string_view site);

    /// Snapshot of every armed site's trigger and counters, sorted by
    /// site name for deterministic output.
    [[nodiscard]] std::vector<FaultSiteReport> report() const;

private:
    FaultInjector() = default;
    struct SiteState {
        FaultTrigger trigger;
        std::uint64_t hits = 0;
        std::uint64_t fires = 0;
    };
    void refresh_enabled_locked();

    mutable std::mutex mutex_;
    std::uint64_t seed_ = 0;
    // Sorted vector keyed by site name: a handful of armed sites at most,
    // and on_hit runs under the mutex anyway.
    std::vector<std::pair<std::string, SiteState>> sites_;
};

/// True when `site` is armed and its trigger fires for this hit. For call
/// sites that need cleanup before throwing (the macro throws in-place).
[[nodiscard]] bool fault_should_fire(std::string_view site);

/// RAII helper for tests: arms a spec on construction, resets the whole
/// injector on destruction so suites cannot leak armed sites.
class FaultScope {
public:
    explicit FaultScope(std::string_view spec);
    ~FaultScope();
    FaultScope(const FaultScope&) = delete;
    FaultScope& operator=(const FaultScope&) = delete;
};

/// A registered fault site: name, the typed error it throws, and the
/// documented degradation. Drives the ARCHITECTURE.md table and the
/// per-site reachability tests (every entry must have a firing test).
struct FaultSiteInfo {
    std::string_view site;
    std::string_view throws_type;
    std::string_view degradation;
};

/// The full site registry. Kept in one place so tests can assert coverage.
[[nodiscard]] const std::vector<FaultSiteInfo>& known_fault_sites();

} // namespace cybok::util

/// Declare a fault site. `...` is the exception to throw when the site
/// fires — construct it in-place so the disabled path never evaluates the
/// arguments:
///
///   CYBOK_FAULT_POINT("util.bytes.read_file.open",
///                     IoError("injected: cannot open: " + path));
#define CYBOK_FAULT_POINT(site, ...)                                          \
    do {                                                                      \
        if (::cybok::util::fault_enabled()) [[unlikely]] {                    \
            if (::cybok::util::FaultInjector::instance().on_hit(site))        \
                throw __VA_ARGS__;                                            \
        }                                                                     \
    } while (false)
