#include "util/rng.hpp"

#include <cmath>

namespace cybok {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}
std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
} // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    CYBOK_EXPECTS(lo <= hi);
    const std::uint64_t range = hi - lo + 1; // range==0 means the full 2^64 span
    if (range == 0) return next();
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~std::uint64_t{0}) - ((~std::uint64_t{0}) % range);
    std::uint64_t x = next();
    while (x >= limit) x = next();
    return lo + x % range;
}

double Rng::uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
}

std::size_t Rng::weighted(std::span<const double> weights) noexcept {
    CYBOK_EXPECTS(!weights.empty());
    double total = 0.0;
    for (double w : weights) total += (w > 0.0 ? w : 0.0);
    CYBOK_EXPECTS(total > 0.0);
    double r = uniform01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        double w = weights[i] > 0.0 ? weights[i] : 0.0;
        if (r < w) return i;
        r -= w;
    }
    return weights.size() - 1;
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
    CYBOK_EXPECTS(n > 0);
    CYBOK_EXPECTS(s > 0.0);
    // Inverse-CDF over the harmonic weights; O(n) setup avoided by the
    // standard rejection method of Devroye for generality-free inputs.
    // n here is small (lexicon sizes), so direct inversion is fine.
    double h = 0.0;
    for (std::size_t k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
    double r = uniform01() * h;
    for (std::size_t k = 1; k <= n; ++k) {
        double w = 1.0 / std::pow(static_cast<double>(k), s);
        if (r < w) return k - 1;
        r -= w;
    }
    return n - 1;
}

std::size_t Rng::poisson(double lambda) noexcept {
    CYBOK_EXPECTS(lambda >= 0.0);
    if (lambda <= 0.0) return 0;
    if (lambda < 30.0) {
        const double limit = std::exp(-lambda);
        std::size_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform01();
        } while (p > limit);
        return k - 1;
    }
    // Normal approximation with continuity correction for large lambda.
    double u1 = uniform01();
    double u2 = uniform01();
    if (u1 <= 0.0) u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    double v = lambda + std::sqrt(lambda) * z + 0.5;
    return v < 0.0 ? 0 : static_cast<std::size_t>(v);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) noexcept {
    CYBOK_EXPECTS(k <= n);
    // Floyd's algorithm: k iterations, set membership via sorted vector.
    std::vector<std::size_t> chosen;
    chosen.reserve(k);
    for (std::size_t j = n - k; j < n; ++j) {
        std::size_t t = static_cast<std::size_t>(uniform(0, j));
        bool present = false;
        for (std::size_t c : chosen) {
            if (c == t) {
                present = true;
                break;
            }
        }
        chosen.push_back(present ? j : t);
    }
    return chosen;
}

Rng Rng::fork(std::uint64_t label) noexcept {
    return Rng(next() ^ (label * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
}

std::uint64_t stable_hash(std::string_view s) noexcept {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ULL;
    }
    return h;
}

} // namespace cybok
