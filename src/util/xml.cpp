#include "util/xml.hpp"

#include "util/fault.hpp"

namespace cybok::xml {

std::string Node::attr(std::string_view key, std::string_view fallback) const {
    auto it = attrs.find(key);
    return it == attrs.end() ? std::string(fallback) : it->second;
}

const Node* Node::child(std::string_view tag) const noexcept {
    for (const Node& c : children)
        if (c.name == tag) return &c;
    return nullptr;
}

std::vector<const Node*> Node::children_named(std::string_view tag) const {
    std::vector<const Node*> out;
    for (const Node& c : children)
        if (c.name == tag) out.push_back(&c);
    return out;
}

std::string Node::child_text(std::string_view tag, std::string_view fallback) const {
    const Node* c = child(tag);
    return c == nullptr ? std::string(fallback) : c->text;
}

std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            case '\'': out += "&apos;"; break;
            default: out.push_back(c);
        }
    }
    return out;
}

namespace {

/// Elements may nest at most this deep (see json.cpp's kMaxParseDepth).
constexpr int kMaxParseDepth = 192;

std::string unescape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '&') {
            out.push_back(s[i]);
            continue;
        }
        std::size_t semi = s.find(';', i);
        if (semi == std::string_view::npos) throw ParseError("unterminated XML entity", i);
        std::string_view ent = s.substr(i + 1, semi - i - 1);
        if (ent == "amp") out.push_back('&');
        else if (ent == "lt") out.push_back('<');
        else if (ent == "gt") out.push_back('>');
        else if (ent == "quot") out.push_back('"');
        else if (ent == "apos") out.push_back('\'');
        else if (!ent.empty() && ent[0] == '#') {
            // Hand-rolled digits so malformed references ("&#;", "&#xzz;",
            // overlong values) raise typed ParseError rather than the
            // untyped std::invalid_argument/out_of_range that stoi throws.
            const bool hex = ent.size() > 1 && ent[1] == 'x';
            const std::string_view digits = ent.substr(hex ? 2 : 1);
            if (digits.empty()) throw ParseError("empty character reference", i);
            unsigned cp = 0;
            for (char d : digits) {
                unsigned v;
                if (d >= '0' && d <= '9') v = static_cast<unsigned>(d - '0');
                else if (hex && d >= 'a' && d <= 'f') v = static_cast<unsigned>(d - 'a' + 10);
                else if (hex && d >= 'A' && d <= 'F') v = static_cast<unsigned>(d - 'A' + 10);
                else throw ParseError("invalid character reference", i);
                cp = cp * (hex ? 16u : 10u) + v;
                if (cp >= 0x80) throw ParseError("non-ASCII character reference unsupported", i);
            }
            out.push_back(static_cast<char>(cp));
        } else {
            throw ParseError("unknown XML entity: " + std::string(ent), i);
        }
        i = semi;
    }
    return out;
}

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Node parse_document() {
        skip_prolog();
        Node root = parse_element();
        skip_misc();
        if (pos_ != text_.size()) throw ParseError("trailing content after root element", pos_);
        return root;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                       text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    void skip_comment() {
        if (text_.substr(pos_, 4) == "<!--") {
            std::size_t end = text_.find("-->", pos_ + 4);
            if (end == std::string_view::npos) throw ParseError("unterminated comment", pos_);
            pos_ = end + 3;
        }
    }

    void skip_misc() {
        while (true) {
            std::size_t before = pos_;
            skip_ws();
            skip_comment();
            if (pos_ == before) break;
        }
    }

    void skip_prolog() {
        skip_ws();
        if (text_.substr(pos_, 5) == "<?xml") {
            std::size_t end = text_.find("?>", pos_);
            if (end == std::string_view::npos)
                throw ParseError("unterminated XML declaration", pos_);
            pos_ = end + 2;
        }
        skip_misc();
    }

    std::string parse_name() {
        std::size_t start = pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '>' || c == '/' ||
                c == '=')
                break;
            ++pos_;
        }
        if (pos_ == start) throw ParseError("expected XML name", pos_);
        return std::string(text_.substr(start, pos_ - start));
    }

    Node parse_element() {
        if (pos_ >= text_.size() || text_[pos_] != '<') throw ParseError("expected '<'", pos_);
        ++pos_;
        Node node;
        node.name = parse_name();
        while (true) {
            skip_ws();
            if (pos_ >= text_.size()) throw ParseError("unterminated element", pos_);
            if (text_[pos_] == '/') {
                if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '>')
                    throw ParseError("malformed self-closing tag", pos_);
                pos_ += 2;
                return node;
            }
            if (text_[pos_] == '>') {
                ++pos_;
                break;
            }
            std::string key = parse_name();
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '=')
                throw ParseError("expected '=' in attribute", pos_);
            ++pos_;
            skip_ws();
            if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\''))
                throw ParseError("expected quoted attribute value", pos_);
            char quote = text_[pos_++];
            std::size_t start = pos_;
            while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
            if (pos_ >= text_.size()) throw ParseError("unterminated attribute value", start);
            node.attrs.emplace(std::move(key), unescape(text_.substr(start, pos_ - start)));
            ++pos_;
        }
        while (true) {
            if (pos_ >= text_.size())
                throw ParseError("unterminated element: " + node.name, pos_);
            if (text_.substr(pos_, 4) == "<!--") {
                skip_comment();
                continue;
            }
            if (text_.substr(pos_, 2) == "</") {
                pos_ += 2;
                std::string close = parse_name();
                if (close != node.name)
                    throw ParseError("mismatched closing tag: " + close, pos_);
                skip_ws();
                if (pos_ >= text_.size() || text_[pos_] != '>')
                    throw ParseError("malformed closing tag", pos_);
                ++pos_;
                return node;
            }
            if (text_[pos_] == '<') {
                // One stack frame per nesting level: cap it so adversarial
                // "<a><a><a>..." input errors out instead of overflowing.
                if (depth_ >= kMaxParseDepth) throw ParseError("XML nesting too deep", pos_);
                ++depth_;
                node.children.push_back(parse_element());
                --depth_;
                continue;
            }
            std::size_t start = pos_;
            while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
            node.text += unescape(text_.substr(start, pos_ - start));
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

Node parse(std::string_view text) {
    CYBOK_FAULT_POINT("util.xml.parse", ParseError("injected: xml parse failure", 0));
    return Parser(text).parse_document();
}

} // namespace cybok::xml
