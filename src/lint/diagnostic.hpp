// Typed diagnostics for the model/KB lint pipeline — the compiler-style
// "warnings before the expensive pass" layer the paper's challenge list
// (C1–C5) motivates: incomplete, inconsistent, or consequence-disconnected
// models flow into the association engine and produce confidently wrong
// Table-1 numbers unless defects are surfaced first.
//
// A Diagnostic is a stable, machine-readable finding: a rule code that
// never changes meaning across releases ("M001"), a severity, the id of
// the offending element, a message, and an optional fix hint. The text
// and JSON renderings are byte-deterministic (tests/test_lint.cpp holds
// two parallel runs to identical streams), so diagnostics can be diffed,
// golden-filed, and gated on in CI.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace cybok::lint {

/// Compiler-style severity ladder. Errors make `cybok lint` exit non-zero
/// (and, with SessionOptions::fail_on_lint_error, block association).
enum class Severity : std::uint8_t { Note = 0, Warning = 1, Error = 2 };

[[nodiscard]] std::string_view severity_name(Severity s) noexcept;
/// Inverse of severity_name ("note"/"warning"/"error"), for CLI overrides.
[[nodiscard]] std::optional<Severity> severity_from_name(std::string_view name) noexcept;

/// Which of the four lint passes a rule belongs to.
enum class Pass : std::uint8_t { Model = 0, Kb = 1, Consequence = 2, Flow = 3 };
[[nodiscard]] std::string_view pass_name(Pass p) noexcept;

/// One finding. `code` identifies the rule ("M001"); `subject` names the
/// offending element in its own namespace (component name, "connector#3",
/// "CVE-2020-12345", "H-1", ...).
struct Diagnostic {
    std::string code;
    Severity severity = Severity::Warning;
    std::string subject;
    std::string message;
    std::string hint; ///< optional fix hint; empty when the rule has none

    friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// The canonical ordering of a diagnostic stream: by code, then subject,
/// then message. Sorting with this makes output independent of rule
/// scheduling (thread count, pass interleaving).
[[nodiscard]] bool diagnostic_less(const Diagnostic& a, const Diagnostic& b) noexcept;

/// "error[M002] connector#3: ... (hint: ...)" — the text-format line.
[[nodiscard]] std::string to_string(const Diagnostic& d);

/// {"code":..., "severity":..., "subject":..., "message":..., "hint":...}.
[[nodiscard]] json::Value to_json(const Diagnostic& d);

} // namespace cybok::lint
