// The lint rule registry: every defect class the pipeline checks, as a
// table of (code, pass, default severity, rationale, run function). Codes
// are stable public API — "M001" means the same thing forever; retired
// rules leave holes rather than renumbering.
//
// Rules are pure functions of a LintInput: no rule mutates anything, no
// rule depends on another rule's output, and within one rule the emitted
// diagnostics are in a deterministic order. That is what lets the driver
// (lint.hpp) fan rules across a thread pool and still produce the same
// byte stream at every thread count.
//
// Rule table (see docs/ARCHITECTURE.md §5 for the full rationale):
//   model pass        M001 duplicate-component-name       error
//                     M002 dangling-connector             error
//                     M003 self-loop-connector            warning
//                     M004 duplicate-link                 warning
//                     M005 empty-attribute                warning
//                     M006 unreachable-component          warning
//                     M007 no-entry-point                 note
//   kb pass           K001 duplicate-record-id            error
//                     K002 malformed-platform             error
//                     K003 invalid-cvss-vector            error
//                     K004 dangling-cross-reference       error
//                     K005 broken-hierarchy               error
//   consequence pass  C001 unknown-uca-controller         warning
//                     C002 untraceable-hazard             warning
//                     C003 unmapped-vulnerable-component  warning
//                     C004 missing-hazard-model           note
//   flow pass         F001 tainted-hazard-path            error
//                     F002 unattenuated-external-reach    warning
//                     F003 single-chokepoint              note
//
// The flow pass runs the fixpoint dataflow analyses (flow/flow.hpp) and
// is gated on LintInput::associations — the taint lattice is seeded from
// attack-vector evidence, so without an association map there is nothing
// to propagate and the F rules emit nothing.

#pragma once

#include <string_view>
#include <vector>

#include "kb/corpus.hpp"
#include "lint/diagnostic.hpp"
#include "model/system_model.hpp"
#include "safety/hazards.hpp"
#include "search/association.hpp"

namespace cybok::lint {

/// What a lint run inspects. Only `model` and `corpus` are expected for
/// the model and KB passes; the consequence pass additionally wants the
/// hazard model and (for C003/C004) an already-computed association map.
/// Every pointer may be null — rules that need a missing input emit
/// nothing. The corpus does NOT need to be indexed: rules touch only the
/// raw record vectors, so a corpus too malformed to reindex() (duplicate
/// ids) still lints.
struct LintInput {
    const model::SystemModel* model = nullptr;
    const kb::Corpus* corpus = nullptr;
    const safety::HazardModel* hazards = nullptr;
    const search::AssociationMap* associations = nullptr;
};

/// One registered rule. `run` emits diagnostics stamped with `severity`
/// (the effective severity after LintOptions overrides).
struct Rule {
    std::string_view code;      ///< stable id, e.g. "M001"
    std::string_view name;      ///< kebab-case slug, e.g. "duplicate-component-name"
    Pass pass = Pass::Model;
    Severity default_severity = Severity::Warning;
    std::string_view rationale; ///< one line: why this defect corrupts analysis
    std::vector<Diagnostic> (*run)(const LintInput&, Severity) = nullptr;
};

/// All built-in rules, ordered by code. The vector is a process-wide
/// constant; taking references into it is safe.
[[nodiscard]] const std::vector<Rule>& registry();

/// Rule by code, or nullptr.
[[nodiscard]] const Rule* find_rule(std::string_view code) noexcept;

} // namespace cybok::lint
