#include "lint/diagnostic.hpp"

namespace cybok::lint {

std::string_view severity_name(Severity s) noexcept {
    switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    }
    return "warning";
}

std::optional<Severity> severity_from_name(std::string_view name) noexcept {
    if (name == "note") return Severity::Note;
    if (name == "warning") return Severity::Warning;
    if (name == "error") return Severity::Error;
    return std::nullopt;
}

std::string_view pass_name(Pass p) noexcept {
    switch (p) {
    case Pass::Model: return "model";
    case Pass::Kb: return "kb";
    case Pass::Consequence: return "consequence";
    case Pass::Flow: return "flow";
    }
    return "model";
}

bool diagnostic_less(const Diagnostic& a, const Diagnostic& b) noexcept {
    if (a.code != b.code) return a.code < b.code;
    if (a.subject != b.subject) return a.subject < b.subject;
    return a.message < b.message;
}

std::string to_string(const Diagnostic& d) {
    std::string out;
    out.reserve(d.code.size() + d.subject.size() + d.message.size() + d.hint.size() + 32);
    out += severity_name(d.severity);
    out += '[';
    out += d.code;
    out += "] ";
    out += d.subject;
    out += ": ";
    out += d.message;
    if (!d.hint.empty()) {
        out += " (hint: ";
        out += d.hint;
        out += ')';
    }
    return out;
}

json::Value to_json(const Diagnostic& d) {
    json::Object o;
    o["code"] = d.code;
    o["severity"] = severity_name(d.severity);
    o["subject"] = d.subject;
    o["message"] = d.message;
    if (!d.hint.empty()) o["hint"] = d.hint;
    return json::Value(std::move(o));
}

} // namespace cybok::lint
