#include "lint/lint.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cybok::lint {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - since)
                                          .count());
}

} // namespace

std::size_t LintResult::count(Severity s) const noexcept {
    std::size_t n = 0;
    for (const Diagnostic& d : diagnostics)
        if (d.severity == s) ++n;
    return n;
}

std::string LintResult::summary() const {
    std::string out;
    out += std::to_string(errors()) + (errors() == 1 ? " error, " : " errors, ");
    out += std::to_string(warnings()) + (warnings() == 1 ? " warning, " : " warnings, ");
    out += std::to_string(notes()) + (notes() == 1 ? " note" : " notes");
    out += " (" + std::to_string(rules_run) + " rules)";
    return out;
}

std::string LintResult::render_text() const {
    std::string out;
    for (const Diagnostic& d : diagnostics) {
        out += to_string(d);
        out += '\n';
    }
    out += summary();
    out += '\n';
    return out;
}

json::Value LintResult::to_json() const {
    json::Object o;
    json::Array diags;
    diags.reserve(diagnostics.size());
    for (const Diagnostic& d : diagnostics) diags.push_back(lint::to_json(d));
    o["diagnostics"] = std::move(diags);
    json::Object counts;
    counts["errors"] = static_cast<std::uint64_t>(errors());
    counts["warnings"] = static_cast<std::uint64_t>(warnings());
    counts["notes"] = static_cast<std::uint64_t>(notes());
    o["counts"] = std::move(counts);
    o["rules_run"] = static_cast<std::uint64_t>(rules_run);
    o["threads"] = static_cast<std::uint64_t>(threads);
    json::Object t;
    t["model_ns"] = model_ns;
    t["kb_ns"] = kb_ns;
    t["consequence_ns"] = consequence_ns;
    t["flow_ns"] = flow_ns;
    t["wall_ns"] = wall_ns;
    o["timings"] = std::move(t);
    o["ok"] = json::Value(ok());
    return json::Value(std::move(o));
}

json::Value LintResult::to_sarif() const {
    json::Object doc;
    doc["$schema"] =
        "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";
    doc["version"] = "2.1.0";

    json::Object driver;
    driver["name"] = "cybok-lint";
    driver["informationUri"] = "docs/ARCHITECTURE.md";
    json::Array rules;
    for (const Rule& rule : registry()) {
        json::Object r;
        r["id"] = std::string(rule.code);
        r["name"] = std::string(rule.name);
        json::Object desc;
        desc["text"] = std::string(rule.rationale);
        r["shortDescription"] = std::move(desc);
        json::Object props;
        props["pass"] = std::string(pass_name(rule.pass));
        r["properties"] = std::move(props);
        rules.push_back(std::move(r));
    }
    driver["rules"] = std::move(rules);
    json::Object tool;
    tool["driver"] = std::move(driver);

    json::Array results;
    results.reserve(diagnostics.size());
    for (const Diagnostic& d : diagnostics) {
        json::Object res;
        res["ruleId"] = d.code;
        // SARIF levels: error / warning / note map 1:1 onto our ladder.
        res["level"] = std::string(severity_name(d.severity));
        json::Object msg;
        std::string text = d.subject + ": " + d.message;
        if (!d.hint.empty()) text += " (hint: " + d.hint + ")";
        msg["text"] = std::move(text);
        res["message"] = std::move(msg);
        // Findings are about model/corpus elements, not source files;
        // SARIF requires a location, so address the element as a logical
        // location in the rule's pass namespace.
        json::Array locations;
        json::Object loc;
        json::Array logical;
        json::Object elem;
        elem["name"] = d.subject;
        const Rule* rule = find_rule(d.code);
        elem["kind"] = rule != nullptr ? std::string(pass_name(rule->pass)) : "element";
        logical.push_back(std::move(elem));
        loc["logicalLocations"] = std::move(logical);
        locations.push_back(std::move(loc));
        res["locations"] = std::move(locations);
        results.push_back(std::move(res));
    }

    json::Object run;
    run["tool"] = std::move(tool);
    run["results"] = std::move(results);
    json::Array runs;
    runs.push_back(std::move(run));
    doc["runs"] = std::move(runs);
    return json::Value(std::move(doc));
}

LintResult run_lint(const LintInput& input, const LintOptions& options) {
    const auto run_start = std::chrono::steady_clock::now();

    // Reject unknown rule codes up front: a typo'd code in `disabled`
    // would silently run the rule the caller meant to switch off, and a
    // typo'd override would silently keep the default severity.
    std::vector<std::string> unknown;
    for (const std::string& code : options.disabled)
        if (find_rule(code) == nullptr) unknown.push_back(code);
    for (const auto& [code, severity] : options.severity_overrides) {
        (void)severity;
        if (find_rule(code) == nullptr) unknown.push_back(code);
    }
    if (!unknown.empty()) {
        std::sort(unknown.begin(), unknown.end());
        unknown.erase(std::unique(unknown.begin(), unknown.end()), unknown.end());
        std::string what = "unknown lint rule code(s): ";
        for (std::size_t i = 0; i < unknown.size(); ++i) {
            if (i > 0) what += ", ";
            what += unknown[i];
        }
        what += " (known codes are listed in lint/rules.hpp)";
        throw ValidationError(what);
    }

    struct Job {
        const Rule* rule = nullptr;
        Severity severity = Severity::Warning;
        std::vector<Diagnostic> diagnostics;
        std::uint64_t ns = 0;
    };
    std::vector<Job> jobs;
    jobs.reserve(registry().size());
    for (const Rule& rule : registry()) {
        if (options.disabled.contains(rule.code)) continue;
        Job job;
        job.rule = &rule;
        job.severity = rule.default_severity;
        if (auto it = options.severity_overrides.find(rule.code);
            it != options.severity_overrides.end())
            job.severity = it->second;
        jobs.push_back(std::move(job));
    }

    // One task per rule; every task writes only its own slot, so the fan-
    // out needs no synchronization and the merge below is deterministic.
    util::ThreadPool pool(options.threads);
    pool.parallel_for(jobs.size(), [&](std::size_t i) {
        Job& job = jobs[i];
        const auto start = std::chrono::steady_clock::now();
        job.diagnostics = job.rule->run(input, job.severity);
        job.ns = elapsed_ns(start);
    });

    LintResult result;
    result.rules_run = jobs.size();
    result.threads = pool.thread_count();
    for (Job& job : jobs) {
        switch (job.rule->pass) {
        case Pass::Model: result.model_ns += job.ns; break;
        case Pass::Kb: result.kb_ns += job.ns; break;
        case Pass::Consequence: result.consequence_ns += job.ns; break;
        case Pass::Flow: result.flow_ns += job.ns; break;
        }
        result.diagnostics.insert(result.diagnostics.end(),
                                  std::make_move_iterator(job.diagnostics.begin()),
                                  std::make_move_iterator(job.diagnostics.end()));
    }
    std::sort(result.diagnostics.begin(), result.diagnostics.end(), &diagnostic_less);
    result.wall_ns = elapsed_ns(run_start);
    return result;
}

} // namespace cybok::lint
