// The lint driver: run the registered rule pipeline over a loaded session
// state (model + corpus + optional hazards/associations) *before* the
// association engine, and hand back a deterministic diagnostic stream.
//
// Execution model: rules are independent pure functions, so the driver
// fans them across a util::ThreadPool (one task per enabled rule — rule
// granularity, not element granularity, because the expensive rules are
// whole-corpus scans that parallelize naturally against each other). Each
// rule writes into its own pre-sized slot; the driver then concatenates
// and sorts by (code, subject, message). Output is therefore byte-
// identical at every thread count — the same contract the parallel
// association engine honors.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "util/json.hpp"

namespace cybok::lint {

/// Per-run rule configuration. Rule codes in `disabled` and
/// `severity_overrides` must name registered rules: run_lint throws
/// ValidationError listing every unknown code, instead of silently
/// ignoring a typo'd "M0001" and running the rule it meant to suppress.
struct LintOptions {
    /// Lanes to fan rules across (0 = hardware concurrency).
    std::size_t threads = 0;
    /// Rule codes switched off entirely.
    std::set<std::string, std::less<>> disabled;
    /// Per-rule severity overrides (code -> severity), e.g. promote M005
    /// to error in a strict CI gate, or demote C003 to note while a hazard
    /// model is still being written.
    std::map<std::string, Severity, std::less<>> severity_overrides;
};

/// The outcome of one lint run: the sorted diagnostic stream plus per-pass
/// cost accounting (per-rule durations summed into their pass, so on a
/// parallel run pass sums are CPU-time-like and can exceed wall_ns).
struct LintResult {
    std::vector<Diagnostic> diagnostics; ///< sorted by (code, subject, message)
    std::size_t rules_run = 0;           ///< enabled rules actually executed
    std::size_t threads = 1;             ///< lanes the run fanned out across

    std::uint64_t model_ns = 0;
    std::uint64_t kb_ns = 0;
    std::uint64_t consequence_ns = 0;
    std::uint64_t flow_ns = 0;
    std::uint64_t wall_ns = 0;

    [[nodiscard]] std::size_t count(Severity s) const noexcept;
    [[nodiscard]] std::size_t errors() const noexcept { return count(Severity::Error); }
    [[nodiscard]] std::size_t warnings() const noexcept { return count(Severity::Warning); }
    [[nodiscard]] std::size_t notes() const noexcept { return count(Severity::Note); }
    /// True when the stream carries no error-severity diagnostics.
    [[nodiscard]] bool ok() const noexcept { return errors() == 0; }

    /// "3 errors, 1 warning, 0 notes (16 rules)" — deterministic, no timings.
    [[nodiscard]] std::string summary() const;

    /// One diagnostic line per finding plus the summary line. Byte-
    /// deterministic across thread counts and repeated runs.
    [[nodiscard]] std::string render_text() const;

    /// {"diagnostics": [...], "counts": {...}, "rules_run": n, "timings":
    /// {...}} — the `cybok lint --format json` document.
    [[nodiscard]] json::Value to_json() const;

    /// SARIF 2.1.0 document (`cybok lint --format sarif`): one run, the
    /// full rule registry as reportingDescriptors, one result per
    /// diagnostic (error->"error", warning->"warning", note->"note").
    /// Byte-deterministic like the other renderings, so the document can
    /// be uploaded to code-scanning UIs or golden-filed.
    [[nodiscard]] json::Value to_sarif() const;
};

/// Run every enabled rule over `input`. Null LintInput members skip the
/// rules that need them (see rules.hpp); an all-null input runs zero-work
/// rules and returns an empty, ok() result.
[[nodiscard]] LintResult run_lint(const LintInput& input, const LintOptions& options = {});

} // namespace cybok::lint
